// Weighted CYK parsing — the classic NPDP beside matrix parenthesization.
//
//   $ ./cyk_parse                       # demo: balanced parentheses
//   $ ./cyk_parse '(()(()))'            # parse a paren string
//   $ ./cyk_parse --anbn aaabbb         # the a^n b^n language
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/cyk/cyk.hpp"
#include "common/stopwatch.hpp"

using namespace cellnpdp;
using namespace cellnpdp::cyk;

namespace {

void print_tree(const ParseResult& r, const Grammar& g,
                const std::string& text) {
  // Indented preorder dump.
  std::vector<int> depth(r.nodes.size(), 0);
  std::vector<index_t> stack;
  for (std::size_t t = 0; t < r.nodes.size(); ++t) {
    const auto& nd = r.nodes[t];
    while (!stack.empty() &&
           !(r.nodes[static_cast<std::size_t>(stack.back())].i <= nd.i &&
             nd.j <= r.nodes[static_cast<std::size_t>(stack.back())].j &&
             stack.back() != static_cast<index_t>(t)))
      stack.pop_back();
    depth[t] = static_cast<int>(stack.size());
    stack.push_back(static_cast<index_t>(t));
  }
  for (std::size_t t = 0; t < r.nodes.size(); ++t) {
    const auto& nd = r.nodes[t];
    std::printf("%*sN%d [%lld,%lld) \"%s\"\n", depth[t] * 2, "", nd.lhs,
                static_cast<long long>(nd.i), static_cast<long long>(nd.j),
                text.substr(static_cast<std::size_t>(nd.i),
                            static_cast<std::size_t>(nd.j - nd.i))
                    .c_str());
  }
  (void)g;
}

}  // namespace

int main(int argc, char** argv) {
  Grammar g = balanced_parens_grammar();
  std::string alphabet = "()";
  std::string text = "(()(()))";
  if (argc >= 3 && std::strcmp(argv[1], "--anbn") == 0) {
    g = anbn_grammar();
    alphabet = "ab";
    text = argv[2];
  } else if (argc >= 2) {
    text = argv[1];
  }

  CykParser parser(g);
  Stopwatch sw;
  const auto r = parser.parse(tokens_from_string(text, alphabet));
  const double s = sw.seconds();

  std::printf("input      : %s\n", text.c_str());
  if (!r.accepted()) {
    std::printf("result     : REJECTED (not in the language)\n");
    return 1;
  }
  std::printf("result     : accepted, Viterbi cost %.1f\n", double(r.cost));
  std::printf("parse time : %.3f ms (%lld split relaxations)\n", s * 1e3,
              static_cast<long long>(parser.bifurcation_relaxations()));
  std::printf("parse tree :\n");
  print_tree(r, g, text);
  return 0;
}
