// Optimal matrix-chain parenthesization through the NPDP engine.
//
//   $ ./matrix_chain_demo                    # CLRS textbook example
//   $ ./matrix_chain_demo 30 35 15 5 10     # dimensions p0 p1 ... pn
//   $ ./matrix_chain_demo --random 200 [seed]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "apps/matrix_chain/matrix_chain.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace cellnpdp;

  std::vector<double> p;
  if (argc >= 3 && std::strcmp(argv[1], "--random") == 0) {
    const index_t m = std::atoll(argv[2]);
    SplitMix64 rng(argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3);
    p.resize(static_cast<std::size_t>(m + 1));
    for (auto& x : p) x = double(rng.next_below(100) + 1);
  } else if (argc >= 3) {
    for (int i = 1; i < argc; ++i) p.push_back(std::atof(argv[i]));
  } else {
    p = {30, 35, 15, 5, 10, 20, 25};  // CLRS 15.2 -> 15125 multiplications
  }

  NpdpOptions opts;
  opts.block_side = 16;
  opts.kernel = KernelKind::Native;
  Stopwatch sw;
  const auto r = solve_matrix_chain(p, opts);
  const double s = sw.seconds();

  std::printf("chain of %zu matrices\n", p.size() - 1);
  std::printf("minimal multiplications: %.0f\n", r.cost);
  if (p.size() <= 24)
    std::printf("optimal order          : %s\n", r.parenthesization.c_str());
  std::printf("solve time             : %.2f ms (blocked engine, "
              "separable k-term kernels)\n", s * 1e3);

  const auto ref = solve_matrix_chain_reference(p);
  std::printf("reference check        : %s\n",
              ref.cost == r.cost ? "match" : "MISMATCH");
  return ref.cost == r.cost ? 0 : 1;
}
