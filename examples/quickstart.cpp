// Quickstart: solve a generic NPDP instance three ways and verify they
// agree.
//
//   $ ./quickstart [n]
//
// Walks through the library's core API: define an instance (size + initial
// values), solve with the original Fig. 1 loop, the blocked serial engine,
// and the blocked parallel engine, then compare.
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "core/reference.hpp"
#include "core/solve.hpp"
#include "layout/convert.hpp"

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 1024;

  // 1. Describe the instance: d[i][j] seeded from a deterministic RNG,
  //    diagonal zero. The engine then computes the Fig. 1 closure
  //    d[i][j] = min(d[i][j], d[i][k] + d[k][j]).
  NpdpInstance<float> inst;
  inst.n = n;
  inst.init = [](index_t i, index_t j) {
    return random_init_value<float>(2024, i, j);
  };

  // 2. The original algorithm (row-major triangle, scalar).
  TriangularMatrix<float> original(n);
  original.fill(inst.init);
  Stopwatch sw1;
  solve_fig1(original);
  std::printf("original (Fig. 1)      : %8.1f ms\n", sw1.seconds() * 1e3);

  // 3. The blocked engine: new data layout + 128-bit SIMD kernels.
  NpdpOptions opts;
  opts.block_side = 64;          // memory blocks, 16 KB of floats
  opts.kernel = KernelKind::Native;
  Stopwatch sw2;
  const auto blocked = solve_blocked_serial(inst, opts);
  std::printf("blocked + SIMD         : %8.1f ms\n", sw2.seconds() * 1e3);

  // 4. The parallel engine: scheduling blocks over a task queue.
  opts.threads = 4;
  opts.sched_side = 2;
  Stopwatch sw3;
  const auto parallel = solve_blocked_parallel(inst, opts);
  std::printf("blocked + SIMD + tasks : %8.1f ms (4 threads)\n",
              sw3.seconds() * 1e3);

  // 5. All three must agree bit-for-bit.
  const double d1 = max_abs_diff(original, to_triangular(blocked));
  const double d2 = max_abs_diff(original, to_triangular(parallel));
  std::printf("max |original - blocked|  = %g\n", d1);
  std::printf("max |original - parallel| = %g\n", d2);
  std::printf("d[0][n-1] = %g\n", double(blocked.at(0, n - 1)));
  return d1 == 0.0 && d2 == 0.0 ? 0 : 1;
}
