// Drive the Cell machine model interactively: pick a problem size, SPE
// count and block size, and inspect what the simulated QS20 does.
//
//   $ ./cell_playground [n] [spes] [block_side]
#include <cstdio>
#include <cstdlib>

#include "bench_util/table.hpp"
#include "cellsim/npdp_sim.hpp"
#include "cellsim/variants.hpp"
#include "common/rng.hpp"
#include "core/reference.hpp"
#include "layout/convert.hpp"

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 2048;
  const int spes = argc > 2 ? std::atoi(argv[2]) : 16;
  const index_t bs = argc > 3 ? std::atoll(argv[3]) : 88;

  CellConfig cfg = qs20();
  cfg.num_spes = spes;

  NpdpInstance<float> inst;
  inst.n = n;
  inst.init = [](index_t i, index_t j) {
    return random_init_value<float>(11, i, j);
  };

  // Functional execution when the size is small enough to verify.
  CellSimOptions opts;
  opts.block_side = bs;
  opts.mode = n <= 2048 ? ExecMode::Functional : ExecMode::TimingOnly;
  BlockedTriangularMatrix<float> out(1, bs);
  const auto r = simulate_cellnpdp(inst, cfg, opts, &out);

  std::printf("machine            : %s, %d SPEs @ %.1f GHz, %s/s\n",
              cfg.name.c_str(), cfg.num_spes, cfg.clock_hz / 1e9,
              fmt_bytes(cfg.memory_bandwidth).c_str());
  std::printf("problem            : n=%lld, %lld-cell memory blocks (%s)\n",
              static_cast<long long>(n), static_cast<long long>(bs),
              fmt_bytes(double(bs * bs * 4)).c_str());
  std::printf("simulated time     : %s\n", fmt_seconds(r.seconds).c_str());
  std::printf("tasks dispatched   : %lld\n", static_cast<long long>(r.tasks));
  std::printf("DMA in / out       : %s / %s (%lld commands)\n",
              fmt_bytes(double(r.dma_bytes_in)).c_str(),
              fmt_bytes(double(r.dma_bytes_out)).c_str(),
              static_cast<long long>(r.dma_commands));
  std::printf("kernel steady state: %d cycles per 4x4 computing block\n",
              r.kernel_cycles);
  std::printf("SPE busy (summed)  : %s  -> avg occupancy %s\n",
              fmt_seconds(r.spe_busy_seconds).c_str(),
              fmt_pct(r.spe_busy_seconds / (r.seconds * spes)).c_str());
  std::printf("useful ops/cycle   : %.1f of %d peak -> utilization %s\n",
              r.ops_per_cycle, spes * 8, fmt_pct(r.utilization).c_str());

  if (opts.mode == ExecMode::Functional) {
    const auto ref = solve_reference(inst);
    const double diff = max_abs_diff(ref, to_triangular(out));
    std::printf("functional check   : max diff vs reference = %g (%s)\n",
                diff, diff == 0.0 ? "exact" : "MISMATCH");
    return diff == 0.0 ? 0 : 1;
  }
  std::printf("(timing-only mode; use n <= 2048 for functional "
              "verification)\n");
  return 0;
}
