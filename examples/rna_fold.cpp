// RNA secondary-structure prediction with the Zuker folder — the paper's
// motivating application.
//
//   $ ./rna_fold                       # folds a demo tRNA-like sequence
//   $ ./rna_fold GGGAAAUCC...          # folds the given sequence
//   $ ./rna_fold --random 500 [seed]   # folds a random sequence
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/zuker/fold.hpp"
#include "common/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace cellnpdp;
  using namespace cellnpdp::zuker;

  std::vector<Base> seq;
  if (argc >= 3 && std::strcmp(argv[1], "--random") == 0) {
    const index_t n = std::atoll(argv[2]);
    const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;
    seq = random_sequence(n, seed);
  } else if (argc >= 2) {
    seq = parse_sequence(argv[1]);
  } else {
    // Yeast tRNA-Phe (76 nt), a classic folding demo.
    seq = parse_sequence(
        "GCGGAUUUAGCUCAGUUGGGAGAGCGCCAGACUGAAGAUCUGGAGGUCCUGUGUUCGAUCC"
        "ACAGAAUUCGCACCA");
  }

  ZukerFolder folder;  // default energy model, SIMD bifurcations
  Stopwatch sw;
  const auto r = folder.fold(seq);
  const double s = sw.seconds();

  const std::string letters = bases_to_string(seq);
  // Print in 60-column blocks: sequence over structure.
  for (std::size_t off = 0; off < letters.size(); off += 60) {
    std::printf("%5zu  %s\n", off + 1, letters.substr(off, 60).c_str());
    std::printf("       %s\n", r.structure.substr(off, 60).c_str());
  }
  std::printf("\nlength        : %zu nt\n", letters.size());
  std::printf("MFE           : %.2f kcal/mol (simplified model)\n",
              double(r.mfe));
  std::printf("base pairs    : %zu\n", r.pairs.size());
  std::printf("fold time     : %.2f ms\n", s * 1e3);
  std::printf("NPDP work     : %lld bifurcation relaxations (%.2f G/s)\n",
              static_cast<long long>(folder.bifurcation_relaxations()),
              double(folder.bifurcation_relaxations()) / s / 1e9);
  return 0;
}
