// Optimal binary search tree through the NPDP engine.
//
//   $ ./optimal_bst_demo               # CLRS textbook example
//   $ ./optimal_bst_demo --random 300 [seed]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/optimal_bst/optimal_bst.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace cellnpdp;

  BstInstanceData<double> d;
  if (argc >= 3 && std::strcmp(argv[1], "--random") == 0) {
    const index_t keys = std::atoll(argv[2]);
    SplitMix64 rng(argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5);
    std::vector<double> p(static_cast<std::size_t>(keys + 1), 0.0);
    std::vector<double> q(static_cast<std::size_t>(keys + 1), 0.0);
    double total = 0;
    for (index_t k = 1; k <= keys; ++k) total += p[k] = rng.next_unit();
    for (index_t g = 0; g <= keys; ++g) total += q[g] = rng.next_unit();
    for (auto& x : p) x /= total;
    for (auto& x : q) x /= total;
    d = make_bst_data(std::move(p), std::move(q));
  } else {
    // CLRS 15.5: optimal expected cost 2.75.
    d = make_bst_data<double>({0, .15, .10, .05, .10, .20},
                              {.05, .10, .05, .05, .05, .10});
  }

  NpdpOptions opts;
  opts.block_side = 16;
  Stopwatch sw;
  const double cost = solve_optimal_bst(d, opts);
  const double s = sw.seconds();

  std::printf("keys                  : %lld\n",
              static_cast<long long>(d.keys()));
  std::printf("expected search cost  : %.6f\n", cost);
  std::printf("solve time            : %.2f ms (blocked engine, weighted "
              "NPDP)\n", s * 1e3);

  const double ref = solve_optimal_bst_reference(d, /*speedup=*/true);
  std::printf("Knuth-speedup check   : %.6f (%s)\n", ref,
              std::abs(ref - cost) < 1e-9 ? "match" : "MISMATCH");
  return std::abs(ref - cost) < 1e-9 ? 0 : 1;
}
