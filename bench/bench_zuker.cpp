// Zuker application bench — the paper's motivating workload end-to-end:
// RNA MFE folding with the O(n^3) NPDP bifurcations evaluated scalar vs
// with the library's SIMD primitives.
#include <cstdio>
#include <vector>

#include "apps/zuker/fold.hpp"
#include "bench_util/bench_config.hpp"
#include "bench_util/table.hpp"
#include "common/stopwatch.hpp"

namespace cellnpdp {
namespace {

void run(const BenchConfig& cfg) {
  std::vector<index_t> sizes{400, 800, 1200};
  if (cfg.full) sizes.push_back(2400);
  TextTable t({"n (bases)", "scalar bifurcations", "SIMD bifurcations",
               "speedup", "MFE", "NPDP relax/s (SIMD)"});
  for (index_t n : sizes) {
    const auto seq = zuker::random_sequence(n, 42);

    zuker::ZukerFolder scalar({}, {false});
    Stopwatch s1;
    const auto a = scalar.fold(seq);
    const double ts = s1.seconds();

    zuker::ZukerFolder simd({}, {true});
    Stopwatch s2;
    const auto b = simd.fold(seq);
    const double tv = s2.seconds();

    char mfe[32], rate[32];
    std::snprintf(mfe, sizeof mfe, "%.2f", double(b.mfe));
    std::snprintf(rate, sizeof rate, "%.2fG",
                  double(simd.bifurcation_relaxations()) / tv / 1e9);
    t.row(n, fmt_seconds(ts), fmt_seconds(tv), fmt_x(ts / tv), mfe, rate);
    if (a.mfe != b.mfe) std::printf("!! scalar/simd MFE mismatch at n=%ld\n",
                                    static_cast<long>(n));
  }
  t.print();
  std::printf("(the bifurcation minima min_k WM(i,k)+WM(k+1,j) are the "
              "NPDP the paper targets; the transpose trick turns them into "
              "contiguous row reductions — §III applied to Zuker)\n");
}

}  // namespace
}  // namespace cellnpdp

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const auto cfg = BenchConfig::from_args(argc, argv);
  print_bench_header("Zuker RNA folding: NPDP bifurcations in application",
                     cfg);
  run(cfg);
  return 0;
}
