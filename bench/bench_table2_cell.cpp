// Table II — performance on the IBM QS20 Cell blade (simulated).
//
// Rows per precision: original algorithm on the PPE, original algorithm on
// one SPE (row-major layout, small DMAs), CellNPDP on 16 SPEs. All Cell
// numbers come from the machine model (pipeline + DMA + bus); the PPE
// baseline row is calibrated (see EXPERIMENTS.md). Paper values printed
// alongside for comparison.
#include <cstdio>
#include <map>

#include "bench_util/bench_config.hpp"
#include "bench_util/table.hpp"
#include "cellsim/npdp_sim.hpp"
#include "cellsim/variants.hpp"

namespace cellnpdp {
namespace {

// Paper Table II (seconds).
const std::map<index_t, std::array<double, 3>> kPaperSp = {
    {4096, {715, 3061, 0.22}},
    {8192, {21961, 24588, 1.77}},
    {16384, {187945, 198432, 13.90}}};
const std::map<index_t, std::array<double, 3>> kPaperDp = {
    {4096, {1015, 5096, 4.41}},
    {8192, {27821, 40752, 34.54}},
    {16384, {241759, 327276, 389.15}}};

template <class T>
void run_precision(Precision prec,
                   const std::map<index_t, std::array<double, 3>>& paper) {
  const CellConfig cfg = qs20();
  // The paper uses 32 KB memory blocks; side = sqrt(32K/S) rounded to the
  // kernel width.
  const index_t bs = prec == Precision::Single ? 88 : 64;

  TextTable t({"n", "variant", "simulated", "paper", "util"});
  for (index_t n : {index_t(4096), index_t(8192), index_t(16384)}) {
    const double ppe = time_original_ppe(n, prec, cfg);
    const double spe = time_original_spe(n, prec, cfg);

    NpdpInstance<T> inst;
    inst.n = n;
    inst.init = [](index_t, index_t) { return T(1); };
    CellSimOptions o;
    o.block_side = bs;
    const auto sim = simulate_cellnpdp(inst, cfg, o);

    const auto& p = paper.at(n);
    t.row(n, "original, one PPE", fmt_seconds(ppe), fmt_seconds(p[0]), "");
    t.row(n, "original, one SPE", fmt_seconds(spe), fmt_seconds(p[1]), "");
    t.row(n, "CellNPDP, 16 SPEs", fmt_seconds(sim.seconds),
          fmt_seconds(p[2]), fmt_pct(sim.utilization));
  }
  std::printf("\n%s precision (memory block %ld cells/side = %s):\n",
              precision_name(prec), static_cast<long>(bs),
              fmt_bytes(double(bs * bs) * double(precision_bytes(prec)))
                  .c_str());
  t.print();
}

}  // namespace
}  // namespace cellnpdp

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const auto cfg = BenchConfig::from_args(argc, argv);
  print_bench_header("Table II: NPDP on the QS20 Cell blade (simulated)",
                     cfg);
  run_precision<float>(Precision::Single, kPaperSp);
  run_precision<double>(Precision::Double, kPaperDp);
  std::printf(
      "\nNote: the 'original, one PPE' row uses calibrated cycles/relax "
      "(EXPERIMENTS.md); every other number is produced by the machine "
      "model.\n");
  return 0;
}
