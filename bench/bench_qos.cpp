// Multi-tenant QoS benchmark: does per-tenant admission + weighted fair
// scheduling actually isolate a quiet tenant from a hot one?
//
// One in-process NpdpServer, two synthetic tenants:
//
//   hot    (id 1)  token bucket at ~60% of measured capacity, weight 1
//   quiet  (id 2)  unthrottled, weight 4, steady ~5% of capacity
//
// Phases:
//
//   capacity_off   closed loop, tenants not configured -> baseline rps
//   capacity_on    same load, tenants configured (untagged traffic) ->
//                  the clean-path overhead of the QoS machinery
//   quiet_alone    quiet tenant at its steady rate, no hot load ->
//                  unloaded p99 baseline
//   overload xN    hot tenant offered {1x, 2x, 5x} measured capacity in
//                  open loop while quiet keeps its steady rate -> the
//                  isolation claim: quiet p99 stays within 3x its
//                  unloaded baseline even at 5x, overflow surfaces as
//                  RetryAfter/Shed statuses (never dropped connections),
//                  and the hot tenant's throttle/shed counters are busy
//
// Latency percentiles use the coordinated-omission-corrected series
// (stamped from each request's *scheduled* send instant), so an
// overloaded generator cannot flatter the server. Writes BENCH_qos.json;
// exits nonzero if any phase sees a client-visible error, the quiet
// tenant's 5x p99 ratio exceeds 3, or the hot tenant was never pushed
// back on.
#include <cstdio>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/bench_config.hpp"
#include "bench_util/json_out.hpp"
#include "bench_util/table.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "serve/tenant.hpp"

namespace cellnpdp {
namespace {

std::uint64_t visible_errors(const net::LoadGenResult& r) {
  return r.errors + r.proto_errors + r.transport_errors +
         (r.sent - r.replies);
}

double p99_corrected(const net::LoadGenResult& r) {
  return net::latency_percentile(r.corrected_latencies_ms, 0.99);
}

/// The shared request shape: heavy enough (chain n=96, cache disabled)
/// that solve cost dominates and capacity lands in a range an open-loop
/// generator can realistically multiply by five.
net::LoadGenOptions base_load(std::uint16_t port, std::int64_t dur_ms) {
  net::LoadGenOptions lo;
  lo.port = port;
  lo.duration_ms = dur_ms;
  lo.mix = "chain";
  lo.size = 96;
  lo.distinct = 64;
  lo.seed = 31;
  lo.connect_timeout_ms = 2000;
  return lo;
}

serve::ServiceOptions service_base() {
  serve::ServiceOptions so;
  so.workers = 2;
  so.queue_capacity = 128;
  so.policy = serve::OverloadPolicy::ShedOldest;
  so.cache_capacity = 0;  // every request solves: deterministic cost
  return so;
}

}  // namespace
}  // namespace cellnpdp

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const auto cfg = BenchConfig::from_args(argc, argv);
  print_bench_header("Multi-tenant QoS: overload isolation", cfg);

  const std::int64_t dur_ms = cfg.full ? 4000 : 1500;
  BenchJson json("qos", cfg);
  TextTable table({"phase", "offered rps", "replies", "p99 ms",
                   "retry-after", "shed"});
  bool ok = true;
  std::string err;

  // --- capacity, tenants off ----------------------------------------------
  double rps_off = 0;
  {
    net::ServerOptions no;
    no.port = 0;
    net::NpdpServer server(no, service_base());
    if (!server.start(&err)) {
      std::fprintf(stderr, "capacity_off: %s\n", err.c_str());
      return 1;
    }
    net::LoadGenOptions lo = base_load(server.port(), dur_ms);
    lo.connections = 6;  // closed loop: capacity under zero queueing
    net::LoadGenResult r;
    if (!run_loadgen(lo, &r, &err)) {
      std::fprintf(stderr, "capacity_off: %s\n", err.c_str());
      return 1;
    }
    server.stop();
    rps_off = r.achieved_rps;
    ok = ok && visible_errors(r) == 0;
    table.row("capacity_off", "-", r.replies, fmt_seconds(p99_corrected(r) / 1e3),
              r.retry_after, r.shed);
    json.record()
        .set("phase", "capacity_off")
        .set("rps", rps_off)
        .set("replies", std::int64_t(r.replies))
        .set("p99_ms", p99_corrected(r))
        .set("errors", std::int64_t(visible_errors(r)));
  }

  // The tenanted service config every remaining phase runs under. The
  // hot bucket is sized off the measured capacity so the sweep stresses
  // the same relative point regardless of the host machine.
  const double hot_rate = std::max(50.0, 0.6 * rps_off);
  const double quiet_rate = std::max(20.0, 0.05 * rps_off);
  serve::ServiceOptions tenanted = service_base();
  {
    serve::TenantPolicy hot;
    hot.name = "hot";
    hot.rate = hot_rate;
    hot.burst = std::max(10.0, hot_rate / 10);
    hot.weight = 1;
    serve::TenantPolicy quiet;
    quiet.name = "quiet";
    quiet.weight = 4;
    tenanted.tenants.policies[1] = hot;
    tenanted.tenants.policies[2] = quiet;
  }

  // --- capacity, tenants on: the clean-path overhead ----------------------
  double rps_on = 0, overhead_pct = 0;
  {
    net::ServerOptions no;
    no.port = 0;
    net::NpdpServer server(no, tenanted);
    if (!server.start(&err)) {
      std::fprintf(stderr, "capacity_on: %s\n", err.c_str());
      return 1;
    }
    net::LoadGenOptions lo = base_load(server.port(), dur_ms);
    lo.connections = 6;  // untagged (tenant 0) traffic, same closed loop
    net::LoadGenResult r;
    if (!run_loadgen(lo, &r, &err)) {
      std::fprintf(stderr, "capacity_on: %s\n", err.c_str());
      return 1;
    }
    server.stop();
    rps_on = r.achieved_rps;
    overhead_pct = rps_off > 0 ? 100.0 * (rps_off - rps_on) / rps_off : 0;
    ok = ok && visible_errors(r) == 0;
    table.row("capacity_on", "-", r.replies, fmt_seconds(p99_corrected(r) / 1e3),
              r.retry_after, r.shed);
    json.record()
        .set("phase", "capacity_on")
        .set("rps", rps_on)
        .set("overhead_pct", overhead_pct)
        .set("replies", std::int64_t(r.replies))
        .set("p99_ms", p99_corrected(r))
        .set("errors", std::int64_t(visible_errors(r)));
  }

  // --- quiet tenant alone: the unloaded p99 baseline ----------------------
  // One server instance hosts this phase and the whole sweep; a restart
  // per phase would only reset counters the client already tracks.
  net::ServerOptions no;
  no.port = 0;
  net::NpdpServer server(no, tenanted);
  if (!server.start(&err)) {
    std::fprintf(stderr, "qos server: %s\n", err.c_str());
    return 1;
  }
  double quiet_p99_alone = 0;
  {
    net::LoadGenOptions lo = base_load(server.port(), dur_ms);
    lo.connections = 2;
    lo.rate = quiet_rate;
    lo.tenant = 2;
    lo.seed = 47;
    net::LoadGenResult r;
    if (!run_loadgen(lo, &r, &err)) {
      std::fprintf(stderr, "quiet_alone: %s\n", err.c_str());
      return 1;
    }
    quiet_p99_alone = std::max(1e-3, p99_corrected(r));
    ok = ok && visible_errors(r) == 0;
    table.row("quiet_alone", std::int64_t(quiet_rate), r.replies,
              fmt_seconds(quiet_p99_alone / 1e3), r.retry_after, r.shed);
    json.record()
        .set("phase", "quiet_alone")
        .set("offered_rps", quiet_rate)
        .set("replies", std::int64_t(r.replies))
        .set("p99_ms", quiet_p99_alone)
        .set("slipped", std::int64_t(r.slipped))
        .set("errors", std::int64_t(visible_errors(r)));
  }

  // --- the sweep: hot at {1x, 2x, 5x} capacity, quiet steady --------------
  double quiet_ratio_5x = 0;
  std::uint64_t hot_pushback_5x = 0;
  for (const int mult : {1, 2, 5}) {
    net::LoadGenOptions hot_lo = base_load(server.port(), dur_ms);
    hot_lo.connections = 6;
    hot_lo.rate = mult * std::max(100.0, rps_off);
    hot_lo.tenant = 1;
    hot_lo.seed = 1000 + mult;

    net::LoadGenOptions quiet_lo = base_load(server.port(), dur_ms);
    quiet_lo.connections = 2;
    quiet_lo.rate = quiet_rate;
    quiet_lo.tenant = 2;
    quiet_lo.seed = 2000 + mult;

    net::LoadGenResult hot_r, quiet_r;
    std::string hot_err;
    bool hot_ok = false;
    std::thread hot_thread(
        [&] { hot_ok = run_loadgen(hot_lo, &hot_r, &hot_err); });
    const bool quiet_ok = run_loadgen(quiet_lo, &quiet_r, &err);
    hot_thread.join();
    if (!hot_ok || !quiet_ok) {
      std::fprintf(stderr, "overload %dx: %s\n", mult,
                   (!hot_ok ? hot_err : err).c_str());
      return 1;
    }

    const double quiet_p99 = p99_corrected(quiet_r);
    const double ratio = quiet_p99 / quiet_p99_alone;
    const std::uint64_t pushback = hot_r.retry_after + hot_r.shed;
    ok = ok && visible_errors(hot_r) == 0 && visible_errors(quiet_r) == 0;
    if (mult == 5) {
      quiet_ratio_5x = ratio;
      hot_pushback_5x = pushback;
    }
    const std::string phase = "overload_" + std::to_string(mult) + "x";
    table.row(phase + " hot", std::int64_t(hot_lo.rate), hot_r.replies,
              fmt_seconds(p99_corrected(hot_r) / 1e3), hot_r.retry_after, hot_r.shed);
    table.row(phase + " quiet", std::int64_t(quiet_rate), quiet_r.replies,
              fmt_seconds(quiet_p99 / 1e3), quiet_r.retry_after, quiet_r.shed);
    json.record()
        .set("phase", phase)
        .set("hot_offered_rps", hot_lo.rate)
        .set("hot_replies", std::int64_t(hot_r.replies))
        .set("hot_ok", std::int64_t(hot_r.ok))
        .set("hot_retry_after", std::int64_t(hot_r.retry_after))
        .set("hot_shed", std::int64_t(hot_r.shed))
        .set("hot_p99_ms", p99_corrected(hot_r))
        .set("hot_slipped", std::int64_t(hot_r.slipped))
        .set("quiet_offered_rps", quiet_rate)
        .set("quiet_replies", std::int64_t(quiet_r.replies))
        .set("quiet_p99_ms", quiet_p99)
        .set("quiet_p99_ratio", ratio)
        .set("quiet_retry_after", std::int64_t(quiet_r.retry_after))
        .set("quiet_shed", std::int64_t(quiet_r.shed))
        .set("errors", std::int64_t(visible_errors(hot_r) +
                                    visible_errors(quiet_r)));
  }
  server.stop();

  table.print();
  json.flush();

  const bool isolated = quiet_ratio_5x > 0 && quiet_ratio_5x <= 3.0;
  const bool pushed_back = hot_pushback_5x > 0;
  std::printf(
      "\ncapacity %.0f rps untenanted, %.0f tenanted (overhead %.2f%%)\n"
      "quiet p99: %.3f ms alone, ratio %.2fx under 5x hot overload "
      "(bound 3x) -> %s\n"
      "hot pushback at 5x: %llu retry-after/shed replies -> %s\n",
      rps_off, rps_on, overhead_pct, quiet_p99_alone, quiet_ratio_5x,
      isolated ? "isolated" : "NOT ISOLATED",
      static_cast<unsigned long long>(hot_pushback_5x),
      pushed_back ? "throttle engaged" : "THROTTLE NEVER ENGAGED");
  if (!ok) std::printf("!! client-visible errors in at least one phase\n");
  return (ok && isolated && pushed_back) ? 0 : 1;
}
