// Figure 13 — CellNPDP with different memory-block sizes and SPE counts.
//
// n = 4096 single precision; baseline = 32 KB blocks on one SPE (exactly
// the paper's normalisation). Smaller blocks move more data, waste DMA
// efficiency, and drain the software pipeline more often; at high SPE
// counts they additionally saturate the shared bandwidth (§VI-D).
#include <cstdio>

#include "bench_util/bench_config.hpp"
#include "bench_util/table.hpp"
#include "cellsim/npdp_sim.hpp"

namespace cellnpdp {
namespace {

void run() {
  NpdpInstance<float> inst;
  inst.n = 4096;
  inst.init = [](index_t, index_t) { return 1.0f; };

  // Block sides for ~32/16/8/4 KB of floats, multiples of the SIMD width.
  const index_t sides[] = {88, 64, 44, 32};
  const char* labels[] = {"32KB", "16KB", "8KB", "4KB"};

  auto seconds = [&](index_t bs, int spes) {
    CellConfig cfg = qs20();
    cfg.num_spes = spes;
    CellSimOptions o;
    o.block_side = bs;
    return simulate_cellnpdp(inst, cfg, o).seconds;
  };

  const double base = seconds(88, 1);
  std::printf("\nSpeedup over (32KB, 1 SPE) baseline, n=4096 SP:\n");
  TextTable t({"block size", "1 SPE", "2 SPEs", "4 SPEs", "8 SPEs",
               "16 SPEs", "DMA bytes"});
  for (int b = 0; b < 4; ++b) {
    CellConfig cfg = qs20();
    CellSimOptions o;
    o.block_side = sides[b];
    const auto probe = simulate_cellnpdp(inst, cfg, o);
    t.row(labels[b], fmt_x(base / seconds(sides[b], 1)),
          fmt_x(base / seconds(sides[b], 2)),
          fmt_x(base / seconds(sides[b], 4)),
          fmt_x(base / seconds(sides[b], 8)),
          fmt_x(base / seconds(sides[b], 16)),
          fmt_bytes(double(probe.dma_bytes_in)));
  }
  t.print();
  std::printf(
      "(paper's shape: performance degrades as blocks shrink — strongest "
      "at high SPE counts where aggregate bandwidth saturates; the mild "
      "non-monotonicity near 32KB at many SPEs is the wavefront critical "
      "path, discussed in EXPERIMENTS.md)\n");
}

}  // namespace
}  // namespace cellnpdp

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const auto cfg = BenchConfig::from_args(argc, argv);
  print_bench_header("Figure 13: memory-block size sweep (simulated)", cfg);
  run();
  return 0;
}
