// Figure 11 — double-precision speedup anatomy (as Fig. 10, DPFP).
//
// The Cell side shows the paper's three DPFP effects: 2 lanes per
// register, 13-cycle add latency, and the 6-cycle pipe stall — all carried
// by the pipeline model. The CPU side is measured natively (Nehalem-class
// cores have no DP stall, so the DP/SP gap is much smaller; §VI-B.5).
#include <cstdio>
#include <vector>

#include "bench_util/bench_config.hpp"
#include "bench_util/table.hpp"
#include "cellsim/npdp_sim.hpp"
#include "cellsim/variants.hpp"
#include "common/stopwatch.hpp"
#include "core/reference.hpp"
#include "core/solve.hpp"

namespace cellnpdp {
namespace {

void fig11a(const BenchConfig& cfg) {
  std::printf("\nFig. 11(a): Cell blade, double precision (simulated; "
              "baseline = original on one SPE):\n");
  std::vector<index_t> sizes{2048, 4096};
  if (cfg.full) sizes.push_back(8192);
  TextTable t({"n", "+NDL", "+SPEP", "PARP x4", "PARP x16",
               "DP kernel cyc/relax", "SP kernel cyc/relax"});
  const auto dp = spu_latencies(Precision::Double);
  const auto sp = spu_latencies(Precision::Single);
  const double dp_cpr = double(kernel_steady_cycles(2, dp)) / 8.0;
  const double sp_cpr = double(kernel_steady_cycles(4, sp)) / 64.0;
  for (index_t n : sizes) {
    const CellConfig cell = qs20();
    const double base = time_original_spe(n, Precision::Double, cell);
    NpdpInstance<double> inst;
    inst.n = n;
    inst.init = [](index_t, index_t) { return 1.0; };
    auto run = [&](bool simd, int spes) {
      CellConfig c = qs20();
      c.num_spes = spes;
      CellSimOptions o;
      o.block_side = 64;  // 32 KB of doubles
      o.simd = simd;
      return simulate_cellnpdp(inst, c, o).seconds;
    };
    char dpc[16], spc[16];
    std::snprintf(dpc, sizeof dpc, "%.2f", dp_cpr);
    std::snprintf(spc, sizeof spc, "%.2f", sp_cpr);
    t.row(n, fmt_x(base / run(false, 1)), fmt_x(base / run(true, 1)),
          fmt_x(base / run(true, 4)), fmt_x(base / run(true, 16)), dpc, spc);
  }
  t.print();
  std::printf("(DPFP speedups are far below Fig. 10's: 2 lanes instead of "
              "4, 13-cycle latency, 6-cycle stall — §VI-A.5)\n");
}

void fig11b(const BenchConfig& cfg) {
  const index_t n = cfg.full ? 2048 : 1024;
  std::printf("\nFig. 11(b): CPU platform, double precision (native, "
              "n=%ld):\n", static_cast<long>(n));
  auto init = [](index_t i, index_t j) {
    return i == j ? 0.0 : double((i * 7 + j * 13) % 100);
  };
  TriangularMatrix<double> d(n);
  d.fill(init);
  Stopwatch sw;
  solve_fig1(d);
  const double base = sw.seconds();

  NpdpInstance<double> inst;
  inst.n = n;
  inst.init = init;
  auto run = [&](KernelKind k, std::size_t threads) {
    NpdpOptions o;
    o.block_side = 64;
    o.kernel = k;
    o.threads = threads;
    Stopwatch w;
    auto out = solve_blocked(inst, o);
    const double s = w.seconds();
    volatile double sink = out.at(0, n - 1);
    (void)sink;
    return s;
  };
  const double ndl = run(KernelKind::Scalar, 1);
  const double spep = run(KernelKind::Native, 1);  // 2-lane SSE2
  const double wide = run(KernelKind::Wide, 1);    // 4-lane AVX extension
  TextTable t({"stage", "time", "speedup vs original"});
  t.row("original (Fig.1)", fmt_seconds(base), "1.0x");
  t.row("+NDL (blocked, scalar)", fmt_seconds(ndl), fmt_x(base / ndl));
  t.row("+SPEP (128-bit: 2 lanes)", fmt_seconds(spep), fmt_x(base / spep));
  t.row("+SPEP (256-bit extension)", fmt_seconds(wide), fmt_x(base / wide));
  for (std::size_t th : {4u, 8u}) {
    const double p = run(KernelKind::Native, th);
    t.row("PARP x" + std::to_string(th) + " (wall-clock, 1-core host)",
          fmt_seconds(p), fmt_x(base / p));
  }
  t.print();
  std::printf("(paper §VI-B.5: CPU DP is much better than Cell DP because "
              "Nehalem's DPFP instructions have no extra stall)\n");
}

}  // namespace
}  // namespace cellnpdp

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const auto cfg = BenchConfig::from_args(argc, argv);
  print_bench_header("Figure 11: double-precision speedup anatomy", cfg);
  fig11a(cfg);
  fig11b(cfg);
  return 0;
}
