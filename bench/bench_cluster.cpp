// Distributed-memory scaling (related-work category 2, §II-B): the same
// blocked NPDP across simulated cluster nodes, showing where communication
// overhead stops the scaling — the regime the paper contrasts the Cell's
// on-chip EIB against.
#include <cstdio>

#include "bench_util/bench_config.hpp"
#include "bench_util/json_out.hpp"
#include "bench_util/table.hpp"
#include "cluster/cluster_sim.hpp"

namespace cellnpdp {
namespace {

void run(const BenchConfig& cfg, BenchJson& json) {
  const index_t n = cfg.full ? 16384 : 4096;
  NpdpInstance<float> inst;
  inst.n = n;
  inst.init = [](index_t, index_t) { return 1.0f; };
  ClusterSimOptions o;
  o.block_side = 64;

  struct Net {
    const char* name;
    double bw;
    double lat;
  };
  const Net nets[] = {
      {"on-chip-like (25 GB/s, 1 us)", 25e9, 1e-6},
      {"IB-like (3 GB/s, 10 us)", 3e9, 10e-6},
      {"GigE-like (125 MB/s, 50 us)", 125e6, 50e-6},
  };

  for (const auto& net : nets) {
    std::printf("\n%s, n=%lld, 8 cores/node:\n", net.name,
                static_cast<long long>(n));
    TextTable t({"nodes", "time", "speedup", "efficiency", "comm"});
    double one = 0;
    for (int nodes : {1, 2, 4, 8, 16}) {
      ClusterConfig c;
      c.nodes = nodes;
      c.link_bandwidth = net.bw;
      c.link_latency = net.lat;
      const auto r = simulate_cluster_npdp(inst, c, o);
      if (nodes == 1) one = r.seconds;
      t.row(nodes, fmt_seconds(r.seconds), fmt_x(one / r.seconds),
            fmt_pct(r.efficiency), fmt_bytes(double(r.comm_bytes)));
      json.record()
          .set("network", net.name)
          .set("link_bandwidth", net.bw)
          .set("link_latency", net.lat)
          .set("n", n)
          .set("nodes", nodes)
          .set("seconds", r.seconds)
          .set("speedup", one / r.seconds)
          .set("efficiency", r.efficiency)
          .set("comm_bytes", static_cast<std::int64_t>(r.comm_bytes))
          .set("messages", static_cast<std::int64_t>(r.messages))
          .set("comm_seconds_total", r.comm_seconds_total);
    }
    t.print();
  }
  std::printf(
      "\n(the broadcast-per-block volume grows with node count while the "
      "work per node shrinks — off-chip NPDP hits the communication wall "
      "that the Cell's 25.6 GB/s on-chip bus avoids; §II-B's category-2 "
      "observation)\n");
}

}  // namespace
}  // namespace cellnpdp

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const auto cfg = BenchConfig::from_args(argc, argv);
  print_bench_header("Cluster extension: distributed NPDP scaling", cfg);
  BenchJson json("cluster", cfg);
  run(cfg, json);
  return 0;
}
