// Cancellation latency — how fast a mid-flight solve lets go of its
// workers once its CancelToken trips.
//
// The design budget (src/common/cancel.hpp): polls happen at memory-block
// granularity, so the abort latency of the parallel backend should be on
// the order of one block's compute time per in-flight worker, not the
// remaining solve time. This bench trips a token from a separate thread at
// a fixed fraction of the uncancelled solve time and measures
// trip -> solver-return, across block sizes; the "block" column is the
// measured per-block compute time the latency should track.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "backend/solver_backend.hpp"
#include "bench_util/bench_config.hpp"
#include "bench_util/json_out.hpp"
#include "bench_util/table.hpp"
#include "common/rng.hpp"
#include "core/solve.hpp"

namespace cellnpdp {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

NpdpInstance<float> instance(index_t n) {
  NpdpInstance<float> inst;
  inst.n = n;
  inst.init = [](index_t i, index_t j) {
    return random_init_value<float>(2026, i, j);
  };
  return inst;
}

struct Sample {
  double solve_s = 0;    ///< uncancelled wall time
  double block_s = 0;    ///< mean per-memory-block compute time
  double latency_s = 0;  ///< trip -> solver return (median of repeats)
};

Sample measure(const backend::SolverBackend& be, index_t n,
               index_t block_side, std::size_t threads, int repeats) {
  const auto inst = instance(n);

  ExecutionContext ctx;
  ctx.tuning.block_side = block_side;
  ctx.tuning.threads = threads;
  SolveStats ss;
  ctx.stats = &ss;
  const Clock::time_point w0 = Clock::now();
  (void)be.solve(inst, ctx);
  Sample s;
  s.solve_s = seconds_since(w0);
  const index_t m = ceil_div(n, block_side);
  s.block_s = s.solve_s / double(triangle_cells(m));

  std::vector<double> lat;
  for (int r = 0; r < repeats; ++r) {
    ExecutionContext cctx;
    cctx.tuning.block_side = block_side;
    cctx.tuning.threads = threads;
    cctx.cancel = CancelToken::armed();
    Clock::time_point tripped;
    std::thread cancel_thread([&] {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(s.solve_s * 0.4));
      tripped = Clock::now();
      cctx.cancel.request_cancel();
    });
    const auto res = be.solve(inst, cctx);
    const Clock::time_point returned = Clock::now();
    cancel_thread.join();
    // A repeat where the solve beat the trip measures nothing; skip it.
    if (res.status == SolveStatus::Cancelled)
      lat.push_back(std::chrono::duration<double>(returned - tripped).count());
  }
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    s.latency_s = lat[lat.size() / 2];
  }
  return s;
}

void run(const BenchConfig& cfg) {
  const index_t n = cfg.full ? 4096 : 2048;
  const std::size_t threads = 4;
  const int repeats = cfg.full ? 9 : 5;
  const auto& be = backend::require_backend("blocked-parallel");

  BenchJson out("cancel_latency", cfg);
  std::printf("\nAbort latency of backend 'blocked-parallel', n=%d, "
              "%zu threads (median of %d trips at 40%% of solve time):\n",
              int(n), threads, repeats);
  TextTable t({"block side", "solve", "per block", "abort latency",
               "latency/block"});
  for (index_t bs : {32, 64, 128}) {
    const Sample s = measure(be, n, bs, threads, repeats);
    t.row(bs, fmt_seconds(s.solve_s), fmt_seconds(s.block_s),
          fmt_seconds(s.latency_s),
          s.block_s > 0 ? fmt_x(s.latency_s / s.block_s) : "-");
    out.record()
        .set("n", std::int64_t(n))
        .set("block_side", std::int64_t(bs))
        .set("threads", threads)
        .set("solve_s", s.solve_s)
        .set("block_s", s.block_s)
        .set("abort_latency_s", s.latency_s);
  }
  t.print();
  std::printf(
      "(the budget: latency ~ a small multiple of one block's compute — the "
      "executor stops releasing tasks and each worker finishes at most its "
      "current block; a latency tracking the full solve time would mean the "
      "token is not being polled)\n");
}

}  // namespace
}  // namespace cellnpdp

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const auto cfg = BenchConfig::from_args(argc, argv);
  print_bench_header("Cancellation latency (blocked-parallel backend)", cfg);
  run(cfg);
  return 0;
}
