// Ablation benches for the design choices DESIGN.md calls out:
//   (1) scheduling-block size (task-scheduling overhead vs parallel slack);
//   (2) register caching in the computing-block kernel (80 vs 128 instrs);
//   (3) 128-bit vs 256-bit kernels on the host CPU;
//   (4) simplified (left+below) dependence graph vs full-graph release
//       timing — measured as simulated makespan with forced serial chains.
#include <cstdio>
#include <string>
#include <utility>

#include "bench_util/bench_config.hpp"
#include "bench_util/json_out.hpp"
#include "bench_util/table.hpp"
#include "cellsim/npdp_sim.hpp"
#include "common/stopwatch.hpp"
#include "core/solve.hpp"
#include "core/traceback.hpp"

namespace cellnpdp {
namespace {

void ablate_sched_block(const BenchConfig&) {
  std::printf("\n(1) Scheduling-block size (simulated QS20, n=4096 SP, "
              "16KB blocks, 16 SPEs):\n");
  NpdpInstance<float> inst;
  inst.n = 4096;
  inst.init = [](index_t, index_t) { return 1.0f; };
  TextTable t({"sched side (memory blocks)", "tasks", "time"});
  for (index_t ss : {1, 2, 4, 8}) {
    CellSimOptions o;
    o.block_side = 64;
    o.sched_side = ss;
    const auto r = simulate_cellnpdp(inst, qs20(), o);
    t.row(ss, r.tasks, fmt_seconds(r.seconds));
  }
  t.print();
  std::printf("(bigger scheduling blocks cut PPE dispatches quadratically "
              "but coarsen the wavefront; the paper picks small multiples)\n");
}

void ablate_register_caching(const BenchConfig&) {
  std::printf("\n(2) Kernel register caching (SPU pipeline model, SP):\n");
  const auto sp = spu_latencies(Precision::Single);
  const auto cached = cb_op_counts_cached(4);
  const auto naive = cb_op_counts_uncached(4);
  // The pipeline is pipe-1 bound without caching: memory ops dominate.
  const int p1_cached = cached.loads + cached.shuffles + cached.stores;
  const int p1_naive = naive.loads + naive.shuffles + naive.stores;
  TextTable t({"variant", "instructions", "pipe-1 ops", "min cycles"});
  t.row("naive (reload per step)", naive.total(), p1_naive,
        std::max(p1_naive, naive.adds + naive.compares + naive.selects));
  t.row("register-cached (paper)", cached.total(), p1_cached,
        kernel_steady_cycles(4, sp));
  t.print();
}

void ablate_kernel_width(const BenchConfig& cfg) {
  const index_t n = cfg.full ? 2048 : 1024;
  std::printf("\n(3) Kernel width on the host CPU (native, n=%ld, single "
              "thread):\n", static_cast<long>(n));
  NpdpInstance<float> inst;
  inst.n = n;
  inst.init = [](index_t i, index_t j) {
    return i == j ? 0.0f : float((i + j) % 100);
  };
  TextTable t({"kernel", "time", "speedup vs scalar"});
  double scalar_s = 0;
  for (KernelKind k :
       {KernelKind::Scalar, KernelKind::Native, KernelKind::Wide}) {
    NpdpOptions o;
    o.block_side = 64;
    o.kernel = k;
    Stopwatch sw;
    auto out = solve_blocked(inst, o);
    const double s = sw.seconds();
    volatile float sink = out.at(0, n - 1);
    (void)sink;
    if (k == KernelKind::Scalar) scalar_s = s;
    t.row(std::string(kernel_kind_name(k)), fmt_seconds(s),
          fmt_x(scalar_s / s));
  }
  t.print();
}

void ablate_prefetch(const BenchConfig&) {
  std::printf("\n(4) Prefetch depth / double buffering (simulated, n=4096 "
              "SP, 16 SPEs, 4x4 scheduling blocks):\n");
  // Multi-block tasks give the SPE something to prefetch across; the
  // low-bandwidth column shows why the paper reserves six LS buffers —
  // on a machine where DMA is not trivially hidden, synchronous transfers
  // sit on the critical path.
  NpdpInstance<float> inst;
  inst.n = 4096;
  inst.init = [](index_t, index_t) { return 1.0f; };
  TextTable t({"blocks in flight", "QS20 (25.6GB/s)", "starved (2GB/s)"});
  for (int depth : {0, 1, 2, 4}) {
    auto run = [&](double bw) {
      CellConfig cfg = qs20();
      cfg.memory_bandwidth = bw;
      CellSimOptions o;
      o.block_side = 64;
      o.sched_side = 4;
      o.prefetch_depth = depth;
      return simulate_cellnpdp(inst, cfg, o).seconds;
    };
    t.row(depth == 0 ? "none (synchronous DMA)" : std::to_string(depth),
          fmt_seconds(run(25.6e9)), fmt_seconds(run(2e9)));
  }
  t.print();
  std::printf("(the paper's six local-store buffers correspond to depth "
              "~2; with QS20 bandwidth the compute fully hides DMA, which "
              "is itself the design point)\n");
}

void ablate_argmin(const BenchConfig& cfg) {
  const index_t n = cfg.full ? 2048 : 1024;
  std::printf("\n(5) Argmin tracking overhead (native, n=%ld, SP, single "
              "thread):\n", static_cast<long>(n));
  NpdpInstance<float> inst;
  inst.n = n;
  inst.init = [](index_t i, index_t j) {
    return i == j ? 0.0f : float((i * 5 + j) % 100);
  };
  NpdpOptions o;
  o.block_side = 64;
  Stopwatch s1;
  const auto plain = solve_blocked_serial(inst, o);
  const double t_plain = s1.seconds();
  volatile float sink = plain.at(0, n - 1);
  Stopwatch s2;
  const auto traced = solve_blocked_with_argmin(inst, o);
  const double t_arg = s2.seconds();
  sink = traced.values.at(0, n - 1);
  (void)sink;
  TextTable t({"variant", "time", "relative"});
  t.row("values only", fmt_seconds(t_plain), "1.00x");
  t.row("values + argmin", fmt_seconds(t_arg), fmt_x(t_arg / t_plain));
  t.print();
  std::printf("(the argmin kernel doubles the blend traffic per step; use "
              "it only when the decision tree is needed)\n");
}


void ablate_scheduler(const BenchConfig&) {
  std::printf("\n(6) Task queue vs barrier wavefronts (simulated QS20, "
              "n=4096 SP, 16KB blocks):\n");
  // The prior works process the table step by step with a barrier between
  // anti-diagonals (§II-B, 'parallel efficiency is less than 60%'); the
  // paper's task queue lets wavefronts overlap.
  NpdpInstance<float> inst;
  inst.n = 4096;
  inst.init = [](index_t, index_t) { return 1.0f; };
  TextTable t({"SPEs", "task queue", "barrier wavefronts", "queue gain"});
  for (int spes : {2, 4, 8, 16}) {
    CellConfig cfg = qs20();
    cfg.num_spes = spes;
    CellSimOptions q, b;
    q.block_side = b.block_side = 64;
    b.barrier_wavefront = true;
    const double tq = simulate_cellnpdp(inst, cfg, q).seconds;
    const double tb = simulate_cellnpdp(inst, cfg, b).seconds;
    t.row(spes, fmt_seconds(tq), fmt_seconds(tb), fmt_x(tb / tq));
  }
  t.print();
  std::printf("(the gap widens with core count: barriers leave SPEs idle "
              "at the tail of every wavefront — the paper's argument for "
              "the dependence-graph queue)\n");
}


// --- (7) semiring instantiations -----------------------------------------

namespace legacy {

// Verbatim copy of the hand-written (min,+) computing block the engine
// shipped before the semiring template refactor. Racing it against
// semiring_cb<MinPlusSemiring> proves the generic kernel kept the codegen
// (the acceptance bar is < 2% throughput regression).
template <class T, int W, std::size_t... K>
inline Vec<T, W> minplus_row(Vec<T, W> c, Vec<T, W> a, const Vec<T, W>* b,
                             std::index_sequence<K...>) {
  ((c = vmin(c, Vec<T, W>::template splat<K>(a) + b[K])), ...);
  return c;
}

template <class T, int W>
inline void minplus_cb(T* C, index_t sc, const T* A, index_t sa, const T* B,
                       index_t sb) {
  using V = Vec<T, W>;
  V b[W];
  for (int k = 0; k < W; ++k) b[k] = V::load(B + k * sb);
  for (int r = 0; r < W; ++r) {
    V c = V::load(C + r * sc);
    const V a = V::load(A + r * sa);
    c = minplus_row<T, W>(c, a, b, std::make_index_sequence<W>{});
    c.store(C + r * sc);
  }
}

}  // namespace legacy

void ablate_semirings(const BenchConfig& cfg, BenchJson& json) {
  const index_t n = cfg.full ? 2048 : 1024;
  std::printf("\n(7) Semiring instantiations (native kernel, n=%ld, single "
              "thread):\n", static_cast<long>(n));

  // (a) Full solves: the same geometry through every instantiation. The
  // optimisation semirings share one inner loop shape, so their times
  // should be near-identical; counting swaps min for + (and loses the
  // idempotent early-out in finalize).
  TextTable t({"semiring", "time", "vs min-plus"});
  double minplus_s = 0;
  for (std::uint8_t sr = 0; sr < kSemiringCount; ++sr) {
    const auto id = static_cast<SemiringId>(sr);
    NpdpInstance<float> inst;
    inst.n = n;
    inst.semiring = id;
    inst.init = [id](index_t i, index_t j) {
      // Keep counting cells at 1.0 (products stay 1.0 forever: no
      // overflow at bench sizes); log-space workloads get <= 0 seeds.
      switch (id) {
        case SemiringId::Counting: return 1.0f;
        case SemiringId::ViterbiLog: return -float((i + j) % 100) - 1.0f;
        default: return i == j ? 0.0f : float((i + j) % 100);
      }
    };
    NpdpOptions o;
    o.block_side = 64;
    Stopwatch sw;
    auto out = solve_blocked(inst, o);
    const double s = sw.seconds();
    volatile float sink = out.at(0, n - 1);
    (void)sink;
    if (id == SemiringId::MinPlus) minplus_s = s;
    t.row(std::string(semiring_name(id)), fmt_seconds(s),
          fmt_x(s / minplus_s));
    json.record()
        .set("section", "solve")
        .set("semiring", std::string(semiring_name(id)))
        .set("n", n)
        .set("block", 64)
        .set("seconds", s)
        .set("vs_minplus", s / minplus_s);
  }
  t.print();

  // (b) Kernel micro-race: the pre-refactor hand-written min-plus block
  // against the semiring template instantiated with min-plus, on hot
  // tiles. Best-of-5 to shave scheduler noise.
  constexpr int W = 8;
  constexpr index_t stride = W;
  constexpr int reps = 4000;
  aligned_vector<float> c(W * stride, 10.0f), a(W * stride, 3.0f),
      b(W * stride, 4.0f);
  auto race = [&](auto&& kernel) {
    double best = 1e100;
    for (int round = 0; round < 5; ++round) {
      Stopwatch sw;
      for (int i = 0; i < reps; ++i)
        kernel(c.data(), stride, a.data(), stride, b.data(), stride);
      best = std::min(best, sw.seconds());
    }
    volatile float sink = c[0];
    (void)sink;
    return best;
  };
  const double legacy_s = race(legacy::minplus_cb<float, W>);
  const double generic_s = race(minplus_cb<float, W>);
  const double regression_pct = (generic_s - legacy_s) / legacy_s * 100.0;
  TextTable k({"kernel (8x8 float tile)", "best of 5", "regression"});
  k.row("hand-written (pre-refactor)", fmt_seconds(legacy_s), "--");
  k.row("semiring template (min-plus)", fmt_seconds(generic_s),
        fmt_pct(regression_pct / 100.0));
  k.print();
  json.record()
      .set("section", "kernel")
      .set("legacy_seconds", legacy_s)
      .set("generic_seconds", generic_s)
      .set("minplus_regression_pct", regression_pct);
  std::printf("(the semiring ops inline to the same vmin/add sequence; any "
              "regression beyond noise means a specialisation broke)\n");
}

}  // namespace
}  // namespace cellnpdp

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const auto cfg = BenchConfig::from_args(argc, argv);
  print_bench_header("Ablations: scheduling blocks, register caching, "
                     "kernel width, prefetch, argmin, scheduler, semirings",
                     cfg);
  ablate_sched_block(cfg);
  ablate_register_caching(cfg);
  ablate_kernel_width(cfg);
  ablate_prefetch(cfg);
  ablate_argmin(cfg);
  ablate_scheduler(cfg);
  BenchJson json("semiring", cfg);
  ablate_semirings(cfg, json);
  return 0;
}
