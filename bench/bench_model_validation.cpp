// Section V — performance-model validation.
//
// Reproduces the section's three claims against the discrete-event
// simulator: (1) utilization is independent of the problem size; (2) the
// machine is compute-bound iff bandwidth exceeds the closed-form
// threshold; (3) T_all = max(T_M, T_C) tracks the simulated time.
#include <cstdio>

#include "bench_util/bench_config.hpp"
#include "bench_util/table.hpp"
#include "cellsim/npdp_sim.hpp"
#include "model/perf_model.hpp"

namespace cellnpdp {
namespace {

ModelParams qs20_params(double n, double cores, double kernel_cycles) {
  ModelParams p;
  p.n1 = n;
  p.cores = cores;
  p.kernel_cycles = kernel_cycles;
  p.n2_override = 88;
  return p;
}

void run(const BenchConfig&) {
  const auto sp = spu_latencies(Precision::Single);
  const double kc = kernel_steady_cycles(4, sp);

  std::printf("\nModel vs simulator (QS20, SP, 32KB blocks, 16 SPEs):\n");
  TextTable t({"n", "model T_M", "model T_C", "model T_all", "simulated",
               "sim/model", "sim util"});
  for (index_t n : {index_t(2048), index_t(4096), index_t(8192),
                    index_t(16384)}) {
    const auto p = qs20_params(double(n), 16, kc);
    NpdpInstance<float> inst;
    inst.n = n;
    inst.init = [](index_t, index_t) { return 1.0f; };
    CellSimOptions o;
    o.block_side = 88;
    const auto sim = simulate_cellnpdp(inst, qs20(), o);
    char ratio[16];
    std::snprintf(ratio, sizeof ratio, "%.2f",
                  sim.seconds / model_total_time(p));
    t.row(n, fmt_seconds(model_memory_time(p)),
          fmt_seconds(model_compute_time(p)),
          fmt_seconds(model_total_time(p)), fmt_seconds(sim.seconds), ratio,
          fmt_pct(sim.utilization));
  }
  t.print();

  std::printf("\nSize-independence of utilization (the §V headline):\n");
  TextTable u({"n", "model U", "simulated U"});
  for (index_t n : {index_t(4096), index_t(8192), index_t(16384)}) {
    const auto p = qs20_params(double(n), 16, kc);
    NpdpInstance<float> inst;
    inst.n = n;
    inst.init = [](index_t, index_t) { return 1.0f; };
    CellSimOptions o;
    o.block_side = 88;
    const auto sim = simulate_cellnpdp(inst, qs20(), o);
    u.row(n, fmt_pct(model_utilization(p)), fmt_pct(sim.utilization));
  }
  u.print();

  std::printf("\nBandwidth constraint (compute-bound iff B >= B_req):\n");
  TextTable b({"SPEs", "B_req (model)", "QS20 B", "compute-bound?"});
  for (double cores : {1.0, 4.0, 8.0, 16.0, 32.0}) {
    const auto p = qs20_params(4096, cores, kc);
    b.row(int(cores), fmt_bytes(model_required_bandwidth(p)) + "/s",
          fmt_bytes(p.bandwidth) + "/s",
          model_compute_bound(p) ? "yes" : "no (memory-bound)");
  }
  b.print();
  std::printf("(kernel utilization U_C = %s; overall U = U_C while "
              "compute-bound, independent of n)\n",
              fmt_pct(model_kernel_utilization(qs20_params(4096, 16, kc)))
                  .c_str());
}

}  // namespace
}  // namespace cellnpdp

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const auto cfg = BenchConfig::from_args(argc, argv);
  print_bench_header("Section V: performance model validation", cfg);
  run(cfg);
  return 0;
}
