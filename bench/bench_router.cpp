// Router-tier benchmark: does consistent-hash placement make the fleet's
// aggregate cache capacity scale with replica count, and does failover
// stay invisible to clients?
//
// Four phases, all driving the same seed-deterministic workload (D
// distinct computations, uniform draws, D chosen so one replica's LRU
// cannot hold the set but a third of it fits):
//
//   single       1 replica, cache X entries        -> hit rate ~ X/D
//   round_robin  3 replicas, cache X each, clients
//                dealt round-robin (same total
//                cache bytes as the router trio)   -> hit rate ~ X/D
//                (every replica sees every key: the caches duplicate)
//   router       3 replicas, cache X each, behind
//                npdp's consistent-hash router     -> hit rate -> ~1
//                (each replica sees only its arc: the caches shard)
//   failover     router trio; one replica is
//                SIGKILLed mid-run                 -> zero client-visible
//                errors, in-flight requests requeued onto survivors
//
// The per-replica request share measured in the router phase is compared
// against cluster_sim's predicted ownership split (block-column-cyclic
// owner = bj % nodes, the paper's fixed block->SPE map promoted to node
// count 3) — both placement maps aim for near-uniform ownership, and
// BENCH_router.json records predicted vs measured side by side.
//
// Replicas are real child processes (fork + NpdpServer) so the failover
// phase can deliver a genuine SIGKILL; the router runs in-process so the
// bench can read its health/requeue counters directly. Exits nonzero if
// the router trio fails to strictly beat both baselines or the failover
// phase surfaces a client-visible error.
#include <csignal>
#include <cstdio>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/bench_config.hpp"
#include "bench_util/json_out.hpp"
#include "bench_util/table.hpp"
#include "cluster/cluster_sim.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "router/router.hpp"

namespace cellnpdp {
namespace {

volatile std::sig_atomic_t g_child_stop = 0;
void on_child_stop(int) { g_child_stop = 1; }

struct Replica {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

/// Forks a child running one net-serve replica on an ephemeral port; the
/// bound port comes back over a pipe. Must be called while the parent is
/// single-threaded (between load phases).
Replica spawn_replica(int cache_entries) {
  int pfd[2];
  if (::pipe(pfd) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    ::close(pfd[0]);
    std::signal(SIGTERM, on_child_stop);
    net::ServerOptions no;
    no.port = 0;
    serve::ServiceOptions so;
    so.workers = 2;
    so.queue_capacity = 256;
    so.cache_capacity = static_cast<std::size_t>(cache_entries);
    net::NpdpServer server(no, so);
    std::string err;
    if (!server.start(&err)) {
      std::fprintf(stderr, "replica: %s\n", err.c_str());
      std::_Exit(1);
    }
    const std::uint16_t p = server.port();
    if (::write(pfd[1], &p, sizeof p) != sizeof p) std::_Exit(1);
    ::close(pfd[1]);
    while (g_child_stop == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server.stop();
    std::_Exit(0);
  }
  ::close(pfd[1]);
  Replica r;
  r.pid = pid;
  if (::read(pfd[0], &r.port, sizeof r.port) != sizeof r.port) {
    std::fprintf(stderr, "replica child died before binding\n");
    std::exit(1);
  }
  ::close(pfd[0]);
  return r;
}

void stop_replica(Replica& r, int sig = SIGTERM) {
  if (r.pid <= 0) return;
  ::kill(r.pid, sig);
  int status = 0;
  ::waitpid(r.pid, &status, 0);
  r.pid = -1;
}

double hit_rate(const net::LoadGenResult& r) {
  const std::uint64_t served = r.ok + r.cached;
  return served == 0 ? 0.0 : double(r.cached) / double(served);
}

std::uint64_t visible_errors(const net::LoadGenResult& r) {
  return r.errors + r.proto_errors + r.transport_errors +
         (r.sent - r.replies);
}

}  // namespace
}  // namespace cellnpdp

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const auto cfg = BenchConfig::from_args(argc, argv);
  print_bench_header("Router tier: cache sharding and failover", cfg);

  // X < D < 3X: one LRU cannot hold the working set, a third of it fits.
  const int cache_x = 16;
  const int distinct = 40;
  const std::int64_t dur_ms = cfg.full ? 4000 : 1200;
  net::LoadGenOptions base;
  base.connections = 6;
  base.duration_ms = dur_ms;
  base.mix = "chain";
  base.size = 24;
  base.distinct = distinct;
  base.seed = 101;
  base.connect_timeout_ms = 2000;

  BenchJson json("router", cfg);
  TextTable table({"phase", "replicas", "cache/replica", "sent", "hit rate"});
  bool ok = true;
  std::string err;

  // --- phase 1: one replica, cache X ---------------------------------------
  double hit_single = 0;
  {
    Replica r = spawn_replica(cache_x);
    net::LoadGenOptions lo = base;
    lo.port = r.port;
    net::LoadGenResult res;
    if (!run_loadgen(lo, &res, &err)) {
      std::fprintf(stderr, "single: %s\n", err.c_str());
      return 1;
    }
    stop_replica(r);
    hit_single = hit_rate(res);
    ok = ok && visible_errors(res) == 0;
    table.row("single", 1, cache_x, res.sent, fmt_pct(hit_single));
    json.record()
        .set("phase", "single")
        .set("replicas", 1)
        .set("cache_per_replica", cache_x)
        .set("distinct", distinct)
        .set("sent", std::int64_t(res.sent))
        .set("replies", std::int64_t(res.replies))
        .set("hit_rate", hit_single)
        .set("errors", std::int64_t(visible_errors(res)));
  }

  // --- phase 2: three replicas, clients dealt round-robin ------------------
  // Same total cache bytes as the router trio; only placement differs.
  double hit_rr = 0;
  {
    Replica rs[3];
    net::LoadGenOptions lo = base;
    for (auto& r : rs) {
      r = spawn_replica(cache_x);
      lo.targets.push_back({"127.0.0.1", r.port});
    }
    net::LoadGenResult res;
    if (!run_loadgen(lo, &res, &err)) {
      std::fprintf(stderr, "round_robin: %s\n", err.c_str());
      return 1;
    }
    for (auto& r : rs) stop_replica(r);
    hit_rr = hit_rate(res);
    ok = ok && visible_errors(res) == 0;
    table.row("round_robin", 3, cache_x, res.sent, fmt_pct(hit_rr));
    json.record()
        .set("phase", "round_robin")
        .set("replicas", 3)
        .set("cache_per_replica", cache_x)
        .set("distinct", distinct)
        .set("sent", std::int64_t(res.sent))
        .set("replies", std::int64_t(res.replies))
        .set("hit_rate", hit_rr)
        .set("errors", std::int64_t(visible_errors(res)));
  }

  // --- phase 3: three replicas behind the consistent-hash router -----------
  double hit_router = 0;
  std::vector<double> measured_share;
  {
    Replica rs[3];
    router::RouterOptions ro;
    ro.net.port = 0;
    ro.probe_interval_ms = 50;
    int i = 0;
    for (auto& r : rs) {
      r = spawn_replica(cache_x);
      ro.replicas.push_back(
          {"r" + std::to_string(++i), "127.0.0.1", r.port});
    }
    router::NpdpRouter router(ro);
    if (!router.start(&err)) {
      std::fprintf(stderr, "router: %s\n", err.c_str());
      return 1;
    }
    net::LoadGenOptions lo = base;
    lo.port = router.port();
    net::LoadGenResult res;
    if (!run_loadgen(lo, &res, &err)) {
      std::fprintf(stderr, "router: %s\n", err.c_str());
      return 1;
    }
    std::uint64_t total_fwd = 0;
    for (const auto& h : router.health()) total_fwd += h.forwarded;
    for (const auto& h : router.health())
      measured_share.push_back(
          total_fwd ? double(h.forwarded) / double(total_fwd) : 0.0);
    router.stop();
    for (auto& r : rs) stop_replica(r);
    hit_router = hit_rate(res);
    ok = ok && visible_errors(res) == 0;
    table.row("router", 3, cache_x, res.sent, fmt_pct(hit_router));
    json.record()
        .set("phase", "router")
        .set("replicas", 3)
        .set("cache_per_replica", cache_x)
        .set("distinct", distinct)
        .set("sent", std::int64_t(res.sent))
        .set("replies", std::int64_t(res.replies))
        .set("hit_rate", hit_router)
        .set("errors", std::int64_t(visible_errors(res)));
  }

  // --- phase 4: failover — SIGKILL one replica mid-run ---------------------
  {
    Replica rs[3];
    router::RouterOptions ro;
    ro.net.port = 0;
    ro.probe_interval_ms = 50;
    int i = 0;
    for (auto& r : rs) {
      r = spawn_replica(cache_x);
      ro.replicas.push_back(
          {"r" + std::to_string(++i), "127.0.0.1", r.port});
    }
    router::NpdpRouter router(ro);
    if (!router.start(&err)) {
      std::fprintf(stderr, "failover: %s\n", err.c_str());
      return 1;
    }
    net::LoadGenOptions lo = base;
    lo.port = router.port();
    lo.duration_ms = 2 * dur_ms;
    lo.connections = 8;
    net::LoadGenResult res;
    std::string lerr;
    bool lok = false;
    std::thread load([&] { lok = run_loadgen(lo, &res, &lerr); });
    std::this_thread::sleep_for(std::chrono::milliseconds(dur_ms));
    // Kill the replica carrying the most traffic — the worst case.
    std::size_t victim = 0;
    std::uint64_t best = 0;
    const auto mid = router.health();
    for (std::size_t k = 0; k < mid.size(); ++k)
      if (mid[k].forwarded >= best) {
        best = mid[k].forwarded;
        victim = k;
      }
    stop_replica(rs[victim], SIGKILL);
    load.join();
    if (!lok) {
      std::fprintf(stderr, "failover: %s\n", lerr.c_str());
      return 1;
    }
    const router::RouterStats st = router.stats();
    router.stop();
    for (auto& r : rs) stop_replica(r);
    const std::uint64_t errors = visible_errors(res);
    ok = ok && errors == 0;
    table.row("failover", 3, cache_x, res.sent, fmt_pct(hit_rate(res)));
    std::printf(
        "\nfailover: killed r%zu mid-run; %llu requeued, %llu synthesized, "
        "%llu retry-after, %llu client-visible errors (%llu/%llu replies)\n",
        victim + 1, static_cast<unsigned long long>(st.requeued),
        static_cast<unsigned long long>(st.synthesized),
        static_cast<unsigned long long>(res.retry_after),
        static_cast<unsigned long long>(errors),
        static_cast<unsigned long long>(res.replies),
        static_cast<unsigned long long>(res.sent));
    json.record()
        .set("phase", "failover")
        .set("replicas", 3)
        .set("cache_per_replica", cache_x)
        .set("distinct", distinct)
        .set("sent", std::int64_t(res.sent))
        .set("replies", std::int64_t(res.replies))
        .set("hit_rate", hit_rate(res))
        .set("killed_replica", "r" + std::to_string(victim + 1))
        .set("requeued", std::int64_t(st.requeued))
        .set("replica_down", std::int64_t(st.replica_down))
        .set("synthesized", std::int64_t(st.synthesized))
        .set("retry_after", std::int64_t(res.retry_after))
        .set("errors", std::int64_t(errors));
  }

  // --- placement: measured share vs cluster_sim's ownership oracle ---------
  // cluster_sim owns triangle blocks column-cyclically (owner = bj % 3);
  // its per-node busy split is the capacity plan the ring should track.
  {
    NpdpInstance<float> inst;
    inst.n = 2048;
    inst.init = [](index_t, index_t) { return 1.0f; };
    ClusterConfig cc;
    cc.nodes = 3;
    ClusterSimOptions co;
    co.block_side = 64;
    const auto sim = simulate_cluster_npdp(inst, cc, co);
    double busy_total = 0;
    for (const double b : sim.node_busy) busy_total += b;
    std::printf("\nper-replica share, measured (router) vs predicted "
                "(cluster_sim, %d nodes):\n", cc.nodes);
    for (std::size_t k = 0; k < measured_share.size(); ++k) {
      const double predicted =
          k < sim.node_busy.size() && busy_total > 0
              ? sim.node_busy[k] / busy_total
              : 1.0 / double(measured_share.size());
      std::printf("  r%zu: measured %.3f, predicted %.3f (delta %+.3f)\n",
                  k + 1, measured_share[k], predicted,
                  measured_share[k] - predicted);
      json.record()
          .set("phase", "placement")
          .set("replica", "r" + std::to_string(k + 1))
          .set("measured_share", measured_share[k])
          .set("predicted_share", predicted)
          .set("delta", measured_share[k] - predicted);
    }
  }

  table.print();
  json.flush();

  const bool sharding_wins = hit_router > hit_single && hit_router > hit_rr;
  std::printf("\naggregate hit rate: single %.1f%%, round-robin trio %.1f%%, "
              "router trio %.1f%% -> %s\n",
              100 * hit_single, 100 * hit_rr, 100 * hit_router,
              sharding_wins ? "sharding wins" : "SHARDING DID NOT WIN");
  if (!ok) std::printf("!! client-visible errors in at least one phase\n");
  return (sharding_wins && ok) ? 0 : 1;
}
