// Table I — the computing-block kernel: instruction mix, modeled SPU
// cycles, and measured native throughput of every kernel backend
// (google-benchmark).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cellsim/spu_pipeline.hpp"
#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "simd/dispatch.hpp"

namespace cellnpdp {
namespace {

template <class T, int W>
void bm_kernel(benchmark::State& state) {
  constexpr index_t stride = 64;
  aligned_vector<T> c(W * stride), a(W * stride), b(W * stride);
  SplitMix64 rng(1);
  for (auto& x : c) x = T(rng.next_in(0, 100));
  for (auto& x : a) x = T(rng.next_in(0, 100));
  for (auto& x : b) x = T(rng.next_in(0, 100));
  for (auto _ : state) {
    minplus_cb<T, W>(c.data(), stride, a.data(), stride, b.data(), stride);
    benchmark::DoNotOptimize(c.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * W * W * W);  // relaxations
}

template <class T>
void bm_kernel_scalar(benchmark::State& state) {
  const index_t side = state.range(0);
  constexpr index_t stride = 64;
  aligned_vector<T> c(side * stride), a(side * stride), b(side * stride);
  SplitMix64 rng(2);
  for (auto& x : c) x = T(rng.next_in(0, 100));
  for (auto& x : a) x = T(rng.next_in(0, 100));
  for (auto& x : b) x = T(rng.next_in(0, 100));
  for (auto _ : state) {
    minplus_tile_scalar<T>(c.data(), stride, a.data(), stride, b.data(),
                           stride, side);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * side * side * side);
}

BENCHMARK(bm_kernel<float, 4>)->Name("minplus_cb/sp/128bit");
BENCHMARK(bm_kernel<float, 8>)->Name("minplus_cb/sp/256bit");
BENCHMARK(bm_kernel<double, 2>)->Name("minplus_cb/dp/128bit");
BENCHMARK(bm_kernel<double, 4>)->Name("minplus_cb/dp/256bit");
BENCHMARK(bm_kernel_scalar<float>)->Name("minplus_scalar/sp")->Arg(4);
BENCHMARK(bm_kernel_scalar<double>)->Name("minplus_scalar/dp")->Arg(4);

void print_table1() {
  std::printf("\n=== Table I: SIMD instruction mix of one 4x4 computing-"
              "block relaxation ===\n");
  const auto cached = cb_op_counts_cached(4);
  std::printf("load %d | shuffle %d | add %d | compare %d | select %d | "
              "store %d  -> %d instructions (naive: %d; register caching "
              "saves %d memory instructions)\n",
              cached.loads, cached.shuffles, cached.adds, cached.compares,
              cached.selects, cached.stores, cached.total(),
              cb_op_counts_uncached(4).total(),
              cb_op_counts_uncached(4).total() - cached.total());
  const auto sp = spu_latencies(Precision::Single);
  const auto dp = spu_latencies(Precision::Double);
  std::printf("SPU pipeline model: SP kernel %d cycles cold, %d cycles "
              "steady-state (paper's hand schedule: 54); DP (2x2) %d cold, "
              "%d steady.\n",
              kernel_cold_cycles(4, sp), kernel_steady_cycles(4, sp),
              kernel_cold_cycles(2, dp), kernel_steady_cycles(2, dp));
}

}  // namespace
}  // namespace cellnpdp

int main(int argc, char** argv) {
  cellnpdp::print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
