// Figure 9 — data moved between processor and main memory, original layout
// vs. the paper's blocked layout (NDL).
//
// 9(a): Cell side — DMA byte accounting (row-piece + per-element column
//       DMAs for the original; whole-block DMAs for NDL).
// 9(b): CPU side — the set-associative cache model replays both access
//       patterns and reports DRAM traffic (fills + writebacks).
#include <cstdio>
#include <vector>

#include "bench_util/bench_config.hpp"
#include "bench_util/table.hpp"
#include "cellsim/variants.hpp"
#include "memsim/traced_npdp.hpp"

namespace cellnpdp {
namespace {

void fig9a(const BenchConfig& cfg) {
  std::printf("\nFig. 9(a): DMA traffic on the Cell (single precision):\n");
  std::vector<index_t> sizes{1024, 2048, 4096};
  if (cfg.full) sizes.push_back(8192);
  TextTable t({"n", "original bytes", "NDL bytes", "reduction",
               "original DMA cmds", "NDL DMA cmds"});
  for (index_t n : sizes) {
    const auto orig = original_spe_traffic(n, Precision::Single);
    const index_t bs = 88;
    const index_t ndl = ndl_dma_bytes(n, bs, Precision::Single);
    const index_t ndl_cmds = ndl / (bs * bs * 4);  // one command per block
    char oc[32], nc[32];
    std::snprintf(oc, sizeof oc, "%.2g", double(orig.commands));
    std::snprintf(nc, sizeof nc, "%.2g", double(ndl_cmds));
    t.row(n, fmt_bytes(double(orig.bytes)), fmt_bytes(double(ndl)),
          fmt_x(double(orig.bytes) / double(ndl)), oc, nc);
  }
  t.print();
  std::printf(
      "(the command-count gap, not just the byte gap, is what makes the "
      "row layout unusable on the SPE)\n");
}

void fig9b(const BenchConfig& cfg) {
  // The layout effect appears once the table overflows the last-level
  // cache (32MB at the paper's n = 4096 vs its 8MB LLC). A full 8MB-LLC
  // trace at n = 4096 costs ~10^10 simulated accesses, so the default run
  // scales cache and problem together (1MB LLC, n <= 1024 — the same 4x
  // data:cache ratio); --full runs the real geometry.
  const bool full = cfg.full;
  const CacheConfig l1 = full ? nehalem_l1() : CacheConfig{16 * 1024, 64, 8};
  const CacheConfig llc =
      full ? nehalem_llc() : CacheConfig{1024 * 1024, 64, 16};
  std::vector<index_t> sizes =
      full ? std::vector<index_t>{2048, 4096}
           : std::vector<index_t>{512, 768, 1024, 1536};
  std::printf("\nFig. 9(b): DRAM traffic on the CPU (cache model, 64B "
              "lines, %s L1 / %s LLC):\n",
              fmt_bytes(double(l1.size_bytes)).c_str(),
              fmt_bytes(double(llc.size_bytes)).c_str());
  TextTable t({"n", "table size", "original (row layout)", "NDL (blocked)",
               "reduction"});
  for (index_t n : sizes) {
    CacheHierarchy h_orig(l1, llc);
    TriangularMatrix<float> tri(n);
    tri.fill([](index_t i, index_t j) { return float((i + j) % 97); });
    const auto orig = traced_original(tri, h_orig);

    CacheHierarchy h_ndl(l1, llc);
    BlockedTriangularMatrix<float> blk(n, 64);
    blk.fill([](index_t i, index_t j) { return float((i + j) % 97); });
    const auto ndl = traced_blocked(blk, h_ndl);

    t.row(n, fmt_bytes(double(triangle_cells(n)) * 4),
          fmt_bytes(double(orig.dram_bytes)),
          fmt_bytes(double(ndl.dram_bytes)),
          fmt_x(double(orig.dram_bytes) / double(ndl.dram_bytes)));
  }
  t.print();
  std::printf(
      "(once the table overflows the LLC the ragged column walks of the "
      "row layout miss per line while NDL streams whole blocks — the "
      "paper's Fig. 9(b) gap)\n");
}

}  // namespace
}  // namespace cellnpdp

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const auto cfg = BenchConfig::from_args(argc, argv);
  print_bench_header("Figure 9: processor <-> memory data transfer", cfg);
  fig9a(cfg);
  fig9b(cfg);
  return 0;
}
