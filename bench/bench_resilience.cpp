// Resilience overhead and recovery cost.
//
// The contract of the fault-injection harness is "zero cost when off": the
// hook is one relaxed atomic load per scheduling block, and the resilient
// solver's retry scaffolding must not tax the clean path. This bench
// measures (a) the clean-path overhead of the self-checking solver against
// the plain blocked-serial engine — with checksums off, isolating the
// harness itself (budget: < 2%), and with checksums on, pricing the
// FNV-1a round-trip; (b) what recovery costs under the acceptance fault
// plan (1% task throws + 0.1% block corruption), confirming the healed
// result stays bit-identical; (c) a faulty closed-loop service with
// retries enabled, showing the ladder answering every request.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <vector>

#include "backend/solver_backend.hpp"
#include "bench_util/bench_config.hpp"
#include "bench_util/json_out.hpp"
#include "bench_util/table.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "core/solve.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/resilient_solve.hpp"
#include "serve/service.hpp"

namespace cellnpdp {
namespace {

NpdpInstance<float> instance(index_t n) {
  NpdpInstance<float> inst;
  inst.n = n;
  inst.init = [](index_t i, index_t j) {
    return random_init_value<float>(2026, i, j);
  };
  return inst;
}

template <class Fn>
double timed_seconds(Fn&& fn) {
  Stopwatch sw;
  fn();
  return sw.seconds();
}

void run(const BenchConfig& cfg) {
  const index_t n = cfg.full ? 2048 : 1024;
  const index_t bs = 64;
  const int repeats = cfg.full ? 9 : 5;
  const auto inst = instance(n);
  ExecutionContext ctx;
  ctx.tuning.block_side = bs;

  BenchJson out("resilience", cfg);

  // --- clean-path overhead ------------------------------------------------
  // The three paths are interleaved round-robin and the per-path minimum
  // taken: back-to-back A/B runs see the same machine state, and the min
  // is the standard noise-robust estimator when the quantity of interest
  // is a small constant overhead, not throughput under load.
  BlockedTriangularMatrix<float> ref(n, bs);
  BlockedTriangularMatrix<float> mat(n, bs);
  resilience::BlockRecoveryPolicy no_sums;
  no_sums.checksums = false;
  double clean_s = 1e30, harness_s = 1e30, sums_s = 1e30;
  for (int r = 0; r < repeats + 1; ++r) {
    const double c = timed_seconds([&] {
      ref.reset();
      solve_blocked_serial_into(ref, inst, ctx);
    });
    const double h = timed_seconds([&] {
      mat.reset();
      resilience::solve_blocked_serial_resilient_into(mat, inst, ctx,
                                                      no_sums);
    });
    const double k = timed_seconds([&] {
      mat.reset();
      resilience::solve_blocked_serial_resilient_into(mat, inst, ctx);
    });
    if (r == 0) continue;  // warm-up round: caches, page faults
    clean_s = std::min(clean_s, c);
    harness_s = std::min(harness_s, h);
    sums_s = std::min(sums_s, k);
  }

  const double harness_pct = (harness_s / clean_s - 1.0) * 100.0;
  const double sums_pct = (sums_s / clean_s - 1.0) * 100.0;
  std::printf("\nClean path, n=%d bs=%d (min of %d interleaved rounds):\n",
              int(n), int(bs), repeats);
  TextTable t({"path", "solve", "overhead"});
  t.row("blocked-serial", fmt_seconds(clean_s), "-");
  t.row("resilient, checksums off", fmt_seconds(harness_s),
        fmt_pct(harness_pct / 100.0));
  t.row("resilient, checksums on", fmt_seconds(sums_s),
        fmt_pct(sums_pct / 100.0));
  t.print();
  std::printf("(budget: the harness itself — hook probe + retry scaffolding "
              "— stays under 2%% of the clean solve)\n");
  out.record()
      .set("scenario", "clean_path")
      .set("n", std::int64_t(n))
      .set("block_side", std::int64_t(bs))
      .set("clean_s", clean_s)
      .set("harness_s", harness_s)
      .set("checksum_s", sums_s)
      .set("overhead_pct", harness_pct)
      .set("checksum_overhead_pct", sums_pct);

  // --- recovery cost under injected faults --------------------------------
  // Rates high enough (5% throws, 1% corruption) that the quick sizes
  // actually exercise retry and repair; zero backoff so the timing prices
  // the re-execution itself, not deliberate sleeps.
  {
    resilience::FaultPlan plan;
    plan.seed = 42;
    plan.rules.push_back({FaultSite::TaskThrow, 0.05, -1, 0});
    plan.rules.push_back({FaultSite::BlockCorrupt, 0.01, -1, 0});
    resilience::FaultInjectionScope scope(std::move(plan));
    resilience::BlockRecoveryPolicy pol;
    pol.retry.base_backoff = std::chrono::milliseconds(0);
    double faulty_s = 1e30;
    index_t retries = 0, repairs = 0;
    bool identical = true;
    for (int r = 0; r < repeats; ++r) {
      resilience::ResilienceReport rep;
      mat.reset();
      faulty_s = std::min(faulty_s, timed_seconds([&] {
        resilience::solve_blocked_serial_resilient_into(mat, inst, ctx, pol,
                                                        &rep);
      }));
      retries += rep.block_retries;
      repairs += rep.block_repairs;
      identical = identical &&
                  std::memcmp(ref.data(), mat.data(),
                              static_cast<std::size_t>(ref.total_cells()) *
                                  sizeof(float)) == 0;
    }
    std::printf("\nFaulty solve (5%% task-throw, 1%% block-corrupt, %d "
                "runs): best %s, %d retries, %d repairs, every run %s\n",
                repeats, fmt_seconds(faulty_s).c_str(), int(retries),
                int(repairs),
                identical ? "bit-identical to clean" : "MISMATCHED");
    out.record()
        .set("scenario", "faulty_solve")
        .set("solve_s", faulty_s)
        .set("block_retries", std::int64_t(retries))
        .set("block_repairs", std::int64_t(repairs))
        .set("recovery_overhead_pct", (faulty_s / clean_s - 1.0) * 100.0)
        .set("bit_identical", identical);
  }

  // --- faulty closed-loop service -----------------------------------------
  {
    resilience::FaultInjectionScope scope(
        resilience::FaultPlan::single(FaultSite::TaskThrow, 0.05));
    serve::ServiceOptions so;
    so.workers = 2;
    so.cache_capacity = 0;  // every request must really solve
    so.resilience.retry.max_attempts = 4;
    serve::SolveService svc(so);
    const int requests = cfg.full ? 400 : 120;
    Stopwatch sw;
    std::vector<std::future<serve::Response>> futs;
    for (int i = 0; i < requests; ++i) {
      serve::Request r;
      serve::SolveSpec s;
      s.n = 96;
      s.seed = std::uint64_t(i);
      s.block_side = 32;
      r.payload = s;
      futs.push_back(svc.submit(std::move(r)));
    }
    std::uint64_t ok = 0;
    for (auto& f : futs) ok += serve::is_success(f.get().status);
    const double wall_s = sw.seconds();
    svc.stop();
    const auto st = svc.stats();
    std::printf("\nFaulty service (5%% request throws, 4 attempts): "
                "%d requests, %llu ok, %llu retries, %llu errors, %s\n",
                requests, (unsigned long long)ok,
                (unsigned long long)st.retries,
                (unsigned long long)st.errors, fmt_seconds(wall_s).c_str());
    out.record()
        .set("scenario", "faulty_service")
        .set("requests", std::int64_t(requests))
        .set("ok", std::int64_t(ok))
        .set("retries", std::int64_t(st.retries))
        .set("errors", std::int64_t(st.errors))
        .set("wall_s", wall_s);
  }
}

}  // namespace
}  // namespace cellnpdp

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const auto cfg = BenchConfig::from_args(argc, argv);
  print_bench_header("Resilience: harness overhead and recovery cost", cfg);
  run(cfg);
  return 0;
}
