// Figure 12 — CellNPDP vs TanNPDP (the state-of-the-art fully optimized
// comparator: tiling + helper threading + parallelization, scalar
// arithmetic) on the CPU platform.
//
// The paper reports 44x (SP) / 28x (DP) average with 8 cores on 2x
// Nehalem. On this single-core host the thread-level term of both sides is
// neutralised, so the measured gap isolates layout + SIMD + ILP — the
// paper attributes roughly 5.28 x 7.14 / 7.22 of its 44x to exactly those.
#include <cstdio>
#include <vector>

#include "baselines/recursive_npdp.hpp"
#include "baselines/tan_npdp.hpp"
#include "bench_util/bench_config.hpp"
#include "bench_util/table.hpp"
#include "common/stopwatch.hpp"
#include "core/solve.hpp"

namespace cellnpdp {
namespace {

template <class T>
void run(const char* name, const BenchConfig& cfg, double paper_speedup) {
  std::vector<index_t> sizes{512, 1024};
  if (cfg.full) sizes.push_back(2048);
  std::printf("\n%s precision:\n", name);
  TextTable t({"n", "TanNPDP (8 thr)", "recursive [7]", "CellNPDP (8 thr)",
               "vs Tan", "vs recursive"});
  auto init = [](index_t i, index_t j) {
    return i == j ? T(0) : T((i * 11 + j * 3) % 100);
  };
  for (index_t n : sizes) {
    TriangularMatrix<T> tan_table(n);
    tan_table.fill(init);
    TanOptions topt;
    topt.tile = 128;
    topt.threads = 8;
    Stopwatch sw;
    solve_tan_npdp(tan_table, topt);
    const double tan_s = sw.seconds();

    NpdpInstance<T> inst;
    inst.n = n;
    inst.init = init;

    Stopwatch sw3;
    const auto rec = solve_recursive(inst, {64});
    const double rec_s = sw3.seconds();
    volatile T sink2 = rec.at(0, n - 1);
    (void)sink2;

    NpdpOptions copt;
    copt.block_side = 64;
    copt.threads = 8;
    Stopwatch sw2;
    const auto out = solve_blocked(inst, copt);
    const double cell_s = sw2.seconds();
    volatile T sink = out.at(0, n - 1);
    (void)sink;

    t.row(n, fmt_seconds(tan_s), fmt_seconds(rec_s), fmt_seconds(cell_s),
          fmt_x(tan_s / cell_s), fmt_x(rec_s / cell_s));
  }
  t.print();
  std::printf("(paper, 8 real cores: %.0fx average)\n", paper_speedup);
}

}  // namespace
}  // namespace cellnpdp

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const auto cfg = BenchConfig::from_args(argc, argv);
  print_bench_header("Figure 12: CellNPDP vs TanNPDP on the CPU", cfg);
  run<float>("single", cfg, 44);
  run<double>("double", cfg, 28);
  return 0;
}
