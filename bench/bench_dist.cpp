// Distributed solve: predicted vs measured. The same instance runs twice
// per peer count — once through the cluster simulator (the repo's
// discrete-event comm/compute model, cores_per_node=1 to mirror one
// compute thread per peer) and once through a REAL peer group over
// loopback sockets (src/dist, in-process ranks, full wire path). The
// table prints the two columns side by side, and every measured run is
// checked byte-identical against the tier-1 serial solve before its
// numbers are reported — a wrong answer must never become a data point.
//
// Loopback wall time is not the simulator's target (the model prices an
// IB-like network, not the kernel's localhost), so the load-bearing
// comparison is communication VOLUME: measured wire bytes must land
// within 10% of the simulator's broadcast prediction.
#include <cstdio>
#include <cstring>

#include "bench_util/bench_config.hpp"
#include "bench_util/json_out.hpp"
#include "bench_util/table.hpp"
#include "cluster/cluster_sim.hpp"
#include "common/stopwatch.hpp"
#include "core/solve.hpp"
#include "dist/in_process.hpp"

namespace cellnpdp {
namespace {

void run(const BenchConfig& cfg, BenchJson& json) {
  const index_t n = cfg.full ? 4096 : 1024;
  const index_t bs = 64;
  NpdpInstance<float> inst;
  inst.n = n;
  inst.init = [](index_t i, index_t j) {
    return semiring_init_value<float>(SemiringId::MinPlus, 42, i, j);
  };

  NpdpOptions tuning;
  tuning.block_side = bs;
  const auto ref = solve_blocked_serial(inst, tuning);

  std::printf("\nn=%lld, block %lld, loopback peers vs cluster model:\n",
              static_cast<long long>(n), static_cast<long long>(bs));
  TextTable t({"peers", "pred time", "meas time", "pred comm", "meas comm",
               "comm err", "stall", "identical"});
  for (const int peers : {2, 3, 4}) {
    ClusterConfig cc;
    cc.nodes = peers;
    cc.cores_per_node = 1;  // one compute thread per peer
    ClusterSimOptions co;
    co.block_side = bs;
    const auto pred = simulate_cluster_npdp(inst, cc, co);

    dist::DistOptions opts;
    opts.tuning = tuning;
    std::vector<dist::DistStats> stats;
    Stopwatch sw;
    const auto got = dist::solve_distributed_in_process(
        inst, opts, static_cast<std::uint32_t>(peers), &stats);
    const double meas_s = sw.seconds();

    const bool identical =
        got.total_cells() == ref.total_cells() &&
        std::memcmp(got.data(), ref.data(),
                    static_cast<std::size_t>(ref.total_cells()) *
                        sizeof(float)) == 0;
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: %d-peer result differs from solve_blocked_serial\n",
                   peers);
      std::exit(1);
    }

    std::uint64_t meas_bytes = 0;
    double stall_s = 0, meas_wall_max = 0;
    for (const auto& s : stats) {
      meas_bytes += s.bytes_sent;
      stall_s += s.stall_seconds;
      meas_wall_max = std::max(meas_wall_max, s.wall_seconds);
    }
    const double comm_err =
        pred.comm_bytes > 0
            ? double(meas_bytes) / double(pred.comm_bytes) - 1.0
            : 0.0;

    t.row(peers, fmt_seconds(pred.seconds), fmt_seconds(meas_s),
          fmt_bytes(double(pred.comm_bytes)), fmt_bytes(double(meas_bytes)),
          fmt_pct(comm_err), fmt_seconds(stall_s), identical ? "yes" : "NO");
    json.record()
        .set("peers", peers)
        .set("n", n)
        .set("block_side", bs)
        .set("predicted_seconds", pred.seconds)
        .set("predicted_comm_bytes",
             static_cast<std::int64_t>(pred.comm_bytes))
        .set("predicted_comm_seconds", pred.comm_seconds_total)
        .set("predicted_efficiency", pred.efficiency)
        .set("measured_seconds", meas_s)
        .set("measured_peer_wall_seconds", meas_wall_max)
        .set("measured_comm_bytes", static_cast<std::int64_t>(meas_bytes))
        .set("measured_stall_seconds", stall_s)
        .set("comm_bytes_rel_err", comm_err)
        .set("bit_identical", identical);
  }
  t.print();
  std::printf(
      "\n(predicted columns price an IB-like network in the discrete-event "
      "model; measured columns are real frames over loopback TCP — the "
      "columns to compare are the comm volumes, which must agree within "
      "10%%)\n");
}

}  // namespace
}  // namespace cellnpdp

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const auto cfg = BenchConfig::from_args(argc, argv);
  print_bench_header("Distributed solve: peers vs cluster model", cfg);
  BenchJson json("dist", cfg);
  run(cfg, json);
  return 0;
}
