// Application-level NPDP throughput: CYK parsing and the generic-engine
// applications (matrix chain / optimal BST), scalar vs SIMD splits —
// demonstrating the paper's optimizations carrying over to every NPDP
// instance in the repository.
#include <cstdio>
#include <vector>

#include "apps/cyk/cyk.hpp"
#include "apps/matrix_chain/matrix_chain.hpp"
#include "apps/optimal_bst/optimal_bst.hpp"
#include "bench_util/bench_config.hpp"
#include "bench_util/table.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"

namespace cellnpdp {
namespace {

void bench_cyk(const BenchConfig& cfg) {
  const index_t len = cfg.full ? 2000 : 800;
  std::printf("\nCYK parsing (random 6-nonterminal grammar, %lld tokens):\n",
              static_cast<long long>(len));
  const auto g = cyk::random_grammar(6, 4, 16, 7);
  SplitMix64 rng(1);
  std::vector<int> tokens(static_cast<std::size_t>(len));
  for (auto& t : tokens) t = static_cast<int>(rng.next_below(4));

  TextTable t({"splits", "time", "relax/s"});
  for (bool simd : {false, true}) {
    cyk::CykParser parser(g, {simd});
    Stopwatch sw;
    const auto r = parser.parse(tokens);
    const double s = sw.seconds();
    (void)r;
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.2fG",
                  double(parser.bifurcation_relaxations()) / s / 1e9);
    t.row(simd ? "SIMD (256-bit)" : "scalar", fmt_seconds(s), rate);
  }
  t.print();
}

void bench_engine_apps(const BenchConfig& cfg) {
  const index_t m = cfg.full ? 4096 : 2048;
  std::printf("\nGeneric-engine applications (n=%lld):\n",
              static_cast<long long>(m));
  TextTable t({"application", "kernel", "time"});

  SplitMix64 rng(5);
  std::vector<double> dims(static_cast<std::size_t>(m + 1));
  for (auto& x : dims) x = double(rng.next_below(50) + 1);
  for (KernelKind k : {KernelKind::Scalar, KernelKind::Native}) {
    NpdpOptions o;
    o.block_side = 64;
    o.kernel = k;
    Stopwatch sw;
    const auto r = solve_matrix_chain(dims, o);
    t.row("matrix chain (separable k-term)",
          std::string(kernel_kind_name(k)), fmt_seconds(sw.seconds()));
    volatile double sink = r.cost;
    (void)sink;
  }

  std::vector<double> p(static_cast<std::size_t>(m + 1), 0.0);
  std::vector<double> q(static_cast<std::size_t>(m + 1), 0.0);
  double total = 0;
  for (index_t i = 1; i <= m; ++i) total += p[static_cast<std::size_t>(i)] = rng.next_unit();
  for (index_t i = 0; i <= m; ++i) total += q[static_cast<std::size_t>(i)] = rng.next_unit();
  for (auto& x : p) x /= total;
  for (auto& x : q) x /= total;
  const auto d = make_bst_data(std::move(p), std::move(q));
  for (KernelKind k : {KernelKind::Scalar, KernelKind::Native}) {
    NpdpOptions o;
    o.block_side = 64;
    o.kernel = k;
    Stopwatch sw;
    volatile double cost = solve_optimal_bst(d, o);
    (void)cost;
    t.row("optimal BST (weighted)", std::string(kernel_kind_name(k)),
          fmt_seconds(sw.seconds()));
  }
  t.print();
}

}  // namespace
}  // namespace cellnpdp

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const auto cfg = BenchConfig::from_args(argc, argv);
  print_bench_header("Applications: CYK, matrix chain, optimal BST", cfg);
  bench_cyk(cfg);
  bench_engine_apps(cfg);
  return 0;
}
