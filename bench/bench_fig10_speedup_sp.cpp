// Figure 10 — single-precision speedup anatomy of the three optimizations:
// NDL (new data layout), SPEP (SIMD SPE procedure), PARP (parallel
// procedure).
//
// 10(a): Cell side, from the machine model. Baseline = original algorithm
//        on one SPE. Paper averages: NDL 31.6x, SPEP +28x, PARP 15.7x @16.
// 10(b): CPU side, measured natively per optimization stage (single
//        thread), plus the thread-scaling shape from the machine model
//        with CPU-like parameters (this host has one core).
#include <cstdio>
#include <vector>

#include "bench_util/bench_config.hpp"
#include "bench_util/json_out.hpp"
#include "bench_util/table.hpp"
#include "cellsim/npdp_sim.hpp"
#include "cellsim/variants.hpp"
#include "common/stopwatch.hpp"
#include "core/reference.hpp"
#include "core/solve.hpp"

namespace cellnpdp {
namespace {

void fig10a(const BenchConfig& cfg, BenchJson& json) {
  std::printf("\nFig. 10(a): Cell blade, single precision (simulated; "
              "baseline = original on one SPE):\n");
  std::vector<index_t> sizes{2048, 4096};
  if (cfg.full) sizes.push_back(8192);
  TextTable t({"n", "baseline", "+NDL", "+SPEP", "PARP x2", "PARP x4",
               "PARP x8", "PARP x16"});
  for (index_t n : sizes) {
    const CellConfig cell = qs20();
    const double base = time_original_spe(n, Precision::Single, cell);
    NpdpInstance<float> inst;
    inst.n = n;
    inst.init = [](index_t, index_t) { return 1.0f; };

    auto run = [&](bool simd, int spes) {
      CellConfig c = qs20();
      c.num_spes = spes;
      CellSimOptions o;
      o.block_side = 88;
      o.simd = simd;
      return simulate_cellnpdp(inst, c, o).seconds;
    };
    const double ndl = run(false, 1);
    const double spep = run(true, 1);
    auto rec = [&](const char* stage, int spes, double seconds) {
      json.record()
          .set("platform", "cell-sim")
          .set("n", n)
          .set("stage", stage)
          .set("spes", spes)
          .set("seconds", seconds)
          .set("speedup", base / seconds);
    };
    rec("ndl", 1, ndl);
    rec("spep", 1, spep);
    for (int spes : {2, 4, 8, 16}) rec("parp", spes, run(true, spes));
    t.row(n, "1.0x", fmt_x(base / ndl), fmt_x(base / spep),
          fmt_x(base / run(true, 2)), fmt_x(base / run(true, 4)),
          fmt_x(base / run(true, 8)), fmt_x(base / run(true, 16)));
  }
  t.print();
  std::printf("(paper averages: NDL 31.6x; SPEP a further 28x; PARP 15.7x "
              "at 16 SPEs)\n");
}

void fig10b(const BenchConfig& cfg, BenchJson& json) {
  const index_t n = cfg.full ? 2048 : 1024;
  std::printf("\nFig. 10(b): CPU platform, single precision "
              "(native, n=%ld):\n", static_cast<long>(n));

  auto init = [](index_t i, index_t j) {
    return i == j ? 0.0f : float((i * 7 + j * 13) % 100);
  };

  TriangularMatrix<float> d(n);
  d.fill(init);
  Stopwatch sw;
  solve_fig1(d);
  const double base = sw.seconds();

  NpdpInstance<float> inst;
  inst.n = n;
  inst.init = init;
  auto run = [&](KernelKind k, std::size_t threads) {
    NpdpOptions o;
    o.block_side = 64;
    o.kernel = k;
    o.threads = threads;
    Stopwatch w;
    auto out = solve_blocked(inst, o);
    const double s = w.seconds();
    volatile float sink = out.at(0, n - 1);
    (void)sink;
    return s;
  };

  const double ndl = run(KernelKind::Scalar, 1);
  const double spep = run(KernelKind::Native, 1);
  auto rec = [&](const char* stage, std::size_t threads, double seconds) {
    json.record()
        .set("platform", "cpu")
        .set("n", n)
        .set("stage", stage)
        .set("threads", threads)
        .set("seconds", seconds)
        .set("speedup", base / seconds);
  };
  rec("original", 1, base);
  rec("ndl", 1, ndl);
  rec("spep", 1, spep);
  TextTable t({"stage", "time", "speedup vs original"});
  t.row("original (Fig.1)", fmt_seconds(base), "1.0x");
  t.row("+NDL (blocked, scalar)", fmt_seconds(ndl), fmt_x(base / ndl));
  t.row("+SPEP (128-bit SIMD)", fmt_seconds(spep), fmt_x(base / spep));
  for (std::size_t th : {2u, 4u, 8u}) {
    const double p = run(KernelKind::Native, th);
    rec("parp", th, p);
    t.row("PARP x" + std::to_string(th) + " (wall-clock, 1-core host)",
          fmt_seconds(p), fmt_x(base / p));
  }
  t.print();
  std::printf("(paper averages: NDL 7.14x; SPEP a further 5.28x; PARP "
              "7.22x at 8 cores — thread rows above cannot scale on this "
              "single-core host; see the modeled scaling below. The NDL "
              "term is small here because this host's last-level cache is "
              "far larger than Nehalem's 8MB and the whole table stays "
              "resident; bench_fig9_traffic shows the layout effect with "
              "the paper's cache geometry)\n");

  // Thread-scaling shape from the machine model with CPU-like parameters:
  // ~Nehalem: 8 cores, 2.9 GB/s... use per-core bandwidth-rich config.
  CellConfig cpu;
  cpu.name = "CPU-like";
  cpu.clock_hz = 2.93e9;
  cpu.memory_bandwidth = 32e9;
  cpu.dma_cmd_latency = 60e-9;  // cache-line fill latency
  cpu.dma_overhead_bytes = 0;
  NpdpInstance<float> inst2;
  inst2.n = 4096;
  inst2.init = [](index_t, index_t) { return 1.0f; };
  TextTable m({"cores (model)", "time", "scaling vs 1 core"});
  double one = 0;
  for (int cores : {1, 2, 4, 8}) {
    CellConfig c = cpu;
    c.num_spes = cores;
    CellSimOptions o;
    o.block_side = 88;
    const double s = simulate_cellnpdp(inst2, c, o).seconds;
    if (cores == 1) one = s;
    m.row(cores, fmt_seconds(s), fmt_x(one / s));
  }
  m.print();
}

}  // namespace
}  // namespace cellnpdp

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const auto cfg = BenchConfig::from_args(argc, argv);
  print_bench_header("Figure 10: single-precision speedup anatomy", cfg);
  BenchJson json("fig10_speedup_sp", cfg);
  fig10a(cfg, json);
  fig10b(cfg, json);
  return 0;
}
