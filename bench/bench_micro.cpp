// Micro-benchmarks (google-benchmark): layout access patterns, the
// dependence-graph scheduler, and application bifurcation primitives.
#include <benchmark/benchmark.h>

#include "apps/zuker/fold.hpp"
#include "common/rng.hpp"
#include "layout/blocked.hpp"
#include "layout/triangular.hpp"
#include "simd/vec.hpp"
#include "taskgraph/dependence_graph.hpp"
#include "taskgraph/executor.hpp"

namespace cellnpdp {
namespace {

// The §III locality argument at micro scale: walking a column of the
// row-major triangle strides non-uniformly; the blocked layout walks
// within one contiguous block.
void bm_triangular_column_walk(benchmark::State& state) {
  const index_t n = state.range(0);
  TriangularMatrix<float> t(n);
  t.fill([](index_t i, index_t j) { return float(i + j); });
  const index_t j = n - 1;
  for (auto _ : state) {
    float acc = 0;
    for (index_t k = 0; k < j; ++k) acc += t.at(k, j);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}

void bm_blocked_block_walk(benchmark::State& state) {
  const index_t n = state.range(0);
  BlockedTriangularMatrix<float> b(n, 64);
  b.fill([](index_t i, index_t j) { return float(i + j); });
  const index_t cells = b.cells_per_block();
  const float* blk = b.block(0, b.blocks_per_side() - 1);
  for (auto _ : state) {
    float acc = 0;
    for (index_t c = 0; c < cells; ++c) acc += blk[c];
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * cells);
}

void bm_taskqueue_schedule(benchmark::State& state) {
  const index_t m = state.range(0);
  BlockDependenceGraph g(m);
  for (auto _ : state) {
    index_t count = 0;
    TaskQueueExecutor::run_serial(g, [&](index_t, index_t) { ++count; });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * g.task_count());
}

void bm_zuker_bifurcation_row(benchmark::State& state) {
  const index_t len = state.range(0);
  aligned_vector<float> row(static_cast<std::size_t>(len)),
      rowt(static_cast<std::size_t>(len));
  SplitMix64 rng(1);
  for (auto& x : row) x = float(rng.next_in(0, 50));
  for (auto& x : rowt) x = float(rng.next_in(0, 50));
  using V8 = Vec<float, 8>;
  for (auto _ : state) {
    V8 acc = V8::set1(1e30f);
    index_t k = 0;
    for (; k + 8 <= len; k += 8)
      acc = vmin(acc, V8::loadu(row.data() + k) + V8::loadu(rowt.data() + k));
    alignas(kBufferAlignment) float lanes[8];
    acc.store(lanes);
    float best = 1e30f;
    for (int l = 0; l < 8; ++l) best = std::min(best, lanes[l]);
    for (; k < len; ++k)
      best = std::min(best, row[static_cast<std::size_t>(k)] +
                                rowt[static_cast<std::size_t>(k)]);
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * len);
}

BENCHMARK(bm_triangular_column_walk)->Arg(1024)->Arg(4096);
BENCHMARK(bm_blocked_block_walk)->Arg(1024)->Arg(4096);
BENCHMARK(bm_taskqueue_schedule)->Arg(16)->Arg(64);
BENCHMARK(bm_zuker_bifurcation_row)->Arg(256)->Arg(2048);

}  // namespace
}  // namespace cellnpdp

BENCHMARK_MAIN();
