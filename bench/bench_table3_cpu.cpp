// Table III — performance on the CPU platform (native measurement).
//
// Original algorithm (Fig. 1, scalar, row-major triangle) vs. CellNPDP on
// the CPU (blocked layout + 128-bit SIMD kernels + task-queue threads).
// Default sizes are scaled so the bench stays fast on one core; --full
// adds the paper's sizes. Cubic extrapolation to the paper's sizes is
// printed for the scaled runs.
#include <cstdio>
#include <vector>

#include "bench_util/bench_config.hpp"
#include "bench_util/json_out.hpp"
#include "bench_util/table.hpp"
#include "common/stopwatch.hpp"
#include "core/reference.hpp"
#include "core/solve.hpp"

namespace cellnpdp {
namespace {

template <class T>
double time_original(index_t n) {
  TriangularMatrix<T> d(n);
  d.fill([](index_t i, index_t j) {
    return i == j ? T(0) : T((i * 7 + j * 13) % 100);
  });
  Stopwatch sw;
  solve_fig1(d);
  return sw.seconds();
}

template <class T>
double time_cellnpdp(index_t n, std::size_t threads) {
  NpdpInstance<T> inst;
  inst.n = n;
  inst.init = [](index_t i, index_t j) {
    return i == j ? T(0) : T((i * 7 + j * 13) % 100);
  };
  NpdpOptions opts;
  opts.block_side = 64;
  opts.kernel = KernelKind::Native;  // the paper's 128-bit width
  opts.threads = threads;
  Stopwatch sw;
  const auto out = solve_blocked(inst, opts);
  const double s = sw.seconds();
  // Keep the result alive so nothing is optimised away.
  volatile T sink = out.at(0, n - 1);
  (void)sink;
  return s;
}

template <class T>
void run(const char* name, const BenchConfig& cfg, BenchJson& json,
         double paper_orig_4096, double paper_cell_4096) {
  std::vector<index_t> sizes{512, 1024, 2048};
  if (cfg.full) sizes.push_back(4096);

  std::printf("\n%s precision:\n", name);
  TextTable t({"n", "original (Fig.1)", "CellNPDP (8 threads)", "speedup"});
  double last_orig = 0, last_cell = 0;
  index_t last_n = 0;
  for (index_t n : sizes) {
    const double o = time_original<T>(n);
    const double c = time_cellnpdp<T>(n, 8);
    json.record()
        .set("precision", name)
        .set("n", n)
        .set("original_s", o)
        .set("cellnpdp_s", c)
        .set("threads", 8)
        .set("speedup", o / c);
    t.row(n, fmt_seconds(o), fmt_seconds(c), fmt_x(o / c));
    last_orig = o;
    last_cell = c;
    last_n = n;
  }
  t.print();
  if (last_n < 4096) {
    const double scale = 4096.0 / double(last_n);
    const double cube = scale * scale * scale;
    std::printf(
        "extrapolated to n=4096 (cubic): original ~%s, CellNPDP ~%s "
        "(paper: %.5g s / %.5g s on 2x quad-core Nehalem)\n",
        fmt_seconds(last_orig * cube).c_str(),
        fmt_seconds(last_cell * cube).c_str(), paper_orig_4096,
        paper_cell_4096);
  }
}

}  // namespace
}  // namespace cellnpdp

int main(int argc, char** argv) {
  using namespace cellnpdp;
  const auto cfg = BenchConfig::from_args(argc, argv);
  print_bench_header("Table III: NPDP on the CPU platform (native)", cfg);
  std::printf(
      "host note: this container exposes ONE core, so the 8-thread runs "
      "cannot show wall-clock thread scaling; the thread-scaling *shape* is "
      "reproduced in bench_fig10/11 via the machine model. Single-thread "
      "layout+SIMD gains below are real measurements.\n");
  BenchJson json("table3_cpu", cfg);
  run<float>("single", cfg, json, 108.01, 0.43);
  run<double>("double", cfg, json, 119.79, 0.8159);
  return 0;
}
