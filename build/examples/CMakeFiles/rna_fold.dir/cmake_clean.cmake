file(REMOVE_RECURSE
  "CMakeFiles/rna_fold.dir/rna_fold.cpp.o"
  "CMakeFiles/rna_fold.dir/rna_fold.cpp.o.d"
  "rna_fold"
  "rna_fold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rna_fold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
