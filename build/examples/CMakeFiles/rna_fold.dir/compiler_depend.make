# Empty compiler generated dependencies file for rna_fold.
# This may be replaced when dependencies are built.
