# Empty dependencies file for cyk_parse.
# This may be replaced when dependencies are built.
