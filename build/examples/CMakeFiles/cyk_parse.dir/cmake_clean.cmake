file(REMOVE_RECURSE
  "CMakeFiles/cyk_parse.dir/cyk_parse.cpp.o"
  "CMakeFiles/cyk_parse.dir/cyk_parse.cpp.o.d"
  "cyk_parse"
  "cyk_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyk_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
