# Empty dependencies file for matrix_chain_demo.
# This may be replaced when dependencies are built.
