file(REMOVE_RECURSE
  "CMakeFiles/matrix_chain_demo.dir/matrix_chain_demo.cpp.o"
  "CMakeFiles/matrix_chain_demo.dir/matrix_chain_demo.cpp.o.d"
  "matrix_chain_demo"
  "matrix_chain_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_chain_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
