# Empty dependencies file for optimal_bst_demo.
# This may be replaced when dependencies are built.
