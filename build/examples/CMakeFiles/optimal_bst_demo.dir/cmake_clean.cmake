file(REMOVE_RECURSE
  "CMakeFiles/optimal_bst_demo.dir/optimal_bst_demo.cpp.o"
  "CMakeFiles/optimal_bst_demo.dir/optimal_bst_demo.cpp.o.d"
  "optimal_bst_demo"
  "optimal_bst_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_bst_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
