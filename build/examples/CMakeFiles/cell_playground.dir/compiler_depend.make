# Empty compiler generated dependencies file for cell_playground.
# This may be replaced when dependencies are built.
