file(REMOVE_RECURSE
  "CMakeFiles/cell_playground.dir/cell_playground.cpp.o"
  "CMakeFiles/cell_playground.dir/cell_playground.cpp.o.d"
  "cell_playground"
  "cell_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
