# Empty compiler generated dependencies file for cellnpdp_memsim.
# This may be replaced when dependencies are built.
