file(REMOVE_RECURSE
  "CMakeFiles/cellnpdp_memsim.dir/cache.cpp.o"
  "CMakeFiles/cellnpdp_memsim.dir/cache.cpp.o.d"
  "libcellnpdp_memsim.a"
  "libcellnpdp_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellnpdp_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
