file(REMOVE_RECURSE
  "libcellnpdp_memsim.a"
)
