file(REMOVE_RECURSE
  "libcellnpdp_taskgraph.a"
)
