file(REMOVE_RECURSE
  "CMakeFiles/cellnpdp_taskgraph.dir/executor.cpp.o"
  "CMakeFiles/cellnpdp_taskgraph.dir/executor.cpp.o.d"
  "libcellnpdp_taskgraph.a"
  "libcellnpdp_taskgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellnpdp_taskgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
