# Empty compiler generated dependencies file for cellnpdp_taskgraph.
# This may be replaced when dependencies are built.
