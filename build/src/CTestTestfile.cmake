# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("layout")
subdirs("simd")
subdirs("taskgraph")
subdirs("core")
subdirs("baselines")
subdirs("memsim")
subdirs("cellsim")
subdirs("model")
subdirs("apps")
subdirs("bench_util")
subdirs("cluster")
subdirs("io")
