# Empty compiler generated dependencies file for cellnpdp_cellsim.
# This may be replaced when dependencies are built.
