file(REMOVE_RECURSE
  "CMakeFiles/cellnpdp_cellsim.dir/spu_interp.cpp.o"
  "CMakeFiles/cellnpdp_cellsim.dir/spu_interp.cpp.o.d"
  "CMakeFiles/cellnpdp_cellsim.dir/spu_pipeline.cpp.o"
  "CMakeFiles/cellnpdp_cellsim.dir/spu_pipeline.cpp.o.d"
  "libcellnpdp_cellsim.a"
  "libcellnpdp_cellsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellnpdp_cellsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
