file(REMOVE_RECURSE
  "libcellnpdp_cellsim.a"
)
