file(REMOVE_RECURSE
  "CMakeFiles/cellnpdp_common.dir/cpu_features.cpp.o"
  "CMakeFiles/cellnpdp_common.dir/cpu_features.cpp.o.d"
  "CMakeFiles/cellnpdp_common.dir/thread_pool.cpp.o"
  "CMakeFiles/cellnpdp_common.dir/thread_pool.cpp.o.d"
  "libcellnpdp_common.a"
  "libcellnpdp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellnpdp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
