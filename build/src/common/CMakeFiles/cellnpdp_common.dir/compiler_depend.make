# Empty compiler generated dependencies file for cellnpdp_common.
# This may be replaced when dependencies are built.
