file(REMOVE_RECURSE
  "libcellnpdp_common.a"
)
