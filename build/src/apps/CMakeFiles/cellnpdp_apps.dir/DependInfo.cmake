
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cyk/cyk.cpp" "src/apps/CMakeFiles/cellnpdp_apps.dir/cyk/cyk.cpp.o" "gcc" "src/apps/CMakeFiles/cellnpdp_apps.dir/cyk/cyk.cpp.o.d"
  "/root/repo/src/apps/polygon/triangulation.cpp" "src/apps/CMakeFiles/cellnpdp_apps.dir/polygon/triangulation.cpp.o" "gcc" "src/apps/CMakeFiles/cellnpdp_apps.dir/polygon/triangulation.cpp.o.d"
  "/root/repo/src/apps/zuker/energy_model.cpp" "src/apps/CMakeFiles/cellnpdp_apps.dir/zuker/energy_model.cpp.o" "gcc" "src/apps/CMakeFiles/cellnpdp_apps.dir/zuker/energy_model.cpp.o.d"
  "/root/repo/src/apps/zuker/fold.cpp" "src/apps/CMakeFiles/cellnpdp_apps.dir/zuker/fold.cpp.o" "gcc" "src/apps/CMakeFiles/cellnpdp_apps.dir/zuker/fold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/taskgraph/CMakeFiles/cellnpdp_taskgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cellnpdp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
