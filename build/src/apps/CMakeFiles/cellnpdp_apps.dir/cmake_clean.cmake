file(REMOVE_RECURSE
  "CMakeFiles/cellnpdp_apps.dir/cyk/cyk.cpp.o"
  "CMakeFiles/cellnpdp_apps.dir/cyk/cyk.cpp.o.d"
  "CMakeFiles/cellnpdp_apps.dir/polygon/triangulation.cpp.o"
  "CMakeFiles/cellnpdp_apps.dir/polygon/triangulation.cpp.o.d"
  "CMakeFiles/cellnpdp_apps.dir/zuker/energy_model.cpp.o"
  "CMakeFiles/cellnpdp_apps.dir/zuker/energy_model.cpp.o.d"
  "CMakeFiles/cellnpdp_apps.dir/zuker/fold.cpp.o"
  "CMakeFiles/cellnpdp_apps.dir/zuker/fold.cpp.o.d"
  "libcellnpdp_apps.a"
  "libcellnpdp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellnpdp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
