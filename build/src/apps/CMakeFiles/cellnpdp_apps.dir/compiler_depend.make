# Empty compiler generated dependencies file for cellnpdp_apps.
# This may be replaced when dependencies are built.
