file(REMOVE_RECURSE
  "libcellnpdp_apps.a"
)
