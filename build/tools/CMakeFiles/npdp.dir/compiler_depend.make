# Empty compiler generated dependencies file for npdp.
# This may be replaced when dependencies are built.
