file(REMOVE_RECURSE
  "CMakeFiles/npdp.dir/npdp_tool.cpp.o"
  "CMakeFiles/npdp.dir/npdp_tool.cpp.o.d"
  "npdp"
  "npdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
