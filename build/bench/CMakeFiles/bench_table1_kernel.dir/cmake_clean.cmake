file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_kernel.dir/bench_table1_kernel.cpp.o"
  "CMakeFiles/bench_table1_kernel.dir/bench_table1_kernel.cpp.o.d"
  "bench_table1_kernel"
  "bench_table1_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
