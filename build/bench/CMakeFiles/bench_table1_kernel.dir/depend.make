# Empty dependencies file for bench_table1_kernel.
# This may be replaced when dependencies are built.
