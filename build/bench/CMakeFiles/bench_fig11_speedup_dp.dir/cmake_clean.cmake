file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_speedup_dp.dir/bench_fig11_speedup_dp.cpp.o"
  "CMakeFiles/bench_fig11_speedup_dp.dir/bench_fig11_speedup_dp.cpp.o.d"
  "bench_fig11_speedup_dp"
  "bench_fig11_speedup_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_speedup_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
