file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_vs_tan.dir/bench_fig12_vs_tan.cpp.o"
  "CMakeFiles/bench_fig12_vs_tan.dir/bench_fig12_vs_tan.cpp.o.d"
  "bench_fig12_vs_tan"
  "bench_fig12_vs_tan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_vs_tan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
