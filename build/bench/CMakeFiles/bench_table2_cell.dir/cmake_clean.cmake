file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cell.dir/bench_table2_cell.cpp.o"
  "CMakeFiles/bench_table2_cell.dir/bench_table2_cell.cpp.o.d"
  "bench_table2_cell"
  "bench_table2_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
