# Empty dependencies file for bench_table2_cell.
# This may be replaced when dependencies are built.
