file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_speedup_sp.dir/bench_fig10_speedup_sp.cpp.o"
  "CMakeFiles/bench_fig10_speedup_sp.dir/bench_fig10_speedup_sp.cpp.o.d"
  "bench_fig10_speedup_sp"
  "bench_fig10_speedup_sp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_speedup_sp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
