# Empty dependencies file for bench_fig10_speedup_sp.
# This may be replaced when dependencies are built.
