# Empty compiler generated dependencies file for bench_zuker.
# This may be replaced when dependencies are built.
