file(REMOVE_RECURSE
  "CMakeFiles/bench_zuker.dir/bench_zuker.cpp.o"
  "CMakeFiles/bench_zuker.dir/bench_zuker.cpp.o.d"
  "bench_zuker"
  "bench_zuker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zuker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
