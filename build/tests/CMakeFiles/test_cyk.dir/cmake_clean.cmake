file(REMOVE_RECURSE
  "CMakeFiles/test_cyk.dir/test_cyk.cpp.o"
  "CMakeFiles/test_cyk.dir/test_cyk.cpp.o.d"
  "test_cyk"
  "test_cyk.pdb"
  "test_cyk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cyk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
