# Empty compiler generated dependencies file for test_cyk.
# This may be replaced when dependencies are built.
