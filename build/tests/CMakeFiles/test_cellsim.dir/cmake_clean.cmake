file(REMOVE_RECURSE
  "CMakeFiles/test_cellsim.dir/test_cellsim.cpp.o"
  "CMakeFiles/test_cellsim.dir/test_cellsim.cpp.o.d"
  "test_cellsim"
  "test_cellsim.pdb"
  "test_cellsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cellsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
