# Empty dependencies file for test_cellsim.
# This may be replaced when dependencies are built.
