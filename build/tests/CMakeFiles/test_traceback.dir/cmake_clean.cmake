file(REMOVE_RECURSE
  "CMakeFiles/test_traceback.dir/test_traceback.cpp.o"
  "CMakeFiles/test_traceback.dir/test_traceback.cpp.o.d"
  "test_traceback"
  "test_traceback.pdb"
  "test_traceback[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traceback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
