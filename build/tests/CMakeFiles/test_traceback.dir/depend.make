# Empty dependencies file for test_traceback.
# This may be replaced when dependencies are built.
