
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_polygon.cpp" "tests/CMakeFiles/test_polygon.dir/test_polygon.cpp.o" "gcc" "tests/CMakeFiles/test_polygon.dir/test_polygon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cellnpdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/taskgraph/CMakeFiles/cellnpdp_taskgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/cellnpdp_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/cellsim/CMakeFiles/cellnpdp_cellsim.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/cellnpdp_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
