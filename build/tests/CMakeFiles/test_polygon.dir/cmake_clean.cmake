file(REMOVE_RECURSE
  "CMakeFiles/test_polygon.dir/test_polygon.cpp.o"
  "CMakeFiles/test_polygon.dir/test_polygon.cpp.o.d"
  "test_polygon"
  "test_polygon.pdb"
  "test_polygon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_polygon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
