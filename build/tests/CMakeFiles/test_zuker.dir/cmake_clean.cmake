file(REMOVE_RECURSE
  "CMakeFiles/test_zuker.dir/test_zuker.cpp.o"
  "CMakeFiles/test_zuker.dir/test_zuker.cpp.o.d"
  "test_zuker"
  "test_zuker.pdb"
  "test_zuker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zuker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
