# Empty dependencies file for test_zuker.
# This may be replaced when dependencies are built.
