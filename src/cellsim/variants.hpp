// Macro-analytic models of the paper's baseline configurations on the Cell
// machine (§VI-A): the original Fig. 1 algorithm running on the PPE and on
// one SPE over the row-major layout. These are closed forms because a
// per-element event simulation of n = 16384 (10^11 DMA commands) is
// intractable; the cost structure is documented per term.
//
// CALIBRATION. The PPE is a cache-based in-order core we cannot model from
// first principles on commodity hardware; its cycles-per-relaxation curve
// is calibrated against the paper's own Table II at the three published
// problem sizes and interpolated log-linearly in n between them (flat
// outside). This baseline row is therefore reproduced *by construction* at
// those sizes — EXPERIMENTS.md flags it — while every CellNPDP number is
// produced by the independent pipeline + DMA + bus models.
#pragma once

#include <algorithm>
#include <cmath>

#include "cellsim/config.hpp"
#include "common/defs.hpp"

namespace cellnpdp {

/// PPE cycles per relaxation, calibrated (see header comment).
inline double ppe_cycles_per_relax(index_t n, Precision p) {
  // {n, single, double} from Table II: time * clock / (n^3/6 relaxations).
  struct Point {
    double n, sp, dp;
  };
  static constexpr Point pts[] = {
      {4096.0, 199.8, 283.6},
      {8192.0, 767.2, 971.9},
      {16384.0, 820.8, 1055.5},
  };
  const double x = std::log2(static_cast<double>(std::max<index_t>(n, 2)));
  const double lo = std::log2(pts[0].n), hi = std::log2(pts[2].n);
  auto pick = [&](const Point& pt) {
    return p == Precision::Single ? pt.sp : pt.dp;
  };
  if (x <= lo) return pick(pts[0]);
  if (x >= hi) return pick(pts[2]);
  for (int i = 0; i < 2; ++i) {
    const double a = std::log2(pts[i].n), b = std::log2(pts[i + 1].n);
    if (x <= b) {
      const double t = (x - a) / (b - a);
      return pick(pts[i]) + t * (pick(pts[i + 1]) - pick(pts[i]));
    }
  }
  return pick(pts[2]);
}

/// Original algorithm on the PPE (Table II row 1).
inline double time_original_ppe(index_t n, Precision p,
                                const CellConfig& cfg) {
  return double(npdp_relaxations(n)) * ppe_cycles_per_relax(n, p) /
         cfg.clock_hz;
}

/// DMA traffic of the original algorithm on one SPE over the row-major
/// triangular layout (§VI-A baseline: "each DMA command prefetches multiple
/// data in one row or a data in one column").
///
/// Per cell (i,j): one DMA for the row piece d[i][i..j) ((j-i) elements)
/// and (j-i) single-element DMAs for the column walk d[k][j].
struct OriginalSpeTraffic {
  index_t bytes = 0;
  index_t commands = 0;
};

inline OriginalSpeTraffic original_spe_traffic(index_t n, Precision p) {
  const index_t S = precision_bytes(p);
  const index_t relax = npdp_relaxations(n);  // = sum over cells of (j-i)
  const index_t cells = triangle_cells(n) - n;
  OriginalSpeTraffic t;
  t.bytes = 2 * relax * S;            // row piece + column elements
  t.commands = relax + cells;         // column: 1/elem, row: 1/cell
  return t;
}

/// Original algorithm on one SPE (Table II row 2). The SPE prefetches, so
/// DMA and scalar compute overlap: time = max(dma, compute) + residue.
inline double time_original_spe(index_t n, Precision p,
                                const CellConfig& cfg) {
  const auto traffic = original_spe_traffic(n, p);
  // Small-DMA commands are latency-bound; the MFC pipelines them but the
  // dependent column walk of Fig. 1 exposes most of the round trip.
  const double dma_s = double(traffic.commands) * cfg.dma_cmd_latency +
                       double(traffic.bytes) / cfg.memory_bandwidth;
  const double compute_s = double(npdp_relaxations(n)) *
                           cfg.spe_scalar_cycles_per_relax(p) / cfg.clock_hz;
  return std::max(dma_s, compute_s);
}

/// Blocked-layout traffic for comparison in Fig. 9(a): every block fetched
/// (2*(bj-bi)+1 per block relaxation) plus one writeback per block.
inline index_t ndl_dma_bytes(index_t n, index_t bs, Precision p) {
  const index_t m = ceil_div(n, bs);
  const index_t block_bytes = bs * bs * precision_bytes(p);
  index_t blocks_moved = 0;
  for (index_t bj = 0; bj < m; ++bj)
    for (index_t bi = bj; bi >= 0; --bi) {
      blocks_moved += (bi == bj) ? 2 : 2 * (bj - bi - 1) + 4;  // in + out
    }
  return blocks_moved * block_bytes;
}

}  // namespace cellnpdp
