// Event-driven simulation of CellNPDP on the Cell machine model (§IV-C,
// Fig. 8): the PPE manages the task queue over scheduling blocks, SPEs
// execute them, double-buffering block DMA against computation.
//
// Two execution policies:
//   * Functional  - every block relaxation really runs through BlockEngine
//                   on host memory (results checkable against the native
//                   solvers) while time is charged by the models;
//   * TimingOnly  - only the work model is charged; lets the full
//                   n = 16384 runs of Table II finish in seconds.
#pragma once

#include <memory>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "cellsim/config.hpp"
#include "cellsim/event_queue.hpp"
#include "cellsim/memory_bus.hpp"
#include "cellsim/spu_pipeline.hpp"
#include "cellsim/work_model.hpp"
#include "core/engine.hpp"
#include "core/instance.hpp"
#include "taskgraph/dependence_graph.hpp"

namespace cellnpdp {

enum class ExecMode { TimingOnly, Functional };

struct CellSimOptions {
  ExecMode mode = ExecMode::TimingOnly;
  bool simd = true;          ///< false: the "NDL only" ablation (scalar SPE)
  index_t block_side = 64;   ///< memory-block side (cells)
  index_t sched_side = 1;    ///< scheduling-block side (memory blocks)
  int prefetch_depth = 2;    ///< blocks in flight beyond the one computing
  bool enforce_local_store = true;  ///< reject blocks that cannot be
                                    ///< six-buffered in the local store
  bool barrier_wavefront = false;   ///< step-by-step schedule of the prior
                                    ///< works instead of the task queue
  bool record_trace = false;        ///< per-block execution trace (Gantt)
};

/// One computed memory block in the execution trace.
struct TraceEvent {
  int spe = 0;
  index_t bi = 0, bj = 0;
  double start = 0.0, end = 0.0;
};

struct CellSimResult {
  double seconds = 0.0;
  index_t dma_bytes_in = 0;
  index_t dma_bytes_out = 0;
  index_t dma_commands = 0;
  double spe_busy_seconds = 0.0;  ///< summed over SPEs (compute time)
  index_t tasks = 0;
  int kernel_cycles = 0;          ///< steady-state cycles per kernel call
  double useful_ops = 0.0;        ///< 32-bit ops, padding-adjusted
  double utilization = 0.0;       ///< useful ops/cycle over machine peak
  double ops_per_cycle = 0.0;
  BlockWork work;
  std::vector<double> spe_busy;   ///< per-SPE compute seconds
  std::vector<index_t> spe_tasks; ///< per-SPE tasks executed
  std::vector<TraceEvent> trace;  ///< per-block events (when recorded)

  /// Writes the trace as CSV (spe,bi,bj,start,end) for external plotting.
  void write_trace_csv(std::ostream& os) const {
    os << "spe,bi,bj,start,end\n";
    for (const auto& ev : trace)
      os << ev.spe << ',' << ev.bi << ',' << ev.bj << ',' << ev.start << ','
         << ev.end << '\n';
  }
};

namespace cellsim_detail {

template <class T>
constexpr Precision precision_of() {
  return sizeof(T) == 4 ? Precision::Single : Precision::Double;
}

}  // namespace cellsim_detail

/// Simulates CellNPDP for `inst` on machine `cfg`. In Functional mode and
/// when `out` is non-null, the solved table is written there.
template <class T>
CellSimResult simulate_cellnpdp(const NpdpInstance<T>& inst,
                                const CellConfig& cfg,
                                const CellSimOptions& opts,
                                BlockedTriangularMatrix<T>* out = nullptr) {
  const Precision prec = cellsim_detail::precision_of<T>();
  const SpuLatencies lat = spu_latencies(prec);
  const index_t bs = opts.block_side;
  const index_t block_bytes = bs * bs * precision_bytes(prec);
  const index_t m = ceil_div(inst.n, bs);

  // The paper's §III constraint: six block buffers (current triple +
  // prefetched triple) plus the code image must fit in the local store.
  if (opts.enforce_local_store &&
      cfg.ls_buffers * block_bytes + cfg.ls_code_bytes >
          cfg.local_store_bytes) {
    throw std::invalid_argument(
        "memory block too large for the local store: " +
        std::to_string(cfg.ls_buffers) + " x " + std::to_string(block_bytes) +
        "B + code exceeds " + std::to_string(cfg.local_store_bytes) + "B");
  }

  // SIMD width on the 128-bit SPE: 4 floats or 2 doubles.
  const index_t w = prec == Precision::Single ? 4 : 2;
  const int kcycles = kernel_steady_cycles(static_cast<int>(w), lat);
  // Software pipelining drains at the end of every tile-row run; smaller
  // blocks restart the pipeline more often per unit of work (§VI-D).
  const int kdrain =
      kernel_cold_cycles(static_cast<int>(w), lat) - kcycles;
  const index_t tiles_per_row = bs / w;
  const double scalar_cpr = cfg.spe_scalar_cycles_per_relax(prec);
  // Finalisation / loop bookkeeping per cell in the corner walks.
  const double finalize_cycles = 2.0;

  // Functional state.
  std::unique_ptr<BlockedTriangularMatrix<T>> mat;
  std::unique_ptr<BlockEngine<T>> engine;
  if (opts.mode == ExecMode::Functional) {
    mat = std::make_unique<BlockedTriangularMatrix<T>>(inst.n, bs);
    NpdpOptions eopts;
    eopts.block_side = bs;
    eopts.kernel = opts.simd ? KernelKind::Native : KernelKind::Scalar;
    engine = std::make_unique<BlockEngine<T>>(*mat, inst, eopts);
    engine->seed();
  }

  auto compute_seconds = [&](const BlockWork& bw) {
    double cycles;
    if (opts.simd) {
      const double drains =
          double(bw.kernel_calls) / double(tiles_per_row);
      cycles = double(bw.kernel_calls) * kcycles + drains * kdrain +
               double(bw.scalar_relax) * scalar_cpr +
               double(bw.cells) * finalize_cycles;
    } else {
      // Scalar ablation: every relaxation (kernel-covered ones included)
      // costs the scalar rate. kernel_calls * w^3 relaxations inside tiles.
      cycles = (double(bw.kernel_calls) * double(w * w * w) +
                double(bw.scalar_relax)) *
                   scalar_cpr +
               double(bw.cells) * finalize_cycles;
    }
    return cycles / cfg.clock_hz;
  };

  // --- simulation state ----------------------------------------------
  EventQueue q;
  MemoryBus bus(cfg.memory_bandwidth, cfg.dma_cmd_latency,
                cfg.dma_overhead_bytes);
  const index_t ss = opts.sched_side < 1 ? 1 : opts.sched_side;
  const index_t ms = ceil_div(m, ss);
  BlockDependenceGraph graph(ms);
  ReadyTracker tracker(graph);

  struct Step {
    index_t bi, bj;
    BlockWork work;
    double compute_s;
  };
  struct SpeState {
    bool busy = false;
    std::vector<Step> steps;
    index_t cur_task = -1;
    std::size_t dma_next = 0;      // next step to fetch
    std::size_t comp_next = 0;     // next step to compute
    std::vector<char> data_ready;
    bool computing = false;
    double busy_seconds = 0.0;
    double put_done = 0.0;         // completion time of last writeback
    index_t tasks_run = 0;
  };
  std::vector<SpeState> spes(static_cast<std::size_t>(cfg.num_spes));
  std::vector<index_t> ready_tasks;
  std::vector<int> idle_spes;
  for (int s = 0; s < cfg.num_spes; ++s) idle_spes.push_back(s);

  // Barrier-wavefront mode (§II-B prior works): tasks grouped by
  // anti-diagonal; the next group is released only when the whole current
  // group has finished.
  std::vector<std::vector<index_t>> wavefronts;
  index_t wf_current = 0;
  index_t wf_remaining = 0;
  if (opts.barrier_wavefront) {
    wavefronts.assign(static_cast<std::size_t>(ms), {});
    for (index_t id = 0; id < graph.task_count(); ++id) {
      const auto [si, sj] = graph.coords(id);
      wavefronts[static_cast<std::size_t>(sj - si)].push_back(id);
    }
    ready_tasks = wavefronts[0];
    wf_remaining = static_cast<index_t>(wavefronts[0].size());
  } else {
    for (index_t id : tracker.initial_ready()) ready_tasks.push_back(id);
  }

  CellSimResult res;
  res.kernel_cycles = kcycles;

  // Builds the step list of one scheduling-block task.
  auto build_steps = [&](index_t si, index_t sj) {
    std::vector<Step> steps;
    const index_t col_lo = sj * ss, col_hi = std::min(m, (sj + 1) * ss);
    const index_t row_lo = si * ss, row_hi = std::min(m, (si + 1) * ss);
    for (index_t bj = col_lo; bj < col_hi; ++bj)
      for (index_t bi = std::min(bj, row_hi - 1); bi >= row_lo; --bi) {
        Step st;
        st.bi = bi;
        st.bj = bj;
        st.work = block_work(bi, bj, bs, w);
        st.compute_s = compute_seconds(st.work);
        steps.push_back(st);
      }
    return steps;
  };

  // Forward declarations via std::function (the handlers recurse).
  std::function<void(int)> pump_spe;
  std::function<void()> dispatch;

  auto finish_task = [&](int s) {
    SpeState& spe = spes[static_cast<std::size_t>(s)];
    const index_t id = spe.cur_task;
    spe.busy = false;
    spe.steps.clear();
    // PPE receives the finished task and releases dependents.
    q.after(cfg.ppe_dispatch_seconds, [&, id, s] {
      if (opts.barrier_wavefront) {
        if (--wf_remaining == 0 &&
            ++wf_current < static_cast<index_t>(wavefronts.size())) {
          ready_tasks = wavefronts[static_cast<std::size_t>(wf_current)];
          wf_remaining = static_cast<index_t>(ready_tasks.size());
        }
      } else {
        for (index_t next : tracker.complete(id)) ready_tasks.push_back(next);
      }
      idle_spes.push_back(s);
      dispatch();
    });
  };

  pump_spe = [&](int s) {
    SpeState& spe = spes[static_cast<std::size_t>(s)];
    // Issue DMA gets up to the prefetch window.
    while (spe.dma_next < spe.steps.size() &&
           spe.dma_next <
               spe.comp_next + 1 + static_cast<std::size_t>(opts.prefetch_depth)) {
      const std::size_t i = spe.dma_next++;
      const Step& st = spe.steps[i];
      const index_t bytes = st.work.dma_blocks_in * block_bytes;
      const double done =
          bus.transfer(q.now(), bytes, st.work.dma_blocks_in);
      res.dma_bytes_in += bytes;
      q.at(done, [&, s, i] {
        spes[static_cast<std::size_t>(s)].data_ready[i] = 1;
        pump_spe(s);
      });
    }
    // Start the next compute if its data is resident.
    if (!spe.computing && spe.comp_next < spe.steps.size() &&
        spe.data_ready[spe.comp_next]) {
      spe.computing = true;
      const std::size_t i = spe.comp_next;
      const Step st = spe.steps[i];
      const double compute_begin = q.now();
      q.after(st.compute_s, [&, s, i, st, compute_begin] {
        SpeState& sp = spes[static_cast<std::size_t>(s)];
        if (engine) engine->compute_block(st.bi, st.bj);
        if (opts.record_trace)
          res.trace.push_back({s, st.bi, st.bj, compute_begin, q.now()});
        sp.busy_seconds += st.compute_s;
        res.work += st.work;
        // Asynchronous put of the finished block.
        const index_t obytes = st.work.dma_blocks_out * block_bytes;
        sp.put_done = bus.transfer(q.now(), obytes, st.work.dma_blocks_out);
        res.dma_bytes_out += obytes;
        sp.computing = false;
        sp.comp_next = i + 1;
        if (sp.comp_next == sp.steps.size()) {
          // Task ends when the last writeback lands.
          q.at(std::max(q.now(), sp.put_done), [&, s] { finish_task(s); });
        } else {
          pump_spe(s);
        }
      });
    }
  };

  dispatch = [&] {
    while (!ready_tasks.empty() && !idle_spes.empty()) {
      const index_t id = ready_tasks.front();
      ready_tasks.erase(ready_tasks.begin());
      const int s = idle_spes.back();
      idle_spes.pop_back();
      const auto [si, sj] = graph.coords(id);
      SpeState& spe = spes[static_cast<std::size_t>(s)];
      spe.busy = true;
      ++spe.tasks_run;
      spe.cur_task = id;
      spe.steps = build_steps(si, sj);
      spe.dma_next = 0;
      spe.comp_next = 0;
      spe.computing = false;
      spe.data_ready.assign(spe.steps.size(), 0);
      ++res.tasks;
      q.after(cfg.ppe_dispatch_seconds, [&, s] { pump_spe(s); });
    }
  };

  q.after(0.0, dispatch);
  res.seconds = q.run();

  for (const auto& spe : spes) {
    res.spe_busy_seconds += spe.busy_seconds;
    res.spe_busy.push_back(spe.busy_seconds);
    res.spe_tasks.push_back(spe.tasks_run);
  }
  res.dma_commands = bus.stats().commands;

  // Utilization accounting (§VI-A.4): a useful 32-bit operation counts as
  // one scalar instruction; a W-wide SIMD instruction executes W (2W for
  // doubles counted as 64-bit pairs — we count 32-bit-equivalent lanes
  // of real work, i.e. w lanes per instruction).
  const auto ops = cb_op_counts_cached(static_cast<int>(w));
  res.useful_ops = double(res.work.kernel_calls) * ops.total() * double(w) +
                   double(res.work.scalar_relax) * 4.0;
  // Peak = dual issue * lanes at this precision per SPE.
  const double peak_ops_per_cycle =
      double(cfg.num_spes) * 2.0 * double(w == 2 ? 2 : 4);
  if (res.seconds > 0) {
    res.ops_per_cycle = res.useful_ops / (res.seconds * cfg.clock_hz);
    res.utilization = res.ops_per_cycle / peak_ops_per_cycle;
  }

  if (out != nullptr && mat != nullptr) *out = std::move(*mat);
  return res;
}

}  // namespace cellnpdp
