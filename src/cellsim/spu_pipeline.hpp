// SPU dual-issue pipeline timing model (paper §IV-A, Table I).
//
// The SPE issues in order from two pipelines: pipe 0 executes arithmetic
// (add / compare / select), pipe 1 executes memory and permute operations
// (load / store / shuffle). Two instructions issue in the same cycle only
// when they sit on different pipes. Every value has a producer latency;
// DPFP adds additionally stall their pipe for 6 cycles (§VI-A.5).
//
// The model is scoreboarded per-pipe in-order issue: the head instruction
// of each pipe's program-order queue issues as soon as its operands are
// ready and the pipe is free. This reproduces the paper's measured ~54
// cycles for the 80-instruction computing-block kernel once software
// pipelining across consecutive kernel invocations is accounted for
// (steady-state cycles = cycles(2 kernels) - cycles(1 kernel)).
#pragma once

#include <vector>

#include "cellsim/config.hpp"
#include "common/defs.hpp"

namespace cellnpdp {

enum class SpuOp { Load, Store, Shuffle, Add, Cmp, Sel };

/// Which pipe an op issues on (Table I's "pipeline type").
constexpr int spu_pipe(SpuOp op) {
  switch (op) {
    case SpuOp::Add:
    case SpuOp::Cmp:
    case SpuOp::Sel:
      return 0;
    case SpuOp::Load:
    case SpuOp::Store:
    case SpuOp::Shuffle:
      return 1;
  }
  return 0;
}

struct SpuInstr {
  SpuOp op;
  int dst = -1;                 ///< produced register (-1: none, e.g. store)
  int src[3] = {-1, -1, -1};    ///< consumed registers
};

/// A straight-line SPU program (SSA register naming; the real SPE has 128
/// registers, far more than any kernel needs).
struct SpuProgram {
  std::vector<SpuInstr> instrs;
  int next_reg = 0;

  int fresh() { return next_reg++; }

  int emit(SpuOp op, int a = -1, int b = -1, int c = -1) {
    const bool produces = op != SpuOp::Store;
    SpuInstr in;
    in.op = op;
    in.dst = produces ? fresh() : -1;
    in.src[0] = a;
    in.src[1] = b;
    in.src[2] = c;
    instrs.push_back(in);
    return in.dst;
  }

  /// Appends another program, renaming its registers to stay disjoint.
  void append(const SpuProgram& other) {
    const int base = next_reg;
    for (SpuInstr in : other.instrs) {
      if (in.dst >= 0) in.dst += base;
      for (int& s : in.src)
        if (s >= 0) s += base;
      instrs.push_back(in);
    }
    next_reg += other.next_reg;
  }
};

/// Cycle count for executing `prog` from a cold pipeline.
int simulate_spu_cycles(const SpuProgram& prog, const SpuLatencies& lat);

/// The register-cached computing-block kernel program for a WxW tile
/// (W = 4 single precision, W = 2 double precision on the 128-bit SPE).
/// Emits exactly the Table I instruction mix: 3W loads, W^2 shuffles,
/// W^2 adds, W^2 compares, W^2 selects, W stores.
SpuProgram make_cb_kernel_program(int w);

/// A software-pipelined stream of `iters` back-to-back kernel invocations:
/// iteration i+1's loads and shuffles are hoisted above iteration i's
/// stores, which is the §IV-A "software pipelining to hide the 10-cycle
/// latency". Per-iteration instruction mix is unchanged.
SpuProgram make_cb_kernel_stream(int w, int iters);

/// Steady-state cycles per kernel invocation inside a pipelined stream:
/// (cycles(stream of 3) - cycles(stream of 1)) / 2.
int kernel_steady_cycles(int w, const SpuLatencies& lat);

/// Cold-start cycles of a single kernel invocation.
int kernel_cold_cycles(int w, const SpuLatencies& lat);

}  // namespace cellnpdp
