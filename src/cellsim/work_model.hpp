// Closed-form work model of one memory-block relaxation.
//
// Mirrors BlockEngine's loop structure exactly — the counts are validated
// against EngineStats in tests — and is what the timing-only simulation
// charges, which is how n = 16384 runs complete in seconds instead of the
// hours a functional simulation would take.
#pragma once

#include "common/defs.hpp"

namespace cellnpdp {

struct BlockWork {
  index_t kernel_calls = 0;   ///< WxW tile kernel invocations
  index_t scalar_relax = 0;   ///< scalar relaxations (corners + diag tiles)
  index_t cells = 0;          ///< cells finalised
  index_t dma_blocks_in = 0;  ///< memory blocks fetched into the LS
  index_t dma_blocks_out = 0; ///< memory blocks written back

  BlockWork& operator+=(const BlockWork& o) {
    kernel_calls += o.kernel_calls;
    scalar_relax += o.scalar_relax;
    cells += o.cells;
    dma_blocks_in += o.dma_blocks_in;
    dma_blocks_out += o.dma_blocks_out;
    return *this;
  }
};

/// Work of memory block (bi,bj) for block side bs and kernel width w.
inline BlockWork block_work(index_t bi, index_t bj, index_t bs, index_t w) {
  const index_t tb = bs / w;
  BlockWork work;
  work.dma_blocks_out = 1;

  if (bi == bj) {
    work.dma_blocks_in = 1;  // the block itself (seeded)
    for (index_t ct = 0; ct < tb; ++ct)
      for (index_t rt = ct; rt >= 0; --rt) {
        if (rt == ct) {
          // diagonal tile: only strictly-upper cells are finalised; each
          // cell (lr,lc) relaxes over lc-1-lr same-tile k values.
          work.cells += w * (w - 1) / 2;
          for (index_t lc = 1; lc < w; ++lc)
            work.scalar_relax += lc * (lc - 1) / 2;
          continue;
        }
        work.kernel_calls += ct - rt - 1;       // middle tiles
        work.scalar_relax += w * w * (w - 1);   // corner pass
        work.cells += w * w;
      }
    return work;
  }
  work.cells = bs * bs;

  const index_t mid = bj - bi - 1;
  work.dma_blocks_in = 2 * mid + 3;  // A,B per middle block + D1 + D2 + C
  work.kernel_calls += mid * tb * tb * tb;          // stage 1
  work.kernel_calls += tb * tb * (tb - 1);          // stage 2 (a) + (b)
  work.scalar_relax += tb * tb * w * w * (w - 1);   // corner passes
  return work;
}

/// Aggregate work over the whole n-cell problem.
inline BlockWork total_work(index_t n, index_t bs, index_t w) {
  const index_t m = ceil_div(n, bs);
  BlockWork total;
  for (index_t bj = 0; bj < m; ++bj)
    for (index_t bi = bj; bi >= 0; --bi) total += block_work(bi, bj, bs, w);
  return total;
}

}  // namespace cellnpdp
