// Shared main-memory / EIB bandwidth model.
//
// All SPE DMA traffic funnels through one bandwidth-limited resource
// (25.6 GB/s on the QS20). A transfer reserves the bus for bytes/BW
// seconds, serialising against every other transfer — which is exactly how
// aggregate-bandwidth saturation appears when many SPEs stream blocks.
// Each DMA command additionally pays a fixed latency that does not occupy
// the bus (round-trip through the MFC); commands in one logical transfer
// are pipelined, so the latency is charged once per transfer.
#pragma once

#include <algorithm>

#include "common/defs.hpp"

namespace cellnpdp {

struct BusStats {
  index_t bytes = 0;
  index_t commands = 0;
  double busy_seconds = 0.0;
};

class MemoryBus {
 public:
  MemoryBus(double bandwidth_bytes_per_s, double cmd_latency_s,
            index_t cmd_overhead_bytes = 0)
      : bw_(bandwidth_bytes_per_s),
        lat_(cmd_latency_s),
        overhead_(cmd_overhead_bytes) {}

  /// A transfer of `bytes` split over `cmds` DMA commands, issued at time
  /// `t`. Returns the completion time.
  double transfer(double t, index_t bytes, index_t cmds) {
    const double start = std::max(t, free_at_);
    const double xfer =
        static_cast<double>(bytes + cmds * overhead_) / bw_;
    free_at_ = start + xfer;
    stats_.bytes += bytes;
    stats_.commands += cmds;
    stats_.busy_seconds += xfer;
    return free_at_ + lat_;
  }

  const BusStats& stats() const { return stats_; }
  double utilization(double total_seconds) const {
    return total_seconds <= 0 ? 0.0 : stats_.busy_seconds / total_seconds;
  }

 private:
  double bw_;
  double lat_;
  index_t overhead_ = 0;
  double free_at_ = 0.0;
  BusStats stats_;
};

}  // namespace cellnpdp
