#include "cellsim/spu_interp.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace cellnpdp {

SpuKernelProgram make_cb_kernel_semantics(int w) {
  assert(w >= 1 && w <= 8);
  SpuKernelProgram k;
  k.width = w;
  SpuProgram& p = k.prog;

  auto annotate = [&](SpuMemBase base, int row, int ln) {
    k.mem.push_back(base);
    k.mem_row.push_back(row);
    k.lane.push_back(ln);
  };

  // Mirror make_cb_kernel_program's emission order exactly: A rows, B rows,
  // C rows, shuffles (k-major), adds (k-major), cmp/sel pairs, stores.
  std::vector<int> A(static_cast<std::size_t>(w)),
      B(static_cast<std::size_t>(w)), C(static_cast<std::size_t>(w));
  for (int r = 0; r < w; ++r) {
    A[static_cast<std::size_t>(r)] = p.emit(SpuOp::Load);
    annotate(SpuMemBase::A, r, -1);
  }
  for (int kk = 0; kk < w; ++kk) {
    B[static_cast<std::size_t>(kk)] = p.emit(SpuOp::Load);
    annotate(SpuMemBase::B, kk, -1);
  }
  for (int r = 0; r < w; ++r) {
    C[static_cast<std::size_t>(r)] = p.emit(SpuOp::Load);
    annotate(SpuMemBase::C, r, -1);
  }

  std::vector<std::vector<int>> S(static_cast<std::size_t>(w)),
      D(static_cast<std::size_t>(w));
  for (int r = 0; r < w; ++r) {
    S[static_cast<std::size_t>(r)].assign(static_cast<std::size_t>(w), -1);
    D[static_cast<std::size_t>(r)].assign(static_cast<std::size_t>(w), -1);
  }
  for (int kk = 0; kk < w; ++kk)
    for (int r = 0; r < w; ++r) {
      S[static_cast<std::size_t>(r)][static_cast<std::size_t>(kk)] =
          p.emit(SpuOp::Shuffle, A[static_cast<std::size_t>(r)]);
      annotate(SpuMemBase::None, -1, kk);
    }
  for (int kk = 0; kk < w; ++kk)
    for (int r = 0; r < w; ++r) {
      D[static_cast<std::size_t>(r)][static_cast<std::size_t>(kk)] =
          p.emit(SpuOp::Add,
                 S[static_cast<std::size_t>(r)][static_cast<std::size_t>(kk)],
                 B[static_cast<std::size_t>(kk)]);
      annotate(SpuMemBase::None, -1, -1);
    }

  std::vector<int> acc = C;
  for (int kk = 0; kk < w; ++kk) {
    std::vector<int> m(static_cast<std::size_t>(w));
    for (int r = 0; r < w; r += 2) {
      const int r2 = std::min(r + 1, w - 1);
      m[static_cast<std::size_t>(r)] = p.emit(
          SpuOp::Cmp, acc[static_cast<std::size_t>(r)],
          D[static_cast<std::size_t>(r)][static_cast<std::size_t>(kk)]);
      annotate(SpuMemBase::None, -1, -1);
      if (r2 != r) {
        m[static_cast<std::size_t>(r2)] = p.emit(
            SpuOp::Cmp, acc[static_cast<std::size_t>(r2)],
            D[static_cast<std::size_t>(r2)][static_cast<std::size_t>(kk)]);
        annotate(SpuMemBase::None, -1, -1);
      }
      acc[static_cast<std::size_t>(r)] = p.emit(
          SpuOp::Sel, acc[static_cast<std::size_t>(r)],
          D[static_cast<std::size_t>(r)][static_cast<std::size_t>(kk)],
          m[static_cast<std::size_t>(r)]);
      annotate(SpuMemBase::None, -1, -1);
      if (r2 != r) {
        acc[static_cast<std::size_t>(r2)] = p.emit(
            SpuOp::Sel, acc[static_cast<std::size_t>(r2)],
            D[static_cast<std::size_t>(r2)][static_cast<std::size_t>(kk)],
            m[static_cast<std::size_t>(r2)]);
        annotate(SpuMemBase::None, -1, -1);
      }
    }
  }
  for (int r = 0; r < w; ++r) {
    p.emit(SpuOp::Store, acc[static_cast<std::size_t>(r)]);
    annotate(SpuMemBase::C, r, -1);
  }
  return k;
}

void interpret_spu_kernel(const SpuKernelProgram& k, float* C, index_t sc,
                          const float* A, index_t sa, const float* B,
                          index_t sb) {
  const int w = k.width;
  // A register is a w-lane vector; Cmp produces an all-ones/zero mask
  // encoded as 1.0f / 0.0f lanes.
  std::vector<std::vector<float>> regs(
      static_cast<std::size_t>(k.prog.next_reg),
      std::vector<float>(static_cast<std::size_t>(w), 0.0f));

  auto row_ptr = [&](SpuMemBase base, int row) -> const float* {
    switch (base) {
      case SpuMemBase::A: return A + row * sa;
      case SpuMemBase::B: return B + row * sb;
      case SpuMemBase::C: return C + row * sc;
      default: throw std::logic_error("load without a memory operand");
    }
  };

  for (std::size_t idx = 0; idx < k.prog.instrs.size(); ++idx) {
    const SpuInstr& in = k.prog.instrs[idx];
    switch (in.op) {
      case SpuOp::Load: {
        const float* src = row_ptr(k.mem[idx], k.mem_row[idx]);
        for (int l = 0; l < w; ++l)
          regs[static_cast<std::size_t>(in.dst)][static_cast<std::size_t>(l)] =
              src[l];
        break;
      }
      case SpuOp::Store: {
        if (k.mem[idx] != SpuMemBase::C)
          throw std::logic_error("stores must target C");
        float* dst = C + k.mem_row[idx] * sc;
        for (int l = 0; l < w; ++l)
          dst[l] = regs[static_cast<std::size_t>(in.src[0])]
                       [static_cast<std::size_t>(l)];
        break;
      }
      case SpuOp::Shuffle: {
        const float v = regs[static_cast<std::size_t>(in.src[0])]
                            [static_cast<std::size_t>(k.lane[idx])];
        for (int l = 0; l < w; ++l)
          regs[static_cast<std::size_t>(in.dst)][static_cast<std::size_t>(l)] =
              v;
        break;
      }
      case SpuOp::Add: {
        for (int l = 0; l < w; ++l)
          regs[static_cast<std::size_t>(in.dst)][static_cast<std::size_t>(l)] =
              regs[static_cast<std::size_t>(in.src[0])]
                  [static_cast<std::size_t>(l)] +
              regs[static_cast<std::size_t>(in.src[1])]
                  [static_cast<std::size_t>(l)];
        break;
      }
      case SpuOp::Cmp: {
        // Marks the lanes where the candidate (src1) beats the current
        // value (src0) — the paper's "mark the minimum values".
        for (int l = 0; l < w; ++l)
          regs[static_cast<std::size_t>(in.dst)][static_cast<std::size_t>(l)] =
              regs[static_cast<std::size_t>(in.src[1])]
                  [static_cast<std::size_t>(l)] <
                      regs[static_cast<std::size_t>(in.src[0])]
                          [static_cast<std::size_t>(l)]
                  ? 1.0f
                  : 0.0f;
        break;
      }
      case SpuOp::Sel: {
        for (int l = 0; l < w; ++l)
          regs[static_cast<std::size_t>(in.dst)][static_cast<std::size_t>(l)] =
              regs[static_cast<std::size_t>(in.src[2])]
                  [static_cast<std::size_t>(l)] != 0.0f
                  ? regs[static_cast<std::size_t>(in.src[1])]
                        [static_cast<std::size_t>(l)]
                  : regs[static_cast<std::size_t>(in.src[0])]
                        [static_cast<std::size_t>(l)];
        break;
      }
    }
  }
}

}  // namespace cellnpdp
