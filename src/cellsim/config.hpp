// Cell Broadband Engine machine description (paper §II-C).
//
// The QS20 blade the paper measures on: two Cell processors, 8 SPEs each,
// 3.2 GHz, 256 KB local stores, 25.6 GB/s main-memory bandwidth, SPEs with
// two in-order issue pipelines (pipe 0: arithmetic; pipe 1: load / store /
// shuffle / branch).
//
// Calibrated constants (marked CAL) are baseline-only parameters fitted to
// the paper's own measurements where first-principles modelling is not
// possible on commodity hardware; EXPERIMENTS.md discusses each.
#pragma once

#include <string>

#include "common/defs.hpp"

namespace cellnpdp {

enum class Precision { Single, Double };

constexpr index_t precision_bytes(Precision p) {
  return p == Precision::Single ? 4 : 8;
}

constexpr const char* precision_name(Precision p) {
  return p == Precision::Single ? "single" : "double";
}

/// Instruction latencies for one precision (paper Table I and §VI-A.5).
struct SpuLatencies {
  int load = 6;
  int shuffle = 4;
  int add = 6;        ///< 13 for DPFP
  int cmp = 2;
  int sel = 2;
  int store = 6;
  int add_stall = 0;  ///< DPFP adds stall the pipe 6 extra cycles
  int cmp_stall = 0;  ///< DPFP compares run on the same FPD unit and stall too
};

inline SpuLatencies spu_latencies(Precision p) {
  SpuLatencies l;
  if (p == Precision::Double) {
    // The SPU FPD unit is not fully pipelined: every double-precision
    // arithmetic or compare instruction has 13-cycle latency and stalls
    // the pipe for 6 extra cycles (§VI-A.5).
    l.add = 13;
    l.add_stall = 6;
    l.cmp = 13;
    l.cmp_stall = 6;
  }
  return l;
}

struct CellConfig {
  std::string name = "QS20";
  int num_spes = 16;                      ///< dual-Cell blade
  double clock_hz = 3.2e9;
  index_t local_store_bytes = 256 * 1024;
  index_t ls_code_bytes = 48 * 1024;      ///< instructions resident in LS
  int ls_buffers = 6;                     ///< double-buffered triples (§III)

  double memory_bandwidth = 25.6e9;       ///< bytes/s, shared over the EIB
  double dma_cmd_latency = 250e-9;        ///< CAL: small-DMA round trip
  index_t dma_overhead_bytes = 512;       ///< per-command setup cost charged
                                          ///< as bus occupancy (small DMAs
                                          ///< reach a fraction of peak BW)
  double ppe_dispatch_seconds = 2e-6;     ///< task queue overhead per task

  /// CAL: scalar relaxation cost on one SPE out of the local store (no
  /// SIMD): in-order core, dependent load-add-cmp chain per iteration.
  double spe_scalar_cycles_per_relax_sp = 27.0;
  double spe_scalar_cycles_per_relax_dp = 34.0;

  double spe_scalar_cycles_per_relax(Precision p) const {
    return p == Precision::Single ? spe_scalar_cycles_per_relax_sp
                                  : spe_scalar_cycles_per_relax_dp;
  }

  /// Largest square memory block (cells per side) such that `ls_buffers`
  /// of them plus the code fit in the local store — the paper's
  /// "block size should not exceed 1/6 of the local store".
  index_t max_block_side(Precision p) const {
    const index_t budget =
        (local_store_bytes - ls_code_bytes) / ls_buffers;
    index_t side = 1;
    while ((side + 1) * (side + 1) * precision_bytes(p) <= budget) ++side;
    return side;
  }
};

/// The IBM QS20 dual-Cell blade (16 SPEs).
inline CellConfig qs20() { return {}; }

/// A single Cell processor (8 SPEs).
inline CellConfig cell_single() {
  CellConfig c;
  c.name = "Cell(8 SPE)";
  c.num_spes = 8;
  return c;
}

/// §VI-D: hypothetical machines with smaller local stores.
inline CellConfig cell_with_local_store(index_t ls_bytes) {
  CellConfig c;
  c.name = "Cell(LS=" + std::to_string(ls_bytes / 1024) + "KB)";
  c.local_store_bytes = ls_bytes;
  c.ls_code_bytes = 0;  // sweep applies the whole LS to data buffers
  return c;
}

}  // namespace cellnpdp
