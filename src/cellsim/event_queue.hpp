// Discrete-event scheduling core of the Cell simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace cellnpdp {

class EventQueue {
 public:
  using Action = std::function<void()>;

  double now() const { return now_; }

  /// Schedules `fn` at absolute simulated time `t` (>= now). Events at the
  /// same instant run in scheduling order (stable via sequence numbers), so
  /// runs are deterministic.
  void at(double t, Action fn) {
    heap_.push(Event{t, seq_++, std::move(fn)});
  }

  void after(double delay, Action fn) { at(now_ + delay, std::move(fn)); }

  /// Runs events until the queue drains. Returns the final simulated time.
  double run() {
    while (!heap_.empty()) {
      // Moving the action out before popping keeps `heap_` reentrant: the
      // action may schedule new events.
      Event ev = std::move(const_cast<Event&>(heap_.top()));
      heap_.pop();
      now_ = ev.time;
      ev.action();
    }
    return now_;
  }

  bool empty() const { return heap_.empty(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Action action;

    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace cellnpdp
