#include "cellsim/spu_pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace cellnpdp {

namespace {

int op_latency(SpuOp op, const SpuLatencies& lat) {
  switch (op) {
    case SpuOp::Load: return lat.load;
    case SpuOp::Store: return lat.store;
    case SpuOp::Shuffle: return lat.shuffle;
    case SpuOp::Add: return lat.add;
    case SpuOp::Cmp: return lat.cmp;
    case SpuOp::Sel: return lat.sel;
  }
  return 1;
}

int op_stall(SpuOp op, const SpuLatencies& lat) {
  if (op == SpuOp::Add) return lat.add_stall;
  if (op == SpuOp::Cmp) return lat.cmp_stall;
  return 0;
}

}  // namespace

int simulate_spu_cycles(const SpuProgram& prog, const SpuLatencies& lat) {
  // Per-pipe in-order queues of instruction indices.
  std::deque<std::size_t> queue[2];
  for (std::size_t i = 0; i < prog.instrs.size(); ++i)
    queue[spu_pipe(prog.instrs[i].op)].push_back(i);

  // A register produced inside the program is unavailable until its
  // producer has issued; externally-defined registers (never a dst) are
  // ready from cycle 0.
  constexpr int kNotYetProduced = 1 << 28;
  std::vector<int> ready(static_cast<std::size_t>(prog.next_reg), 0);
  for (const auto& in : prog.instrs)
    if (in.dst >= 0) ready[static_cast<std::size_t>(in.dst)] = kNotYetProduced;
  int pipe_free[2] = {0, 0};
  int cycle = 0;
  int done_at = 0;

  auto issueable = [&](std::size_t idx) {
    const SpuInstr& in = prog.instrs[idx];
    for (int s : in.src)
      if (s >= 0 && ready[static_cast<std::size_t>(s)] > cycle) return false;
    return true;
  };

  while (!queue[0].empty() || !queue[1].empty()) {
    bool issued = false;
    for (int p = 0; p < 2; ++p) {
      if (queue[p].empty() || pipe_free[p] > cycle) continue;
      const std::size_t idx = queue[p].front();
      if (!issueable(idx)) continue;
      const SpuInstr& in = prog.instrs[idx];
      queue[p].pop_front();
      const int latency = op_latency(in.op, lat);
      if (in.dst >= 0) ready[static_cast<std::size_t>(in.dst)] = cycle + latency;
      pipe_free[p] = cycle + 1 + op_stall(in.op, lat);
      done_at = std::max(done_at, cycle + latency);
      issued = true;
    }
    ++cycle;
    (void)issued;
  }
  return std::max(done_at, cycle);
}

SpuProgram make_cb_kernel_program(int w) {
  assert(w >= 1 && w <= 8);
  SpuProgram p;

  // Software-pipelined emission order. Pipe-1 stream: A rows first (the
  // shuffles depend on them), then B rows, then C rows, with the shuffles
  // following; pipe-0 stream: adds as their shuffles complete, then the
  // cmp/sel accumulation chains interleaved two rows at a time so the
  // 2-cycle cmp->sel dependence never bubbles the pipe.
  std::vector<int> A(w), B(w), C(w);
  for (int r = 0; r < w; ++r) A[r] = p.emit(SpuOp::Load);
  for (int k = 0; k < w; ++k) B[k] = p.emit(SpuOp::Load);
  for (int r = 0; r < w; ++r) C[r] = p.emit(SpuOp::Load);

  // shuffles S[r][k]: splat lane k of A row r.
  std::vector<std::vector<int>> S(static_cast<std::size_t>(w)),
      D(static_cast<std::size_t>(w));
  for (int k = 0; k < w; ++k)
    for (int r = 0; r < w; ++r)
      S[static_cast<std::size_t>(r)].push_back(-1);
  for (int k = 0; k < w; ++k)
    for (int r = 0; r < w; ++r)
      S[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)] =
          p.emit(SpuOp::Shuffle, A[r]);

  // adds D[r][k] = S[r][k] + B[k], emitted k-major so rows stay independent.
  for (int r = 0; r < w; ++r) D[static_cast<std::size_t>(r)].resize(
      static_cast<std::size_t>(w));
  for (int k = 0; k < w; ++k)
    for (int r = 0; r < w; ++r)
      D[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)] =
          p.emit(SpuOp::Add, S[static_cast<std::size_t>(r)]
                              [static_cast<std::size_t>(k)], B[k]);

  // Accumulation: per k step, cmp/sel for all rows interleaved in pairs.
  std::vector<int> acc = C;
  for (int k = 0; k < w; ++k) {
    std::vector<int> m(static_cast<std::size_t>(w));
    for (int r = 0; r < w; r += 2) {
      const int r2 = std::min(r + 1, w - 1);
      m[static_cast<std::size_t>(r)] =
          p.emit(SpuOp::Cmp, acc[r],
                 D[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)]);
      if (r2 != r)
        m[static_cast<std::size_t>(r2)] = p.emit(
            SpuOp::Cmp, acc[r2],
            D[static_cast<std::size_t>(r2)][static_cast<std::size_t>(k)]);
      acc[r] = p.emit(SpuOp::Sel, acc[r],
                      D[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)],
                      m[static_cast<std::size_t>(r)]);
      if (r2 != r)
        acc[r2] = p.emit(
            SpuOp::Sel, acc[r2],
            D[static_cast<std::size_t>(r2)][static_cast<std::size_t>(k)],
            m[static_cast<std::size_t>(r2)]);
    }
  }

  for (int r = 0; r < w; ++r) p.emit(SpuOp::Store, acc[r]);
  return p;
}

namespace {

// One kernel iteration split into its pipeline stages so the stream
// generator can interleave consecutive iterations.
struct KernelStage {
  std::vector<int> loads;     // emitted: A rows, B rows, C rows
  std::vector<int> shuffles;  // S[r*w+k]
};

KernelStage emit_loads_shuffles(SpuProgram& p, int w) {
  KernelStage st;
  std::vector<int> A(static_cast<std::size_t>(w));
  for (int r = 0; r < w; ++r) {
    A[static_cast<std::size_t>(r)] = p.emit(SpuOp::Load);
    st.loads.push_back(A[static_cast<std::size_t>(r)]);
  }
  for (int k = 0; k < w; ++k) st.loads.push_back(p.emit(SpuOp::Load));  // B
  for (int r = 0; r < w; ++r) st.loads.push_back(p.emit(SpuOp::Load));  // C
  st.shuffles.resize(static_cast<std::size_t>(w * w));
  for (int k = 0; k < w; ++k)
    for (int r = 0; r < w; ++r)
      st.shuffles[static_cast<std::size_t>(r * w + k)] =
          p.emit(SpuOp::Shuffle, A[static_cast<std::size_t>(r)]);
  return st;
}

// Arithmetic + stores of one iteration, given its loads/shuffles.
void emit_arith_stores(SpuProgram& p, int w, const KernelStage& st) {
  auto B = [&](int k) { return st.loads[static_cast<std::size_t>(w + k)]; };
  auto C = [&](int r) { return st.loads[static_cast<std::size_t>(2 * w + r)]; };
  std::vector<std::vector<int>> D(static_cast<std::size_t>(w));
  for (int r = 0; r < w; ++r)
    D[static_cast<std::size_t>(r)].resize(static_cast<std::size_t>(w));
  for (int k = 0; k < w; ++k)
    for (int r = 0; r < w; ++r)
      D[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)] = p.emit(
          SpuOp::Add, st.shuffles[static_cast<std::size_t>(r * w + k)], B(k));
  std::vector<int> acc(static_cast<std::size_t>(w));
  for (int r = 0; r < w; ++r) acc[static_cast<std::size_t>(r)] = C(r);
  for (int k = 0; k < w; ++k) {
    for (int r = 0; r < w; r += 2) {
      const int r2 = std::min(r + 1, w - 1);
      const int m1 = p.emit(SpuOp::Cmp, acc[static_cast<std::size_t>(r)],
                            D[static_cast<std::size_t>(r)]
                             [static_cast<std::size_t>(k)]);
      const int m2 =
          r2 != r ? p.emit(SpuOp::Cmp, acc[static_cast<std::size_t>(r2)],
                           D[static_cast<std::size_t>(r2)]
                            [static_cast<std::size_t>(k)])
                  : -1;
      acc[static_cast<std::size_t>(r)] =
          p.emit(SpuOp::Sel, acc[static_cast<std::size_t>(r)],
                 D[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)],
                 m1);
      if (r2 != r)
        acc[static_cast<std::size_t>(r2)] =
            p.emit(SpuOp::Sel, acc[static_cast<std::size_t>(r2)],
                   D[static_cast<std::size_t>(r2)]
                    [static_cast<std::size_t>(k)],
                   m2);
    }
  }
  for (int r = 0; r < w; ++r) p.emit(SpuOp::Store, acc[static_cast<std::size_t>(r)]);
}

}  // namespace

SpuProgram make_cb_kernel_stream(int w, int iters) {
  SpuProgram p;
  // Software pipelining: hoist iteration i+1's loads and shuffles above
  // iteration i's arithmetic tail and stores, so pipe 1 never head-blocks
  // pipe 0 across iteration boundaries.
  KernelStage cur = emit_loads_shuffles(p, w);
  for (int i = 0; i < iters; ++i) {
    KernelStage next;
    if (i + 1 < iters) next = emit_loads_shuffles(p, w);
    emit_arith_stores(p, w, cur);
    cur = std::move(next);
  }
  return p;
}

int kernel_cold_cycles(int w, const SpuLatencies& lat) {
  return simulate_spu_cycles(make_cb_kernel_program(w), lat);
}

int kernel_steady_cycles(int w, const SpuLatencies& lat) {
  const int c1 = simulate_spu_cycles(make_cb_kernel_stream(w, 1), lat);
  const int c3 = simulate_spu_cycles(make_cb_kernel_stream(w, 3), lat);
  const int diff = (c3 - c1) / 2;
  // A kernel can never retire faster than its pipe-0 occupancy:
  // w^2 adds + w^2 cmps (each holding the pipe 1 + stall cycles) + w^2 sels.
  const int pipe0_occupancy = w * w * (1 + lat.add_stall) +
                              w * w * (1 + lat.cmp_stall) + w * w;
  return std::max(diff, pipe0_occupancy);
}

}  // namespace cellnpdp
