// Functional interpreter for SPU kernel programs.
//
// The pipeline model (spu_pipeline) charges cycles for the kernel's
// instruction stream; this interpreter *executes* the same stream on real
// register values — loads, splat-shuffles, adds, compare+select pairs,
// stores — against a C/A/B tile triple. Tests run it against the native
// kernels, proving that the instruction sequence whose timing we model is
// semantically the paper's computing-block relaxation (not just an
// instruction histogram).
#pragma once

#include <vector>

#include "cellsim/spu_pipeline.hpp"
#include "common/defs.hpp"

namespace cellnpdp {

/// Memory operand annotation for loads/stores: which tile and row.
enum class SpuMemBase : int { None = -1, A = 0, B = 1, C = 2 };

/// A kernel program with full operand semantics.
struct SpuKernelProgram {
  SpuProgram prog;                 ///< the timed instruction stream
  std::vector<SpuMemBase> mem;     ///< per instruction: load/store tile
  std::vector<int> mem_row;        ///< per instruction: tile row
  std::vector<int> lane;           ///< per instruction: shuffle lane
  int width = 4;
};

/// Builds the register-cached computing-block kernel with operand
/// annotations. The instruction stream is identical to
/// make_cb_kernel_program(w) (tests enforce this).
SpuKernelProgram make_cb_kernel_semantics(int w);

/// Executes the program: C = the result of running the instruction stream
/// against tiles A, B, C with the given row strides.
void interpret_spu_kernel(const SpuKernelProgram& k, float* C, index_t sc,
                          const float* A, index_t sa, const float* B,
                          index_t sb);

}  // namespace cellnpdp
