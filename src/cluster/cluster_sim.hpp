// Distributed-memory NPDP simulation — the paper's related-work category 2
// (§II-B: Almeida et al., Tan et al. [23] study NPDP on clusters where
// "the communication overhead cannot be neglected"). This tier lets the
// repository quantify exactly that: the same blocked algorithm, but memory
// blocks distributed block-column-cyclically over nodes, with every
// finished block broadcast to the other nodes over latency/bandwidth-
// modelled links.
//
// Each node is a multicore machine running the tier-1 block procedure (the
// same work model as the Cell/CPU engines); the discrete-event core,
// dependence graph and bandwidth-reservation models are shared with
// src/cellsim. Functional mode executes the real BlockEngine in simulated
// event order, so distributed runs are checkable bit-for-bit.
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "cellsim/event_queue.hpp"
#include "cellsim/memory_bus.hpp"
#include "cellsim/spu_pipeline.hpp"
#include "cellsim/work_model.hpp"
#include "core/engine.hpp"
#include "core/instance.hpp"
#include "taskgraph/dependence_graph.hpp"

namespace cellnpdp {

struct ClusterConfig {
  int nodes = 8;
  int cores_per_node = 8;           ///< blocks computed concurrently per node
  double clock_hz = 2.93e9;         ///< per-core clock
  double kernel_cycles_per_relax = 54.0 / 64.0;  ///< tier-1 SIMD rate
  double scalar_cycles_per_relax = 4.0;          ///< corner-pass rate
  double link_bandwidth = 3.0e9;    ///< bytes/s per node NIC
  double link_latency = 10e-6;      ///< per-message latency
  bool tree_broadcast = true;       ///< log2(P) pipelined vs P-1 sequential
};

struct ClusterSimOptions {
  index_t block_side = 64;
  bool functional = false;
};

struct ClusterSimResult {
  double seconds = 0.0;
  index_t comm_bytes = 0;
  index_t messages = 0;
  std::vector<double> node_busy;    ///< per-node compute seconds
  std::vector<double> node_comm;    ///< per-node NIC busy seconds
  double compute_seconds_total = 0.0;
  double comm_seconds_total = 0.0;  ///< sum of node_comm
  double efficiency = 0.0;          ///< total compute / (seconds * nodes)
  index_t blocks = 0;
};

/// Simulates the blocked NPDP across `cfg.nodes` nodes. Blocks are owned
/// by column: owner(bi,bj) = bj mod nodes. In Functional mode the solved
/// table is written to *out.
template <class T>
ClusterSimResult simulate_cluster_npdp(
    const NpdpInstance<T>& inst, const ClusterConfig& cfg,
    const ClusterSimOptions& opts,
    BlockedTriangularMatrix<T>* out = nullptr) {
  if (cfg.nodes < 1) throw std::invalid_argument("nodes must be >= 1");
  const index_t bs = opts.block_side;
  const index_t m = ceil_div(inst.n, bs);
  const index_t block_bytes = bs * bs * static_cast<index_t>(sizeof(T));
  const index_t w = sizeof(T) == 4 ? 4 : 2;

  std::unique_ptr<BlockedTriangularMatrix<T>> mat;
  std::unique_ptr<BlockEngine<T>> engine;
  if (opts.functional) {
    mat = std::make_unique<BlockedTriangularMatrix<T>>(inst.n, bs);
    NpdpOptions eopts;
    eopts.block_side = bs;
    engine = std::make_unique<BlockEngine<T>>(*mat, inst, eopts);
    engine->seed();
  }

  auto compute_seconds = [&](index_t bi, index_t bj) {
    const BlockWork bw = block_work(bi, bj, bs, w);
    const double cycles =
        double(bw.kernel_calls) * double(w * w * w) *
            cfg.kernel_cycles_per_relax +
        double(bw.scalar_relax) * cfg.scalar_cycles_per_relax;
    return cycles / cfg.clock_hz;
  };

  auto owner = [&](index_t, index_t bj) {
    return static_cast<int>(bj % cfg.nodes);
  };

  // Broadcast time occupying the sender's NIC, after which the block is
  // visible on every node.
  auto broadcast_seconds = [&]() {
    if (cfg.nodes == 1) return 0.0;
    if (cfg.tree_broadcast) {
      int hops = 0;
      for (int p = 1; p < cfg.nodes; p *= 2) ++hops;
      return cfg.link_latency * hops +
             double(block_bytes) / cfg.link_bandwidth;
    }
    return cfg.link_latency +
           double(block_bytes) * double(cfg.nodes - 1) / cfg.link_bandwidth;
  };

  EventQueue q;
  BlockDependenceGraph graph(m);
  std::vector<MemoryBus> nics;
  nics.reserve(static_cast<std::size_t>(cfg.nodes));
  for (int p = 0; p < cfg.nodes; ++p)
    nics.emplace_back(cfg.link_bandwidth, cfg.link_latency);

  struct Node {
    int free_cores = 0;
    std::deque<index_t> ready;  // block ids ready to compute here
    double busy_seconds = 0.0;
  };
  std::vector<Node> nodes(static_cast<std::size_t>(cfg.nodes));
  for (auto& nd : nodes) nd.free_cores = cfg.cores_per_node;

  ClusterSimResult res;
  res.blocks = graph.task_count();

  // A block becomes runnable on its owner once both simplified-graph
  // predecessors are *visible there*: immediately for a predecessor that
  // lives on the same node (the same-column one), at broadcast arrival for
  // a remote one.
  std::vector<int> waiting(static_cast<std::size_t>(graph.task_count()));
  for (index_t id = 0; id < graph.task_count(); ++id) {
    const auto [bi, bj] = graph.coords(id);
    waiting[static_cast<std::size_t>(id)] = graph.dependency_count(bi, bj);
  }

  std::function<void(int)> pump;

  auto notify = [&](index_t dep_id) {
    if (--waiting[static_cast<std::size_t>(dep_id)] == 0) {
      const auto [bi, bj] = graph.coords(dep_id);
      const int o = owner(bi, bj);
      nodes[static_cast<std::size_t>(o)].ready.push_back(dep_id);
      pump(o);
    }
  };

  pump = [&](int p) {
    Node& nd = nodes[static_cast<std::size_t>(p)];
    while (nd.free_cores > 0 && !nd.ready.empty()) {
      const index_t id = nd.ready.front();
      nd.ready.pop_front();
      --nd.free_cores;
      const auto [bi, bj] = graph.coords(id);
      const double cs = compute_seconds(bi, bj);
      q.after(cs, [&, p, id, bi, bj, cs] {
        Node& me = nodes[static_cast<std::size_t>(p)];
        me.busy_seconds += cs;
        ++me.free_cores;
        if (engine) engine->compute_block(bi, bj);
        // Broadcast to the other nodes; the block is visible locally now
        // and remotely when the NIC transfer lands.
        double remote_visible = q.now();
        if (cfg.nodes > 1) {
          const double done = nics[static_cast<std::size_t>(p)].transfer(
              q.now(), block_bytes * (cfg.nodes - 1), cfg.nodes - 1);
          res.comm_bytes += block_bytes * (cfg.nodes - 1);
          res.messages += static_cast<index_t>(cfg.nodes - 1);
          remote_visible = std::max(done, q.now() + broadcast_seconds());
        }
        for (const auto& [di, dj] : graph.dependents(bi, bj)) {
          const index_t dep_id = graph.task_id(di, dj);
          if (owner(di, dj) == p) {
            notify(dep_id);
          } else {
            q.at(remote_visible, [&, dep_id] { notify(dep_id); });
          }
        }
        pump(p);
      });
    }
  };

  // Seed: the diagonal blocks are initially ready on their owners.
  for (index_t id = 0; id < graph.task_count(); ++id) {
    if (waiting[static_cast<std::size_t>(id)] != 0) continue;
    const auto [bi, bj] = graph.coords(id);
    nodes[static_cast<std::size_t>(owner(bi, bj))].ready.push_back(id);
  }
  q.after(0.0, [&] {
    for (int p = 0; p < cfg.nodes; ++p) pump(p);
  });
  res.seconds = q.run();

  for (const auto& nd : nodes) {
    res.node_busy.push_back(nd.busy_seconds);
    res.compute_seconds_total += nd.busy_seconds;
  }
  for (const auto& nic : nics) {
    res.node_comm.push_back(nic.stats().busy_seconds);
    res.comm_seconds_total += nic.stats().busy_seconds;
  }
  if (res.seconds > 0)
    res.efficiency =
        res.compute_seconds_total /
        (res.seconds * double(cfg.nodes) * double(cfg.cores_per_node));

  if (out != nullptr && mat != nullptr) *out = std::move(*mat);
  return res;
}

}  // namespace cellnpdp
