// LRU result cache keyed by the content hash of a request. Thread-safe:
// the dispatcher probes it at dispatch time and every worker fills it
// after a solve. Capacity 0 disables caching (probes miss, fills no-op),
// which keeps the service code branch-free. Hits, misses, and evictions
// are mirrored into the process-wide obs metrics registry
// (serve.cache.{hits,misses,evictions}) so they show up in metric dumps
// next to the queue and status counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"

namespace cellnpdp::serve {

template <class V>
class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// On hit copies the cached value into *out, promotes the entry to
  /// most-recently-used, and returns true.
  bool get(std::uint64_t key, V* out) {
    std::lock_guard lk(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      obs_misses_.add();
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    *out = it->second->second;
    ++hits_;
    obs_hits_.add();
    return true;
  }

  /// Inserts (or refreshes) key -> value, evicting the least-recently-used
  /// entry when at capacity.
  void put(std::uint64_t key, V value) {
    if (capacity_ == 0) return;
    std::lock_guard lk(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (lru_.size() >= capacity_) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
      ++evictions_;
      obs_evictions_.add();
    }
    lru_.emplace_front(key, std::move(value));
    map_[key] = lru_.begin();
  }

  std::size_t size() const {
    std::lock_guard lk(mu_);
    return lru_.size();
  }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const {
    std::lock_guard lk(mu_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard lk(mu_);
    return misses_;
  }
  std::uint64_t evictions() const {
    std::lock_guard lk(mu_);
    return evictions_;
  }

 private:
  mutable std::mutex mu_;
  const std::size_t capacity_;
  std::list<std::pair<std::uint64_t, V>> lru_;  ///< front = most recent
  std::unordered_map<std::uint64_t,
                     typename std::list<std::pair<std::uint64_t, V>>::iterator>
      map_;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
  obs::Counter& obs_hits_ = obs::metrics().counter("serve.cache.hits");
  obs::Counter& obs_misses_ = obs::metrics().counter("serve.cache.misses");
  obs::Counter& obs_evictions_ =
      obs::metrics().counter("serve.cache.evictions");
};

}  // namespace cellnpdp::serve
