// LRU result cache keyed by the content hash of a request, with
// optional per-tenant byte quotas. Thread-safe: the dispatcher probes it
// at dispatch time and every worker fills it after a solve. Capacity 0
// disables caching (probes miss, fills no-op), which keeps the service
// code branch-free.
//
// Tenancy model: entries are keyed by the *global* content hash — two
// tenants asking for the same computation share one entry, results are
// never duplicated per tenant. What is partitioned is the *budget*: each
// entry is charged (its approximate byte cost) to the tenant that filled
// it, and a tenant with a configured byte quota evicts only from its own
// entries when over budget. A hot tenant churning through distinct
// computations therefore exhausts its own quota instead of flushing a
// quiet tenant's working set — cache isolation matching queue isolation.
// The global entry-count capacity still applies on top as a hard bound.
//
// Hits, misses, and evictions are mirrored into the process-wide obs
// metrics registry (serve.cache.{hits,misses,evictions,
// tenant_evictions}) so they show up in metric dumps next to the queue
// and status counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"

namespace cellnpdp::serve {

template <class V>
class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Gives `tenant` a byte budget (0 = unlimited). Call before traffic;
  /// safe at any time (takes the lock) but does not retro-evict.
  void set_tenant_budget(std::uint16_t tenant, std::size_t bytes) {
    std::lock_guard lk(mu_);
    budgets_[tenant] = bytes;
  }

  /// On hit copies the cached value into *out, promotes the entry to
  /// most-recently-used, and returns true.
  bool get(std::uint64_t key, V* out) {
    std::lock_guard lk(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      obs_misses_.add();
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    *out = it->second->value;
    ++hits_;
    obs_hits_.add();
    return true;
  }

  /// Inserts (or refreshes) key -> value, charging ~`bytes` to `tenant`.
  /// Evicts the global least-recently-used entry when at entry capacity,
  /// then the filling tenant's own oldest entries while it is over its
  /// byte budget. A value larger than its tenant's whole budget is not
  /// retained (the quota cannot hold it).
  void put(std::uint64_t key, V value, std::uint16_t tenant = 0,
           std::size_t bytes = 1) {
    if (capacity_ == 0) return;
    std::lock_guard lk(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      Entry& e = *it->second;
      usage_[e.tenant] -= e.bytes;
      e.value = std::move(value);
      e.tenant = tenant;
      e.bytes = bytes;
      usage_[tenant] += bytes;
      lru_.splice(lru_.begin(), lru_, it->second);
      enforce_tenant_budget(tenant);
      return;
    }
    if (lru_.size() >= capacity_) {
      const Entry& back = lru_.back();
      usage_[back.tenant] -= back.bytes;
      map_.erase(back.key);
      lru_.pop_back();
      ++evictions_;
      obs_evictions_.add();
    }
    lru_.emplace_front(Entry{key, std::move(value), tenant, bytes});
    map_[key] = lru_.begin();
    usage_[tenant] += bytes;
    enforce_tenant_budget(tenant);
  }

  std::size_t size() const {
    std::lock_guard lk(mu_);
    return lru_.size();
  }
  std::size_t capacity() const { return capacity_; }
  /// Bytes currently charged to `tenant`.
  std::size_t tenant_bytes(std::uint16_t tenant) const {
    std::lock_guard lk(mu_);
    const auto it = usage_.find(tenant);
    return it == usage_.end() ? 0 : it->second;
  }
  std::uint64_t hits() const {
    std::lock_guard lk(mu_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard lk(mu_);
    return misses_;
  }
  std::uint64_t evictions() const {
    std::lock_guard lk(mu_);
    return evictions_;
  }
  /// Evictions caused by a tenant byte quota (not entry capacity).
  std::uint64_t tenant_evictions() const {
    std::lock_guard lk(mu_);
    return tenant_evictions_;
  }

 private:
  struct Entry {
    std::uint64_t key = 0;
    V value{};
    std::uint16_t tenant = 0;
    std::size_t bytes = 0;
  };

  /// Evicts `tenant`'s own oldest entries while it is over budget.
  /// Caller holds the lock. Walks the global LRU list from its cold end;
  /// entries owned by other tenants are skipped untouched.
  void enforce_tenant_budget(std::uint16_t tenant) {
    const auto bit = budgets_.find(tenant);
    if (bit == budgets_.end() || bit->second == 0) return;
    const std::size_t budget = bit->second;
    auto it = lru_.end();
    while (usage_[tenant] > budget && it != lru_.begin()) {
      --it;
      if (it->tenant != tenant) continue;
      usage_[tenant] -= it->bytes;
      map_.erase(it->key);
      it = lru_.erase(it);
      ++tenant_evictions_;
      obs_tenant_evictions_.add();
    }
  }

  mutable std::mutex mu_;
  const std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<std::uint64_t, typename std::list<Entry>::iterator> map_;
  std::unordered_map<std::uint16_t, std::size_t> budgets_;
  std::unordered_map<std::uint16_t, std::size_t> usage_;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0,
                tenant_evictions_ = 0;
  obs::Counter& obs_hits_ = obs::metrics().counter("serve.cache.hits");
  obs::Counter& obs_misses_ = obs::metrics().counter("serve.cache.misses");
  obs::Counter& obs_evictions_ =
      obs::metrics().counter("serve.cache.evictions");
  obs::Counter& obs_tenant_evictions_ =
      obs::metrics().counter("serve.cache.tenant_evictions");
};

}  // namespace cellnpdp::serve
