// Bounded MPMC admission queue: the front door of the solve service,
// with weighted fair scheduling across tenants.
//
// Entries live in per-tenant sub-queues, each ordered by (priority
// descending, admission order). pop composes two disciplines:
//
//   1. strict priority — only tenants whose head entry carries the
//      highest priority present anywhere are eligible, so priority keeps
//      its existing meaning across tenants;
//   2. deficit round robin within that band — each tenant holds a credit
//      counter replenished by its weight; serving an entry costs one
//      credit; when no eligible tenant has credit, every eligible
//      tenant's counter is topped up by its weight. Over time tenants at
//      equal priority are served proportionally to their weights, so a
//      hot tenant cannot starve a quiet one. A tenant's credit resets
//      when its queue drains (no banking while idle). With one tenant —
//      every untagged request — the order is exactly the old global
//      (priority, FIFO) order.
//
// When the queue is full the configured OverloadPolicy decides the fate
// of the *next* push:
//
//   Block      - the producer blocks until a consumer makes room
//                (backpressure; nothing is ever dropped)
//   Reject     - the push returns Admission::Rejected immediately
//   ShedOldest - the tenant most over its fair share (max depth/weight)
//                loses its oldest queued entry (handed to the shed
//                handler) and the new entry is admitted. With a single
//                tenant this is the globally oldest entry, as before.
//
// Deadline expiry is lazy: when an entry is selected for pop and the
// expiry predicate says it is dead, pop discards it (handing it to the
// expiry handler) instead of returning it.
//
// Handler reentrancy contract: handlers are always invoked with the
// queue lock released, so they may complete promises, take other locks,
// or push into this queue again. A shed handler that re-pushes (and
// thereby sheds again) does NOT recurse: evicted entries are appended to
// an internal backlog and drained iteratively by the outermost push
// frame, so handler nesting is bounded at one level no matter how many
// sheds a push cascade causes. Consequences a handler must tolerate:
// (a) its invocation may happen on a different producer thread than the
// push that evicted the entry, and (b) delivery happens after the
// evicting push already returned Admitted. Handlers must not block
// indefinitely — every producer entering push() may be drafted into
// draining the backlog.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace cellnpdp::serve {

enum class OverloadPolicy { Block, Reject, ShedOldest };

constexpr const char* overload_policy_name(OverloadPolicy p) {
  switch (p) {
    case OverloadPolicy::Block: return "block";
    case OverloadPolicy::Reject: return "reject";
    case OverloadPolicy::ShedOldest: return "shed-oldest";
  }
  return "?";
}

enum class Admission { Admitted, Rejected, Closed };
enum class PopResult { Item, TimedOut, Closed };

template <class T>
class AdmissionQueue {
 public:
  AdmissionQueue(std::size_t capacity, OverloadPolicy policy)
      : capacity_(capacity < 1 ? 1 : capacity), policy_(policy) {}

  /// Installs deadline handling: pop() discards selected entries for
  /// which `expired` is true, handing them to `on_expired` instead of
  /// returning them. Call before the first push; not thread-safe against
  /// traffic.
  void set_expiry(std::function<bool(const T&)> expired,
                  std::function<void(T&&)> on_expired) {
    expiry_fn_ = std::move(expired);
    on_expired_ = std::move(on_expired);
  }

  /// Receives entries evicted by the ShedOldest policy. See the handler
  /// reentrancy contract in the header comment. Same caveats as
  /// set_expiry.
  void set_shed_handler(std::function<void(T&&)> on_shed) {
    on_shed_ = std::move(on_shed);
  }

  /// Sets a tenant's fair-share weight (>= 1; default 1). Weights shape
  /// both the DRR dequeue ratio and the ShedOldest victim choice. Call
  /// before traffic for that tenant; safe at any time (takes the lock).
  void set_tenant_weight(std::uint16_t tenant, std::uint64_t weight) {
    std::lock_guard lk(mu_);
    subs_[tenant].weight = weight < 1 ? 1 : weight;
  }

  /// Admits `item` under the overload policy. Safe to call at any point
  /// in the queue's lifetime: a push that races (or follows) close()
  /// returns Admission::Closed — it never asserts and never blocks on a
  /// queue that can no longer drain. Network front-ends rely on this: a
  /// reactor thread can be admitting a freshly-decoded frame at the same
  /// instant shutdown closes the queue, and the loser of that race must
  /// get a status it can put on the wire.
  Admission push(T item, int priority = 0, std::uint16_t tenant = 0) {
    {
      std::unique_lock lk(mu_);
      for (;;) {
        if (closed_) {
          ++rejected_;
          return Admission::Closed;
        }
        if (size_ < capacity_) break;
        if (policy_ == OverloadPolicy::Block) {
          cv_space_.wait(lk);
          continue;
        }
        if (policy_ == OverloadPolicy::Reject) {
          ++rejected_;
          return Admission::Rejected;
        }
        // ShedOldest: the victim tenant is the one most over its fair
        // share (largest depth/weight); within it, the entry with the
        // smallest admission number. One tenant degenerates to the
        // globally oldest entry.
        shed_backlog_.push_back(take_shed_victim_locked());
        ++shed_;
        break;
      }
      ++admitted_;
      Sub& sub = subs_[tenant];
      sub.q.emplace(Key{-static_cast<std::int64_t>(priority), seq_++},
                    std::move(item));
      ++size_;
      drain_shed_backlog_locked(lk);
    }
    cv_item_.notify_one();
    return Admission::Admitted;
  }

  /// Blocks until an entry is available (-> Item) or the queue is closed
  /// and drained (-> Closed).
  PopResult pop(T& out) { return pop_impl(out, nullptr); }

  /// As pop(), but gives up after `d` (-> TimedOut). The service
  /// dispatcher uses the timeout as its batch-flush tick.
  template <class Rep, class Period>
  PopResult pop_wait_for(T& out, std::chrono::duration<Rep, Period> d) {
    auto deadline = std::chrono::steady_clock::now() + d;
    return pop_impl(out, &deadline);
  }

  /// Closes the queue: subsequent pushes return Closed, blocked pushers
  /// wake with Closed, and pops drain the remaining entries then Closed.
  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    cv_item_.notify_all();
    cv_space_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard lk(mu_);
    return size_;
  }
  /// Queued entries for one tenant (0 for a tenant never seen).
  std::size_t tenant_depth(std::uint16_t tenant) const {
    std::lock_guard lk(mu_);
    const auto it = subs_.find(tenant);
    return it == subs_.end() ? 0 : it->second.q.size();
  }
  /// (tenant, depth) snapshot over every tenant the queue has seen.
  std::vector<std::pair<std::uint16_t, std::size_t>> tenant_depths() const {
    std::lock_guard lk(mu_);
    std::vector<std::pair<std::uint16_t, std::size_t>> out;
    out.reserve(subs_.size());
    for (const auto& [tid, sub] : subs_) out.emplace_back(tid, sub.q.size());
    return out;
  }
  std::uint64_t admitted() const { return counter(admitted_); }
  std::uint64_t rejected() const { return counter(rejected_); }
  std::uint64_t shed() const { return counter(shed_); }
  std::uint64_t expired() const { return counter(expired_); }

 private:
  // Sub-queue key: (-priority, admission number); begin() is the front.
  using Key = std::pair<std::int64_t, std::uint64_t>;
  struct Sub {
    std::map<Key, T> q;
    std::uint64_t weight = 1;
    std::int64_t credit = 0;
  };
  using SubMap = std::map<std::uint16_t, Sub>;

  std::uint64_t counter(const std::uint64_t& c) const {
    std::lock_guard lk(mu_);
    return c;
  }

  /// Removes and returns the ShedOldest victim. Caller holds the lock
  /// and guarantees at least one entry is queued.
  T take_shed_victim_locked() {
    auto victim = subs_.end();
    double worst = -1;
    for (auto it = subs_.begin(); it != subs_.end(); ++it) {
      if (it->second.q.empty()) continue;
      const double over = static_cast<double>(it->second.q.size()) /
                          static_cast<double>(it->second.weight);
      if (over > worst) {
        worst = over;
        victim = it;
      }
    }
    Sub& sub = victim->second;
    auto oldest = sub.q.begin();
    for (auto it = sub.q.begin(); it != sub.q.end(); ++it)
      if (it->first.second < oldest->first.second) oldest = it;
    T item = std::move(oldest->second);
    sub.q.erase(oldest);
    if (sub.q.empty()) sub.credit = 0;
    --size_;
    return item;
  }

  /// Hands backlogged shed victims to the handler, lock released per
  /// call. Only one frame drains at a time: a handler that re-pushes
  /// (and sheds again) merely appends to the backlog — its own push
  /// frame sees draining_ set and returns, so eviction cascades are
  /// iterative, never recursive. The flag is only cleared while the
  /// backlog is empty under the lock, so no victim is ever stranded.
  void drain_shed_backlog_locked(std::unique_lock<std::mutex>& lk) {
    if (shed_backlog_.empty() || shed_draining_) return;
    shed_draining_ = true;
    while (!shed_backlog_.empty()) {
      T v = std::move(shed_backlog_.front());
      shed_backlog_.pop_front();
      lk.unlock();
      if (on_shed_) on_shed_(std::move(v));
      lk.lock();
    }
    shed_draining_ = false;
  }

  /// Picks the sub-queue to serve next: strict priority across tenants,
  /// DRR among the tenants whose head sits at that priority. Caller
  /// holds the lock. Returns subs_.end() when everything is empty.
  typename SubMap::iterator select_locked() {
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (const auto& [tid, sub] : subs_)
      if (!sub.q.empty() && sub.q.begin()->first.first < best)
        best = sub.q.begin()->first.first;
    if (best == std::numeric_limits<std::int64_t>::max()) return subs_.end();
    // Two passes: find an eligible tenant with credit, replenishing every
    // eligible tenant once if none has any. Weights >= 1 guarantee the
    // second pass succeeds.
    for (int round = 0; round < 2; ++round) {
      auto it = subs_.upper_bound(rr_last_);
      for (std::size_t i = 0; i < subs_.size(); ++i, ++it) {
        if (it == subs_.end()) it = subs_.begin();
        Sub& sub = it->second;
        if (sub.q.empty() || sub.q.begin()->first.first != best) continue;
        if (sub.credit >= 1) return it;
      }
      for (auto& [tid, sub] : subs_)
        if (!sub.q.empty() && sub.q.begin()->first.first == best)
          sub.credit += static_cast<std::int64_t>(sub.weight);
    }
    return subs_.end();  // unreachable
  }

  PopResult pop_impl(T& out, const std::chrono::steady_clock::time_point* tp) {
    std::unique_lock lk(mu_);
    for (;;) {
      // Serve the fair-share selection, lazily discarding entries whose
      // deadline passed while they waited.
      for (;;) {
        auto sit = select_locked();
        if (sit == subs_.end()) break;
        Sub& sub = sit->second;
        auto head = sub.q.begin();
        if (expiry_fn_ && expiry_fn_(head->second)) {
          T dead = std::move(head->second);
          sub.q.erase(head);
          if (sub.q.empty()) sub.credit = 0;
          --size_;
          ++expired_;
          cv_space_.notify_one();
          if (on_expired_) {
            lk.unlock();
            on_expired_(std::move(dead));
            lk.lock();
          }
          continue;
        }
        out = std::move(head->second);
        sub.q.erase(head);
        sub.credit -= 1;
        if (sub.q.empty()) sub.credit = 0;
        rr_last_ = sit->first;
        --size_;
        lk.unlock();
        cv_space_.notify_one();
        return PopResult::Item;
      }
      if (closed_) return PopResult::Closed;
      if (tp == nullptr) {
        cv_item_.wait(lk);
      } else if (cv_item_.wait_until(lk, *tp) == std::cv_status::timeout) {
        return PopResult::TimedOut;
      }
    }
  }

  const std::size_t capacity_;
  const OverloadPolicy policy_;
  std::function<bool(const T&)> expiry_fn_;
  std::function<void(T&&)> on_expired_;
  std::function<void(T&&)> on_shed_;

  mutable std::mutex mu_;
  std::condition_variable cv_item_;   // signalled when an entry arrives
  std::condition_variable cv_space_;  // signalled when capacity frees up
  SubMap subs_;                       // per-tenant sub-queues (persistent)
  std::size_t size_ = 0;              // total queued entries across tenants
  std::uint16_t rr_last_ = 0;         // DRR cursor: last tenant served
  std::deque<T> shed_backlog_;        // evicted, awaiting handler delivery
  bool shed_draining_ = false;        // one frame drains at a time
  std::uint64_t seq_ = 0;
  bool closed_ = false;
  std::uint64_t admitted_ = 0, rejected_ = 0, shed_ = 0, expired_ = 0;
};

}  // namespace cellnpdp::serve
