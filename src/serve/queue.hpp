// Bounded MPMC admission queue: the front door of the solve service.
//
// Entries are ordered by (priority descending, admission order) — pop
// always returns the oldest entry of the highest priority present. When
// the queue is full the configured OverloadPolicy decides the fate of the
// *next* push:
//
//   Block      - the producer blocks until a consumer makes room
//                (backpressure; nothing is ever dropped)
//   Reject     - the push returns Admission::Rejected immediately
//   ShedOldest - the globally oldest queued entry is evicted (handed to
//                the shed handler) and the new entry is admitted
//
// Deadline expiry is lazy: when an entry reaches the head of the queue and
// the expiry predicate says it is dead, pop discards it (handing it to the
// expiry handler) instead of returning it. Handlers are always invoked
// with the queue lock released, so they may complete promises, take other
// locks, or push again.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <utility>

namespace cellnpdp::serve {

enum class OverloadPolicy { Block, Reject, ShedOldest };

constexpr const char* overload_policy_name(OverloadPolicy p) {
  switch (p) {
    case OverloadPolicy::Block: return "block";
    case OverloadPolicy::Reject: return "reject";
    case OverloadPolicy::ShedOldest: return "shed-oldest";
  }
  return "?";
}

enum class Admission { Admitted, Rejected, Closed };
enum class PopResult { Item, TimedOut, Closed };

template <class T>
class AdmissionQueue {
 public:
  AdmissionQueue(std::size_t capacity, OverloadPolicy policy)
      : capacity_(capacity < 1 ? 1 : capacity), policy_(policy) {}

  /// Installs deadline handling: pop() discards head entries for which
  /// `expired` is true, handing them to `on_expired` instead of returning
  /// them. Call before the first push; not thread-safe against traffic.
  void set_expiry(std::function<bool(const T&)> expired,
                  std::function<void(T&&)> on_expired) {
    expiry_fn_ = std::move(expired);
    on_expired_ = std::move(on_expired);
  }

  /// Receives entries evicted by the ShedOldest policy. Same caveats as
  /// set_expiry.
  void set_shed_handler(std::function<void(T&&)> on_shed) {
    on_shed_ = std::move(on_shed);
  }

  /// Admits `item` under the overload policy. Safe to call at any point
  /// in the queue's lifetime: a push that races (or follows) close()
  /// returns Admission::Closed — it never asserts and never blocks on a
  /// queue that can no longer drain. Network front-ends rely on this: a
  /// reactor thread can be admitting a freshly-decoded frame at the same
  /// instant shutdown closes the queue, and the loser of that race must
  /// get a status it can put on the wire.
  Admission push(T item, int priority = 0) {
    T shed_item;
    bool have_shed = false;
    {
      std::unique_lock lk(mu_);
      for (;;) {
        if (closed_) {
          ++rejected_;
          return Admission::Closed;
        }
        if (q_.size() < capacity_) break;
        if (policy_ == OverloadPolicy::Block) {
          cv_space_.wait(lk);
          continue;
        }
        if (policy_ == OverloadPolicy::Reject) {
          ++rejected_;
          return Admission::Rejected;
        }
        // ShedOldest: evict the entry with the smallest admission number.
        auto victim = q_.begin();
        for (auto it = q_.begin(); it != q_.end(); ++it)
          if (it->first.second < victim->first.second) victim = it;
        shed_item = std::move(victim->second);
        have_shed = true;
        q_.erase(victim);
        ++shed_;
        break;
      }
      ++admitted_;
      q_.emplace(Key{-static_cast<std::int64_t>(priority), seq_++},
                 std::move(item));
    }
    cv_item_.notify_one();
    if (have_shed && on_shed_) on_shed_(std::move(shed_item));
    return Admission::Admitted;
  }

  /// Blocks until an entry is available (-> Item) or the queue is closed
  /// and drained (-> Closed).
  PopResult pop(T& out) { return pop_impl(out, nullptr); }

  /// As pop(), but gives up after `d` (-> TimedOut). The service
  /// dispatcher uses the timeout as its batch-flush tick.
  template <class Rep, class Period>
  PopResult pop_wait_for(T& out, std::chrono::duration<Rep, Period> d) {
    auto deadline = std::chrono::steady_clock::now() + d;
    return pop_impl(out, &deadline);
  }

  /// Closes the queue: subsequent pushes return Closed, blocked pushers
  /// wake with Closed, and pops drain the remaining entries then Closed.
  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    cv_item_.notify_all();
    cv_space_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard lk(mu_);
    return q_.size();
  }
  std::uint64_t admitted() const { return counter(admitted_); }
  std::uint64_t rejected() const { return counter(rejected_); }
  std::uint64_t shed() const { return counter(shed_); }
  std::uint64_t expired() const { return counter(expired_); }

 private:
  // Map key: (-priority, admission number); begin() is the pop front.
  using Key = std::pair<std::int64_t, std::uint64_t>;

  std::uint64_t counter(const std::uint64_t& c) const {
    std::lock_guard lk(mu_);
    return c;
  }

  PopResult pop_impl(T& out, const std::chrono::steady_clock::time_point* tp) {
    std::unique_lock lk(mu_);
    for (;;) {
      // Discard expired entries as they surface at the head.
      while (!q_.empty() && expiry_fn_ && expiry_fn_(q_.begin()->second)) {
        T dead = std::move(q_.begin()->second);
        q_.erase(q_.begin());
        ++expired_;
        cv_space_.notify_one();
        if (on_expired_) {
          lk.unlock();
          on_expired_(std::move(dead));
          lk.lock();
        }
      }
      if (!q_.empty()) {
        out = std::move(q_.begin()->second);
        q_.erase(q_.begin());
        lk.unlock();
        cv_space_.notify_one();
        return PopResult::Item;
      }
      if (closed_) return PopResult::Closed;
      if (tp == nullptr) {
        cv_item_.wait(lk);
      } else if (cv_item_.wait_until(lk, *tp) == std::cv_status::timeout) {
        return PopResult::TimedOut;
      }
    }
  }

  const std::size_t capacity_;
  const OverloadPolicy policy_;
  std::function<bool(const T&)> expiry_fn_;
  std::function<void(T&&)> on_expired_;
  std::function<void(T&&)> on_shed_;

  mutable std::mutex mu_;
  std::condition_variable cv_item_;   // signalled when an entry arrives
  std::condition_variable cv_space_;  // signalled when capacity frees up
  std::map<Key, T> q_;
  std::uint64_t seq_ = 0;
  bool closed_ = false;
  std::uint64_t admitted_ = 0, rejected_ = 0, shed_ = 0, expired_ = 0;
};

}  // namespace cellnpdp::serve
