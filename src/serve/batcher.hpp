// Groups same-shape small requests so one worker dispatch amortises
// scheduling overhead and arena setup across several instances (the
// serving-side analogue of the paper's scheduling blocks: make the unit of
// dispatch big enough that per-dispatch cost stops mattering).
//
// Deliberately single-threaded: only the service dispatcher touches a
// Batcher, so there is no lock. A group flushes either when it reaches
// max_batch or when the dispatcher's queue runs dry (drain()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cellnpdp::serve {

template <class Item>
struct Batch {
  std::uint64_t key = 0;
  std::vector<Item> items;
};

template <class Item>
class Batcher {
 public:
  explicit Batcher(std::size_t max_batch)
      : max_batch_(max_batch < 1 ? 1 : max_batch) {}

  /// Adds `item` under its shape key. Returns a full batch when the group
  /// reaches max_batch, otherwise a batch with items.empty().
  Batch<Item> add(std::uint64_t key, Item item) {
    auto& group = groups_[key];
    group.push_back(std::move(item));
    ++pending_;
    if (group.size() >= max_batch_) {
      Batch<Item> b{key, std::move(group)};
      groups_.erase(key);
      pending_ -= b.items.size();
      return b;
    }
    return {};
  }

  /// Flushes every partial group, emptying the batcher.
  std::vector<Batch<Item>> drain() {
    std::vector<Batch<Item>> out;
    out.reserve(groups_.size());
    for (auto& [key, group] : groups_)
      out.push_back(Batch<Item>{key, std::move(group)});
    groups_.clear();
    pending_ = 0;
    return out;
  }

  std::size_t pending() const { return pending_; }
  std::size_t max_batch() const { return max_batch_; }

 private:
  std::size_t max_batch_;
  std::size_t pending_ = 0;
  std::unordered_map<std::uint64_t, std::vector<Item>> groups_;
};

}  // namespace cellnpdp::serve
