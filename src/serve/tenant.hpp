// Multi-tenant QoS policy for the solve service: who a request belongs
// to, how fast that tenant may submit, how large a share of the queue and
// result cache it deserves.
//
// A tenant is a small integer id carried end-to-end (wire frame ->
// serve::Request -> admission queue -> wide events -> Prometheus labels).
// Id 0 is the default tenant: requests that carry no tag — every legacy
// frame — land there, so a deployment that never configures tenants
// behaves exactly as before.
//
// Three pieces live here:
//
//   TenantPolicy  - declarative per-tenant limits (rate/burst/weight/
//                   cache bytes)
//   TokenBucket   - the admission throttle implementing rate+burst, with
//                   a refill hint for RetryAfter responses
//   TenantTable   - id -> policy map with a default for unknown ids,
//                   plus the CLI spec parser (`npdp ... --tenants`)
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>

namespace cellnpdp::serve {

/// Declarative QoS limits for one tenant. Defaults are fully permissive:
/// unlimited rate, weight 1 (equal share), no cache byte quota.
struct TenantPolicy {
  std::string name;          ///< label for metrics/logs; "" = "t<id>"
  double rate = 0;           ///< admitted requests/second; 0 = unlimited
  double burst = 1;          ///< token-bucket capacity (>= 1)
  std::uint64_t weight = 1;  ///< fair-share weight for dequeue + shed
  std::size_t cache_bytes = 0;  ///< result-cache byte quota; 0 = unlimited
};

/// Classic token bucket: `rate` tokens/second refill up to `burst`
/// capacity; each admitted request takes one token. Thread-safe (one
/// short lock per probe — admission path only, never per solve stage).
class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  TokenBucket(double rate, double burst)
      : rate_(rate),
        burst_(burst < 1 ? 1 : burst),
        tokens_(burst < 1 ? 1 : burst),
        last_(Clock::now()) {}

  /// Takes one token if available. Always succeeds when rate <= 0.
  bool try_take(Clock::time_point now = Clock::now()) {
    if (rate_ <= 0) return true;
    std::lock_guard lk(mu_);
    refill(now);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  /// Milliseconds until one token will be available — the refill hint a
  /// throttled response carries so well-behaved clients back off exactly
  /// as long as needed, no longer.
  std::int64_t retry_after_ms(Clock::time_point now = Clock::now()) const {
    if (rate_ <= 0) return 0;
    std::lock_guard lk(mu_);
    const double have = current(now);
    if (have >= 1.0) return 0;
    return static_cast<std::int64_t>(std::ceil((1.0 - have) / rate_ * 1e3));
  }

  double available(Clock::time_point now = Clock::now()) const {
    if (rate_ <= 0) return burst_;
    std::lock_guard lk(mu_);
    return current(now);
  }

  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void refill(Clock::time_point now) {
    tokens_ = current(now);
    last_ = now;
  }
  double current(Clock::time_point now) const {
    const double dt = std::chrono::duration<double>(now - last_).count();
    const double t = tokens_ + (dt > 0 ? dt * rate_ : 0);
    return t > burst_ ? burst_ : t;
  }

  mutable std::mutex mu_;
  const double rate_;
  const double burst_;
  double tokens_;
  Clock::time_point last_;
};

/// id -> policy. Ids outside the map get the permissive default policy,
/// so unknown (and untagged) tenants are never throttled — isolation is
/// opt-in per tenant, starvation protection (fair dequeue) is always on.
struct TenantTable {
  std::map<std::uint16_t, TenantPolicy> policies;

  bool configured() const { return !policies.empty(); }

  const TenantPolicy& policy(std::uint16_t id) const {
    static const TenantPolicy kDefault{};
    const auto it = policies.find(id);
    return it == policies.end() ? kDefault : it->second;
  }

  /// Stable label for metrics: the configured name, else "default" for
  /// tenant 0, else "t<id>".
  std::string name_of(std::uint16_t id) const {
    const auto it = policies.find(id);
    if (it != policies.end() && !it->second.name.empty())
      return it->second.name;
    return id == 0 ? std::string("default") : "t" + std::to_string(id);
  }
};

/// Parses the CLI tenant spec: slash-separated tenants, colon-separated
/// fields, the first field the numeric id:
///
///   1:name=hot:rate=500:burst=50:weight=1:cache-kb=64/2:name=quiet:weight=4
///
/// Everything but the id is optional. Returns false with *err set on a
/// malformed spec (bad number, unknown key, duplicate id, id >= 256).
inline bool parse_tenant_spec(const std::string& spec, TenantTable* out,
                              std::string* err) {
  const std::uint16_t kMax = 256;  // mirrors serve::kMaxTenants
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t end = std::min(spec.find('/', pos), spec.size());
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) {
      if (end == spec.size()) break;
      *err = "empty tenant entry";
      return false;
    }
    const std::size_t c0 = entry.find(':');
    const std::string id_str = entry.substr(0, c0);
    char* eptr = nullptr;
    const long id = std::strtol(id_str.c_str(), &eptr, 10);
    if (eptr == nullptr || *eptr != '\0' || id_str.empty() || id < 0) {
      *err = "malformed tenant id '" + id_str + "'";
      return false;
    }
    if (id >= kMax) {
      *err = "tenant id " + id_str + " out of range (max 255)";
      return false;
    }
    const auto tid = static_cast<std::uint16_t>(id);
    if (out->policies.count(tid) != 0) {
      *err = "duplicate tenant id " + id_str;
      return false;
    }
    TenantPolicy p;
    std::size_t fpos = c0 == std::string::npos ? entry.size() : c0 + 1;
    while (fpos < entry.size()) {
      const std::size_t fend = std::min(entry.find(':', fpos), entry.size());
      const std::string field = entry.substr(fpos, fend - fpos);
      fpos = fend + 1;
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos || eq == 0) {
        *err = "tenant " + id_str + ": expected key=value, got '" + field +
               "'";
        return false;
      }
      const std::string key = field.substr(0, eq);
      const std::string val = field.substr(eq + 1);
      auto as_double = [&](double* d) {
        char* dend = nullptr;
        *d = std::strtod(val.c_str(), &dend);
        if (dend == nullptr || *dend != '\0' || val.empty()) {
          *err = "tenant " + id_str + ": malformed number for '" + key +
                 "': " + val;
          return false;
        }
        return true;
      };
      double d = 0;
      if (key == "name") {
        p.name = val;
      } else if (key == "rate") {
        if (!as_double(&d)) return false;
        if (d < 0) {
          *err = "tenant " + id_str + ": rate must be >= 0";
          return false;
        }
        p.rate = d;
      } else if (key == "burst") {
        if (!as_double(&d)) return false;
        if (d < 1) {
          *err = "tenant " + id_str + ": burst must be >= 1";
          return false;
        }
        p.burst = d;
      } else if (key == "weight") {
        if (!as_double(&d)) return false;
        if (d < 1) {
          *err = "tenant " + id_str + ": weight must be >= 1";
          return false;
        }
        p.weight = static_cast<std::uint64_t>(d);
      } else if (key == "cache-kb") {
        if (!as_double(&d)) return false;
        if (d < 0) {
          *err = "tenant " + id_str + ": cache-kb must be >= 0";
          return false;
        }
        p.cache_bytes = static_cast<std::size_t>(d * 1024);
      } else {
        *err = "tenant " + id_str + ": unknown key '" + key + "'";
        return false;
      }
    }
    out->policies[tid] = std::move(p);
  }
  if (out->policies.empty()) {
    *err = "empty tenant spec";
    return false;
  }
  return true;
}

}  // namespace cellnpdp::serve
