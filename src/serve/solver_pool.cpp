#include "serve/solver_pool.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

#include "apps/cyk/cyk.hpp"
#include "apps/matrix_chain/matrix_chain.hpp"
#include "apps/optimal_bst/optimal_bst.hpp"
#include "apps/zuker/fold.hpp"
#include "backend/solver_backend.hpp"
#include "common/fault_hook.hpp"
#include "common/rng.hpp"
#include "core/solve.hpp"
#include "obs/trace.hpp"

namespace cellnpdp::serve {

std::vector<float> chain_dims(const ChainSpec& c) {
  std::vector<float> dims(static_cast<std::size_t>(c.n) + 1);
  SplitMix64 rng(c.seed);
  for (auto& d : dims) d = float(8 + rng.next_below(120));
  return dims;
}

BstInstanceData<float> bst_data(const BstSpec& b) {
  SplitMix64 rng(b.seed);
  std::vector<float> p(static_cast<std::size_t>(b.keys) + 1, 0.0f);
  std::vector<float> q(static_cast<std::size_t>(b.keys) + 1, 0.0f);
  for (std::size_t i = 1; i < p.size(); ++i)
    p[i] = float(rng.next_in(0.01, 1.0));
  for (auto& v : q) v = float(rng.next_in(0.01, 1.0));
  return make_bst_data(std::move(p), std::move(q));
}

SolverPool::SolverPool(std::size_t workers) : pool_(workers) {}

std::uint64_t SolverPool::arena_allocations() const {
  std::lock_guard lk(mu_);
  return arena_allocs_;
}

std::uint64_t SolverPool::arena_reuses() const {
  std::lock_guard lk(mu_);
  return arena_reuses_;
}

SolverPool::Arena* SolverPool::checkout(index_t n, index_t bs, bool* reused) {
  std::lock_guard lk(mu_);
  Arena* any_free = nullptr;
  for (auto& a : arenas_) {
    if (a->in_use) continue;
    if (a->n == n && a->bs == bs) {
      a->in_use = true;
      ++arena_reuses_;
      *reused = true;
      return a.get();
    }
    if (any_free == nullptr) any_free = a.get();
  }
  *reused = false;
  ++arena_allocs_;
  if (any_free != nullptr) {
    // Repurpose a free arena of the wrong shape.
    any_free->n = n;
    any_free->bs = bs;
    any_free->mat = std::make_unique<BlockedTriangularMatrix<float>>(n, bs);
    any_free->in_use = true;
    return any_free;
  }
  arenas_.push_back(std::make_unique<Arena>());
  Arena* a = arenas_.back().get();
  a->n = n;
  a->bs = bs;
  a->mat = std::make_unique<BlockedTriangularMatrix<float>>(n, bs);
  a->in_use = true;
  return a;
}

void SolverPool::checkin(Arena* a) {
  std::lock_guard lk(mu_);
  a->in_use = false;
}

SolveOutcome SolverPool::execute(const Request& req, const CancelToken& cancel,
                                 const std::string& default_backend) {
  CELLNPDP_TRACE_SPAN("serve", "execute");
  SolveOutcome out;
  try {
    // Fault site for the serve pipeline: a request-level throw exercises
    // the retry/breaker/fallback ladder, a stall makes this request a
    // straggler for the hedge watchdog. Zero cost with no hook installed.
    maybe_inject_task_fault(static_cast<std::int64_t>(req.id),
                            static_cast<std::int64_t>(req.payload.index()));
    if (const auto* s = std::get_if<SolveSpec>(&req.payload)) {
      if (s->n < 1) throw std::invalid_argument("solve needs n >= 1");
      const std::string& name = !s->backend.empty()      ? s->backend
                                : !default_backend.empty() ? default_backend
                                                           : "blocked-serial";
      out.backend_used = name;
      const backend::SolverBackend& be = backend::require_backend(name);
      NpdpInstance<float> inst;
      inst.n = s->n;
      inst.semiring = s->semiring;
      const std::uint64_t seed = s->seed;
      const SemiringId sr = s->semiring;
      inst.init = [seed, sr](index_t i, index_t j) {
        return semiring_init_value<float>(sr, seed, i, j);
      };
      ExecutionContext ctx;
      ctx.cancel = cancel;
      ctx.tuning.block_side = s->block_side;
      ctx.tuning.kernel = s->kernel;
      ctx.tuning.threads = 1;
      Arena* a = nullptr;
      bool reused = false;
      if (be.caps().arena) {
        a = checkout(s->n, s->block_side, &reused);
        // Re-pad when the arena was used before or was constructed for a
        // different semiring (fresh arenas come min-plus-padded).
        const float pad = semiring_zero<float>(s->semiring);
        if (reused || a->mat->pad() != pad) a->mat->reset(pad);
        ctx.arena = a->mat.get();
      }
      backend::BackendResult r;
      try {
        r = be.solve(inst, ctx);
      } catch (...) {
        if (a != nullptr) checkin(a);
        throw;
      }
      if (a != nullptr) checkin(a);
      out.arena_reused = reused;
      if (r.status == SolveStatus::Cancelled) {
        out.cancelled = true;
        out.error = cancel_reason_name(cancel.reason());
        return out;
      }
      out.value = r.value;
      out.ok = true;
    } else if (const auto* f = std::get_if<FoldSpec>(&req.payload)) {
      out.backend_used = "zuker";
      const std::vector<zuker::Base> seq =
          f->seq.empty() ? zuker::random_sequence(f->random_n, f->seed)
                         : zuker::parse_sequence(f->seq);
      zuker::FoldOptions fo;
      fo.cancel = cancel;
      zuker::ZukerFolder folder(zuker::EnergyModel{}, fo);
      const auto r = folder.fold(seq);
      if (r.cancelled) {
        out.cancelled = true;
        out.error = cancel_reason_name(cancel.reason());
        return out;
      }
      out.value = double(r.mfe);
      out.detail = r.structure;
      out.ok = true;
    } else if (const auto* c = std::get_if<ChainSpec>(&req.payload)) {
      if (c->n < 1) throw std::invalid_argument("chain needs n >= 1");
      out.backend_used = "chain";
      const std::vector<float> dims = chain_dims(*c);
      ExecutionContext ctx;
      ctx.cancel = cancel;
      ctx.tuning.threads = 1;
      MatrixChainResult<float> r;
      const SolveStatus st = solve_matrix_chain(dims, ctx, &r);
      if (st == SolveStatus::Cancelled) {
        out.cancelled = true;
        out.error = cancel_reason_name(cancel.reason());
        return out;
      }
      out.value = double(r.cost);
      // The rendered parenthesization grows linearly; only echo it for
      // chains short enough that a human would read it.
      if (c->n <= 16) out.detail = r.parenthesization;
      out.ok = true;
    } else if (const auto* b = std::get_if<BstSpec>(&req.payload)) {
      if (b->keys < 1) throw std::invalid_argument("bst needs keys >= 1");
      out.backend_used = "bst";
      const BstInstanceData<float> d = bst_data(*b);
      ExecutionContext ctx;
      ctx.cancel = cancel;
      ctx.tuning.threads = 1;
      float cost = 0;
      const SolveStatus st = solve_optimal_bst(d, ctx, &cost);
      if (st == SolveStatus::Cancelled) {
        out.cancelled = true;
        out.error = cancel_reason_name(cancel.reason());
        return out;
      }
      out.value = double(cost);
      out.ok = true;
    } else {
      const auto& p = std::get<ParseSpec>(req.payload);
      out.backend_used = "cyk";
      const bool parens = p.grammar == ParseSpec::GrammarKind::Parens;
      cyk::Grammar g =
          parens ? cyk::balanced_parens_grammar() : cyk::anbn_grammar();
      cyk::CykParser parser(std::move(g));
      const auto r = parser.parse(
          cyk::tokens_from_string(p.text, parens ? "()" : "ab"));
      out.value = r.accepted() ? double(r.cost) : -1.0;
      out.detail = r.accepted() ? "accepted" : "rejected";
      out.ok = true;
    }
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
  } catch (...) {
    out.ok = false;
    out.error = "unknown solver exception";
  }
  return out;
}

}  // namespace cellnpdp::serve
