// The service's answer to one Request: terminal status, the scalar result,
// and a per-stage latency breakdown. Exactly one Response is delivered per
// submitted request (through the future returned by SolveService::submit),
// whatever its fate — solved, served from cache, refused at admission,
// shed, expired, or cancelled at shutdown.
#pragma once

#include <cstdint>
#include <string>

namespace cellnpdp::serve {

enum class Status {
  Ok,         ///< solved by a worker
  OkCached,   ///< served from the result cache
  Rejected,   ///< refused at admission (queue full under Reject, or stopped)
  Shed,       ///< evicted from the queue by the ShedOldest overload policy
  Expired,    ///< deadline passed before a worker picked the request up
  Cancelled,  ///< aborted cooperatively: deadline passed mid-solve, or the
              ///< service stopped without draining
  Error,      ///< the solver threw; detail carries the message
  Degraded,   ///< solved, but on the fallback backend (primary broken or
              ///< exhausted its retry budget) — a success with an asterisk
  RetryAfter, ///< not solved: the backend's circuit breaker is open and no
              ///< fallback exists; retry_after_ms hints when to come back
};

constexpr const char* status_name(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::OkCached: return "ok-cached";
    case Status::Rejected: return "rejected";
    case Status::Shed: return "shed";
    case Status::Expired: return "expired";
    case Status::Cancelled: return "cancelled";
    case Status::Error: return "error";
    case Status::Degraded: return "degraded";
    case Status::RetryAfter: return "retry-after";
  }
  return "?";
}

constexpr bool is_success(Status s) {
  return s == Status::Ok || s == Status::OkCached || s == Status::Degraded;
}

struct Response {
  std::uint64_t id = 0;
  Status status = Status::Error;
  double value = 0;    ///< d[0][n-1] / MFE / parse cost
  std::string detail;  ///< dot-bracket structure, parse verdict, or error
  /// The engine that actually produced the answer (empty for refusals).
  /// This is the *effective* name: a Degraded response names the fallback
  /// backend, not the one the request asked for, and an OkCached response
  /// names whoever filled the cache entry.
  std::string backend;
  std::int64_t queue_ns = 0;  ///< admission -> dispatch (or terminal verdict)
  std::int64_t solve_ns = 0;  ///< inside the worker (0 unless solved)
  std::int64_t total_ns = 0;  ///< admission -> response delivered
  std::int64_t retry_after_ms = 0;  ///< back-off hint (RetryAfter only)
  /// Trace correlation, copied from the request so downstream layers
  /// (the network encoder) can annotate without a lookup.
  std::uint64_t trace_id = 0;
  bool trace_sampled = false;
};

}  // namespace cellnpdp::serve
