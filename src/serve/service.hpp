// The solve service façade: admission queue -> batcher -> solver pool ->
// result cache, with one dispatcher thread in the middle and per-stage
// metrics exported through the process-wide obs registry.
//
// Request lifecycle (docs/serving.md):
//
//   submit()            admission: full queue handled per OverloadPolicy
//   dispatcher          pops in (priority, FIFO) order; expired entries
//                       are shed; cache probe; shape-batches small work
//   worker              executes the batch, one arena checkout per batch
//   cache fill          successful solves keyed by content hash
//   respond             the future returned by submit() becomes ready
//
// Every submitted request gets exactly one Response, whatever its fate.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "serve/batcher.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/response.hpp"
#include "serve/result_cache.hpp"
#include "serve/solver_pool.hpp"

namespace cellnpdp::serve {

struct ServiceOptions {
  std::size_t workers = 4;
  std::size_t queue_capacity = 256;
  OverloadPolicy policy = OverloadPolicy::Block;
  std::size_t cache_capacity = 1024;  ///< entries; 0 disables the cache
  std::size_t batch_max = 8;          ///< requests fused into one dispatch
  index_t batch_max_size = 512;       ///< batch only instances this small
  std::string backend = "blocked-serial";  ///< default solve backend; a
                                           ///< request's own backend= wins
};

/// Point-in-time counters; every terminal response is counted exactly once
/// under completed/cache_hits/rejected/shed/expired/cancelled/errors.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;   ///< Status::Ok
  std::uint64_t cache_hits = 0;  ///< Status::OkCached
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t errors = 0;
  std::uint64_t batches = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t arena_reuses = 0;
  std::uint64_t arena_allocations = 0;
  std::size_t queue_depth = 0;

  std::uint64_t responded() const {
    return completed + cache_hits + rejected + shed + expired + cancelled +
           errors;
  }
};

class SolveService {
 public:
  explicit SolveService(ServiceOptions opts = {});
  ~SolveService();  // stop(true)

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Submits a request; the returned future always becomes ready. Under
  /// the Block policy this call blocks while the queue is full.
  std::future<Response> submit(Request req);

  /// Stops the service. drain = true completes every admitted request
  /// before returning; drain = false answers queued (not yet dispatched)
  /// requests with Status::Cancelled and trips the cancel token of every
  /// in-flight solve, so workers abort cooperatively at their next
  /// memory-block poll instead of running to completion. Idempotent;
  /// submit() after stop() rejects.
  void stop(bool drain = true);

  ServiceStats stats() const;
  const ServiceOptions& options() const { return opts_; }

 private:
  struct Pending {
    Request req;
    std::uint64_t hash = 0;
    std::promise<Response> promise;
    Clock::time_point enqueued{};
    /// Armed for every request (one relaxed load per block to poll), with
    /// the deadline wired in when the request carries one, so both deadline
    /// expiry and stop(drain=false) abort the solve mid-flight.
    CancelToken cancel;
  };
  using Item = std::shared_ptr<Pending>;

  struct CachedResult {
    double value = 0;
    std::string detail;
  };

  void dispatcher_loop();
  void dispatch(Batch<Item> batch);
  void run_batch(const Batch<Item>& batch);
  std::size_t max_inflight() const;
  void respond(const Item& it, Status st, double value = 0,
               std::string detail = {}, std::int64_t queue_ns = 0,
               std::int64_t solve_ns = 0);

  const ServiceOptions opts_;
  SolverPool pool_;
  AdmissionQueue<Item> queue_;
  Batcher<Item> batcher_;  ///< dispatcher thread only
  ResultCache<CachedResult> cache_;

  std::mutex stop_mu_;
  std::atomic<bool> stopped_{false};
  std::atomic<bool> cancel_queued_{false};

  // Dispatched-but-unanswered request count. The dispatcher stalls when it
  // reaches max_inflight(), so worker backlog propagates into the bounded
  // admission queue and the overload policy actually engages — without
  // this, the thread pool's unbounded job deque would absorb any burst and
  // admission control could never say no.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  std::size_t inflight_ = 0;
  /// Tokens of dispatched-but-unanswered requests, so stop(drain=false)
  /// can abort them mid-solve. Pruned as their batches respond.
  std::vector<std::weak_ptr<Pending>> inflight_reqs_;

  // Terminal-status counters (see ServiceStats).
  std::atomic<std::uint64_t> submitted_{0}, completed_{0}, cache_hits_{0},
      rejected_{0}, shed_{0}, expired_{0}, cancelled_{0}, errors_{0},
      batches_{0};

  std::thread dispatcher_;  ///< started last, so members above are ready
};

}  // namespace cellnpdp::serve
