// The solve service façade: admission queue -> batcher -> solver pool ->
// result cache, with one dispatcher thread in the middle and per-stage
// metrics exported through the process-wide obs registry.
//
// Request lifecycle (docs/serving.md):
//
//   submit()            admission: full queue handled per OverloadPolicy
//   dispatcher          pops in (priority, FIFO) order; expired entries
//                       are shed; cache probe; shape-batches small work
//   worker              executes the batch, one arena checkout per batch
//   cache fill          successful solves keyed by content hash
//   respond             the future returned by submit() becomes ready
//
// Every submitted request gets exactly one Response, whatever its fate.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "resilience/hedge.hpp"
#include "resilience/policy.hpp"
#include "serve/batcher.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/response.hpp"
#include "serve/result_cache.hpp"
#include "serve/solver_pool.hpp"
#include "serve/tenant.hpp"

namespace cellnpdp::serve {

struct ServiceOptions {
  std::size_t workers = 4;
  std::size_t queue_capacity = 256;
  OverloadPolicy policy = OverloadPolicy::Block;
  std::size_t cache_capacity = 1024;  ///< entries; 0 disables the cache
  std::size_t batch_max = 8;          ///< requests fused into one dispatch
  index_t batch_max_size = 512;       ///< batch only instances this small
  std::string backend = "blocked-serial";  ///< default solve backend; a
                                           ///< request's own backend= wins
  /// Self-healing behaviour: retries, per-backend circuit breaking,
  /// fallback backend, straggler hedging. Defaults entirely inert.
  resilience::ResiliencePolicy resilience;
  /// Per-tenant QoS: token-bucket admission rates, fair-share weights,
  /// cache byte quotas. Defaults empty — every request lands on the
  /// default tenant with no throttle, and the service behaves exactly
  /// like the pre-tenant one.
  TenantTable tenants;
};

/// Point-in-time per-tenant counters (one row per tenant with activity).
struct TenantStats {
  std::uint16_t id = 0;
  std::string name;
  std::uint64_t submitted = 0;
  std::uint64_t throttled = 0;  ///< refused by the token bucket
  std::uint64_t completed = 0;  ///< Status::Ok
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::size_t queue_depth = 0;

  double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0 : double(cache_hits) / double(total);
  }
};

/// Point-in-time counters; every terminal response is counted exactly once
/// under completed/cache_hits/rejected/shed/expired/cancelled/errors.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;   ///< Status::Ok
  std::uint64_t cache_hits = 0;  ///< Status::OkCached
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t errors = 0;
  /// Refused by a tenant token bucket (Status::RetryAfter with a refill
  /// hint); counted under retry_after in responded(), tracked separately
  /// so overload dashboards can tell quota pushback from breaker trips.
  std::uint64_t throttled = 0;
  std::uint64_t degraded = 0;     ///< Status::Degraded (fallback backend)
  std::uint64_t retry_after = 0;  ///< Status::RetryAfter (breaker open)
  std::uint64_t retries = 0;      ///< failed attempts re-executed
  std::uint64_t hedges = 0;       ///< hedge twins launched
  std::uint64_t hedge_wins = 0;   ///< hedge finished before the primary
  std::uint64_t fallbacks = 0;    ///< solves answered by the fallback rung
  std::uint64_t batches = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t arena_reuses = 0;
  std::uint64_t arena_allocations = 0;
  std::size_t queue_depth = 0;
  /// One row per tenant that has seen traffic (or is configured).
  std::vector<TenantStats> tenants;

  std::uint64_t responded() const {
    return completed + cache_hits + rejected + shed + expired + cancelled +
           errors + degraded + retry_after;
  }
};

class SolveService {
 public:
  explicit SolveService(ServiceOptions opts = {});
  ~SolveService();  // stop(true)

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Submits a request; the returned future always becomes ready. Under
  /// the Block policy this call blocks while the queue is full.
  std::future<Response> submit(Request req);

  /// Callback form for network front-ends: `on_done` is invoked exactly
  /// once with the terminal response, from whichever thread delivers it —
  /// the dispatcher, a worker, the hedge watchdog, or the submitting
  /// thread itself when admission refuses the request synchronously. The
  /// callback must be fast and must not block (it runs on serving hot
  /// paths) and must tolerate firing after the caller has lost interest:
  /// a submit racing stop() still gets its callback (with a Rejected or
  /// Cancelled response), never silence.
  void submit(Request req, std::function<void(Response)> on_done);

  /// Stops the service. drain = true completes every admitted request
  /// before returning; drain = false answers queued (not yet dispatched)
  /// requests with Status::Cancelled and trips the cancel token of every
  /// in-flight solve, so workers abort cooperatively at their next
  /// memory-block poll instead of running to completion. Either way no
  /// pool job outlives the call: hedge twins are released unconditionally,
  /// a primary whose twin already answered is aborted (its result can no
  /// longer matter), and stop() waits for the pool to go idle before
  /// returning. Idempotent; submit() after stop() rejects.
  void stop(bool drain = true);

  ServiceStats stats() const;
  const ServiceOptions& options() const { return opts_; }

 private:
  struct Pending {
    Request req;
    std::uint64_t hash = 0;
    std::promise<Response> promise;
    /// When set, respond() delivers through this instead of the promise.
    std::function<void(Response)> callback;
    Clock::time_point enqueued{};
    /// Armed for every request (one relaxed load per block to poll), with
    /// the deadline wired in when the request carries one, so both deadline
    /// expiry and stop(drain=false) abort the solve mid-flight.
    CancelToken cancel;
    /// First-finisher-wins guard: whoever flips this owns the response
    /// (primary worker, hedge twin, or a shutdown path).
    std::atomic<bool> responded{false};
    /// Steady-clock ns when a worker picked the request up (0 = not yet);
    /// the hedge watchdog computes elapsed time from this.
    std::atomic<std::int64_t> started_ns{0};
    std::atomic<std::int64_t> queue_ns{0};  ///< for the hedge response
    /// Steady-clock ns when the dispatcher popped the request (0 = still
    /// queued); pickup - dispatch is the time spent waiting in a batch.
    std::atomic<std::int64_t> dispatch_ns{0};
    /// Failed attempts re-executed for *this* request (wide-event field;
    /// the service-wide total lives in retries_).
    std::atomic<std::int32_t> attempts_retried{0};
    std::atomic<bool> hedged{false};        ///< a twin has been launched
    /// Separate token for the hedge twin, so the winner can cancel the
    /// loser without tripping its own solve. Armed at submit when hedging
    /// is enabled; inert otherwise.
    CancelToken hedge_cancel;
  };
  using Item = std::shared_ptr<Pending>;

  struct CachedResult {
    double value = 0;
    std::string detail;
    std::string backend;  ///< who computed the entry (reported on hits)
  };

  void dispatcher_loop();
  void dispatch(Batch<Item> batch);
  void run_batch(const Batch<Item>& batch);
  std::size_t max_inflight() const;
  /// Builds the Pending record shared by both submit() forms.
  Item make_item(Request req);
  /// Admission: the common tail of submit() once the item exists —
  /// tenant token bucket first, then the bounded queue. The failure-mode
  /// ladder's first rung (docs/serving.md).
  void admit(const Item& p);
  /// Metric label for a tenant ("default", a configured name, "t<id>").
  const std::string& tenant_label(std::uint16_t tenant);
  /// The tenant's token bucket, or nullptr when unthrottled. The bucket
  /// map is built in the constructor and never mutated after, so lookups
  /// are lock-free.
  TokenBucket* bucket_for(std::uint16_t tenant);
  /// Delivers the response if this caller wins the first-finisher race;
  /// returns whether it did (losers are silent no-ops). `backend` is the
  /// effective engine name reported back to the caller.
  bool respond(const Item& it, Status st, double value = 0,
               std::string detail = {}, std::int64_t queue_ns = 0,
               std::int64_t solve_ns = 0, std::int64_t retry_after_ms = 0,
               std::string backend = {});

  // --- resilience ladder (see docs/resilience.md) ---
  /// Executes one dispatched request through breaker -> retry ->
  /// fallback -> shed; responds whatever happens.
  void solve_one(const Item& it, Clock::time_point picked_up,
                 std::int64_t queue_ns);
  /// Degradation rung: re-runs a SolveSpec on the fallback backend and
  /// answers Degraded. False when there is nothing to fall back to or the
  /// fallback failed too.
  bool try_fallback(const Item& it, Clock::time_point picked_up,
                    std::int64_t queue_ns);
  /// Breaker key for a request: resolved backend name for solves, the
  /// fixed engine name for folds/parses.
  std::string breaker_key(const Request& req) const;
  void watchdog_loop();
  void launch_hedge(const Item& it);

  const ServiceOptions opts_;
  AdmissionQueue<Item> queue_;
  Batcher<Item> batcher_;  ///< dispatcher thread only
  ResultCache<CachedResult> cache_;

  std::mutex stop_mu_;
  std::atomic<bool> stopped_{false};
  std::atomic<bool> cancel_queued_{false};

  // Dispatched-but-unanswered request count. The dispatcher stalls when it
  // reaches max_inflight(), so worker backlog propagates into the bounded
  // admission queue and the overload policy actually engages — without
  // this, the thread pool's unbounded job deque would absorb any burst and
  // admission control could never say no.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  std::size_t inflight_ = 0;
  /// Tokens of dispatched-but-unanswered requests, so stop(drain=false)
  /// can abort them mid-solve. Pruned as their batches respond.
  std::vector<std::weak_ptr<Pending>> inflight_reqs_;

  // Terminal-status counters (see ServiceStats).
  std::atomic<std::uint64_t> submitted_{0}, completed_{0}, cache_hits_{0},
      rejected_{0}, shed_{0}, expired_{0}, cancelled_{0}, errors_{0},
      degraded_{0}, retry_after_{0}, throttled_{0}, retries_{0}, hedges_{0},
      hedge_wins_{0}, fallbacks_{0}, batches_{0};

  /// Dense per-tenant counters, indexed by tenant id (ids are < 256 by
  /// construction: the wire decoder, the line parser, and admit() all
  /// enforce kMaxTenants). Atomics, no lock on any hot path.
  struct TenantCounters {
    std::atomic<std::uint64_t> submitted{0}, throttled{0}, completed{0},
        cache_hits{0}, cache_misses{0}, shed{0}, rejected{0}, expired{0};
  };
  std::unique_ptr<TenantCounters[]> tenant_counters_{
      new TenantCounters[kMaxTenants]};
  /// Memoized metric labels (built on first use per id, under a mutex —
  /// the label string itself is then stable and read lock-free is NOT
  /// assumed; callers re-enter tenant_label which takes the mutex only
  /// on the miss path via double-checked storage).
  std::mutex label_mu_;
  std::array<std::string, kMaxTenants> tenant_labels_;
  std::array<std::atomic<bool>, kMaxTenants> label_ready_{};
  /// Token buckets for tenants with a configured rate; immutable after
  /// the constructor.
  std::map<std::uint16_t, TokenBucket> buckets_;

  /// Per-shape solve latency EWMAs feeding the hedge watchdog.
  resilience::LatencyEstimator estimator_;

  /// Declared after everything its jobs touch (cache_, estimator_, the
  /// counters, the inflight bookkeeping): members are destroyed in
  /// reverse declaration order, so the pool — whose ThreadPool joins its
  /// workers on destruction — goes down first, and any straggling job
  /// finishes while those members are still alive.
  SolverPool pool_;

  std::atomic<bool> watchdog_stop_{false};
  std::thread watchdog_;  ///< only started when resilience.hedge.enabled

  std::thread dispatcher_;  ///< started last, so members above are ready
};

}  // namespace cellnpdp::serve
