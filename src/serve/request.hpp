// Typed requests accepted by the in-process solve service (src/serve).
//
// Five request kinds cover the library's workload families: a generic
// NPDP min-plus solve of the canonical random instance, a Zuker MFE fold,
// a weighted CYK parse, an optimal matrix-chain parenthesization, and an
// optimal-BST construction (the latter two over deterministic seeded
// random data, so a request is fully described by its scalar fields and
// can travel over the wire — see src/net/protocol.hpp). Every request
// carries an id (echoed in the response), a priority (higher is
// dispatched first) and an optional deadline; a request whose deadline
// passes while it sits in the admission queue is shed without being
// solved.
//
// Requests can also be read from a line-delimited text stream (the `npdp
// serve --requests` driver); see parse_request_line at the bottom.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "common/defs.hpp"
#include "obs/span_context.hpp"
#include "simd/dispatch.hpp"
#include "simd/semiring.hpp"

namespace cellnpdp::serve {

using Clock = std::chrono::steady_clock;

/// Tenant ids are small integers so QoS state (counters, fair-share
/// queues, cache quotas) can live in dense arrays. The wire decoder and
/// the line parser both reject ids at or above this bound; id 0 is the
/// default tenant every untagged (legacy) request belongs to.
constexpr std::uint16_t kMaxTenants = 256;

/// Generic NPDP solve of the canonical random instance in a chosen
/// semiring (the same workload as `npdp solve`): cell (i,j) =
/// semiring_init_value(semiring, seed, i, j).
struct SolveSpec {
  index_t n = 256;
  std::uint64_t seed = 1;
  index_t block_side = 64;
  KernelKind kernel = KernelKind::Native;
  SemiringId semiring = SemiringId::MinPlus;
  std::string backend;  ///< registry name; empty = the service's default
};

/// Zuker MFE fold of an explicit sequence, or of the deterministic random
/// sequence of length `random_n` when `seq` is empty.
struct FoldSpec {
  std::string seq;
  index_t random_n = 200;
  std::uint64_t seed = 7;
};

/// Weighted CYK parse with one of the ready-made grammars.
struct ParseSpec {
  enum class GrammarKind { Parens, Anbn };
  GrammarKind grammar = GrammarKind::Parens;
  std::string text;
};

/// Optimal matrix-chain parenthesization of `n` matrices whose dimension
/// vector is drawn deterministically from `seed` (dims in [8, 128)).
struct ChainSpec {
  index_t n = 32;  ///< number of matrices in the chain
  std::uint64_t seed = 11;
};

/// Optimal binary search tree over `keys` keys with hit/miss weights
/// drawn deterministically from `seed`.
struct BstSpec {
  index_t keys = 64;
  std::uint64_t seed = 13;
};

using Payload =
    std::variant<SolveSpec, FoldSpec, ParseSpec, ChainSpec, BstSpec>;

struct Request {
  std::uint64_t id = 0;
  int priority = 0;              ///< higher is dispatched first
  Clock::time_point deadline{};  ///< default-constructed: no deadline
  /// Trace context the request arrived with (invalid = untraced). Not
  /// part of the content hash: tracing never changes what is computed.
  obs::SpanContext trace{};
  /// Who the request belongs to (0 = default tenant). Like the trace
  /// context, NOT part of the content hash: two tenants asking for the
  /// same computation share one cache entry and one placement replica —
  /// isolation applies to admission, scheduling, and cache *budgets*,
  /// never to the results themselves.
  std::uint16_t tenant = 0;
  Payload payload = SolveSpec{};

  bool has_deadline() const { return deadline != Clock::time_point{}; }
  bool expired(Clock::time_point now = Clock::now()) const {
    return has_deadline() && now > deadline;
  }
};

/// Static name of the request's workload family (for logs and metrics).
inline const char* request_kind_name(const Request& r) {
  switch (r.payload.index()) {
    case 0: return "solve";
    case 1: return "fold";
    case 2: return "parse";
    case 3: return "chain";
    default: return "bst";
  }
}

// --- content hashing (result-cache key) -----------------------------------

inline std::uint64_t fnv1a(std::uint64_t h, const void* data,
                           std::size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}
inline std::uint64_t hash_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof v);
}
inline std::uint64_t hash_str(std::uint64_t h, const std::string& s) {
  h = hash_u64(h, s.size());
  return fnv1a(h, s.data(), s.size());
}

/// FNV-1a over the semantic content of a payload. This is both the
/// result-cache key and the router tier's *placement key*: the router
/// hashes the decoded payload (id, priority, deadline and trace never
/// participate) so that all askers of one computation land on one
/// replica, sharding the fleet's LRU caches instead of duplicating them.
inline std::uint64_t content_hash(const Payload& payload) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  h = hash_u64(h, payload.index());
  if (const auto* s = std::get_if<SolveSpec>(&payload)) {
    h = hash_u64(h, static_cast<std::uint64_t>(s->n));
    h = hash_u64(h, s->seed);
    h = hash_u64(h, static_cast<std::uint64_t>(s->block_side));
    h = hash_u64(h, static_cast<std::uint64_t>(s->kernel));
    h = hash_u64(h, static_cast<std::uint64_t>(s->semiring));
    h = hash_str(h, s->backend);
  } else if (const auto* f = std::get_if<FoldSpec>(&payload)) {
    h = hash_str(h, f->seq);
    if (f->seq.empty()) {
      h = hash_u64(h, static_cast<std::uint64_t>(f->random_n));
      h = hash_u64(h, f->seed);
    }
  } else if (const auto* p = std::get_if<ParseSpec>(&payload)) {
    h = hash_u64(h, static_cast<std::uint64_t>(p->grammar));
    h = hash_str(h, p->text);
  } else if (const auto* c = std::get_if<ChainSpec>(&payload)) {
    h = hash_u64(h, static_cast<std::uint64_t>(c->n));
    h = hash_u64(h, c->seed);
  } else if (const auto* b = std::get_if<BstSpec>(&payload)) {
    h = hash_u64(h, static_cast<std::uint64_t>(b->keys));
    h = hash_u64(h, b->seed);
  }
  return h;
}

/// Content hash of a full request — two requests with equal hashes ask
/// for the same computation, which is exactly what keys the result cache.
inline std::uint64_t content_hash(const Request& r) {
  return content_hash(r.payload);
}

/// Batching key: requests with equal shape keys run on identically-shaped
/// state (same arena geometry / chart sizes), so one worker dispatch can
/// amortise scheduling and arena setup across all of them. Note seeds and
/// texts differ within a shape — only the *shape* must match.
inline std::uint64_t shape_key(const Request& r) {
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  h = hash_u64(h, r.payload.index());
  if (const auto* s = std::get_if<SolveSpec>(&r.payload)) {
    h = hash_u64(h, static_cast<std::uint64_t>(s->n));
    h = hash_u64(h, static_cast<std::uint64_t>(s->block_side));
    h = hash_u64(h, static_cast<std::uint64_t>(s->kernel));
    h = hash_u64(h, static_cast<std::uint64_t>(s->semiring));
    h = hash_str(h, s->backend);
  } else if (const auto* f = std::get_if<FoldSpec>(&r.payload)) {
    const index_t len =
        f->seq.empty() ? f->random_n : static_cast<index_t>(f->seq.size());
    h = hash_u64(h, static_cast<std::uint64_t>(len));
  } else if (const auto* p = std::get_if<ParseSpec>(&r.payload)) {
    h = hash_u64(h, static_cast<std::uint64_t>(p->grammar));
    h = hash_u64(h, p->text.size());
  } else if (const auto* c = std::get_if<ChainSpec>(&r.payload)) {
    h = hash_u64(h, static_cast<std::uint64_t>(c->n));
  } else if (const auto* b = std::get_if<BstSpec>(&r.payload)) {
    h = hash_u64(h, static_cast<std::uint64_t>(b->keys));
  }
  return h;
}

/// The instance size a request operates on (n for solves, sequence/text
/// length otherwise); the batcher only fuses requests at or below its
/// size threshold — large solves get a dispatch of their own.
inline index_t instance_size(const Request& r) {
  if (const auto* s = std::get_if<SolveSpec>(&r.payload)) return s->n;
  if (const auto* f = std::get_if<FoldSpec>(&r.payload))
    return f->seq.empty() ? f->random_n : static_cast<index_t>(f->seq.size());
  if (const auto* c = std::get_if<ChainSpec>(&r.payload)) return c->n;
  if (const auto* b = std::get_if<BstSpec>(&r.payload)) return b->keys;
  const auto& p = std::get<ParseSpec>(r.payload);
  return static_cast<index_t>(p.text.size());
}

// --- line-format parsing ---------------------------------------------------
//
//   solve n=512 [seed=3] [block=64] [kernel=scalar|simd128|simd256]
//         [semiring=min-plus|max-plus|counting|viterbi-log]
//         [backend=<registry name>]
//   fold  seq=ACGUACGU | random=200 [seed=7]
//   parse parens=(()()) | anbn=aabb
//   chain n=32 [seed=11]
//   bst   keys=64 [seed=13]
//
// plus the common keys  id=<u64>  priority=<int>  deadline-ms=<ms>
// tenant=<0..255>  (deadline relative to `now`). Blank lines and lines
// starting with '#' should be skipped by the caller.

/// Parses one request line. Returns false and sets *err on malformed
/// input (unknown kind, unknown key, malformed number, duplicate key).
inline bool parse_request_line(const std::string& line, Request* out,
                               std::string* err,
                               Clock::time_point now = Clock::now()) {
  std::istringstream is(line);
  std::string kind;
  is >> kind;
  std::vector<std::pair<std::string, std::string>> kvs;
  std::string tok;
  while (is >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      *err = "expected key=value, got '" + tok + "'";
      return false;
    }
    const std::string key = tok.substr(0, eq);
    for (const auto& [k, v] : kvs) {
      if (k == key) {
        *err = "duplicate key '" + key + "'";
        return false;
      }
    }
    kvs.emplace_back(key, tok.substr(eq + 1));
  }
  Request r;
  auto as_num = [err](const std::string& k, const std::string& v,
                      long long* n) {
    char* end = nullptr;
    *n = std::strtoll(v.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v.empty()) {
      *err = "malformed number for '" + k + "': " + v;
      return false;
    }
    return true;
  };
  auto common = [&](const std::string& k, const std::string& v, bool* used) {
    *used = true;
    long long n = 0;
    if (k == "id") {
      if (!as_num(k, v, &n)) return false;
      r.id = static_cast<std::uint64_t>(n);
    } else if (k == "priority") {
      if (!as_num(k, v, &n)) return false;
      r.priority = static_cast<int>(n);
    } else if (k == "deadline-ms") {
      if (!as_num(k, v, &n)) return false;
      r.deadline = now + std::chrono::milliseconds(n);
    } else if (k == "tenant") {
      if (!as_num(k, v, &n)) return false;
      if (n < 0 || n >= kMaxTenants) {
        *err = "tenant out of range (0..255): " + v;
        return false;
      }
      r.tenant = static_cast<std::uint16_t>(n);
    } else {
      *used = false;
    }
    return true;
  };

  if (kind == "solve") {
    SolveSpec s;
    for (const auto& [k, v] : kvs) {
      bool used = false;
      if (!common(k, v, &used)) return false;
      if (used) continue;
      long long n = 0;
      if (k == "n") {
        if (!as_num(k, v, &n)) return false;
        s.n = n;
      } else if (k == "seed") {
        if (!as_num(k, v, &n)) return false;
        s.seed = static_cast<std::uint64_t>(n);
      } else if (k == "block") {
        if (!as_num(k, v, &n)) return false;
        s.block_side = n;
      } else if (k == "kernel") {
        if (v == "scalar") {
          s.kernel = KernelKind::Scalar;
        } else if (v == "simd128") {
          s.kernel = KernelKind::Native;
        } else if (v == "simd256") {
          s.kernel = KernelKind::Wide;
        } else {
          *err = "unknown kernel '" + v + "'";
          return false;
        }
      } else if (k == "semiring") {
        if (!semiring_from_name(v, &s.semiring)) {
          *err = "unknown semiring '" + v + "'";
          return false;
        }
      } else if (k == "backend") {
        // Validated at execution (the registry is the source of truth);
        // an unknown name surfaces as a Status::Error response.
        s.backend = v;
      } else {
        *err = "unknown solve key '" + k + "'";
        return false;
      }
    }
    if (s.n < 1) {
      *err = "solve needs n >= 1";
      return false;
    }
    r.payload = s;
  } else if (kind == "fold") {
    FoldSpec f;
    for (const auto& [k, v] : kvs) {
      bool used = false;
      if (!common(k, v, &used)) return false;
      if (used) continue;
      long long n = 0;
      if (k == "seq") {
        f.seq = v;
      } else if (k == "random") {
        if (!as_num(k, v, &n)) return false;
        f.random_n = n;
      } else if (k == "seed") {
        if (!as_num(k, v, &n)) return false;
        f.seed = static_cast<std::uint64_t>(n);
      } else {
        *err = "unknown fold key '" + k + "'";
        return false;
      }
    }
    r.payload = f;
  } else if (kind == "parse") {
    ParseSpec p;
    bool have_text = false;
    for (const auto& [k, v] : kvs) {
      bool used = false;
      if (!common(k, v, &used)) return false;
      if (used) continue;
      if (k == "parens") {
        p.grammar = ParseSpec::GrammarKind::Parens;
        p.text = v;
        have_text = true;
      } else if (k == "anbn") {
        p.grammar = ParseSpec::GrammarKind::Anbn;
        p.text = v;
        have_text = true;
      } else {
        *err = "unknown parse key '" + k + "'";
        return false;
      }
    }
    if (!have_text) {
      *err = "parse needs parens=... or anbn=...";
      return false;
    }
    r.payload = p;
  } else if (kind == "chain") {
    ChainSpec c;
    for (const auto& [k, v] : kvs) {
      bool used = false;
      if (!common(k, v, &used)) return false;
      if (used) continue;
      long long n = 0;
      if (k == "n") {
        if (!as_num(k, v, &n)) return false;
        c.n = n;
      } else if (k == "seed") {
        if (!as_num(k, v, &n)) return false;
        c.seed = static_cast<std::uint64_t>(n);
      } else {
        *err = "unknown chain key '" + k + "'";
        return false;
      }
    }
    if (c.n < 1) {
      *err = "chain needs n >= 1";
      return false;
    }
    r.payload = c;
  } else if (kind == "bst") {
    BstSpec b;
    for (const auto& [k, v] : kvs) {
      bool used = false;
      if (!common(k, v, &used)) return false;
      if (used) continue;
      long long n = 0;
      if (k == "keys") {
        if (!as_num(k, v, &n)) return false;
        b.keys = n;
      } else if (k == "seed") {
        if (!as_num(k, v, &n)) return false;
        b.seed = static_cast<std::uint64_t>(n);
      } else {
        *err = "unknown bst key '" + k + "'";
        return false;
      }
    }
    if (b.keys < 1) {
      *err = "bst needs keys >= 1";
      return false;
    }
    r.payload = b;
  } else {
    *err = "unknown request kind '" + kind + "'";
    return false;
  }
  *out = std::move(r);
  return true;
}

}  // namespace cellnpdp::serve
