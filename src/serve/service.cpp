#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <tuple>
#include <utility>
#include <variant>

#include "common/fault_hook.hpp"
#include "obs/metrics.hpp"
#include "obs/request_log.hpp"
#include "obs/trace.hpp"
#include "resilience/circuit_breaker.hpp"

namespace cellnpdp::serve {

namespace {

std::int64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// Approximate retained bytes of a cache entry, for tenant byte quotas.
/// Exactness doesn't matter — only that hot-tenant churn is charged to
/// the hot tenant proportionally to what it stores.
template <class R>
static std::size_t cached_bytes_of(const R& r) {
  return sizeof(R) + r.detail.size() + r.backend.size();
}

SolveService::SolveService(ServiceOptions opts)
    : opts_(opts),
      queue_(opts.queue_capacity, opts.policy),
      batcher_(opts.batch_max),
      cache_(opts.cache_capacity),
      pool_(opts.workers) {
  queue_.set_expiry(
      [](const Item& it) { return it->req.expired(); },
      [this](Item&& it) {
        // Lazy in-queue expiry: distinct from Shed (overload) in both the
        // response status and the serve.expired counter; queue_ns stamps
        // how long the request sat before its deadline passed.
        obs::metrics().counter("serve.expired").add();
        respond(it, Status::Expired, 0, {},
                ns_between(it->enqueued, Clock::now()));
      });
  queue_.set_shed_handler([this](Item&& it) {
    obs::metrics().counter("serve.shed").add();
    CELLNPDP_TRACE_INSTANT("serve", "shed",
                           static_cast<std::int64_t>(it->req.id));
    respond(it, Status::Shed, 0, {},
            ns_between(it->enqueued, Clock::now()));
  });
  // Tenant QoS wiring: fair-share weights into the queue, byte quotas
  // into the cache, a token bucket per rate-limited tenant. buckets_ is
  // never mutated after this, so admit() reads it lock-free.
  for (const auto& [tid, pol] : opts_.tenants.policies) {
    queue_.set_tenant_weight(tid, pol.weight);
    if (pol.cache_bytes > 0) cache_.set_tenant_budget(tid, pol.cache_bytes);
    if (pol.rate > 0)
      buckets_.emplace(std::piecewise_construct, std::forward_as_tuple(tid),
                       std::forward_as_tuple(pol.rate, pol.burst));
  }
  if (opts_.resilience.hedge.enabled)
    watchdog_ = std::thread([this] { watchdog_loop(); });
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

SolveService::~SolveService() { stop(true); }

SolveService::Item SolveService::make_item(Request req) {
  auto p = std::make_shared<Pending>();
  p->req = std::move(req);
  p->hash = content_hash(p->req);
  p->enqueued = Clock::now();
  // Every request gets an armed token (polled mid-solve at memory-block
  // granularity: one relaxed load per block). Deadlines are wired into it
  // so workers observe the deadline passing and abort cooperatively —
  // expiry is enforced during execution, not only while queued.
  p->cancel = p->req.has_deadline()
                  ? CancelToken::with_deadline(p->req.deadline)
                  : CancelToken::armed();
  // Armed up front so the watchdog can hand the token to a hedge twin
  // without racing token assignment against the twin's poll loop.
  if (opts_.resilience.hedge.enabled) p->hedge_cancel = CancelToken::armed();
  return p;
}

TokenBucket* SolveService::bucket_for(std::uint16_t tenant) {
  const auto it = buckets_.find(tenant);
  return it == buckets_.end() ? nullptr : &it->second;
}

const std::string& SolveService::tenant_label(std::uint16_t tenant) {
  if (!label_ready_[tenant].load(std::memory_order_acquire)) {
    std::lock_guard lk(label_mu_);
    if (!label_ready_[tenant].load(std::memory_order_relaxed)) {
      tenant_labels_[tenant] = opts_.tenants.name_of(tenant);
      label_ready_[tenant].store(true, std::memory_order_release);
    }
  }
  return tenant_labels_[tenant];
}

void SolveService::admit(const Item& p) {
  ++submitted_;
  if (p->req.tenant >= kMaxTenants) {
    // Belt-and-braces: the wire decoder and line parser already enforce
    // this, but a programmatic submit must not index out of the dense
    // counter arrays.
    respond(p, Status::Rejected, 0, "tenant id out of range");
    return;
  }
  const std::uint16_t tid = p->req.tenant;
  tenant_counters_[tid].submitted.fetch_add(1, std::memory_order_relaxed);
  if (stopped_.load(std::memory_order_acquire)) {
    respond(p, Status::Rejected, 0, "service stopped");
    return;
  }
  // Rung 1 of the failure-modes ladder: the tenant's token bucket. A
  // tenant over its admission rate is pushed back *before* it can
  // occupy queue capacity — the answer is RetryAfter with a refill hint,
  // never a drop, and other tenants' queues are untouched.
  if (TokenBucket* b = bucket_for(tid); b != nullptr && !b->try_take()) {
    ++throttled_;
    ++retry_after_;  // a throttle IS a RetryAfter terminal response
    tenant_counters_[tid].throttled.fetch_add(1, std::memory_order_relaxed);
    auto& m = obs::metrics();
    m.counter("serve.throttled").add();
    m.counter("serve.tenant.throttled{tenant=" + tenant_label(tid) + "}")
        .add();
    CELLNPDP_TRACE_INSTANT("serve", "throttle",
                           static_cast<std::int64_t>(p->req.id));
    respond(p, Status::RetryAfter, 0,
            "tenant quota exceeded: " + tenant_label(tid), 0, 0,
            b->retry_after_ms());
    return;
  }
  // Fault site: admission refusing a request as if the queue were full.
  if (FaultHook* hook = fault_hook();
      hook != nullptr &&
      hook->fire(FaultSite::QueueOverload,
                 static_cast<std::int64_t>(p->req.id),
                 static_cast<std::int64_t>(queue_.depth()))) {
    respond(p, Status::Rejected, 0, "injected queue overload");
    return;
  }
  // A push can still lose the race against stop(): the network layer
  // submits from reactor threads while drain closes the queue. The queue
  // answers Closed (never asserts — see AdmissionQueue::push), which maps
  // to the same Rejected response as the stopped_ check above.
  const int prio = p->req.priority;
  const Admission verdict = queue_.push(p, prio, tid);
  auto& m = obs::metrics();
  m.gauge("serve.queue_depth").set(double(queue_.depth()));
  if (verdict != Admission::Admitted) {
    respond(p, Status::Rejected, 0,
            verdict == Admission::Closed ? "service stopped" : "queue full");
    return;
  }
  if (opts_.tenants.configured() || tid != 0) {
    m.counter("serve.tenant.admitted{tenant=" + tenant_label(tid) + "}")
        .add();
    m.gauge("serve.tenant.queue_depth{tenant=" + tenant_label(tid) + "}")
        .set(double(queue_.tenant_depth(tid)));
  }
}

std::future<Response> SolveService::submit(Request req) {
  const Item p = make_item(std::move(req));
  std::future<Response> fut = p->promise.get_future();
  admit(p);
  return fut;
}

void SolveService::submit(Request req, std::function<void(Response)> on_done) {
  const Item p = make_item(std::move(req));
  p->callback = std::move(on_done);
  admit(p);
}

void SolveService::stop(bool drain) {
  std::lock_guard lk(stop_mu_);
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  // Quiesce the watchdog first so no new hedge twins launch while the
  // pipeline is coming down.
  watchdog_stop_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) watchdog_.join();
  if (!drain) cancel_queued_.store(true, std::memory_order_release);
  {
    // Shutdown never waits on work whose answer cannot matter. Hedge
    // twins are released unconditionally — their primaries drain to
    // completion, so a twin at shutdown is pure redundancy — and a
    // primary whose twin already won the respond() race is a zombie that
    // would otherwise hold the final wait_idle() hostage. With
    // drain=false every in-flight solve is aborted: the armed tokens
    // reach the workers at their next per-block poll and free them
    // within a block's worth of work; run_batch answers those requests
    // with Status::Cancelled.
    std::lock_guard ilk(inflight_mu_);
    for (const auto& w : inflight_reqs_)
      if (auto it = w.lock()) {
        it->hedge_cancel.request_cancel(CancelReason::Shutdown);
        if (!drain || it->responded.load(std::memory_order_acquire))
          it->cancel.request_cancel(CancelReason::Shutdown);
      }
  }
  queue_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
  // The dispatcher's last act was a wait_idle(), but repeat it here so no
  // pool job — hedge twin included — can outlive stop() and touch members
  // mid-destruction (pool_ is also declared to be destroyed first; this
  // keeps stop()'s contract independent of member order).
  pool_.wait_idle();
}

void SolveService::dispatcher_loop() {
  obs::Tracer::instance().name_this_thread("serve dispatcher");
  for (;;) {
    Item it;
    const PopResult r = queue_.pop_wait_for(it, std::chrono::milliseconds(2));
    obs::metrics().gauge("serve.queue_depth").set(double(queue_.depth()));
    if (r == PopResult::Item) {
      const std::int64_t queue_ns = ns_between(it->enqueued, Clock::now());
      it->dispatch_ns.store(steady_now_ns(), std::memory_order_relaxed);
      if (cancel_queued_.load(std::memory_order_acquire)) {
        respond(it, Status::Cancelled, 0, {}, queue_ns);
        continue;
      }
      CachedResult hit;
      if (cache_.get(it->hash, &hit)) {
        respond(it, Status::OkCached, hit.value, hit.detail, queue_ns, 0, 0,
                hit.backend);
        continue;
      }
      tenant_counters_[it->req.tenant].cache_misses.fetch_add(
          1, std::memory_order_relaxed);
      const std::uint64_t key = shape_key(it->req);
      if (opts_.batch_max > 1 &&
          instance_size(it->req) <= opts_.batch_max_size) {
        Batch<Item> full = batcher_.add(key, std::move(it));
        if (!full.items.empty()) dispatch(std::move(full));
      } else {
        Batch<Item> single;
        single.key = key;
        single.items.push_back(std::move(it));
        dispatch(std::move(single));
      }
      continue;
    }
    // Queue dry (tick) or closed: flush the partial batches so no request
    // waits on traffic that may never come.
    for (Batch<Item>& b : batcher_.drain()) {
      if (cancel_queued_.load(std::memory_order_acquire)) {
        for (const Item& queued : b.items)
          respond(queued, Status::Cancelled, 0, {},
                  ns_between(queued->enqueued, Clock::now()));
      } else {
        dispatch(std::move(b));
      }
    }
    if (r == PopResult::Closed) break;
  }
  // In-flight batches always run to completion, drain or not.
  pool_.wait_idle();
}

std::size_t SolveService::max_inflight() const {
  // Two full waves of work per worker keeps everyone busy while still
  // letting backlog reach the admission queue quickly.
  const std::size_t wave = opts_.workers * std::max<std::size_t>(opts_.batch_max, 1);
  return std::max<std::size_t>(wave * 2, 2);
}

void SolveService::dispatch(Batch<Item> batch) {
  {
    std::unique_lock lk(inflight_mu_);
    inflight_cv_.wait(lk, [this] { return inflight_ < max_inflight(); });
    inflight_ += batch.items.size();
    for (const Item& it : batch.items) inflight_reqs_.push_back(it);
  }
  ++batches_;
  obs::metrics().counter("serve.batches").add();
  obs::metrics()
      .histogram("serve.batch_size")
      .observe(static_cast<std::int64_t>(batch.items.size()));
  auto shared = std::make_shared<Batch<Item>>(std::move(batch));
  pool_.submit([this, shared] { run_batch(*shared); });
}

void SolveService::run_batch(const Batch<Item>& batch) {
  CELLNPDP_TRACE_SPAN("serve", "batch");
  for (const Item& it : batch.items) {
    const Clock::time_point picked_up = Clock::now();
    const std::int64_t queue_ns = ns_between(it->enqueued, picked_up);
    // A deadline can pass between dispatch and pick-up; shed here too.
    if (it->req.expired(picked_up)) {
      obs::metrics().counter("serve.expired").add();
      respond(it, Status::Expired, 0, {}, queue_ns);
    } else {
      it->queue_ns.store(queue_ns, std::memory_order_relaxed);
      it->started_ns.store(steady_now_ns(), std::memory_order_release);
      solve_one(it, picked_up, queue_ns);
    }
    {
      std::lock_guard lk(inflight_mu_);
      --inflight_;
      for (auto wi = inflight_reqs_.begin(); wi != inflight_reqs_.end();) {
        const auto sp = wi->lock();
        if (sp == nullptr || sp == it)
          wi = inflight_reqs_.erase(wi);
        else
          ++wi;
      }
    }
    inflight_cv_.notify_one();
  }
}

std::string SolveService::breaker_key(const Request& req) const {
  if (const auto* s = std::get_if<SolveSpec>(&req.payload))
    return !s->backend.empty() ? s->backend : opts_.backend;
  if (std::holds_alternative<FoldSpec>(req.payload)) return "zuker";
  if (std::holds_alternative<ChainSpec>(req.payload)) return "chain";
  if (std::holds_alternative<BstSpec>(req.payload)) return "bst";
  return "cyk";
}

void SolveService::solve_one(const Item& it, Clock::time_point picked_up,
                             std::int64_t queue_ns) {
  const resilience::ResiliencePolicy& rp = opts_.resilience;
  resilience::CircuitBreaker* br =
      rp.breaker_enabled
          ? &resilience::breakers().breaker(breaker_key(it->req), rp.breaker)
          : nullptr;

  // Whatever this request's fate, a hedge twin must not outlive it: every
  // terminal path below releases the twin so it stops at its next
  // per-block poll instead of solving to completion for nobody. Harmless
  // when the twin already finished (or won — respond() is first-finisher).
  const auto release_twin = [&it] {
    if (it->hedged.load(std::memory_order_acquire))
      it->hedge_cancel.request_cancel(CancelReason::Requested);
  };

  if (br != nullptr && !br->allow()) {
    // Rung 3/4 of the ladder without even attempting the primary: the
    // breaker says the backend is sick right now.
    if (!try_fallback(it, picked_up, queue_ns)) {
      const std::int64_t hint = std::max<std::int64_t>(
          br->retry_after_ms(), rp.retry_after.count());
      if (respond(it, Status::RetryAfter, 0,
                  "circuit open: " + breaker_key(it->req), queue_ns, 0, hint))
        ++retry_after_;
    }
    release_twin();
    return;
  }

  // Rung 2: the primary backend, re-executed up to the retry budget with
  // capped exponential backoff. Every failed attempt feeds the breaker;
  // cancellation feeds nothing (the backend did nothing wrong) but does
  // hand back a half-open probe slot, or the breaker could wedge.
  const int max_attempts = rp.retry.enabled() ? rp.retry.max_attempts : 1;
  SolveOutcome o;
  std::int64_t attempt_ns = 0;  ///< last attempt only, no backoff sleeps
  for (int attempt = 1;; ++attempt) {
    const Clock::time_point attempt_start = Clock::now();
    o = pool_.execute(it->req, it->cancel, opts_.backend);
    attempt_ns = ns_between(attempt_start, Clock::now());
    if (o.cancelled) {
      if (br != nullptr) br->record_abandoned();
      break;
    }
    if (o.ok) {
      if (br != nullptr) br->record_success();
      break;
    }
    if (br != nullptr) br->record_failure();
    if (attempt >= max_attempts || it->req.expired() ||
        it->responded.load(std::memory_order_acquire))
      break;
    ++retries_;
    it->attempts_retried.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter("serve.retries").add();
    CELLNPDP_TRACE_INSTANT("serve", "retry",
                           static_cast<std::int64_t>(it->req.id), attempt);
    const auto delay = rp.retry.backoff(attempt + 1, it->req.id);
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
  }

  const std::int64_t solve_ns = ns_between(picked_up, Clock::now());
  if (o.cancelled) {
    // Aborted mid-solve (deadline passed, stop(drain=false), or a hedge
    // twin won and cancelled us — then this respond loses the race and is
    // a no-op). Never cached: the arena held a partial result.
    respond(it, Status::Cancelled, 0, o.error, queue_ns, solve_ns);
    release_twin();
    return;
  }
  if (!o.ok) {
    // The twin may have answered while the primary burned its retries; a
    // fallback solve would only compute a result that loses the respond()
    // race — skip straight to releasing the twin.
    if (!it->responded.load(std::memory_order_acquire) &&
        try_fallback(it, picked_up, queue_ns)) {
      release_twin();
      return;
    }
    respond(it, Status::Error, 0, o.error, queue_ns, solve_ns);
    release_twin();
    return;
  }
  // The straggler estimator sees only the successful attempt's duration:
  // backoff sleeps and failed attempts are not solve latency, and folding
  // them in would inflate the EWMA and suppress exactly the hedging a
  // flaky shape needs.
  estimator_.observe(shape_key(it->req), attempt_ns);
  // Cache before responding, so a caller that resubmits the moment its
  // future resolves observes the hit. Losing the first-finisher race
  // below is harmless: primary and twin computed the same request, so
  // whichever result lands in the cache is the right one. The fill is
  // charged against the submitting tenant's byte quota.
  CachedResult fill{o.value, o.detail, o.backend_used};
  const std::size_t fill_bytes = cached_bytes_of(fill);
  cache_.put(it->hash, std::move(fill), it->req.tenant, fill_bytes);
  respond(it, Status::Ok, o.value, o.detail, queue_ns, solve_ns, 0,
          o.backend_used);
  release_twin();
}

bool SolveService::try_fallback(const Item& it, Clock::time_point picked_up,
                                std::int64_t queue_ns) {
  const std::string& fb = opts_.resilience.fallback_backend;
  if (fb.empty()) return false;
  // Only generic solves can change engine; folds/parses have exactly one.
  if (!std::holds_alternative<SolveSpec>(it->req.payload)) return false;
  Request copy = it->req;
  std::get<SolveSpec>(copy.payload).backend.clear();  // fb decides
  const SolveOutcome o = pool_.execute(copy, it->cancel, fb);
  const std::int64_t solve_ns = ns_between(picked_up, Clock::now());
  if (o.cancelled) {
    respond(it, Status::Cancelled, 0, o.error, queue_ns, solve_ns);
    return true;
  }
  if (!o.ok) return false;  // caller escalates to Error / RetryAfter
  // Deliberately not cached: the degraded answer would mask the primary's
  // recovery behind OkCached hits.
  if (respond(it, Status::Degraded, o.value, o.detail, queue_ns, solve_ns, 0,
              o.backend_used)) {
    ++fallbacks_;
    ++degraded_;
    obs::metrics().counter("serve.fallbacks").add();
  }
  return true;
}

void SolveService::watchdog_loop() {
  obs::Tracer::instance().name_this_thread("serve watchdog");
  const resilience::HedgePolicy& hp = opts_.resilience.hedge;
  const std::int64_t min_delay_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(hp.min_delay)
          .count();
  while (!watchdog_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::int64_t now_ns = steady_now_ns();
    std::vector<Item> to_hedge;
    {
      std::lock_guard lk(inflight_mu_);
      for (const auto& w : inflight_reqs_) {
        const Item it = w.lock();
        if (it == nullptr) continue;
        if (!std::holds_alternative<SolveSpec>(it->req.payload)) continue;
        if (it->responded.load(std::memory_order_acquire)) continue;
        if (it->hedged.load(std::memory_order_acquire)) continue;
        const std::int64_t started =
            it->started_ns.load(std::memory_order_acquire);
        if (started == 0) continue;  // dispatched, not picked up yet
        const std::int64_t est =
            estimator_.estimate_ns(shape_key(it->req), hp.min_samples);
        if (est <= 0) continue;  // estimate still cold: never hedge blind
        const std::int64_t trigger = std::max<std::int64_t>(
            static_cast<std::int64_t>(hp.k * static_cast<double>(est)),
            min_delay_ns);
        if (now_ns - started > trigger) {
          it->hedged.store(true, std::memory_order_release);
          to_hedge.push_back(it);
        }
      }
    }
    for (const Item& it : to_hedge) launch_hedge(it);
  }
}

void SolveService::launch_hedge(const Item& it) {
  ++hedges_;
  obs::metrics().counter("serve.hedges").add();
  CELLNPDP_TRACE_INSTANT("serve", "hedge",
                         static_cast<std::int64_t>(it->req.id));
  pool_.submit([this, it] {
    if (it->responded.load(std::memory_order_acquire)) return;
    const Clock::time_point started = Clock::now();
    Request copy = it->req;
    // Prefer a different engine for the twin when one is configured — a
    // straggler often means the primary backend is the problem.
    if (!opts_.resilience.fallback_backend.empty())
      std::get<SolveSpec>(copy.payload).backend =
          opts_.resilience.fallback_backend;
    const SolveOutcome o = pool_.execute(copy, it->hedge_cancel, opts_.backend);
    if (!o.ok) return;  // lost (cancelled) or failed: the primary answers
    const std::int64_t solve_ns = ns_between(started, Clock::now());
    CachedResult fill{o.value, o.detail, o.backend_used};
    const std::size_t fill_bytes = cached_bytes_of(fill);
    cache_.put(it->hash, std::move(fill), it->req.tenant, fill_bytes);
    if (respond(it, Status::Ok, o.value, o.detail,
                it->queue_ns.load(std::memory_order_relaxed), solve_ns, 0,
                o.backend_used)) {
      ++hedge_wins_;
      obs::metrics().counter("serve.hedge_wins").add();
      estimator_.observe(shape_key(it->req), solve_ns);
      // Free the stalled primary worker at its next per-block poll.
      it->cancel.request_cancel(CancelReason::Requested);
    }
  });
}

bool SolveService::respond(const Item& it, Status st, double value,
                           std::string detail, std::int64_t queue_ns,
                           std::int64_t solve_ns,
                           std::int64_t retry_after_ms, std::string backend) {
  if (it->responded.exchange(true, std::memory_order_acq_rel)) return false;
  Response resp;
  resp.id = it->req.id;
  resp.status = st;
  resp.value = value;
  resp.detail = std::move(detail);
  resp.backend = std::move(backend);
  resp.queue_ns = queue_ns;
  resp.solve_ns = solve_ns;
  resp.total_ns = ns_between(it->enqueued, Clock::now());
  resp.retry_after_ms = retry_after_ms;
  const std::uint16_t tid =
      it->req.tenant < kMaxTenants ? it->req.tenant : std::uint16_t(0);
  TenantCounters& tc = tenant_counters_[tid];
  switch (st) {
    case Status::Ok:
      ++completed_;
      tc.completed.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::OkCached:
      ++cache_hits_;
      tc.cache_hits.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::Rejected:
      ++rejected_;
      tc.rejected.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::Shed:
      ++shed_;
      tc.shed.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::Expired:
      ++expired_;
      tc.expired.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::Cancelled: ++cancelled_; break;
    case Status::Error: ++errors_; break;
    case Status::Degraded: break;     // counted at the fallback site
    case Status::RetryAfter: break;   // counted at the breaker/throttle site
  }
  resp.trace_id = it->req.trace.trace_id;
  resp.trace_sampled = it->req.trace.sampled;
  auto& m = obs::metrics();
  m.counter(std::string("serve.status.") + status_name(st)).add();
  // Labeled per-tenant terminal counters (only once tenancy is in play,
  // so an untenanted deployment's metric namespace is unchanged).
  if (opts_.tenants.configured() || tid != 0) {
    m.counter("serve.tenant.status." + std::string(status_name(st)) +
              "{tenant=" + tenant_label(tid) + "}")
        .add();
    if (st == Status::Shed)
      m.counter("serve.tenant.shed{tenant=" + tenant_label(tid) + "}").add();
  }
  m.histogram("serve.total_ns").observe(resp.total_ns);
  if (st == Status::Ok || st == Status::OkCached) {
    m.histogram("serve.queue_ns").observe(queue_ns);
    if (solve_ns > 0) m.histogram("serve.solve_ns").observe(solve_ns);
  }

  // Stage boundaries in absolute steady ns, shared by the span emission
  // and the wide event so the two always reconcile exactly.
  const std::int64_t now_abs = steady_now_ns();
  const std::int64_t enq_abs = now_abs - resp.total_ns;
  const std::int64_t disp_abs =
      it->dispatch_ns.load(std::memory_order_relaxed);
  const std::int64_t started_abs =
      it->started_ns.load(std::memory_order_acquire);
  const std::int64_t queue_span_ns =
      std::max<std::int64_t>((disp_abs > 0 ? disp_abs : now_abs) - enq_abs, 0);
  const std::int64_t batch_span_ns =
      (disp_abs > 0 && started_abs > disp_abs) ? started_abs - disp_abs : 0;

  obs::Tracer& tr = obs::Tracer::instance();
  if (it->req.trace.sampled && tr.enabled()) {
    // Retroactive span emission: respond() is the single point every
    // request passes through, so back-dating the stage spans from the
    // stamps the stages left keeps the chain complete even for requests
    // that never reached a worker (rejected, shed, expired, cancelled).
    const auto a0 = static_cast<std::int64_t>(it->req.trace.trace_id);
    const std::int64_t session_now = tr.now_ns();
    const auto to_session = [&](std::int64_t abs) {
      return session_now - (now_abs - abs);
    };
    obs::TraceEvent ev;
    ev.cat = "req";
    ev.a0 = a0;
    ev.ph = 'X';
    ev.name = "queue";
    ev.ts_ns = to_session(enq_abs);
    ev.dur_ns = queue_span_ns;
    tr.record(ev);
    if (batch_span_ns > 0) {
      ev.name = "batch";
      ev.ts_ns = to_session(disp_abs);
      ev.dur_ns = batch_span_ns;
      tr.record(ev);
    }
    if (solve_ns > 0) {
      ev.name = "solve";
      ev.ts_ns = to_session(now_abs - solve_ns);
      ev.dur_ns = solve_ns;
      tr.record(ev);
    }
    ev.ph = 'i';
    ev.dur_ns = -1;
    if (st == Status::OkCached) {
      ev.name = "cache";
      ev.ts_ns = to_session(disp_abs > 0 ? disp_abs : now_abs);
      ev.a1 = obs::TraceEvent::kNoArg;
      tr.record(ev);
    }
    ev.name = "respond";
    ev.ts_ns = session_now;
    ev.a1 = static_cast<std::int64_t>(st);
    tr.record(ev);
  }

  obs::RequestLog& rl = obs::request_log();
  if (rl.enabled()) {
    obs::WideEvent we;
    we.trace_id = it->req.trace.trace_id;
    we.request_id = it->req.id;
    we.kind = request_kind_name(it->req);
    we.status = status_name(st);
    we.tenant = tid;
    we.backend = resp.backend;
    we.cache_hit = (st == Status::OkCached);
    we.sampled = it->req.trace.sampled;
    we.queue_ns = queue_span_ns;
    we.batch_ns = batch_span_ns;
    we.solve_ns = solve_ns;
    we.total_ns = resp.total_ns;
    we.retries = it->attempts_retried.load(std::memory_order_relaxed);
    we.hedged = it->hedged.load(std::memory_order_relaxed);
    rl.append(std::move(we));
  }

  if (it->callback) {
    it->callback(std::move(resp));
  } else {
    it->promise.set_value(std::move(resp));
  }
  return true;
}

ServiceStats SolveService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load();
  s.completed = completed_.load();
  s.cache_hits = cache_hits_.load();
  s.rejected = rejected_.load();
  s.shed = shed_.load();
  s.expired = expired_.load();
  s.cancelled = cancelled_.load();
  s.errors = errors_.load();
  s.degraded = degraded_.load();
  s.retry_after = retry_after_.load();
  s.throttled = throttled_.load();
  s.retries = retries_.load();
  s.hedges = hedges_.load();
  s.hedge_wins = hedge_wins_.load();
  s.fallbacks = fallbacks_.load();
  s.batches = batches_.load();
  s.cache_misses = cache_.misses();
  s.cache_evictions = cache_.evictions();
  s.arena_reuses = pool_.arena_reuses();
  s.arena_allocations = pool_.arena_allocations();
  s.queue_depth = queue_.depth();
  // Per-tenant rows: every tenant that saw traffic plus every configured
  // one (a configured-but-idle tenant still shows up with zeros).
  for (std::uint32_t tid = 0; tid < kMaxTenants; ++tid) {
    const TenantCounters& tc = tenant_counters_[tid];
    const std::uint64_t sub = tc.submitted.load(std::memory_order_relaxed);
    const bool configured =
        opts_.tenants.policies.count(static_cast<std::uint16_t>(tid)) != 0;
    if (sub == 0 && !configured) continue;
    TenantStats ts;
    ts.id = static_cast<std::uint16_t>(tid);
    ts.name = opts_.tenants.name_of(ts.id);
    ts.submitted = sub;
    ts.throttled = tc.throttled.load(std::memory_order_relaxed);
    ts.completed = tc.completed.load(std::memory_order_relaxed);
    ts.cache_hits = tc.cache_hits.load(std::memory_order_relaxed);
    ts.cache_misses = tc.cache_misses.load(std::memory_order_relaxed);
    ts.shed = tc.shed.load(std::memory_order_relaxed);
    ts.rejected = tc.rejected.load(std::memory_order_relaxed);
    ts.expired = tc.expired.load(std::memory_order_relaxed);
    ts.queue_depth = queue_.tenant_depth(ts.id);
    s.tenants.push_back(std::move(ts));
  }
  return s;
}

}  // namespace cellnpdp::serve
