#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cellnpdp::serve {

namespace {

std::int64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
}

}  // namespace

SolveService::SolveService(ServiceOptions opts)
    : opts_(opts),
      pool_(opts.workers),
      queue_(opts.queue_capacity, opts.policy),
      batcher_(opts.batch_max),
      cache_(opts.cache_capacity) {
  queue_.set_expiry(
      [](const Item& it) { return it->req.expired(); },
      [this](Item&& it) {
        // Lazy in-queue expiry: distinct from Shed (overload) in both the
        // response status and the serve.expired counter; queue_ns stamps
        // how long the request sat before its deadline passed.
        obs::metrics().counter("serve.expired").add();
        respond(it, Status::Expired, 0, {},
                ns_between(it->enqueued, Clock::now()));
      });
  queue_.set_shed_handler([this](Item&& it) {
    respond(it, Status::Shed, 0, {},
            ns_between(it->enqueued, Clock::now()));
  });
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

SolveService::~SolveService() { stop(true); }

std::future<Response> SolveService::submit(Request req) {
  auto p = std::make_shared<Pending>();
  p->req = std::move(req);
  p->hash = content_hash(p->req);
  p->enqueued = Clock::now();
  // Every request gets an armed token (polled mid-solve at memory-block
  // granularity: one relaxed load per block). Deadlines are wired into it
  // so workers observe the deadline passing and abort cooperatively —
  // expiry is enforced during execution, not only while queued.
  p->cancel = p->req.has_deadline()
                  ? CancelToken::with_deadline(p->req.deadline)
                  : CancelToken::armed();
  std::future<Response> fut = p->promise.get_future();
  ++submitted_;
  if (stopped_.load(std::memory_order_acquire)) {
    respond(p, Status::Rejected, 0, "service stopped");
    return fut;
  }
  const int prio = p->req.priority;
  const Admission verdict = queue_.push(p, prio);
  obs::metrics().gauge("serve.queue_depth").set(double(queue_.depth()));
  if (verdict != Admission::Admitted)
    respond(p, Status::Rejected, 0,
            verdict == Admission::Closed ? "service stopped" : "queue full");
  return fut;
}

void SolveService::stop(bool drain) {
  std::lock_guard lk(stop_mu_);
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  if (!drain) {
    cancel_queued_.store(true, std::memory_order_release);
    // Abort in-flight solves too: every dispatched Pending carries an
    // armed token, so tripping the copies here reaches the workers at
    // their next per-block poll and frees them within a block's worth of
    // work; run_batch answers those requests with Status::Cancelled.
    std::lock_guard ilk(inflight_mu_);
    for (const auto& w : inflight_reqs_)
      if (auto it = w.lock()) it->cancel.request_cancel(CancelReason::Shutdown);
  }
  queue_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void SolveService::dispatcher_loop() {
  obs::Tracer::instance().name_this_thread("serve dispatcher");
  for (;;) {
    Item it;
    const PopResult r = queue_.pop_wait_for(it, std::chrono::milliseconds(2));
    obs::metrics().gauge("serve.queue_depth").set(double(queue_.depth()));
    if (r == PopResult::Item) {
      const std::int64_t queue_ns = ns_between(it->enqueued, Clock::now());
      if (cancel_queued_.load(std::memory_order_acquire)) {
        respond(it, Status::Cancelled, 0, {}, queue_ns);
        continue;
      }
      CachedResult hit;
      if (cache_.get(it->hash, &hit)) {
        respond(it, Status::OkCached, hit.value, hit.detail, queue_ns);
        continue;
      }
      const std::uint64_t key = shape_key(it->req);
      if (opts_.batch_max > 1 &&
          instance_size(it->req) <= opts_.batch_max_size) {
        Batch<Item> full = batcher_.add(key, std::move(it));
        if (!full.items.empty()) dispatch(std::move(full));
      } else {
        Batch<Item> single;
        single.key = key;
        single.items.push_back(std::move(it));
        dispatch(std::move(single));
      }
      continue;
    }
    // Queue dry (tick) or closed: flush the partial batches so no request
    // waits on traffic that may never come.
    for (Batch<Item>& b : batcher_.drain()) {
      if (cancel_queued_.load(std::memory_order_acquire)) {
        for (const Item& queued : b.items)
          respond(queued, Status::Cancelled, 0, {},
                  ns_between(queued->enqueued, Clock::now()));
      } else {
        dispatch(std::move(b));
      }
    }
    if (r == PopResult::Closed) break;
  }
  // In-flight batches always run to completion, drain or not.
  pool_.wait_idle();
}

std::size_t SolveService::max_inflight() const {
  // Two full waves of work per worker keeps everyone busy while still
  // letting backlog reach the admission queue quickly.
  const std::size_t wave = opts_.workers * std::max<std::size_t>(opts_.batch_max, 1);
  return std::max<std::size_t>(wave * 2, 2);
}

void SolveService::dispatch(Batch<Item> batch) {
  {
    std::unique_lock lk(inflight_mu_);
    inflight_cv_.wait(lk, [this] { return inflight_ < max_inflight(); });
    inflight_ += batch.items.size();
    for (const Item& it : batch.items) inflight_reqs_.push_back(it);
  }
  ++batches_;
  obs::metrics().counter("serve.batches").add();
  obs::metrics()
      .histogram("serve.batch_size")
      .observe(static_cast<std::int64_t>(batch.items.size()));
  auto shared = std::make_shared<Batch<Item>>(std::move(batch));
  pool_.submit([this, shared] { run_batch(*shared); });
}

void SolveService::run_batch(const Batch<Item>& batch) {
  CELLNPDP_TRACE_SPAN("serve", "batch");
  for (const Item& it : batch.items) {
    const Clock::time_point picked_up = Clock::now();
    const std::int64_t queue_ns = ns_between(it->enqueued, picked_up);
    // A deadline can pass between dispatch and pick-up; shed here too.
    if (it->req.expired(picked_up)) {
      obs::metrics().counter("serve.expired").add();
      respond(it, Status::Expired, 0, {}, queue_ns);
    } else {
      const SolveOutcome o = pool_.execute(it->req, it->cancel, opts_.backend);
      const std::int64_t solve_ns = ns_between(picked_up, Clock::now());
      if (o.cancelled) {
        // Aborted mid-solve (deadline passed, or stop(drain=false)); the
        // detail names the trip reason. Never cached: the arena held a
        // partial result.
        respond(it, Status::Cancelled, 0, o.error, queue_ns, solve_ns);
      } else if (!o.ok) {
        respond(it, Status::Error, 0, o.error, queue_ns, solve_ns);
      } else {
        cache_.put(it->hash, CachedResult{o.value, o.detail});
        respond(it, Status::Ok, o.value, o.detail, queue_ns, solve_ns);
      }
    }
    {
      std::lock_guard lk(inflight_mu_);
      --inflight_;
      for (auto wi = inflight_reqs_.begin(); wi != inflight_reqs_.end();) {
        const auto sp = wi->lock();
        if (sp == nullptr || sp == it)
          wi = inflight_reqs_.erase(wi);
        else
          ++wi;
      }
    }
    inflight_cv_.notify_one();
  }
}

void SolveService::respond(const Item& it, Status st, double value,
                           std::string detail, std::int64_t queue_ns,
                           std::int64_t solve_ns) {
  Response resp;
  resp.id = it->req.id;
  resp.status = st;
  resp.value = value;
  resp.detail = std::move(detail);
  resp.queue_ns = queue_ns;
  resp.solve_ns = solve_ns;
  resp.total_ns = ns_between(it->enqueued, Clock::now());
  switch (st) {
    case Status::Ok: ++completed_; break;
    case Status::OkCached: ++cache_hits_; break;
    case Status::Rejected: ++rejected_; break;
    case Status::Shed: ++shed_; break;
    case Status::Expired: ++expired_; break;
    case Status::Cancelled: ++cancelled_; break;
    case Status::Error: ++errors_; break;
  }
  auto& m = obs::metrics();
  m.counter(std::string("serve.status.") + status_name(st)).add();
  m.histogram("serve.total_ns").observe(resp.total_ns);
  if (st == Status::Ok) {
    m.histogram("serve.queue_ns").observe(queue_ns);
    m.histogram("serve.solve_ns").observe(solve_ns);
  }
  it->promise.set_value(std::move(resp));
}

ServiceStats SolveService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load();
  s.completed = completed_.load();
  s.cache_hits = cache_hits_.load();
  s.rejected = rejected_.load();
  s.shed = shed_.load();
  s.expired = expired_.load();
  s.cancelled = cancelled_.load();
  s.errors = errors_.load();
  s.batches = batches_.load();
  s.cache_misses = cache_.misses();
  s.cache_evictions = cache_.evictions();
  s.arena_reuses = pool_.arena_reuses();
  s.arena_allocations = pool_.arena_allocations();
  s.queue_depth = queue_.depth();
  return s;
}

}  // namespace cellnpdp::serve
