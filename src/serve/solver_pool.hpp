// Worker pool executing solve requests, layered on common/thread_pool.
//
// Generic NPDP solves run out of *arenas* — long-lived
// BlockedTriangularMatrix allocations checked out per request and reset
// in place, so the hot path pays one memset-like sweep instead of a fresh
// multi-megabyte allocation per request. At most `workers` arenas ever
// exist (one per concurrently-running request); a checkout prefers a free
// arena of matching geometry and only reallocates on a shape change.
//
// Each request is solved serially on one worker (opts.threads = 1 inside
// the engine): the service scales by running many requests concurrently,
// not by splitting one request across workers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "apps/optimal_bst/optimal_bst.hpp"
#include "common/cancel.hpp"
#include "common/thread_pool.hpp"
#include "layout/blocked.hpp"
#include "serve/request.hpp"

namespace cellnpdp::serve {

/// Deterministic workloads behind ChainSpec/BstSpec: the same seed always
/// regenerates the same instance, on the server and in tests alike.
std::vector<float> chain_dims(const ChainSpec& c);
BstInstanceData<float> bst_data(const BstSpec& b);

/// What executing one request produced. `ok == false` means the solver
/// threw (`error` carries the message) or the solve was cancelled
/// mid-flight (`cancelled` set; the arena was checked back in, partial but
/// never torn).
struct SolveOutcome {
  bool ok = false;
  bool cancelled = false;
  double value = 0;
  std::string detail;
  std::string error;
  /// Resolved engine name for solves (request backend, else the default,
  /// else "blocked-serial"); the fixed engine name for the other kinds.
  /// Set whenever execution was attempted, so Degraded responses can
  /// report the backend that really answered.
  std::string backend_used;
  bool arena_reused = false;
};

class SolverPool {
 public:
  explicit SolverPool(std::size_t workers);

  std::size_t workers() const { return pool_.thread_count(); }

  /// Enqueues a job onto the underlying thread pool.
  void submit(std::function<void()> job) { pool_.submit(std::move(job)); }

  /// Blocks until all submitted jobs finished; rethrows the first job
  /// exception (see ThreadPool::wait_idle). Service jobs catch their own
  /// exceptions, so a throw here indicates a bug, not a bad request.
  void wait_idle() { pool_.wait_idle(); }

  /// Executes one request on the calling thread (normally a pool worker).
  /// Never throws: solver exceptions are captured into the outcome. Solve
  /// requests resolve a backend from the registry (the request's own
  /// `backend` field, else `default_backend`, else "blocked-serial") and
  /// poll `cancel` at memory-block granularity.
  SolveOutcome execute(const Request& req, const CancelToken& cancel = {},
                       const std::string& default_backend = {});

  std::uint64_t arena_allocations() const;
  std::uint64_t arena_reuses() const;

 private:
  struct Arena {
    index_t n = 0, bs = 0;
    std::unique_ptr<BlockedTriangularMatrix<float>> mat;
    bool in_use = false;
  };

  Arena* checkout(index_t n, index_t bs, bool* reused);
  void checkin(Arena* a);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Arena>> arenas_;  // stable addresses
  std::uint64_t arena_allocs_ = 0, arena_reuses_ = 0;
  /// Declared last: ~ThreadPool joins the workers, and a job finishing
  /// during destruction still touches mu_ / arenas_ via checkin().
  ThreadPool pool_;
};

}  // namespace cellnpdp::serve
