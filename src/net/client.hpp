// NpdpClient: blocking client for the npdp wire protocol. One instance
// drives one TCP connection; it is not thread-safe (the load generator
// gives each connection its own client). Frames may be pipelined: send
// any number of request frames, then pull replies with recv_frame() /
// recv_reply() — partial reads are reassembled internally, so a reply
// split across TCP segments is never mis-framed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace cellnpdp::net {

class NpdpClient {
 public:
  NpdpClient() = default;

  /// Blocking connect; the handshake is bounded by connect_timeout_ms
  /// (0 = unbounded). The endpoint is remembered so reconnect() and the
  /// auto-reconnect path can dial it again. False with *err on failure.
  bool connect(const std::string& host, std::uint16_t port, std::string* err,
               int connect_timeout_ms = 0);
  /// Re-dials the endpoint of the last connect(). False with *err when no
  /// endpoint is known or the dial fails.
  bool reconnect(std::string* err);
  void close() { fd_.reset(); rbuf_.clear(); }
  bool connected() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

  /// Largest reply payload this client will accept (mirror of the
  /// server-side cap; a frame above it fails the read).
  void set_max_frame(std::size_t n) { max_frame_ = n; }

  /// Handshake bound applied by reconnect() and auto-reconnect dials.
  void set_connect_timeout(int ms) { connect_timeout_ms_ = ms; }

  /// When on, send_frame2() re-dials the remembered endpoint once: before
  /// sending if the connection is already down, and again after a
  /// send-side ECONNRESET/EPIPE (the classic "server restarted between
  /// requests" case). A resend after reconnect is safe because nothing of
  /// the old connection's pipeline survives — buffered reply bytes are
  /// dropped with the old fd.
  void set_auto_reconnect(bool on) { auto_reconnect_ = on; }

  enum class RecvStatus { Ok, Timeout, Closed, Error };

  /// send_frame2 outcome: Reset means the peer dropped the connection
  /// (ECONNRESET/EPIPE) and — with auto-reconnect on — the re-dial or the
  /// resend failed too. Distinct from Error so callers can treat a dead
  /// replica differently from a local fault.
  enum class SendStatus { Ok, Reset, Error };

  /// Sends one already-encoded frame. False with *err on transport error.
  bool send_frame(const std::vector<std::uint8_t>& frame, std::string* err);

  /// Like send_frame but with the reconnect policy and a typed status.
  SendStatus send_frame2(const std::vector<std::uint8_t>& frame,
                         std::string* err);

  /// Receives the next complete frame (any type). Timeout applies to
  /// each underlying read; a reply already buffered returns immediately.
  RecvStatus recv_frame(FrameHeader* h, std::vector<std::uint8_t>* payload,
                        int timeout_ms, std::string* err);

  /// One decoded server reply: either a Result or a typed ProtoError.
  struct Reply {
    enum class Kind { Result, ProtoError, Pong, StatsText, StatsSnapshot };
    Kind kind = Kind::Result;
    WireResponse result;                            ///< when Result
    ProtoErrorCode code = ProtoErrorCode::None;     ///< when ProtoError
    std::string message;  ///< ProtoError text or StatsText JSON
    WireStats stats;      ///< when StatsSnapshot
    std::uint64_t id = 0;
  };

  /// Receives and decodes the next reply frame.
  RecvStatus recv_reply(Reply* out, int timeout_ms, std::string* err);

  /// Round-trips one request: send, then wait for the reply bearing its
  /// id (other pipelined replies are an error here — use recv_reply for
  /// pipelined flows).
  RecvStatus call(const WireRequest& req, Reply* out, int timeout_ms,
                  std::string* err);

  /// RTT probe. Ok only if a Pong with the same id comes back.
  RecvStatus ping(std::uint64_t id, int timeout_ms, std::string* err);

  /// Fetches the server's JSON stats snapshot.
  RecvStatus stats(std::string* json, int timeout_ms, std::string* err);

  /// Fetches the binary stats snapshot (metrics + breakers + queue
  /// depth) via the v2 StatsRequest/StatsResponse frame pair.
  RecvStatus stats_snapshot(WireStats* out, int timeout_ms, std::string* err);

 private:
  FdGuard fd_;
  std::vector<std::uint8_t> rbuf_;  ///< bytes received past the last frame
  std::size_t max_frame_ = kDefaultMaxFrame;
  std::string host_;  ///< remembered endpoint for reconnects
  std::uint16_t port_ = 0;
  bool have_endpoint_ = false;
  int connect_timeout_ms_ = 0;
  bool auto_reconnect_ = false;
};

}  // namespace cellnpdp::net
