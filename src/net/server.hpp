// NpdpServer: serve::SolveService behind the shared epoll TCP front-end.
//
// The socket machinery — acceptor, reactors, partial-frame reassembly,
// outbox/eventfd cross-thread replies, half-close drain, idle sweep,
// bounded stop() drain — lives in net::EpollFrontEnd (frontend.hpp) and
// is shared with the router tier. This class is the *host*: it supplies
// the frame handler that decodes request payloads, submits them to the
// SolveService, and encodes terminal responses back through the
// front-end, plus the stats frames (JSON text and binary snapshot).
//
// Shutdown (stop(), also the SIGTERM path in the CLI) drains gracefully:
// the front-end stops accepting, SolveService::stop(drain=true) answers
// everything admitted, every outbox flushes to its socket (bounded by
// drain_timeout_ms), then the reactors come down.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/frontend.hpp"
#include "net/protocol.hpp"
#include "serve/service.hpp"

namespace cellnpdp::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read the result via port()
  int reactors = 2;
  std::size_t max_frame = kDefaultMaxFrame;  ///< payload byte cap
  /// Idle connections (no bytes received, nothing in flight or pending
  /// write) are closed after this long; 0 disables the slow-loris sweep.
  std::int64_t idle_timeout_ms = 30000;
  /// stop() budget for flushing already-computed responses to sockets.
  std::int64_t drain_timeout_ms = 5000;
};

/// Point-in-time network counters (service counters live in
/// serve::ServiceStats; obs mirrors both under net.* / serve.*).
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t disconnects = 0;  ///< closes for any reason
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t frames_in = 0;        ///< well-formed frames parsed
  std::uint64_t responses = 0;        ///< response frames enqueued
  std::uint64_t frames_bad = 0;       ///< malformed/oversized/bad-magic
  std::uint64_t protocol_errors = 0;  ///< ProtoError frames sent
  std::uint64_t dropped_responses = 0;  ///< connection gone at completion
  std::size_t active_conns = 0;
};

class NpdpServer {
 public:
  NpdpServer(ServerOptions net, serve::ServiceOptions service);
  ~NpdpServer();  // stop()

  NpdpServer(const NpdpServer&) = delete;
  NpdpServer& operator=(const NpdpServer&) = delete;

  /// Binds, listens, and spawns the acceptor + reactors. False with *err
  /// on bind/listen failure. Call at most once.
  bool start(std::string* err);

  /// Graceful drain (see file header). Idempotent; also run by ~NpdpServer.
  void stop();

  /// The bound port (valid after start(); resolves port 0).
  std::uint16_t port() const { return fe_.port(); }

  ServerStats stats() const;
  serve::SolveService& service() { return service_; }
  const ServerOptions& options() const { return opts_; }

 private:
  void handle_frame(const EpollFrontEnd::ConnPtr& c, const FrameHeader& h,
                    const std::uint8_t* payload);
  std::string stats_json() const;

  const ServerOptions opts_;
  serve::SolveService service_;
  EpollFrontEnd fe_;
};

}  // namespace cellnpdp::net
