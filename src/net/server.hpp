// NpdpServer: the Linux epoll TCP front-end over serve::SolveService.
//
// Thread architecture:
//
//   acceptor          one thread; epoll{listen fd, wake}; accepted
//                     connections are pinned to a reactor by fd hash
//   reactor[i]        N event loops; each owns its connections' read
//                     parsing, frame dispatch, and socket writes
//   service threads   the existing SolveService pipeline; terminal
//                     responses re-enter the owning reactor through a
//                     per-connection outbox + eventfd wake
//
// A connection's read/write buffers are touched only by its reactor;
// cross-thread handoff happens exclusively through the mutex-protected
// outbox, so no frame is ever written interleaved. Responses are matched
// to connections through weak_ptrs: a client that disconnects mid-request
// simply drops its response on the floor (counted, never crashing).
//
// Shutdown (stop(), also the SIGTERM path in the CLI) drains gracefully:
// stop accepting, let SolveService::stop(drain=true) answer everything
// admitted, flush every outbox to the sockets (bounded by
// drain_timeout_ms), then take the reactors down.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "serve/service.hpp"

namespace cellnpdp::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read the result via port()
  int reactors = 2;
  std::size_t max_frame = kDefaultMaxFrame;  ///< payload byte cap
  /// Idle connections (no bytes received, nothing in flight or pending
  /// write) are closed after this long; 0 disables the slow-loris sweep.
  std::int64_t idle_timeout_ms = 30000;
  /// stop() budget for flushing already-computed responses to sockets.
  std::int64_t drain_timeout_ms = 5000;
};

/// Point-in-time network counters (service counters live in
/// serve::ServiceStats; obs mirrors both under net.* / serve.*).
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t disconnects = 0;  ///< closes for any reason
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t frames_in = 0;        ///< well-formed frames parsed
  std::uint64_t responses = 0;        ///< response frames enqueued
  std::uint64_t frames_bad = 0;       ///< malformed/oversized/bad-magic
  std::uint64_t protocol_errors = 0;  ///< ProtoError frames sent
  std::uint64_t dropped_responses = 0;  ///< connection gone at completion
  std::size_t active_conns = 0;
};

class NpdpServer {
 public:
  NpdpServer(ServerOptions net, serve::ServiceOptions service);
  ~NpdpServer();  // stop()

  NpdpServer(const NpdpServer&) = delete;
  NpdpServer& operator=(const NpdpServer&) = delete;

  /// Binds, listens, and spawns the acceptor + reactors. False with *err
  /// on bind/listen failure. Call at most once.
  bool start(std::string* err);

  /// Graceful drain (see file header). Idempotent; also run by ~NpdpServer.
  void stop();

  /// The bound port (valid after start(); resolves port 0).
  std::uint16_t port() const { return port_; }

  ServerStats stats() const;
  serve::SolveService& service() { return service_; }
  const ServerOptions& options() const { return opts_; }

 private:
  struct Conn;
  struct Reactor;

  void acceptor_loop();
  void reactor_loop(Reactor& r);
  void adopt_incoming(Reactor& r);
  void on_readable(Reactor& r, const std::shared_ptr<Conn>& c);
  void parse_frames(Reactor& r, const std::shared_ptr<Conn>& c);
  void handle_frame(Reactor& r, const std::shared_ptr<Conn>& c,
                    const FrameHeader& h, const std::uint8_t* payload);
  /// Appends a frame to the connection's outbox (any thread).
  void enqueue_out(const std::shared_ptr<Conn>& c,
                   std::vector<std::uint8_t> frame);
  /// Moves outbox bytes into the write buffer and pushes to the socket
  /// (reactor thread only). Closes the connection on fatal write errors
  /// or when a close-after-flush completes.
  void pump_out(Reactor& r, const std::shared_ptr<Conn>& c);
  void close_conn(Reactor& r, const std::shared_ptr<Conn>& c);
  void sweep_idle(Reactor& r);
  std::string stats_json() const;

  const ServerOptions opts_;
  serve::SolveService service_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> accept_stop_{false};
  std::atomic<bool> reactor_stop_{false};

  int listen_fd_ = -1;
  int accept_wake_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Reactor>> reactors_;

  // stop() watches these two to know when every computed response has
  // reached a socket: requests still inside the service + bytes enqueued
  // but not yet written.
  std::atomic<std::int64_t> inflight_total_{0};
  std::atomic<std::int64_t> out_pending_bytes_{0};

  std::atomic<std::uint64_t> accepted_{0}, disconnects_{0}, bytes_in_{0},
      bytes_out_{0}, frames_in_{0}, responses_{0}, frames_bad_{0},
      protocol_errors_{0}, dropped_responses_{0};
  std::atomic<std::int64_t> active_conns_{0};
};

}  // namespace cellnpdp::net
