#include "net/server.hpp"

#include <chrono>
#include <sstream>
#include <utility>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/request_log.hpp"
#include "obs/trace.hpp"
#include "resilience/circuit_breaker.hpp"

namespace cellnpdp::net {

namespace {
using SteadyClock = std::chrono::steady_clock;

FrontEndOptions frontend_options(const ServerOptions& o) {
  FrontEndOptions f;
  f.host = o.host;
  f.port = o.port;
  f.reactors = o.reactors;
  f.max_frame = o.max_frame;
  f.idle_timeout_ms = o.idle_timeout_ms;
  f.drain_timeout_ms = o.drain_timeout_ms;
  f.counter_prefix = "net";
  return f;
}
}  // namespace

NpdpServer::NpdpServer(ServerOptions net, serve::ServiceOptions service)
    : opts_(std::move(net)),
      service_(std::move(service)),
      fe_(frontend_options(opts_)) {
  fe_.set_frame_handler(
      [this](const EpollFrontEnd::ConnPtr& c, const FrameHeader& h,
             const std::uint8_t* payload) { handle_frame(c, h, payload); });
  // The drain hook runs inside fe_.stop() after the listener closes:
  // every admitted request still gets its terminal response while the
  // reactors keep flushing sockets.
  fe_.set_drain_hook([this] { service_.stop(true); });
}

NpdpServer::~NpdpServer() { stop(); }

bool NpdpServer::start(std::string* err) { return fe_.start(err); }

void NpdpServer::stop() { fe_.stop(); }

void NpdpServer::handle_frame(const EpollFrontEnd::ConnPtr& c,
                              const FrameHeader& h,
                              const std::uint8_t* payload) {
  switch (h.type) {
    case MsgType::Ping:
      fe_.reply_now(c, encode_pong(h.id));
      return;
    case MsgType::Stats:
      fe_.reply_now(c, encode_stats_text(h.id, stats_json()));
      return;
    case MsgType::StatsRequest: {
      WireStats ws;
      ws.metrics = obs::metrics().snapshot();
      for (const auto& row : resilience::breakers().snapshot()) {
        WireBreaker b;
        b.name = row.name;
        b.state = static_cast<std::uint8_t>(row.state);
        b.failure_rate = row.failure_rate;
        b.retry_after_ms = row.retry_after_ms;
        ws.breakers.push_back(std::move(b));
      }
      ws.queue_depth =
          static_cast<std::int64_t>(service_.stats().queue_depth);
      fe_.reply_now(c, encode_stats_response(h.id, ws));
      return;
    }
    case MsgType::Solve:
    case MsgType::Fold:
    case MsgType::Parse:
    case MsgType::Chain:
    case MsgType::Bst: {
      WireRequest w;
      std::string err;
      if (!decode_request_payload(h.type, h.version, h.id, payload, h.len,
                                  &w, &err)) {
        fe_.note_bad_frame();
        fe_.reply_now(c, encode_proto_error(h.id, ProtoErrorCode::BadPayload,
                                            err));
        return;  // framing is intact: the connection survives
      }
      CELLNPDP_TRACE_INSTANT("net", "decode",
                             static_cast<std::int64_t>(h.id));
      if (w.tenant != 0)
        obs::metrics()
            .counter("net.tenant.requests{tenant=" +
                     std::to_string(w.tenant) + "}")
            .add();
      // Request-chain marker: keyed by trace_id (a0) so the merged trace
      // correlates this reactor event with the client and serve spans.
      if (w.trace.sampled)
        CELLNPDP_TRACE_INSTANT(
            "req", "decode", static_cast<std::int64_t>(w.trace.trace_id));
      fe_.begin_async(c);
      EpollFrontEnd::ConnRef wc = c;
      service_.submit(
          to_serve_request(w),
          [this, wc = std::move(wc)](serve::Response resp) {
            CELLNPDP_TRACE_INSTANT("net", "respond",
                                   static_cast<std::int64_t>(resp.id));
            const auto enc0 = SteadyClock::now();
            std::vector<std::uint8_t> frame = encode_response(resp);
            const std::int64_t encode_ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    SteadyClock::now() - enc0)
                    .count();
            obs::metrics().histogram("net.encode_ns").observe(encode_ns);
            if (obs::request_log().enabled())
              obs::request_log().annotate_encode(resp.id, encode_ns);
            CELLNPDP_TRACE_INSTANT("net", "encode",
                                   static_cast<std::int64_t>(resp.id));
            if (resp.trace_sampled)
              CELLNPDP_TRACE_INSTANT(
                  "req", "encode", static_cast<std::int64_t>(resp.trace_id));
            fe_.async_reply(wc, std::move(frame));
          });
      return;
    }
    default:
      fe_.note_bad_frame();
      fe_.reply_now(c, encode_proto_error(
                           h.id, ProtoErrorCode::UnknownType,
                           "unknown message type " +
                               std::to_string(static_cast<unsigned>(h.type))));
      return;
  }
}

std::string NpdpServer::stats_json() const {
  const ServerStats ns = stats();
  const serve::ServiceStats ss = service_.stats();
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("net").begin_object();
  w.kv("accepted", static_cast<std::int64_t>(ns.accepted));
  w.kv("active_conns", static_cast<std::int64_t>(ns.active_conns));
  w.kv("disconnects", static_cast<std::int64_t>(ns.disconnects));
  w.kv("bytes_in", static_cast<std::int64_t>(ns.bytes_in));
  w.kv("bytes_out", static_cast<std::int64_t>(ns.bytes_out));
  w.kv("frames_in", static_cast<std::int64_t>(ns.frames_in));
  w.kv("responses", static_cast<std::int64_t>(ns.responses));
  w.kv("frames_bad", static_cast<std::int64_t>(ns.frames_bad));
  w.kv("protocol_errors", static_cast<std::int64_t>(ns.protocol_errors));
  w.kv("dropped_responses",
       static_cast<std::int64_t>(ns.dropped_responses));
  w.end_object();
  w.key("serve").begin_object();
  w.kv("submitted", static_cast<std::int64_t>(ss.submitted));
  w.kv("completed", static_cast<std::int64_t>(ss.completed));
  w.kv("cache_hits", static_cast<std::int64_t>(ss.cache_hits));
  w.kv("rejected", static_cast<std::int64_t>(ss.rejected));
  w.kv("shed", static_cast<std::int64_t>(ss.shed));
  w.kv("expired", static_cast<std::int64_t>(ss.expired));
  w.kv("cancelled", static_cast<std::int64_t>(ss.cancelled));
  w.kv("errors", static_cast<std::int64_t>(ss.errors));
  w.kv("degraded", static_cast<std::int64_t>(ss.degraded));
  w.kv("retry_after", static_cast<std::int64_t>(ss.retry_after));
  w.kv("queue_depth", static_cast<std::int64_t>(ss.queue_depth));
  w.end_object();
  w.end_object();
  return os.str();
}

ServerStats NpdpServer::stats() const {
  const FrontEndStats fs = fe_.stats();
  ServerStats s;
  s.accepted = fs.accepted;
  s.disconnects = fs.disconnects;
  s.bytes_in = fs.bytes_in;
  s.bytes_out = fs.bytes_out;
  s.frames_in = fs.frames_in;
  s.responses = fs.responses;
  s.frames_bad = fs.frames_bad;
  s.protocol_errors = fs.protocol_errors;
  s.dropped_responses = fs.dropped_responses;
  s.active_conns = fs.active_conns;
  return s;
}

}  // namespace cellnpdp::net
