// EpollFrontEnd: the reusable epoll TCP front-end shared by NpdpServer
// and the router tier (src/router). It owns everything below the frame
// boundary — accepting, reactor event loops, partial-frame reassembly,
// header policy (magic / version range / size cap), the per-connection
// outbox + eventfd wake for cross-thread replies, half-close drain, the
// slow-loris idle sweep, and the bounded stop() drain — and hands every
// well-formed frame to a host-supplied handler.
//
// Thread architecture (unchanged from the original NpdpServer):
//
//   acceptor          one thread; epoll{listen fd, wake}; accepted
//                     connections are pinned to a reactor by fd hash
//   reactor[i]        N event loops; each owns its connections' reads,
//                     frame parsing, handler dispatch, and socket writes
//   host threads      whatever computes replies (SolveService workers,
//                     the router's upstream io threads); they re-enter
//                     the owning reactor via async_reply()
//
// Handler contract: the FrameHandler runs on the owning reactor thread.
// It may answer immediately with reply_now(), or go asynchronous by
// calling begin_async() before handing off and completing — exactly once
// — with async_reply() from any thread. A connection's buffers are only
// ever touched by its reactor; the cross-thread handoff happens through
// the mutex-protected outbox, so frames are never interleaved. A client
// that disconnects before its async reply lands simply drops the reply
// (counted as dropped_responses, never dangling).
//
// Header-level protocol policy lives here: bad magic disconnects, an
// unsupported version or an oversized payload gets a typed ProtoError and
// a close-after-flush. Payload-level policy (decode failures, unknown
// types) is the handler's job; it reports those via note_bad_frame() so
// the front-end's counters stay the single source of truth.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.hpp"

namespace cellnpdp::net {

struct FrontEndOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read the result via port()
  int reactors = 2;
  std::size_t max_frame = kDefaultMaxFrame;  ///< payload byte cap
  /// Idle connections (no bytes received, nothing in flight or pending
  /// write) are closed after this long; 0 disables the slow-loris sweep.
  std::int64_t idle_timeout_ms = 30000;
  /// stop() budget for flushing already-computed responses to sockets.
  std::int64_t drain_timeout_ms = 5000;
  /// Prefix for thread names and obs counters ("net" -> net.accepted...).
  std::string counter_prefix = "net";
};

/// Point-in-time front-end counters.
struct FrontEndStats {
  std::uint64_t accepted = 0;
  std::uint64_t disconnects = 0;  ///< closes for any reason
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t frames_in = 0;        ///< well-formed frames parsed
  std::uint64_t responses = 0;        ///< async replies delivered
  std::uint64_t frames_bad = 0;       ///< malformed/oversized/bad-magic
  std::uint64_t protocol_errors = 0;  ///< ProtoError frames sent
  std::uint64_t dropped_responses = 0;  ///< connection gone at completion
  std::size_t active_conns = 0;
};

class EpollFrontEnd {
 public:
  struct Conn;  // opaque to hosts; defined in frontend.cpp
  using ConnPtr = std::shared_ptr<Conn>;
  using ConnRef = std::weak_ptr<Conn>;

  /// One well-formed frame (magic/version/size already enforced), on the
  /// owning reactor thread. `payload` points at h.len bytes valid only
  /// for the duration of the call.
  using FrameHandler = std::function<void(
      const ConnPtr&, const FrameHeader&, const std::uint8_t* payload)>;
  /// Runs inside stop() after the listener closed and before the bounded
  /// flush wait; the host drains its pipeline here so every admitted
  /// request still produces a reply while the reactors keep running.
  using DrainHook = std::function<void()>;

  explicit EpollFrontEnd(FrontEndOptions opts);
  ~EpollFrontEnd();  // stop()

  EpollFrontEnd(const EpollFrontEnd&) = delete;
  EpollFrontEnd& operator=(const EpollFrontEnd&) = delete;

  /// Must be set before start().
  void set_frame_handler(FrameHandler h) { handler_ = std::move(h); }
  void set_drain_hook(DrainHook h) { drain_hook_ = std::move(h); }

  /// Binds, listens, and spawns the acceptor + reactors. False with *err
  /// on bind/listen failure. Call at most once.
  bool start(std::string* err);

  /// Graceful drain: stop accepting, run the drain hook, wait (bounded
  /// by drain_timeout_ms) until nothing is in flight and every outbox
  /// byte reached a socket, then take the reactors down. Idempotent.
  void stop();

  /// The bound port (valid after start(); resolves port 0).
  std::uint16_t port() const { return port_; }

  FrontEndStats stats() const;

  // --- handler-side API ----------------------------------------------------

  /// Synchronous reply from the frame handler (owning reactor thread
  /// only): enqueue and push to the socket in one step.
  void reply_now(const ConnPtr& c, std::vector<std::uint8_t> frame);

  /// Marks one request in flight on this connection before an async
  /// handoff. Pairs with exactly one async_reply(); the pairing is what
  /// keeps half-close drain and stop() honest about what is still owed.
  void begin_async(const ConnPtr& c);

  /// Completes an async request from any thread. Returns false (and
  /// counts dropped_responses) when the connection is already gone.
  bool async_reply(const ConnRef& wc, std::vector<std::uint8_t> frame);

  /// Handler-detected payload-level violation (decode failure, unknown
  /// type): bumps frames_bad + protocol_errors so the front-end counters
  /// stay authoritative. The error frame itself goes via reply_now().
  void note_bad_frame();

 private:
  struct Reactor;

  void acceptor_loop();
  void reactor_loop(Reactor& r);
  void adopt_incoming(Reactor& r);
  void on_readable(Reactor& r, const ConnPtr& c);
  void parse_frames(Reactor& r, const ConnPtr& c);
  void enqueue_out(const ConnPtr& c, std::vector<std::uint8_t> frame);
  void pump_out(Reactor& r, const ConnPtr& c);
  void close_conn(Reactor& r, const ConnPtr& c);
  void sweep_idle(Reactor& r);
  /// obs counter name under the configured prefix ("net.accepted", ...).
  std::string cname(const char* suffix) const;

  const FrontEndOptions opts_;
  FrameHandler handler_;
  DrainHook drain_hook_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> accept_stop_{false};
  std::atomic<bool> reactor_stop_{false};

  int listen_fd_ = -1;
  int accept_wake_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Reactor>> reactors_;

  // stop() watches these two to know when every computed response has
  // reached a socket: async requests not yet answered + bytes enqueued
  // but not yet written.
  std::atomic<std::int64_t> inflight_total_{0};
  std::atomic<std::int64_t> out_pending_bytes_{0};

  std::atomic<std::uint64_t> accepted_{0}, disconnects_{0}, bytes_in_{0},
      bytes_out_{0}, frames_in_{0}, responses_{0}, frames_bad_{0},
      protocol_errors_{0}, dropped_responses_{0};
  std::atomic<std::int64_t> active_conns_{0};
};

}  // namespace cellnpdp::net
