#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

namespace cellnpdp::net {

void FdGuard::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

namespace {

bool parse_addr(const std::string& host, std::uint16_t port,
                sockaddr_in* addr, std::string* err) {
  std::memset(addr, 0, sizeof *addr);
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const std::string h = host.empty() ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, h.c_str(), &addr->sin_addr) != 1) {
    *err = "not an IPv4 address: " + h;
    return false;
  }
  return true;
}

}  // namespace

int tcp_listen(const std::string& host, std::uint16_t port,
               std::string* err) {
  sockaddr_in addr;
  if (!parse_addr(host, port, &addr, err)) return -1;
  FdGuard fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    *err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    *err = std::string("bind: ") + std::strerror(errno);
    return -1;
  }
  if (::listen(fd.get(), 256) != 0) {
    *err = std::string("listen: ") + std::strerror(errno);
    return -1;
  }
  return fd.release();
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return 0;
  return ntohs(addr.sin_port);
}

int tcp_connect(const std::string& host, std::uint16_t port,
                std::string* err) {
  sockaddr_in addr;
  if (!parse_addr(host, port, &addr, err)) return -1;
  FdGuard fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    *err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof addr) != 0) {
    *err = std::string("connect: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd.release();
}

int tcp_connect_timeout(const std::string& host, std::uint16_t port,
                        int timeout_ms, std::string* err) {
  if (timeout_ms <= 0) return tcp_connect(host, port, err);
  sockaddr_in addr;
  if (!parse_addr(host, port, &addr, err)) return -1;
  FdGuard fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    *err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      *err = std::string("connect: ") + std::strerror(errno);
      return -1;
    }
    // Handshake in flight: wait for writability, bounded.
    pollfd pfd{fd.get(), POLLOUT, 0};
    for (;;) {
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        *err = std::string("poll: ") + std::strerror(errno);
        return -1;
      }
      if (pr == 0) {
        *err = "connect timeout after " + std::to_string(timeout_ms) + " ms";
        return -1;
      }
      break;
    }
    int soerr = 0;
    socklen_t slen = sizeof soerr;
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &soerr, &slen) != 0 ||
        soerr != 0) {
      *err = std::string("connect: ") +
             std::strerror(soerr != 0 ? soerr : errno);
      return -1;
    }
  }
  if (!set_nonblocking(fd.get(), false)) {
    *err = std::string("fcntl: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd.release();
}

bool set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

bool send_all(int fd, const void* p, std::size_t n) {
  const char* cur = static_cast<const char*>(p);
  std::size_t left = n;
  while (left > 0) {
    const ssize_t w = ::send(fd, cur, left, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    cur += w;
    left -= static_cast<std::size_t>(w);
  }
  return true;
}

long recv_some(int fd, void* p, std::size_t n, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  for (;;) {
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (pr == 0) return -2;
    const ssize_t r = ::recv(fd, p, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    return static_cast<long>(r);
  }
}

int make_wakefd() { return ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC); }

void wake_signal(int fd) {
  const std::uint64_t one = 1;
  // A full counter (EAGAIN) still wakes the sleeper; ignore the result.
  [[maybe_unused]] const ssize_t w = ::write(fd, &one, sizeof one);
}

void wake_drain(int fd) {
  std::uint64_t v;
  while (::read(fd, &v, sizeof v) > 0) {
  }
}

}  // namespace cellnpdp::net
