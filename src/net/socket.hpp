// Thin POSIX socket helpers shared by the server, client, and tests:
// RAII fd ownership, listen/connect setup, non-blocking toggles, and the
// eventfd wakeups the reactors sleep on. Linux-only (epoll/eventfd), like
// the server itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace cellnpdp::net {

/// Move-only owner of a file descriptor; closes on destruction.
class FdGuard {
 public:
  FdGuard() = default;
  explicit FdGuard(int fd) : fd_(fd) {}
  FdGuard(FdGuard&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  FdGuard& operator=(FdGuard&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  ~FdGuard() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (port 0 = kernel-assigned ephemeral).
/// Returns a non-blocking listening fd, or -1 with *err set.
int tcp_listen(const std::string& host, std::uint16_t port, std::string* err);

/// The port a bound socket actually listens on (resolves port 0).
std::uint16_t local_port(int fd);

/// Blocking connect to host:port. Returns the fd (TCP_NODELAY set), or -1
/// with *err set.
int tcp_connect(const std::string& host, std::uint16_t port, std::string* err);

/// Like tcp_connect, but bounds the handshake: a non-blocking connect is
/// polled for up to timeout_ms, then the socket is flipped back to
/// blocking. timeout_ms <= 0 means no bound (plain tcp_connect). Returns
/// the fd, or -1 with *err set ("connect timeout ..." when the bound was
/// hit).
int tcp_connect_timeout(const std::string& host, std::uint16_t port,
                        int timeout_ms, std::string* err);

bool set_nonblocking(int fd, bool nonblocking);

/// Writes all of [p, p+n) to a blocking fd, riding out EINTR/short
/// writes. False on error or peer close.
bool send_all(int fd, const void* p, std::size_t n);

/// Reads up to n bytes with a poll() timeout. Returns bytes read, 0 on
/// orderly peer close, -1 on error, -2 on timeout.
long recv_some(int fd, void* p, std::size_t n, int timeout_ms);

/// eventfd-based wakeup for epoll loops.
int make_wakefd();
void wake_signal(int fd);
void wake_drain(int fd);

}  // namespace cellnpdp::net
