#include "net/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/rng.hpp"
#include "net/client.hpp"
#include "obs/span_context.hpp"
#include "obs/trace.hpp"

namespace cellnpdp::net {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::vector<char> mix_kinds(const std::string& mix) {
  if (mix == "solve") return {'s'};
  if (mix == "fold") return {'f'};
  if (mix == "parse") return {'p'};
  if (mix == "chain") return {'c'};
  if (mix == "bst") return {'b'};
  return {'s', 'f', 'p', 'c', 'b'};  // "mix"
}

serve::Payload make_payload(const LoadGenOptions& o, char kind,
                            SplitMix64& rng) {
  // Seeds are drawn from a bounded pool so the server's result cache sees
  // realistic repeat traffic (some OkCached replies), not 100% misses.
  const std::uint64_t pool =
      o.distinct > 0 ? static_cast<std::uint64_t>(o.distinct) : 16;
  const std::uint64_t seed = o.seed + rng.next_below(pool);
  switch (kind) {
    case 's': {
      serve::SolveSpec s;
      s.n = std::max<index_t>(2, o.size);
      s.seed = seed;
      s.block_side = std::min<index_t>(64, s.n);
      s.backend = o.backend;
      if (o.semiring == "mix") {
        s.semiring = static_cast<SemiringId>(rng.next_below(kSemiringCount));
      } else if (!o.semiring.empty()) {
        // Validated by the CLI layer; fall back to min-plus on a name
        // slipped through programmatically.
        semiring_from_name(o.semiring, &s.semiring);
      }
      return s;
    }
    case 'f': {
      serve::FoldSpec f;
      f.random_n = std::max<index_t>(4, o.size);
      f.seed = seed;
      return f;
    }
    case 'p': {
      serve::ParseSpec ps;
      ps.grammar = serve::ParseSpec::GrammarKind::Parens;
      const index_t pairs = std::max<index_t>(1, o.size / 2);
      ps.text.assign(static_cast<std::size_t>(pairs), '(');
      ps.text.append(static_cast<std::size_t>(pairs), ')');
      return ps;
    }
    case 'c': {
      serve::ChainSpec c;
      c.n = std::max<index_t>(1, o.size);
      c.seed = seed;
      return c;
    }
    default: {
      serve::BstSpec b;
      b.keys = std::max<index_t>(1, o.size);
      b.seed = seed;
      return b;
    }
  }
}

void classify(const NpdpClient::Reply& rep, LoadGenResult* acc) {
  ++acc->replies;
  if (rep.kind == NpdpClient::Reply::Kind::ProtoError) {
    ++acc->proto_errors;
    return;
  }
  switch (rep.result.status) {
    case serve::Status::Ok: ++acc->ok; break;
    case serve::Status::OkCached: ++acc->cached; break;
    case serve::Status::Degraded: ++acc->degraded; break;
    case serve::Status::Rejected: ++acc->rejected; break;
    case serve::Status::Shed: ++acc->shed; break;
    case serve::Status::Expired: ++acc->expired; break;
    case serve::Status::Cancelled: ++acc->cancelled; break;
    case serve::Status::RetryAfter: ++acc->retry_after; break;
    default: ++acc->errors; break;
  }
}

struct Shared {
  std::atomic<std::uint64_t> sent_total{0};
  std::mutex mu;
  LoadGenResult merged;
  std::vector<TargetCounts> per_target;  ///< one slot per target
};

void merge(Shared& sh, const LoadGenResult& part, std::size_t tidx) {
  std::lock_guard lk(sh.mu);
  LoadGenResult& m = sh.merged;
  m.sent += part.sent;
  m.replies += part.replies;
  m.ok += part.ok;
  m.cached += part.cached;
  m.degraded += part.degraded;
  m.rejected += part.rejected;
  m.shed += part.shed;
  m.expired += part.expired;
  m.cancelled += part.cancelled;
  m.retry_after += part.retry_after;
  m.errors += part.errors;
  m.proto_errors += part.proto_errors;
  m.transport_errors += part.transport_errors;
  m.latencies_ms.insert(m.latencies_ms.end(), part.latencies_ms.begin(),
                        part.latencies_ms.end());
  m.corrected_latencies_ms.insert(m.corrected_latencies_ms.end(),
                                  part.corrected_latencies_ms.begin(),
                                  part.corrected_latencies_ms.end());
  m.slipped += part.slipped;
  TargetCounts& t = sh.per_target[tidx];
  t.sent += part.sent;
  t.replies += part.replies;
  t.ok += part.ok;
  t.cached += part.cached;
  t.degraded += part.degraded;
  t.rejected += part.rejected;
  t.shed += part.shed;
  t.expired += part.expired;
  t.cancelled += part.cancelled;
  t.retry_after += part.retry_after;
  t.errors += part.errors;
  t.proto_errors += part.proto_errors;
  t.transport_errors += part.transport_errors;
}

/// One connection's worth of load. Closed loop when interval_ns == 0.
void conn_worker(const LoadGenOptions& o, const Endpoint& target,
                 std::size_t tidx, int ci, std::int64_t interval_ns,
                 SteadyClock::time_point t_end, Shared& sh) {
  LoadGenResult acc;
  NpdpClient cli;
  std::string err;
  if (!cli.connect(target.host, target.port, &err, o.connect_timeout_ms)) {
    ++acc.transport_errors;
    merge(sh, acc, tidx);
    return;
  }
  SplitMix64 rng(o.seed * 0x9E3779B97F4A7C15ull +
                 static_cast<std::uint64_t>(ci) + 1);
  const std::vector<char> kinds = mix_kinds(o.mix);
  struct Outstanding {
    SteadyClock::time_point sent;       ///< actual send instant
    SteadyClock::time_point scheduled;  ///< when it *should* have gone out
    std::uint64_t trace_id = 0;
    bool sampled = false;
  };
  std::unordered_map<std::uint64_t, Outstanding> outstanding;
  std::uint64_t seq = 0;

  auto next_id = [&] {
    return (static_cast<std::uint64_t>(ci + 1) << 32) | ++seq;
  };
  auto under_cap = [&] {
    if (o.max_requests == 0) return true;
    // Reserve a send slot; back out if the fleet already hit the cap.
    if (sh.sent_total.fetch_add(1, std::memory_order_acq_rel) <
        o.max_requests)
      return true;
    sh.sent_total.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  };
  // `scheduled` is the instant this request was due per the open-loop
  // schedule; the default (epoch) means "now" — closed loop, where the
  // corrected and uncorrected latency views coincide by construction.
  auto send_one = [&](SteadyClock::time_point scheduled =
                          SteadyClock::time_point{}) -> bool {
    WireRequest w;
    w.id = next_id();
    w.priority = o.priority;
    w.deadline_ms = o.deadline_ms;
    w.tenant = o.tenant;
    w.payload = make_payload(o, kinds[static_cast<std::size_t>(
                                    rng.next_below(kinds.size()))],
                             rng);
    if (o.trace)
      w.trace = obs::make_root_context(rng.next_unit() < o.trace_sample);
    if (!cli.send_frame(encode_request(w), &err)) {
      ++acc.transport_errors;
      return false;
    }
    const auto sent = SteadyClock::now();
    if (scheduled == SteadyClock::time_point{}) scheduled = sent;
    outstanding.emplace(w.id, Outstanding{sent, scheduled, w.trace.trace_id,
                                          w.trace.sampled});
    ++acc.sent;
    return true;
  };
  auto take_reply = [&](int timeout_ms) -> NpdpClient::RecvStatus {
    NpdpClient::Reply rep;
    const auto rs = cli.recv_reply(&rep, timeout_ms, &err);
    if (rs != NpdpClient::RecvStatus::Ok) return rs;
    const auto it = outstanding.find(rep.id);
    if (it != outstanding.end()) {
      const auto now = SteadyClock::now();
      const auto elapsed = now - it->second.sent;
      acc.latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(elapsed).count());
      acc.corrected_latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(now -
                                                    it->second.scheduled)
              .count());
      if (it->second.sampled) {
        // Retroactive client-side span for this request: ts is back-dated
        // to the send instant so the server's stages nest inside it.
        obs::Tracer& tr = obs::Tracer::instance();
        if (tr.enabled()) {
          const std::int64_t elapsed_ns =
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count();
          obs::TraceEvent ev;
          ev.cat = "req";
          ev.name = "client";
          ev.ph = 'X';
          ev.ts_ns = tr.now_ns() - elapsed_ns;
          ev.dur_ns = elapsed_ns;
          ev.a0 = static_cast<std::int64_t>(it->second.trace_id);
          tr.record(ev);
        }
      }
      outstanding.erase(it);
    }
    classify(rep, &acc);
    return rs;
  };

  if (interval_ns == 0) {
    // Closed loop: one outstanding request per connection.
    while (SteadyClock::now() < t_end && cli.connected()) {
      if (!under_cap()) break;
      if (!send_one()) break;
      const auto rs = take_reply(o.timeout_ms);
      if (rs != NpdpClient::RecvStatus::Ok) {
        ++acc.transport_errors;
        break;
      }
    }
  } else {
    // Open loop: inject on schedule, drain replies opportunistically.
    const auto interval = std::chrono::nanoseconds(interval_ns);
    auto next_send = SteadyClock::now();
    bool capped = false;
    while (cli.connected()) {
      const auto now = SteadyClock::now();
      if (now >= t_end) break;
      if (!capped && now >= next_send) {
        if (!under_cap()) {
          capped = true;
        } else {
          // Latency for this request is charged from next_send, the
          // instant it was *due* — not from when we finally got to it —
          // so falling behind schedule shows up in the corrected
          // percentiles instead of vanishing (coordinated omission).
          if (!send_one(next_send)) break;
          next_send += interval;
          // If we fell behind by whole intervals (scheduler hiccup),
          // re-anchor instead of bursting to catch up — but count every
          // abandoned slot so the shortfall in offered load is visible.
          if (next_send < now) {
            acc.slipped +=
                static_cast<std::uint64_t>((now - next_send) / interval) + 1;
            next_send = now + interval;
          }
          continue;
        }
      }
      // Drain whatever has arrived without blocking past the next send.
      const auto rs = take_reply(0);
      if (rs == NpdpClient::RecvStatus::Closed ||
          rs == NpdpClient::RecvStatus::Error) {
        ++acc.transport_errors;
        break;
      }
      if (rs == NpdpClient::RecvStatus::Timeout) {
        const auto wake = capped ? now + std::chrono::milliseconds(1)
                                 : std::min(next_send, t_end);
        std::this_thread::sleep_until(std::min(wake, t_end));
      }
    }
  }
  // Drain outstanding replies (the server answers everything admitted).
  const auto drain_end =
      SteadyClock::now() + std::chrono::milliseconds(o.timeout_ms);
  while (!outstanding.empty() && cli.connected() &&
         SteadyClock::now() < drain_end) {
    const auto rs = take_reply(50);
    if (rs == NpdpClient::RecvStatus::Closed ||
        rs == NpdpClient::RecvStatus::Error) {
      ++acc.transport_errors;
      break;
    }
  }
  merge(sh, acc, tidx);
}

}  // namespace

bool run_loadgen(const LoadGenOptions& opts, LoadGenResult* out,
                 std::string* err) {
  const int conns = std::max(1, opts.connections);
  std::vector<Endpoint> targets = opts.targets;
  if (targets.empty()) targets.push_back(Endpoint{opts.host, opts.port});
  for (const Endpoint& t : targets) {
    // Fail fast (and with a useful message) if any target isn't listening.
    NpdpClient probe;
    if (!probe.connect(t.host, t.port, err, opts.connect_timeout_ms)) {
      *err = t.host + ":" + std::to_string(t.port) + ": " + *err;
      return false;
    }
  }
  const std::int64_t interval_ns =
      opts.rate > 0
          ? static_cast<std::int64_t>(1e9 * conns / opts.rate)
          : 0;
  Shared sh;
  sh.per_target.resize(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i)
    sh.per_target[i].target =
        targets[i].host + ":" + std::to_string(targets[i].port);
  const auto t0 = SteadyClock::now();
  const auto t_end = t0 + std::chrono::milliseconds(opts.duration_ms);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(conns));
  for (int ci = 0; ci < conns; ++ci) {
    const std::size_t tidx =
        static_cast<std::size_t>(ci) % targets.size();
    threads.emplace_back(conn_worker, std::cref(opts),
                         std::cref(targets[tidx]), tidx, ci, interval_ns,
                         t_end, std::ref(sh));
  }
  for (auto& t : threads) t.join();
  sh.merged.elapsed_s =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();
  sh.merged.achieved_rps = sh.merged.elapsed_s > 0
                               ? double(sh.merged.replies) / sh.merged.elapsed_s
                               : 0;
  sh.merged.per_target = std::move(sh.per_target);
  *out = std::move(sh.merged);
  return true;
}

double latency_percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const double pos = q * double(sorted_ms.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = pos - double(lo);
  return sorted_ms[lo] * (1 - frac) + sorted_ms[hi] * frac;
}

}  // namespace cellnpdp::net
