#include "net/client.hpp"

#include <cerrno>
#include <cstring>

namespace cellnpdp::net {

bool NpdpClient::connect(const std::string& host, std::uint16_t port,
                         std::string* err, int connect_timeout_ms) {
  close();
  host_ = host;
  port_ = port;
  have_endpoint_ = true;
  if (connect_timeout_ms > 0) connect_timeout_ms_ = connect_timeout_ms;
  const int fd =
      tcp_connect_timeout(host, port, connect_timeout_ms_, err);
  if (fd < 0) return false;
  fd_.reset(fd);
  return true;
}

bool NpdpClient::reconnect(std::string* err) {
  if (!have_endpoint_) {
    *err = "no endpoint to reconnect to";
    return false;
  }
  return connect(host_, port_, err, connect_timeout_ms_);
}

bool NpdpClient::send_frame(const std::vector<std::uint8_t>& frame,
                            std::string* err) {
  if (!fd_.valid()) {
    *err = "not connected";
    return false;
  }
  if (!send_all(fd_.get(), frame.data(), frame.size())) {
    *err = std::string("send: ") + std::strerror(errno);
    fd_.reset();
    return false;
  }
  return true;
}

NpdpClient::SendStatus NpdpClient::send_frame2(
    const std::vector<std::uint8_t>& frame, std::string* err) {
  // Dead before we start (prior error, idle-timeout close noticed on the
  // previous read): dial again rather than failing a sendable request.
  if (!fd_.valid()) {
    if (!auto_reconnect_) {
      *err = "not connected";
      return SendStatus::Reset;
    }
    if (!reconnect(err)) return SendStatus::Reset;
  }
  if (send_all(fd_.get(), frame.data(), frame.size())) return SendStatus::Ok;
  const int send_errno = errno;
  *err = std::string("send: ") + std::strerror(send_errno);
  fd_.reset();
  rbuf_.clear();
  if (send_errno != ECONNRESET && send_errno != EPIPE)
    return SendStatus::Error;
  // Peer dropped the connection under us. One reconnect + resend: frames
  // pipelined on the dead connection are gone either way, so the caller
  // sees Reset (retry the rest) rather than a hard error.
  if (!auto_reconnect_ || !reconnect(err)) return SendStatus::Reset;
  if (send_all(fd_.get(), frame.data(), frame.size())) return SendStatus::Ok;
  *err = std::string("send after reconnect: ") + std::strerror(errno);
  fd_.reset();
  rbuf_.clear();
  return SendStatus::Reset;
}

NpdpClient::RecvStatus NpdpClient::recv_frame(FrameHeader* h,
                                              std::vector<std::uint8_t>* payload,
                                              int timeout_ms,
                                              std::string* err) {
  if (!fd_.valid()) {
    *err = "not connected";
    return RecvStatus::Error;
  }
  for (;;) {
    const HeaderParse hp = parse_header(rbuf_.data(), rbuf_.size(), h);
    if (hp == HeaderParse::BadMagic) {
      *err = "bad magic from server";
      fd_.reset();
      return RecvStatus::Error;
    }
    if (hp == HeaderParse::Ok) {
      if (h->len > max_frame_) {
        *err = "reply payload " + std::to_string(h->len) + " exceeds cap";
        fd_.reset();
        return RecvStatus::Error;
      }
      if (rbuf_.size() >= kHeaderSize + h->len) {
        payload->assign(rbuf_.begin() + kHeaderSize,
                        rbuf_.begin() + static_cast<std::ptrdiff_t>(
                                            kHeaderSize + h->len));
        rbuf_.erase(rbuf_.begin(), rbuf_.begin() + static_cast<std::ptrdiff_t>(
                                                       kHeaderSize + h->len));
        return RecvStatus::Ok;
      }
    }
    std::uint8_t buf[16384];
    const long n = recv_some(fd_.get(), buf, sizeof buf, timeout_ms);
    if (n > 0) {
      rbuf_.insert(rbuf_.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      *err = "server closed the connection";
      fd_.reset();
      return RecvStatus::Closed;
    }
    if (n == -2) {
      *err = "timed out waiting for reply";
      return RecvStatus::Timeout;
    }
    *err = std::string("recv: ") + std::strerror(errno);
    fd_.reset();
    return RecvStatus::Error;
  }
}

NpdpClient::RecvStatus NpdpClient::recv_reply(Reply* out, int timeout_ms,
                                              std::string* err) {
  FrameHeader h;
  std::vector<std::uint8_t> payload;
  const RecvStatus rs = recv_frame(&h, &payload, timeout_ms, err);
  if (rs != RecvStatus::Ok) return rs;
  out->id = h.id;
  switch (h.type) {
    case MsgType::Result: {
      out->kind = Reply::Kind::Result;
      if (!decode_response_payload(h.id, payload.data(), payload.size(),
                                   &out->result, err))
        return RecvStatus::Error;
      return RecvStatus::Ok;
    }
    case MsgType::ProtoError: {
      out->kind = Reply::Kind::ProtoError;
      if (!decode_proto_error(payload.data(), payload.size(), &out->code,
                              &out->message)) {
        *err = "malformed ProtoError frame";
        return RecvStatus::Error;
      }
      return RecvStatus::Ok;
    }
    case MsgType::Pong:
      out->kind = Reply::Kind::Pong;
      return RecvStatus::Ok;
    case MsgType::StatsText: {
      out->kind = Reply::Kind::StatsText;
      if (!decode_stats_text(payload.data(), payload.size(), &out->message)) {
        *err = "malformed StatsText frame";
        return RecvStatus::Error;
      }
      return RecvStatus::Ok;
    }
    case MsgType::StatsResponse: {
      out->kind = Reply::Kind::StatsSnapshot;
      if (!decode_stats_response(payload.data(), payload.size(), &out->stats,
                                 err))
        return RecvStatus::Error;
      return RecvStatus::Ok;
    }
    default:
      *err = "unexpected frame type " +
             std::to_string(static_cast<unsigned>(h.type));
      return RecvStatus::Error;
  }
}

NpdpClient::RecvStatus NpdpClient::call(const WireRequest& req, Reply* out,
                                        int timeout_ms, std::string* err) {
  if (!send_frame(encode_request(req), err)) return RecvStatus::Error;
  const RecvStatus rs = recv_reply(out, timeout_ms, err);
  if (rs != RecvStatus::Ok) return rs;
  if (out->id != req.id) {
    *err = "reply id mismatch (pipelined replies pending?)";
    return RecvStatus::Error;
  }
  return RecvStatus::Ok;
}

NpdpClient::RecvStatus NpdpClient::ping(std::uint64_t id, int timeout_ms,
                                        std::string* err) {
  if (!send_frame(encode_ping(id), err)) return RecvStatus::Error;
  Reply rep;
  const RecvStatus rs = recv_reply(&rep, timeout_ms, err);
  if (rs != RecvStatus::Ok) return rs;
  if (rep.kind != Reply::Kind::Pong || rep.id != id) {
    *err = "expected Pong";
    return RecvStatus::Error;
  }
  return RecvStatus::Ok;
}

NpdpClient::RecvStatus NpdpClient::stats(std::string* json, int timeout_ms,
                                         std::string* err) {
  if (!send_frame(encode_stats_request(1), err)) return RecvStatus::Error;
  Reply rep;
  const RecvStatus rs = recv_reply(&rep, timeout_ms, err);
  if (rs != RecvStatus::Ok) return rs;
  if (rep.kind != Reply::Kind::StatsText) {
    *err = "expected StatsText";
    return RecvStatus::Error;
  }
  *json = rep.message;
  return RecvStatus::Ok;
}

NpdpClient::RecvStatus NpdpClient::stats_snapshot(WireStats* out,
                                                  int timeout_ms,
                                                  std::string* err) {
  if (!send_frame(encode_stats_snapshot_request(1), err))
    return RecvStatus::Error;
  Reply rep;
  const RecvStatus rs = recv_reply(&rep, timeout_ms, err);
  if (rs != RecvStatus::Ok) return rs;
  if (rep.kind != Reply::Kind::StatsSnapshot) {
    *err = "expected StatsResponse";
    return RecvStatus::Error;
  }
  *out = std::move(rep.stats);
  return RecvStatus::Ok;
}

}  // namespace cellnpdp::net
