// The npdp wire protocol: versioned, length-prefixed binary frames over a
// TCP byte stream (docs/networking.md has the full byte-offset table).
//
// Every frame is a fixed 20-byte header followed by `length` payload
// bytes, all integers little-endian:
//
//   offset size field
//   0      4    magic 0x5044504E ("NPDP")
//   4      2    protocol version (kVersion)
//   6      2    message type (MsgType)
//   8      8    request id (echoed verbatim in the response)
//   16     4    payload length in bytes
//
// Request payloads open with a common prefix [priority i32][deadline-ms
// u32] (deadline 0 = none, relative to server receipt) followed by
// kind-specific fields, so PR 3's deadline semantics and the priority
// queue survive the network hop. Strings travel as [u32 length][bytes].
//
// Version 2 appends an optional trace context to the common request
// prefix: [flags u8] where bit0 = context present and bit1 = sampled,
// then (iff bit0) [trace_id u64][parent_span_id u64], then (iff bit2)
// [tenant u16] — the QoS tenant tag, omitted for the default tenant 0 so
// untagged frames stay byte-identical to pre-tenant ones. Version-1
// frames carry no context and decode exactly as before — the server accepts
// both versions (kMinVersion..kVersion) and keys its decode on the
// header's version field. Response payloads are identical across both
// versions. v2 also adds the StatsRequest/StatsResponse frame pair: a
// binary snapshot of the metrics registry (counters, gauges, histogram
// buckets), breaker board, and queue depth for live polling (`npdp top`).
//
// Decoding is defensive end to end: every read is bounds-checked, a
// payload must be consumed exactly (trailing bytes are an error), and
// enum bytes outside their range fail the frame. A malformed payload is
// answered with a typed ProtoError frame; it never crashes a reactor and
// never desynchronizes the stream (frames are length-delimited, so the
// connection survives). Only an unrecognizable *header* — wrong magic —
// forces a disconnect, because nothing downstream of it can be trusted.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <variant>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span_context.hpp"
#include "serve/request.hpp"
#include "serve/response.hpp"

namespace cellnpdp::net {

constexpr std::uint32_t kMagic = 0x5044504E;  // "NPDP" when read as LE bytes
constexpr std::uint16_t kVersion = 2;     ///< current: trace ctx + stats frames
constexpr std::uint16_t kMinVersion = 1;  ///< oldest version still decoded
constexpr std::size_t kHeaderSize = 20;
/// Default payload-size cap (configurable per server); a frame claiming
/// more is refused before any buffering happens.
constexpr std::size_t kDefaultMaxFrame = 1u << 20;

enum class MsgType : std::uint16_t {
  // Requests (client -> server).
  Ping = 1,    ///< empty payload; answered with Pong (pure RTT probe)
  Solve = 2,   ///< serve::SolveSpec
  Fold = 3,    ///< serve::FoldSpec
  Parse = 4,   ///< serve::ParseSpec
  Chain = 5,   ///< serve::ChainSpec
  Bst = 6,     ///< serve::BstSpec
  Stats = 7,   ///< empty payload; answered with StatsText
  StatsRequest = 8,  ///< empty payload; answered with StatsResponse (v2)
  // Responses (server -> client).
  Pong = 128,
  Result = 129,     ///< terminal serve::Response for one request
  StatsText = 130,  ///< JSON snapshot of server + service counters
  ProtoError = 131, ///< typed protocol error (see ProtoErrorCode)
  StatsResponse = 132,  ///< binary metrics/breaker/queue snapshot (v2)
  // Peer frames (peer <-> peer, src/dist): symmetric — either side of a
  // peer connection may send any of them. A request/response server that
  // receives one answers UnknownType, exactly as for any type it does not
  // serve; peer frames additionally require a v2 header (v1 predates
  // them), which the peer decoder enforces per frame.
  PeerHello = 192,     ///< rank + workload fingerprint, opens a connection
  BlockAnnounce = 193, ///< a finished block's coords, size and checksum
  BlockData = 194,     ///< the block payload itself (raw cell bytes)
  PeerDone = 195,      ///< sender computed all owned blocks and saw all others
};

constexpr bool is_request_type(MsgType t) {
  return t == MsgType::Ping || t == MsgType::Solve || t == MsgType::Fold ||
         t == MsgType::Parse || t == MsgType::Chain || t == MsgType::Bst ||
         t == MsgType::Stats || t == MsgType::StatsRequest;
}

constexpr bool is_peer_type(MsgType t) {
  return t == MsgType::PeerHello || t == MsgType::BlockAnnounce ||
         t == MsgType::BlockData || t == MsgType::PeerDone;
}

enum class ProtoErrorCode : std::uint16_t {
  None = 0,
  BadVersion = 1,     ///< header carried an unsupported protocol version
  FrameTooLarge = 2,  ///< payload length exceeds the server's cap
  BadPayload = 3,     ///< payload failed to decode (connection survives)
  UnknownType = 4,    ///< unrecognised message type (connection survives)
};

constexpr const char* proto_error_name(ProtoErrorCode c) {
  switch (c) {
    case ProtoErrorCode::None: return "none";
    case ProtoErrorCode::BadVersion: return "bad-version";
    case ProtoErrorCode::FrameTooLarge: return "frame-too-large";
    case ProtoErrorCode::BadPayload: return "bad-payload";
    case ProtoErrorCode::UnknownType: return "unknown-type";
  }
  return "?";
}

/// serve::Status <-> wire code. The wire values are frozen (appended-only)
/// so old clients keep decoding new servers.
constexpr std::uint16_t wire_status(serve::Status s) {
  return static_cast<std::uint16_t>(s);
}
constexpr bool status_from_wire(std::uint16_t v, serve::Status* out) {
  if (v > static_cast<std::uint16_t>(serve::Status::RetryAfter)) return false;
  *out = static_cast<serve::Status>(v);
  return true;
}

// --- byte-level writers ----------------------------------------------------

inline void put_u8(std::vector<std::uint8_t>& b, std::uint8_t v) {
  b.push_back(v);
}
inline void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}
inline void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
inline void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
inline void put_i32(std::vector<std::uint8_t>& b, std::int32_t v) {
  put_u32(b, static_cast<std::uint32_t>(v));
}
inline void put_i64(std::vector<std::uint8_t>& b, std::int64_t v) {
  put_u64(b, static_cast<std::uint64_t>(v));
}
inline void put_f64(std::vector<std::uint8_t>& b, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(b, bits);
}
inline void put_str(std::vector<std::uint8_t>& b, const std::string& s) {
  put_u32(b, static_cast<std::uint32_t>(s.size()));
  b.insert(b.end(), s.begin(), s.end());
}

// --- bounds-checked reader -------------------------------------------------

/// Sequential reader over one payload. Any out-of-bounds access latches
/// `ok = false` and every subsequent read returns a zero value, so decode
/// functions can read unconditionally and check `ok` once at the end.
struct WireReader {
  const std::uint8_t* p = nullptr;
  std::size_t n = 0;
  std::size_t off = 0;
  bool ok = true;

  WireReader(const std::uint8_t* data, std::size_t len) : p(data), n(len) {}

  bool need(std::size_t k) {
    if (!ok || n - off < k || off > n) ok = false;
    return ok;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return p[off++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(
        p[off] | (static_cast<std::uint16_t>(p[off + 1]) << 8));
    off += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(p[off + i]) << (8 * i);
    off += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(p[off + i]) << (8 * i);
    off += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    if (!need(len)) return {};
    std::string s(reinterpret_cast<const char*>(p + off), len);
    off += len;
    return s;
  }
  /// A payload must be consumed exactly; trailing garbage fails it.
  bool done() const { return ok && off == n; }
};

// --- frame header ----------------------------------------------------------

struct FrameHeader {
  std::uint16_t version = 0;
  MsgType type = MsgType::Ping;
  std::uint64_t id = 0;
  std::uint32_t len = 0;
};

enum class HeaderParse { NeedMore, Ok, BadMagic };

/// Parses a header from the front of `data`. NeedMore means fewer than
/// kHeaderSize bytes are available; BadMagic means the stream is
/// unsynchronized and the connection must die. Version and length are
/// NOT validated here — the caller owns those policies (it may still
/// want the id to address an error reply).
inline HeaderParse parse_header(const std::uint8_t* data, std::size_t n,
                                FrameHeader* h) {
  if (n < kHeaderSize) return HeaderParse::NeedMore;
  WireReader r(data, kHeaderSize);
  const std::uint32_t magic = r.u32();
  if (magic != kMagic) return HeaderParse::BadMagic;
  h->version = r.u16();
  h->type = static_cast<MsgType>(r.u16());
  h->id = r.u64();
  h->len = r.u32();
  return HeaderParse::Ok;
}

inline void encode_header(std::vector<std::uint8_t>& out, MsgType t,
                          std::uint64_t id, std::uint32_t len,
                          std::uint16_t version = kVersion) {
  put_u32(out, kMagic);
  put_u16(out, version);
  put_u16(out, static_cast<std::uint16_t>(t));
  put_u64(out, id);
  put_u32(out, len);
}

// --- requests --------------------------------------------------------------

/// One request as it travels: the serve::Request fields that make sense
/// on the wire, with the deadline relative (ms from server receipt)
/// instead of a time_point.
struct WireRequest {
  std::uint64_t id = 0;
  std::int32_t priority = 0;
  std::uint32_t deadline_ms = 0;  ///< 0 = no deadline
  obs::SpanContext trace{};       ///< optional; only travels on v2 frames
  std::uint16_t tenant = 0;       ///< optional; only travels on v2 frames
  serve::Payload payload = serve::SolveSpec{};
};

// Flag byte of the v2 request prefix. Bit 2 marks an optional [tenant
// u16] that follows the trace ids (same backward-compatible pattern as
// the trailing semiring tag: tenant 0 — the default — is never encoded,
// so frames from untagged clients stay byte-identical to pre-tenant
// ones, and pre-tenant decoders keep rejecting only genuinely unknown
// bits).
constexpr std::uint8_t kTraceFlagPresent = 0x01;
constexpr std::uint8_t kTraceFlagSampled = 0x02;
constexpr std::uint8_t kFlagTenant = 0x04;

inline MsgType request_msg_type(const serve::Payload& p) {
  switch (p.index()) {
    case 0: return MsgType::Solve;
    case 1: return MsgType::Fold;
    case 2: return MsgType::Parse;
    case 3: return MsgType::Chain;
    default: return MsgType::Bst;
  }
}

/// Encodes a complete frame (header + payload) for one request. Pass
/// `version = 1` to emit a legacy frame (no trace context) for servers
/// that predate v2.
inline std::vector<std::uint8_t> encode_request(
    const WireRequest& r, std::uint16_t version = kVersion) {
  std::vector<std::uint8_t> body;
  put_i32(body, r.priority);
  put_u32(body, r.deadline_ms);
  if (version >= 2) {
    std::uint8_t flags = 0;
    if (r.trace.valid()) {
      flags |= kTraceFlagPresent;
      if (r.trace.sampled) flags |= kTraceFlagSampled;
    }
    if (r.tenant != 0) flags |= kFlagTenant;
    put_u8(body, flags);
    if (r.trace.valid()) {
      put_u64(body, r.trace.trace_id);
      put_u64(body, r.trace.parent_span_id);
    }
    if (r.tenant != 0) put_u16(body, r.tenant);
  }
  if (const auto* s = std::get_if<serve::SolveSpec>(&r.payload)) {
    put_i64(body, s->n);
    put_u64(body, s->seed);
    put_i64(body, s->block_side);
    put_u8(body, static_cast<std::uint8_t>(s->kernel));
    put_str(body, s->backend);
    // Optional trailing semiring tag: omitted for min-plus so frames from
    // this encoder stay byte-identical to pre-semiring ones (and old
    // decoders, which reject trailing bytes, keep working for the one
    // semiring they know).
    if (s->semiring != SemiringId::MinPlus)
      put_u8(body, static_cast<std::uint8_t>(s->semiring));
  } else if (const auto* f = std::get_if<serve::FoldSpec>(&r.payload)) {
    put_i64(body, f->random_n);
    put_u64(body, f->seed);
    put_str(body, f->seq);
  } else if (const auto* p = std::get_if<serve::ParseSpec>(&r.payload)) {
    put_u8(body, static_cast<std::uint8_t>(p->grammar));
    put_str(body, p->text);
  } else if (const auto* c = std::get_if<serve::ChainSpec>(&r.payload)) {
    put_i64(body, c->n);
    put_u64(body, c->seed);
  } else {
    const auto& b = std::get<serve::BstSpec>(r.payload);
    put_i64(body, b.keys);
    put_u64(body, b.seed);
  }
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + body.size());
  encode_header(out, request_msg_type(r.payload), r.id,
                static_cast<std::uint32_t>(body.size()), version);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

/// Decodes the payload of a request frame of type `t` (Solve..Bst).
/// `version` is the frame header's version: v1 payloads carry no trace
/// context, v2 payloads carry the flag byte (+ ids when present).
/// Returns false with a human-readable `*err` on any malformation; `*out`
/// then holds no guarantees.
inline bool decode_request_payload(MsgType t, std::uint16_t version,
                                   std::uint64_t id, const std::uint8_t* p,
                                   std::size_t n, WireRequest* out,
                                   std::string* err) {
  WireReader r(p, n);
  out->id = id;
  out->priority = r.i32();
  out->deadline_ms = r.u32();
  out->trace = obs::SpanContext{};
  out->tenant = 0;
  if (version >= 2) {
    const std::uint8_t flags = r.u8();
    if ((flags & ~(kTraceFlagPresent | kTraceFlagSampled | kFlagTenant)) !=
        0) {
      *err = "unknown trace flag bits";
      return false;
    }
    if ((flags & kTraceFlagPresent) != 0) {
      out->trace.trace_id = r.u64();
      out->trace.parent_span_id = r.u64();
      out->trace.sampled = (flags & kTraceFlagSampled) != 0;
      if (r.ok && !out->trace.valid()) {
        *err = "trace context present but trace_id is zero";
        return false;
      }
    }
    if ((flags & kFlagTenant) != 0) {
      out->tenant = r.u16();
      if (r.ok && out->tenant == 0) {
        *err = "tenant flag set but tenant is zero";
        return false;
      }
      if (r.ok && out->tenant >= serve::kMaxTenants) {
        *err = "tenant id out of range";
        return false;
      }
    }
  }
  switch (t) {
    case MsgType::Solve: {
      serve::SolveSpec s;
      s.n = r.i64();
      s.seed = r.u64();
      s.block_side = r.i64();
      const std::uint8_t k = r.u8();
      s.backend = r.str();
      if (k > static_cast<std::uint8_t>(KernelKind::Wide)) {
        *err = "solve: kernel byte out of range";
        return false;
      }
      s.kernel = static_cast<KernelKind>(k);
      // Optional trailing semiring tag; absent means min-plus (clients
      // that predate semirings never emit it).
      if (r.ok && r.off < r.n) {
        const std::uint8_t sr = r.u8();
        if (sr >= kSemiringCount) {
          *err = "solve: semiring byte out of range";
          return false;
        }
        s.semiring = static_cast<SemiringId>(sr);
      }
      if (r.done() && (s.n < 1 || s.block_side < 1)) {
        *err = "solve: n and block must be >= 1";
        return false;
      }
      out->payload = s;
      break;
    }
    case MsgType::Fold: {
      serve::FoldSpec f;
      f.random_n = r.i64();
      f.seed = r.u64();
      f.seq = r.str();
      if (r.done() && f.seq.empty() && f.random_n < 1) {
        *err = "fold: needs seq or random >= 1";
        return false;
      }
      out->payload = f;
      break;
    }
    case MsgType::Parse: {
      serve::ParseSpec ps;
      const std::uint8_t g = r.u8();
      ps.text = r.str();
      if (g > static_cast<std::uint8_t>(serve::ParseSpec::GrammarKind::Anbn)) {
        *err = "parse: grammar byte out of range";
        return false;
      }
      ps.grammar = static_cast<serve::ParseSpec::GrammarKind>(g);
      out->payload = ps;
      break;
    }
    case MsgType::Chain: {
      serve::ChainSpec c;
      c.n = r.i64();
      c.seed = r.u64();
      if (r.done() && c.n < 1) {
        *err = "chain: n must be >= 1";
        return false;
      }
      out->payload = c;
      break;
    }
    case MsgType::Bst: {
      serve::BstSpec b;
      b.keys = r.i64();
      b.seed = r.u64();
      if (r.done() && b.keys < 1) {
        *err = "bst: keys must be >= 1";
        return false;
      }
      out->payload = b;
      break;
    }
    default:
      *err = "not a request payload type";
      return false;
  }
  if (!r.done()) {
    *err = r.ok ? "trailing bytes after payload" : "payload truncated";
    return false;
  }
  return true;
}

// --- responses -------------------------------------------------------------

/// A serve::Response as it travels (total/queue/solve latencies are the
/// *server-side* numbers; the client measures its own end-to-end time).
struct WireResponse {
  std::uint64_t id = 0;
  serve::Status status = serve::Status::Error;
  double value = 0;
  std::int64_t queue_ns = 0;
  std::int64_t solve_ns = 0;
  std::int64_t total_ns = 0;
  std::int64_t retry_after_ms = 0;
  std::string backend;  ///< effective engine name (see serve::Response)
  std::string detail;
};

inline std::vector<std::uint8_t> encode_response(const WireResponse& r) {
  std::vector<std::uint8_t> body;
  put_u16(body, wire_status(r.status));
  put_f64(body, r.value);
  put_i64(body, r.queue_ns);
  put_i64(body, r.solve_ns);
  put_i64(body, r.total_ns);
  put_i64(body, r.retry_after_ms);
  put_str(body, r.backend);
  put_str(body, r.detail);
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + body.size());
  encode_header(out, MsgType::Result, r.id,
                static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

inline std::vector<std::uint8_t> encode_response(const serve::Response& r) {
  WireResponse w;
  w.id = r.id;
  w.status = r.status;
  w.value = r.value;
  w.queue_ns = r.queue_ns;
  w.solve_ns = r.solve_ns;
  w.total_ns = r.total_ns;
  w.retry_after_ms = r.retry_after_ms;
  w.backend = r.backend;
  w.detail = r.detail;
  return encode_response(w);
}

inline bool decode_response_payload(std::uint64_t id, const std::uint8_t* p,
                                    std::size_t n, WireResponse* out,
                                    std::string* err) {
  WireReader r(p, n);
  out->id = id;
  const std::uint16_t st = r.u16();
  out->value = r.f64();
  out->queue_ns = r.i64();
  out->solve_ns = r.i64();
  out->total_ns = r.i64();
  out->retry_after_ms = r.i64();
  out->backend = r.str();
  out->detail = r.str();
  if (!r.done()) {
    *err = r.ok ? "trailing bytes after payload" : "payload truncated";
    return false;
  }
  if (!status_from_wire(st, &out->status)) {
    *err = "status code out of range";
    return false;
  }
  return true;
}

// --- control frames --------------------------------------------------------

inline std::vector<std::uint8_t> encode_empty(MsgType t, std::uint64_t id) {
  std::vector<std::uint8_t> out;
  encode_header(out, t, id, 0);
  return out;
}
inline std::vector<std::uint8_t> encode_ping(std::uint64_t id) {
  return encode_empty(MsgType::Ping, id);
}
inline std::vector<std::uint8_t> encode_pong(std::uint64_t id) {
  return encode_empty(MsgType::Pong, id);
}
inline std::vector<std::uint8_t> encode_stats_request(std::uint64_t id) {
  return encode_empty(MsgType::Stats, id);
}

inline std::vector<std::uint8_t> encode_stats_text(std::uint64_t id,
                                                   const std::string& json) {
  std::vector<std::uint8_t> body;
  put_str(body, json);
  std::vector<std::uint8_t> out;
  encode_header(out, MsgType::StatsText, id,
                static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}
inline bool decode_stats_text(const std::uint8_t* p, std::size_t n,
                              std::string* json) {
  WireReader r(p, n);
  *json = r.str();
  return r.done();
}

// --- binary stats snapshot (v2) --------------------------------------------

/// One circuit breaker as it travels in a StatsResponse.
struct WireBreaker {
  std::string name;
  std::uint8_t state = 0;  ///< resilience::BreakerState as a byte
  double failure_rate = 0;
  std::int64_t retry_after_ms = 0;
};

/// The StatsResponse payload: a one-pass metrics snapshot plus the
/// breaker board and current admission-queue depth. Histograms travel
/// as sparse (index, count) bucket lists; quantiles are recomputed on
/// the receiving side with the same interpolation code the server uses.
struct WireStats {
  obs::MetricsSnapshot metrics;
  std::vector<WireBreaker> breakers;
  std::int64_t queue_depth = 0;
};

inline std::vector<std::uint8_t> encode_stats_snapshot_request(
    std::uint64_t id) {
  return encode_empty(MsgType::StatsRequest, id);
}

inline std::vector<std::uint8_t> encode_stats_response(std::uint64_t id,
                                                       const WireStats& s) {
  std::vector<std::uint8_t> body;
  put_u32(body, static_cast<std::uint32_t>(s.metrics.counters.size()));
  for (const auto& [name, v] : s.metrics.counters) {
    put_str(body, name);
    put_i64(body, v);
  }
  put_u32(body, static_cast<std::uint32_t>(s.metrics.gauges.size()));
  for (const auto& [name, v] : s.metrics.gauges) {
    put_str(body, name);
    put_f64(body, v);
  }
  put_u32(body, static_cast<std::uint32_t>(s.metrics.histograms.size()));
  for (const auto& [name, h] : s.metrics.histograms) {
    put_str(body, name);
    put_i64(body, h.count);
    put_i64(body, h.sum);
    put_i64(body, h.min);
    put_i64(body, h.max);
    std::uint32_t nonzero = 0;
    for (const auto b : h.buckets) nonzero += (b != 0);
    put_u32(body, nonzero);
    for (int b = 0; b < obs::Histogram::kBuckets; ++b) {
      if (h.buckets[std::size_t(b)] == 0) continue;
      put_u8(body, static_cast<std::uint8_t>(b));
      put_i64(body, h.buckets[std::size_t(b)]);
    }
  }
  put_u32(body, static_cast<std::uint32_t>(s.breakers.size()));
  for (const auto& b : s.breakers) {
    put_str(body, b.name);
    put_u8(body, b.state);
    put_f64(body, b.failure_rate);
    put_i64(body, b.retry_after_ms);
  }
  put_i64(body, s.queue_depth);
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + body.size());
  encode_header(out, MsgType::StatsResponse, id,
                static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

inline bool decode_stats_response(const std::uint8_t* p, std::size_t n,
                                  WireStats* out, std::string* err) {
  WireReader r(p, n);
  // Every entry is >= 5 bytes, so a count larger than the payload length
  // is garbage — refuse it before looping (a hostile length would
  // otherwise cost O(count) latched-reader iterations).
  const auto sane = [&](std::uint32_t c) { return std::size_t(c) <= n; };
  const std::uint32_t nc = r.u32();
  if (!sane(nc)) {
    *err = "stats: counter count exceeds payload";
    return false;
  }
  out->metrics.counters.clear();
  out->metrics.counters.reserve(nc);
  for (std::uint32_t i = 0; i < nc && r.ok; ++i) {
    std::string name = r.str();
    const std::int64_t v = r.i64();
    out->metrics.counters.emplace_back(std::move(name), v);
  }
  const std::uint32_t ng = r.u32();
  if (!sane(ng)) {
    *err = "stats: gauge count exceeds payload";
    return false;
  }
  out->metrics.gauges.clear();
  out->metrics.gauges.reserve(ng);
  for (std::uint32_t i = 0; i < ng && r.ok; ++i) {
    std::string name = r.str();
    const double v = r.f64();
    out->metrics.gauges.emplace_back(std::move(name), v);
  }
  const std::uint32_t nh = r.u32();
  if (!sane(nh)) {
    *err = "stats: histogram count exceeds payload";
    return false;
  }
  out->metrics.histograms.clear();
  out->metrics.histograms.reserve(nh);
  for (std::uint32_t i = 0; i < nh && r.ok; ++i) {
    std::string name = r.str();
    obs::HistogramSnapshot h;
    h.count = r.i64();
    h.sum = r.i64();
    h.min = r.i64();
    h.max = r.i64();
    const std::uint32_t nb = r.u32();
    if (nb > obs::Histogram::kBuckets) {
      *err = "stats: histogram bucket count out of range";
      return false;
    }
    for (std::uint32_t b = 0; b < nb && r.ok; ++b) {
      const std::uint8_t idx = r.u8();
      const std::int64_t cnt = r.i64();
      if (idx >= obs::Histogram::kBuckets) {
        *err = "stats: bucket index out of range";
        return false;
      }
      h.buckets[idx] = cnt;
    }
    out->metrics.histograms.emplace_back(std::move(name), h);
  }
  const std::uint32_t nbk = r.u32();
  if (!sane(nbk)) {
    *err = "stats: breaker count exceeds payload";
    return false;
  }
  out->breakers.clear();
  out->breakers.reserve(nbk);
  for (std::uint32_t i = 0; i < nbk && r.ok; ++i) {
    WireBreaker b;
    b.name = r.str();
    b.state = r.u8();
    b.failure_rate = r.f64();
    b.retry_after_ms = r.i64();
    out->breakers.push_back(std::move(b));
  }
  out->queue_depth = r.i64();
  if (!r.done()) {
    *err = r.ok ? "trailing bytes after payload" : "payload truncated";
    return false;
  }
  return true;
}

inline std::vector<std::uint8_t> encode_proto_error(std::uint64_t id,
                                                    ProtoErrorCode code,
                                                    const std::string& msg) {
  std::vector<std::uint8_t> body;
  put_u16(body, static_cast<std::uint16_t>(code));
  put_str(body, msg);
  std::vector<std::uint8_t> out;
  encode_header(out, MsgType::ProtoError, id,
                static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}
inline bool decode_proto_error(const std::uint8_t* p, std::size_t n,
                               ProtoErrorCode* code, std::string* msg) {
  WireReader r(p, n);
  const std::uint16_t c = r.u16();
  *msg = r.str();
  if (!r.done() ||
      c > static_cast<std::uint16_t>(ProtoErrorCode::UnknownType))
    return false;
  *code = static_cast<ProtoErrorCode>(c);
  return true;
}

/// serve::Request from a decoded WireRequest, stamping the relative
/// deadline against `now` (the moment the server finished decoding).
inline serve::Request to_serve_request(
    const WireRequest& w, serve::Clock::time_point now = serve::Clock::now()) {
  serve::Request r;
  r.id = w.id;
  r.priority = w.priority;
  if (w.deadline_ms > 0)
    r.deadline = now + std::chrono::milliseconds(w.deadline_ms);
  r.trace = w.trace;
  r.tenant = w.tenant;
  r.payload = w.payload;
  return r;
}

}  // namespace cellnpdp::net
