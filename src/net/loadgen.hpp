// Network load generator for NpdpServer: N concurrent connections, each
// driven by its own thread + NpdpClient, in one of two modes:
//
//   closed loop (rate == 0)   each connection keeps exactly one request
//                             outstanding — latency under zero queueing
//   open loop   (rate  > 0)   requests are injected on a fixed schedule
//                             (rate/connections per conn) regardless of
//                             completions, pipelining on the socket —
//                             latency under sustained offered load
//
// The request mix is seed-deterministic (SplitMix64), so two runs with
// the same options offer the identical byte stream. Results aggregate
// per-status counts and client-measured end-to-end latencies.
//
// Open-loop latency is reported two ways to avoid coordinated omission:
// `latencies_ms` stamps each request at its actual send instant (the
// classic, optimistic view), while `corrected_latencies_ms` stamps it at
// its *scheduled* send instant — when the generator itself falls behind,
// the wait it imposed counts against the server, not nobody. Intervals
// dropped outright on re-anchor are tallied in `slipped`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace cellnpdp::net {

/// One server to drive (a replica, or a router front-end).
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// When non-empty, overrides host/port: connections are dealt to the
  /// targets round-robin (connection i -> targets[i % n]), so one run can
  /// drive several direct replicas — or one router — with the identical
  /// offered stream, and the per-target reply mixes stay comparable.
  std::vector<Endpoint> targets;
  int connections = 4;
  double rate = 0;  ///< total req/s across all connections; 0 = closed loop
  std::int64_t duration_ms = 2000;
  std::uint64_t max_requests = 0;  ///< stop after this many sends; 0 = no cap
  /// Workload kind: solve | fold | parse | chain | bst | mix.
  std::string mix = "chain";
  index_t size = 32;               ///< problem-size knob for the chosen kind
  int priority = 0;
  std::uint32_t deadline_ms = 0;   ///< per-request deadline; 0 = none
  /// QoS tenant id stamped on every request (0 = default tenant; the
  /// frame then omits the tenant tag entirely and is byte-identical to
  /// pre-tenant traffic).
  std::uint16_t tenant = 0;
  std::string backend;             ///< Solve requests only
  /// Semiring for Solve requests: a semiring name ("min-plus", "max-plus",
  /// "counting", "viterbi-log") or "mix" to rotate through all four
  /// seed-deterministically. Empty = min-plus.
  std::string semiring;
  std::uint64_t seed = 1;
  /// Size of the seed pool payloads draw from: the offered stream asks
  /// for `distinct` different computations per kind, so a result cache of
  /// capacity >= distinct converges to ~100% hits while a smaller one
  /// thrashes. The knob that makes cache-sharding effects measurable.
  int distinct = 16;
  int timeout_ms = 10000;          ///< per-read client timeout
  int connect_timeout_ms = 0;      ///< per-connection dial bound; 0 = none
  /// Trace-context origination: when true, every request carries a fresh
  /// root SpanContext; trace_sample picks which contexts are *sampled*
  /// (recorded by both ends), deterministically from the request RNG.
  bool trace = false;
  double trace_sample = 1.0;  ///< fraction of contexts marked sampled
};

/// Per-status reply counts for one target endpoint.
struct TargetCounts {
  std::string target;  ///< "host:port"
  std::uint64_t sent = 0;
  std::uint64_t replies = 0;
  std::uint64_t ok = 0;
  std::uint64_t cached = 0;
  std::uint64_t degraded = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t retry_after = 0;
  std::uint64_t errors = 0;
  std::uint64_t proto_errors = 0;
  std::uint64_t transport_errors = 0;
};

struct LoadGenResult {
  std::uint64_t sent = 0;
  std::uint64_t replies = 0;
  // Terminal serve::Status counts.
  std::uint64_t ok = 0;
  std::uint64_t cached = 0;
  std::uint64_t degraded = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t retry_after = 0;
  std::uint64_t errors = 0;            ///< serve::Status::Error replies
  std::uint64_t proto_errors = 0;      ///< ProtoError frames received
  std::uint64_t transport_errors = 0;  ///< send/recv failures, timeouts
  double elapsed_s = 0;
  double achieved_rps = 0;  ///< replies / elapsed
  /// Client-measured end-to-end latency per reply, milliseconds, unsorted,
  /// stamped from the request's *actual* send instant. Under open-loop
  /// overload this is the coordinated-omission-prone view: it excludes
  /// time the generator spent behind its own schedule.
  std::vector<double> latencies_ms;
  /// Same replies, stamped from the request's *scheduled* send instant —
  /// the coordinated-omission-corrected view. Closed loop (and an open
  /// loop that keeps up) makes the two distributions identical.
  std::vector<double> corrected_latencies_ms;
  /// Open loop only: whole send intervals abandoned when the generator
  /// fell behind schedule and re-anchored rather than bursting to catch
  /// up. Nonzero slips mean the offered rate was silently lower than
  /// requested and uncorrected percentiles understate server latency.
  std::uint64_t slipped = 0;
  /// One entry per distinct target (in LoadGenOptions::targets order;
  /// a single host/port run gets exactly one entry).
  std::vector<TargetCounts> per_target;

  /// True when every send got a well-formed terminal reply.
  bool clean() const {
    return proto_errors == 0 && transport_errors == 0 && replies == sent;
  }
};

/// Runs the load; blocks until duration (plus outstanding-reply drain)
/// elapses. False with *err if no connection could be established.
bool run_loadgen(const LoadGenOptions& opts, LoadGenResult* out,
                 std::string* err);

/// Sorted-percentile helper for latencies_ms (q in [0,1]); 0 when empty.
double latency_percentile(std::vector<double> sorted_ms, double q);

}  // namespace cellnpdp::net
