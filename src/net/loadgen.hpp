// Network load generator for NpdpServer: N concurrent connections, each
// driven by its own thread + NpdpClient, in one of two modes:
//
//   closed loop (rate == 0)   each connection keeps exactly one request
//                             outstanding — latency under zero queueing
//   open loop   (rate  > 0)   requests are injected on a fixed schedule
//                             (rate/connections per conn) regardless of
//                             completions, pipelining on the socket —
//                             latency under sustained offered load
//
// The request mix is seed-deterministic (SplitMix64), so two runs with
// the same options offer the identical byte stream. Results aggregate
// per-status counts and client-measured end-to-end latencies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace cellnpdp::net {

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int connections = 4;
  double rate = 0;  ///< total req/s across all connections; 0 = closed loop
  std::int64_t duration_ms = 2000;
  std::uint64_t max_requests = 0;  ///< stop after this many sends; 0 = no cap
  /// Workload kind: solve | fold | parse | chain | bst | mix.
  std::string mix = "chain";
  index_t size = 32;               ///< problem-size knob for the chosen kind
  int priority = 0;
  std::uint32_t deadline_ms = 0;   ///< per-request deadline; 0 = none
  std::string backend;             ///< Solve requests only
  std::uint64_t seed = 1;
  int timeout_ms = 10000;          ///< per-read client timeout
  /// Trace-context origination: when true, every request carries a fresh
  /// root SpanContext; trace_sample picks which contexts are *sampled*
  /// (recorded by both ends), deterministically from the request RNG.
  bool trace = false;
  double trace_sample = 1.0;  ///< fraction of contexts marked sampled
};

struct LoadGenResult {
  std::uint64_t sent = 0;
  std::uint64_t replies = 0;
  // Terminal serve::Status counts.
  std::uint64_t ok = 0;
  std::uint64_t cached = 0;
  std::uint64_t degraded = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t retry_after = 0;
  std::uint64_t errors = 0;            ///< serve::Status::Error replies
  std::uint64_t proto_errors = 0;      ///< ProtoError frames received
  std::uint64_t transport_errors = 0;  ///< send/recv failures, timeouts
  double elapsed_s = 0;
  double achieved_rps = 0;  ///< replies / elapsed
  /// Client-measured end-to-end latency per reply, milliseconds, unsorted.
  std::vector<double> latencies_ms;

  /// True when every send got a well-formed terminal reply.
  bool clean() const {
    return proto_errors == 0 && transport_errors == 0 && replies == sent;
  }
};

/// Runs the load; blocks until duration (plus outstanding-reply drain)
/// elapses. False with *err if no connection could be established.
bool run_loadgen(const LoadGenOptions& opts, LoadGenResult* out,
                 std::string* err);

/// Sorted-percentile helper for latencies_ms (q in [0,1]); 0 when empty.
double latency_percentile(std::vector<double> sorted_ms, double q);

}  // namespace cellnpdp::net
