#include "net/frontend.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <unordered_map>
#include <utility>

#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cellnpdp::net {

namespace {
using SteadyClock = std::chrono::steady_clock;
}

/// Per-connection state. Buffers are reactor-thread-only except the
/// outbox, which any thread may append to under out_mu.
struct EpollFrontEnd::Conn {
  int fd = -1;
  int reactor = 0;
  std::vector<std::uint8_t> rbuf;
  std::vector<std::uint8_t> wbuf;  ///< bytes being written; reactor only
  std::size_t woff = 0;

  std::mutex out_mu;
  std::vector<std::uint8_t> outbox;  ///< completed frames awaiting a writer
  bool enqueue_closed = false;  ///< set at close: further responses drop

  /// Requests handed to the host and not yet answered (begin_async /
  /// async_reply pairs).
  std::atomic<int> inflight{0};

  // Reactor-thread-only flags.
  bool close_after_flush = false;  ///< close once outbox+wbuf hit the wire
  bool read_eof = false;           ///< peer half-closed; stop reading
  bool epoll_out = false;          ///< EPOLLOUT currently registered
  SteadyClock::time_point last_rx{};
};

struct EpollFrontEnd::Reactor {
  int idx = 0;
  FdGuard epfd;
  FdGuard wakefd;
  std::thread thr;
  /// Connections owned by this reactor; touched only by its thread.
  std::unordered_map<int, ConnPtr> conns;
  std::mutex mu;  ///< guards incoming + ready
  std::vector<ConnPtr> incoming;  ///< from the acceptor
  std::vector<ConnRef> ready;     ///< have outbox bytes
};

EpollFrontEnd::EpollFrontEnd(FrontEndOptions opts) : opts_(std::move(opts)) {}

EpollFrontEnd::~EpollFrontEnd() { stop(); }

std::string EpollFrontEnd::cname(const char* suffix) const {
  return opts_.counter_prefix + "." + suffix;
}

bool EpollFrontEnd::start(std::string* err) {
  if (started_.exchange(true)) {
    *err = "front-end already started";
    return false;
  }
  if (!handler_) {
    *err = "front-end has no frame handler";
    return false;
  }
  listen_fd_ = tcp_listen(opts_.host, opts_.port, err);
  if (listen_fd_ < 0) return false;
  port_ = local_port(listen_fd_);
  accept_wake_ = make_wakefd();
  const int n_reactors = opts_.reactors < 1 ? 1 : opts_.reactors;
  for (int i = 0; i < n_reactors; ++i) {
    auto r = std::make_unique<Reactor>();
    r->idx = i;
    r->epfd.reset(::epoll_create1(EPOLL_CLOEXEC));
    r->wakefd.reset(make_wakefd());
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = r->wakefd.get();
    ::epoll_ctl(r->epfd.get(), EPOLL_CTL_ADD, r->wakefd.get(), &ev);
    reactors_.push_back(std::move(r));
  }
  for (auto& r : reactors_)
    r->thr = std::thread([this, rp = r.get()] { reactor_loop(*rp); });
  acceptor_ = std::thread([this] { acceptor_loop(); });
  return true;
}

void EpollFrontEnd::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopped_.exchange(true)) return;
  // 1. Stop accepting: no new connections join the drain.
  accept_stop_.store(true, std::memory_order_release);
  wake_signal(accept_wake_);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(accept_wake_);
  accept_wake_ = -1;
  // 2. Drain the host pipeline: every admitted request gets its terminal
  //    response, and each async_reply lands in a connection outbox and
  //    wakes its reactor — which is still running, so sockets keep
  //    draining concurrently with this call.
  if (drain_hook_) drain_hook_();
  // 3. Wait (bounded) until every computed response reached a socket:
  //    nothing left in flight, nothing left in outboxes/wbufs.
  const auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(opts_.drain_timeout_ms);
  while (SteadyClock::now() < deadline) {
    if (inflight_total_.load(std::memory_order_acquire) == 0 &&
        out_pending_bytes_.load(std::memory_order_acquire) == 0)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // 4. Take the reactors down; their loops close remaining connections.
  reactor_stop_.store(true, std::memory_order_release);
  for (auto& r : reactors_) wake_signal(r->wakefd.get());
  for (auto& r : reactors_)
    if (r->thr.joinable()) r->thr.join();
}

void EpollFrontEnd::acceptor_loop() {
  obs::Tracer::instance().name_this_thread(opts_.counter_prefix +
                                           " acceptor");
  FdGuard epfd(::epoll_create1(EPOLL_CLOEXEC));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epfd.get(), EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = accept_wake_;
  ::epoll_ctl(epfd.get(), EPOLL_CTL_ADD, accept_wake_, &ev);
  epoll_event evs[8];
  while (!accept_stop_.load(std::memory_order_acquire)) {
    const int nev = ::epoll_wait(epfd.get(), evs, 8, 500);
    if (nev < 0 && errno != EINTR) break;
    for (int i = 0; i < nev; ++i) {
      if (evs[i].data.fd != listen_fd_) continue;  // wake: loop re-checks
      for (;;) {
        const int cfd = ::accept4(listen_fd_, nullptr, nullptr,
                                  SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (cfd < 0) break;  // EAGAIN (or transient): wait for next event
        const int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        ++accepted_;
        obs::metrics().counter(cname("accepted")).add();
        auto c = std::make_shared<Conn>();
        c->fd = cfd;
        // Pin by fd hash: a connection's events always land on the same
        // reactor, so its buffers need no locking.
        c->reactor = static_cast<int>(
            static_cast<unsigned>(cfd) % reactors_.size());
        Reactor& r = *reactors_[static_cast<std::size_t>(c->reactor)];
        {
          std::lock_guard lk(r.mu);
          r.incoming.push_back(std::move(c));
        }
        wake_signal(r.wakefd.get());
      }
    }
  }
}

void EpollFrontEnd::adopt_incoming(Reactor& r) {
  std::vector<ConnPtr> fresh;
  {
    std::lock_guard lk(r.mu);
    fresh.swap(r.incoming);
  }
  for (auto& c : fresh) {
    c->last_rx = SteadyClock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = c->fd;
    if (::epoll_ctl(r.epfd.get(), EPOLL_CTL_ADD, c->fd, &ev) != 0) {
      ::close(c->fd);
      continue;
    }
    active_conns_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().gauge(cname("active_conns"))
        .set(double(active_conns_.load(std::memory_order_relaxed)));
    r.conns.emplace(c->fd, std::move(c));
  }
}

void EpollFrontEnd::reactor_loop(Reactor& r) {
  obs::Tracer::instance().name_this_thread(opts_.counter_prefix +
                                           " reactor " + std::to_string(r.idx));
  epoll_event evs[64];
  auto last_sweep = SteadyClock::now();
  while (!reactor_stop_.load(std::memory_order_acquire)) {
    const int nev = ::epoll_wait(r.epfd.get(), evs, 64, 50);
    if (nev < 0 && errno != EINTR) break;
    adopt_incoming(r);
    // Connections whose outbox got bytes since the last pass.
    std::vector<ConnRef> ready;
    {
      std::lock_guard lk(r.mu);
      ready.swap(r.ready);
    }
    for (auto& w : ready)
      if (auto c = w.lock(); c != nullptr && c->fd >= 0) pump_out(r, c);
    for (int i = 0; i < (nev > 0 ? nev : 0); ++i) {
      const int fd = evs[i].data.fd;
      if (fd == r.wakefd.get()) {
        wake_drain(fd);
        continue;
      }
      auto it = r.conns.find(fd);
      if (it == r.conns.end()) continue;  // closed earlier in this batch
      ConnPtr c = it->second;
      if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
        close_conn(r, c);
        continue;
      }
      if (evs[i].events & EPOLLIN) on_readable(r, c);
      if (c->fd >= 0 && (evs[i].events & EPOLLOUT)) pump_out(r, c);
    }
    const auto now = SteadyClock::now();
    if (opts_.idle_timeout_ms > 0 &&
        now - last_sweep > std::chrono::milliseconds(
                               std::max<std::int64_t>(
                                   25, opts_.idle_timeout_ms / 4))) {
      last_sweep = now;
      sweep_idle(r);
    }
  }
  // Shutdown: close whatever is left (drain already flushed the rest).
  std::vector<ConnPtr> leftovers;
  leftovers.reserve(r.conns.size());
  for (auto& [fd, c] : r.conns) leftovers.push_back(c);
  for (auto& c : leftovers) close_conn(r, c);
}

void EpollFrontEnd::close_conn(Reactor& r, const ConnPtr& c) {
  if (c->fd < 0) return;
  {
    // Stop accepting responses and return the unwritten bytes to the
    // drain accounting, or stop() would wait on bytes nobody can send.
    std::lock_guard lk(c->out_mu);
    c->enqueue_closed = true;
    const std::int64_t pending =
        static_cast<std::int64_t>(c->outbox.size()) +
        static_cast<std::int64_t>(c->wbuf.size() - c->woff);
    if (pending > 0)
      out_pending_bytes_.fetch_sub(pending, std::memory_order_acq_rel);
    c->outbox.clear();
  }
  ::epoll_ctl(r.epfd.get(), EPOLL_CTL_DEL, c->fd, nullptr);
  ::close(c->fd);
  r.conns.erase(c->fd);
  c->fd = -1;
  ++disconnects_;
  obs::metrics().counter(cname("disconnects")).add();
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
  obs::metrics().gauge(cname("active_conns"))
      .set(double(active_conns_.load(std::memory_order_relaxed)));
}

void EpollFrontEnd::on_readable(Reactor& r, const ConnPtr& c) {
  if (c->read_eof) return;
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::recv(c->fd, buf, sizeof buf, 0);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
      obs::metrics().counter(cname("bytes_in")).add(n);
      c->last_rx = SteadyClock::now();
      if (!c->close_after_flush)
        c->rbuf.insert(c->rbuf.end(), buf, buf + n);
      // A dying connection's bytes are read and discarded, keeping the
      // socket from signalling readability forever.
      continue;
    }
    if (n == 0) {
      c->read_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(r, c);
    return;
  }
  // Frames that arrived before a FIN are still honoured (a client may
  // pipeline requests, shutdown its write side, and read the replies),
  // so parse *before* deciding what the connection still owes.
  if (c->fd >= 0 && !c->close_after_flush) parse_frames(r, c);
  if (c->fd < 0 || !c->read_eof) return;
  // Peer finished sending. With nothing owed, close now; otherwise
  // finish computing + flushing first (half-close drain), with EPOLLIN
  // dropped so the EOF doesn't spin the loop.
  c->close_after_flush = true;
  bool owes;
  {
    std::lock_guard lk(c->out_mu);
    owes = !c->outbox.empty() || c->wbuf.size() != c->woff ||
           c->inflight.load(std::memory_order_acquire) > 0;
  }
  if (!owes) {
    close_conn(r, c);
    return;
  }
  epoll_event ev{};
  ev.events = c->epoll_out ? static_cast<std::uint32_t>(EPOLLOUT) : 0u;
  ev.data.fd = c->fd;
  ::epoll_ctl(r.epfd.get(), EPOLL_CTL_MOD, c->fd, &ev);
}

void EpollFrontEnd::parse_frames(Reactor& r, const ConnPtr& c) {
  std::size_t off = 0;
  while (c->fd >= 0 && !c->close_after_flush) {
    FrameHeader h;
    const HeaderParse hp =
        parse_header(c->rbuf.data() + off, c->rbuf.size() - off, &h);
    if (hp == HeaderParse::NeedMore) break;
    if (hp == HeaderParse::BadMagic) {
      // The stream is unsynchronized: no frame boundary can be trusted,
      // so there is no id to address an error to. Disconnect.
      ++frames_bad_;
      obs::metrics().counter(cname("frames_bad")).add();
      close_conn(r, c);
      return;
    }
    if (h.version < kMinVersion || h.version > kVersion) {
      ++frames_bad_;
      ++protocol_errors_;
      obs::metrics().counter(cname("frames_bad")).add();
      enqueue_out(c, encode_proto_error(
                         h.id, ProtoErrorCode::BadVersion,
                         "server speaks versions " +
                             std::to_string(kMinVersion) + ".." +
                             std::to_string(kVersion)));
      c->close_after_flush = true;  // later frames may not even be frames
      break;
    }
    if (h.len > opts_.max_frame) {
      ++frames_bad_;
      ++protocol_errors_;
      obs::metrics().counter(cname("frames_bad")).add();
      enqueue_out(c, encode_proto_error(
                         h.id, ProtoErrorCode::FrameTooLarge,
                         "payload " + std::to_string(h.len) + " > cap " +
                             std::to_string(opts_.max_frame)));
      // Skipping h.len bytes would mean buffering what we just refused
      // to buffer; disconnect after the error flushes.
      c->close_after_flush = true;
      break;
    }
    if (c->rbuf.size() - off < kHeaderSize + h.len) break;  // partial frame
    ++frames_in_;
    handler_(c, h, c->rbuf.data() + off + kHeaderSize);
    off += kHeaderSize + h.len;
  }
  if (off > 0 && c->fd >= 0)
    c->rbuf.erase(c->rbuf.begin(),
                  c->rbuf.begin() + static_cast<std::ptrdiff_t>(off));
  if (c->close_after_flush) {
    c->rbuf.clear();
    if (c->fd >= 0) pump_out(r, c);  // may close immediately if all flushed
  }
}

void EpollFrontEnd::reply_now(const ConnPtr& c,
                              std::vector<std::uint8_t> frame) {
  enqueue_out(c, std::move(frame));
  Reactor& r = *reactors_[static_cast<std::size_t>(c->reactor)];
  pump_out(r, c);
}

void EpollFrontEnd::begin_async(const ConnPtr& c) {
  c->inflight.fetch_add(1, std::memory_order_acq_rel);
  inflight_total_.fetch_add(1, std::memory_order_acq_rel);
}

bool EpollFrontEnd::async_reply(const ConnRef& wc,
                                std::vector<std::uint8_t> frame) {
  bool delivered = false;
  if (auto c = wc.lock()) {
    c->inflight.fetch_sub(1, std::memory_order_acq_rel);
    {
      std::lock_guard lk(c->out_mu);
      if (!c->enqueue_closed) {
        out_pending_bytes_.fetch_add(static_cast<std::int64_t>(frame.size()),
                                     std::memory_order_acq_rel);
        c->outbox.insert(c->outbox.end(), frame.begin(), frame.end());
        delivered = true;
      }
    }
    if (delivered) {
      ++responses_;
      Reactor& owner = *reactors_[static_cast<std::size_t>(c->reactor)];
      {
        std::lock_guard lk(owner.mu);
        owner.ready.push_back(wc);
      }
      wake_signal(owner.wakefd.get());
    }
  }
  if (!delivered) {
    ++dropped_responses_;
    obs::metrics().counter(cname("dropped_responses")).add();
  }
  inflight_total_.fetch_sub(1, std::memory_order_acq_rel);
  return delivered;
}

void EpollFrontEnd::note_bad_frame() {
  ++frames_bad_;
  ++protocol_errors_;
  obs::metrics().counter(cname("frames_bad")).add();
}

void EpollFrontEnd::enqueue_out(const ConnPtr& c,
                                std::vector<std::uint8_t> frame) {
  std::lock_guard lk(c->out_mu);
  if (c->enqueue_closed) return;
  out_pending_bytes_.fetch_add(static_cast<std::int64_t>(frame.size()),
                               std::memory_order_acq_rel);
  c->outbox.insert(c->outbox.end(), frame.begin(), frame.end());
}

void EpollFrontEnd::pump_out(Reactor& r, const ConnPtr& c) {
  if (c->fd < 0) return;
  {
    std::lock_guard lk(c->out_mu);
    if (!c->outbox.empty()) {
      // Compact first so wbuf never grows unboundedly from stale bytes.
      if (c->woff > 0) {
        c->wbuf.erase(c->wbuf.begin(),
                      c->wbuf.begin() + static_cast<std::ptrdiff_t>(c->woff));
        c->woff = 0;
      }
      c->wbuf.insert(c->wbuf.end(), c->outbox.begin(), c->outbox.end());
      c->outbox.clear();
    }
  }
  while (c->woff < c->wbuf.size()) {
    const ssize_t n = ::send(c->fd, c->wbuf.data() + c->woff,
                             c->wbuf.size() - c->woff, MSG_NOSIGNAL);
    if (n > 0) {
      c->woff += static_cast<std::size_t>(n);
      bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                           std::memory_order_relaxed);
      obs::metrics().counter(cname("bytes_out")).add(n);
      out_pending_bytes_.fetch_sub(n, std::memory_order_acq_rel);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!c->epoll_out) {
        c->epoll_out = true;
        epoll_event ev{};
        ev.events = (c->read_eof ? 0u : static_cast<std::uint32_t>(EPOLLIN)) |
                    static_cast<std::uint32_t>(EPOLLOUT);
        ev.data.fd = c->fd;
        ::epoll_ctl(r.epfd.get(), EPOLL_CTL_MOD, c->fd, &ev);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_conn(r, c);  // EPIPE/ECONNRESET: peer is gone
    return;
  }
  c->wbuf.clear();
  c->woff = 0;
  if (c->epoll_out) {
    c->epoll_out = false;
    epoll_event ev{};
    ev.events = c->read_eof ? 0u : static_cast<std::uint32_t>(EPOLLIN);
    ev.data.fd = c->fd;
    ::epoll_ctl(r.epfd.get(), EPOLL_CTL_MOD, c->fd, &ev);
  }
  if (c->close_after_flush) {
    bool done;
    {
      std::lock_guard lk(c->out_mu);
      done = c->outbox.empty() &&
             c->inflight.load(std::memory_order_acquire) == 0;
    }
    if (done) close_conn(r, c);
  }
}

void EpollFrontEnd::sweep_idle(Reactor& r) {
  const auto now = SteadyClock::now();
  const auto limit = std::chrono::milliseconds(opts_.idle_timeout_ms);
  std::vector<ConnPtr> victims;
  for (auto& [fd, c] : r.conns) {
    if (now - c->last_rx <= limit) continue;
    if (c->inflight.load(std::memory_order_acquire) > 0) continue;
    bool pending;
    {
      std::lock_guard lk(c->out_mu);
      pending = !c->outbox.empty() || c->wbuf.size() != c->woff;
    }
    // A connection mid-write isn't idle, however long it has been silent
    // — it is a slow *reader*, bounded separately by the drain timeout.
    if (pending) continue;
    victims.push_back(c);
  }
  for (auto& c : victims) close_conn(r, c);
}

FrontEndStats EpollFrontEnd::stats() const {
  FrontEndStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.disconnects = disconnects_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.frames_bad = frames_bad_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.dropped_responses = dropped_responses_.load(std::memory_order_relaxed);
  s.active_conns = static_cast<std::size_t>(
      std::max<std::int64_t>(0, active_conns_.load(std::memory_order_relaxed)));
  return s;
}

}  // namespace cellnpdp::net
