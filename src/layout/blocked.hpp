// The paper's new data layout (NDL, §III / Fig. 5).
//
// The triangle is cut into square *memory blocks* of side `bs` cells; every
// block occupies one contiguous bs*bs slab, so an entire block moves with a
// single large DMA command (or a run of full cache lines) instead of many
// short strided row pieces. Triangular diagonal blocks and the ragged edge
// (when bs does not divide n) are padded with the (min,+) identity (+inf),
// which relaxations can never pick — padding changes no result (§III:
// "Triangular block can be padded into square block").
#pragma once

#include <cassert>

#include "common/aligned.hpp"
#include "common/defs.hpp"

namespace cellnpdp {

template <class T>
class BlockedTriangularMatrix {
 public:
  /// n: problem size in cells; bs: block side in cells (>= 1); pad: the
  /// value written into padding / below-diagonal cells — the annihilator
  /// ("zero") of whichever semiring the matrix will be relaxed in, so
  /// padded cells can never influence a result. Defaults to the (min,+)
  /// identity, matching every historical call site.
  BlockedTriangularMatrix(index_t n, index_t bs,
                          T pad = minplus_identity<T>())
      : n_(n),
        bs_(bs),
        m_(ceil_div(n, bs)),
        pad_(pad),
        data_(static_cast<std::size_t>(triangle_cells(m_) * bs * bs), pad) {
    assert(n >= 0 && bs >= 1);
  }

  index_t size() const { return n_; }
  index_t block_side() const { return bs_; }
  T pad() const { return pad_; }
  index_t blocks_per_side() const { return m_; }
  index_t cells_per_block() const { return bs_ * bs_; }

  /// Index of block (bi,bj), bi <= bj, in block-row-major order over the
  /// upper block triangle (the sequential packing of Fig. 5).
  index_t block_index(index_t bi, index_t bj) const {
    assert(0 <= bi && bi <= bj && bj < m_);
    return bi * m_ - bi * (bi - 1) / 2 + (bj - bi);
  }

  T* block(index_t bi, index_t bj) {
    return data_.data() + block_index(bi, bj) * cells_per_block();
  }
  const T* block(index_t bi, index_t bj) const {
    return data_.data() + block_index(bi, bj) * cells_per_block();
  }

  /// Global-cell access; (i,j) must satisfy 0 <= i <= j < n.
  T& at(index_t i, index_t j) {
    assert(0 <= i && i <= j && j < n_);
    return block(i / bs_, j / bs_)[(i % bs_) * bs_ + (j % bs_)];
  }
  const T& at(index_t i, index_t j) const {
    return const_cast<BlockedTriangularMatrix*>(this)->at(i, j);
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  index_t total_cells() const { return static_cast<index_t>(data_.size()); }

  /// Bytes one memory block occupies — the unit of DMA transfer.
  index_t block_bytes() const {
    return cells_per_block() * static_cast<index_t>(sizeof(T));
  }

  /// Initialises every in-triangle cell from init(i, j); padding cells keep
  /// the (min,+) identity written by the constructor.
  template <class Init>
  void fill(Init&& init) {
    for (index_t i = 0; i < n_; ++i)
      for (index_t j = i; j < n_; ++j) at(i, j) = init(i, j);
  }

  /// Restores the freshly-constructed state: every cell (padding included)
  /// back to the pad value. Lets a long-lived arena be reused across
  /// solves without reallocating the slab.
  void reset() {
    for (T& c : data_) c = pad_;
  }

  /// As reset(), but re-padding for a different semiring first — an arena
  /// checked out for a min-plus solve can be handed to a counting solve.
  void reset(T new_pad) {
    pad_ = new_pad;
    reset();
  }

 private:
  index_t n_;
  index_t bs_;
  index_t m_;
  T pad_;
  aligned_vector<T> data_;
};

}  // namespace cellnpdp
