// Conversions between the row-major triangular layout (previous works) and
// the blocked layout (the paper's NDL), plus equality helpers for tests.
#pragma once

#include <cmath>

#include "layout/blocked.hpp"
#include "layout/triangular.hpp"

namespace cellnpdp {

template <class T>
BlockedTriangularMatrix<T> to_blocked(const TriangularMatrix<T>& tri,
                                      index_t block_side) {
  BlockedTriangularMatrix<T> out(tri.size(), block_side);
  for (index_t i = 0; i < tri.size(); ++i)
    for (index_t j = i; j < tri.size(); ++j) out.at(i, j) = tri.at(i, j);
  return out;
}

template <class T>
TriangularMatrix<T> to_triangular(const BlockedTriangularMatrix<T>& blk) {
  TriangularMatrix<T> out(blk.size());
  for (index_t i = 0; i < blk.size(); ++i)
    for (index_t j = i; j < blk.size(); ++j) out.at(i, j) = blk.at(i, j);
  return out;
}

/// Max absolute difference over the triangle; for bit-exactness checks pass
/// tolerance 0.
template <class A, class B>
double max_abs_diff(const A& x, const B& y) {
  double worst = 0.0;
  for (index_t i = 0; i < x.size(); ++i)
    for (index_t j = i; j < x.size(); ++j) {
      const double d = std::abs(static_cast<double>(x.at(i, j)) -
                                static_cast<double>(y.at(i, j)));
      if (d > worst) worst = d;
    }
  return worst;
}

}  // namespace cellnpdp
