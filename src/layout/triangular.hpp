// Row-major triangular matrix: the data layout used by the previous works
// the paper compares against (Tan et al., Chowdhury et al.; see paper §III).
//
// The DP table of NPDP is upper triangular (cells (i,j) with 0 <= i <= j < n).
// Storing rows back-to-back means row i holds (n - i) cells, so column walks
// (the d[k][j] accesses of the innermost loop) stride by a *different* amount
// each step — exactly the poor spatial locality §III calls out.
#pragma once

#include <cassert>

#include "common/aligned.hpp"
#include "common/defs.hpp"

namespace cellnpdp {

template <class T>
class TriangularMatrix {
 public:
  explicit TriangularMatrix(index_t n)
      : n_(n), data_(static_cast<std::size_t>(triangle_cells(n))) {
    assert(n >= 0);
  }

  index_t size() const { return n_; }
  index_t cell_count() const { return static_cast<index_t>(data_.size()); }

  /// Offset of cell (i,j) inside the packed row-major triangle.
  index_t offset(index_t i, index_t j) const {
    assert(0 <= i && i <= j && j < n_);
    return row_start(i) + (j - i);
  }

  /// Start of row i: sum of the lengths of rows 0..i-1.
  index_t row_start(index_t i) const { return i * n_ - i * (i - 1) / 2; }

  /// Length of row i (cells i..n-1).
  index_t row_length(index_t i) const { return n_ - i; }

  T& at(index_t i, index_t j) { return data_[offset(i, j)]; }
  const T& at(index_t i, index_t j) const { return data_[offset(i, j)]; }

  T* row(index_t i) { return data_.data() + row_start(i); }
  const T* row(index_t i) const { return data_.data() + row_start(i); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  /// Initialises every cell from init(i, j).
  template <class Init>
  void fill(Init&& init) {
    for (index_t i = 0; i < n_; ++i)
      for (index_t j = i; j < n_; ++j) at(i, j) = init(i, j);
  }

 private:
  index_t n_;
  aligned_vector<T> data_;
};

}  // namespace cellnpdp
