// Set-associative write-back cache model.
//
// Used to reproduce Fig. 9(b): the amount of data moved between the CPU and
// main memory under the original row-major layout vs. the paper's blocked
// layout. Only traffic is modelled (no timing): every access is classified
// hit/miss, misses fill a line from the next level, evictions of dirty
// lines write a line back.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/defs.hpp"

namespace cellnpdp {

struct CacheConfig {
  index_t size_bytes = 0;
  index_t line_bytes = 64;
  index_t associativity = 8;

  index_t set_count() const {
    return size_bytes / (line_bytes * associativity);
  }
};

struct CacheStats {
  index_t accesses = 0;
  index_t misses = 0;        ///< demand misses
  index_t prefetch_fills = 0;
  index_t writebacks = 0;

  double miss_rate() const {
    return accesses == 0 ? 0.0 : double(misses) / double(accesses);
  }
};

/// One cache level. Addresses are byte addresses; any 64-bit value works as
/// long as it is consistent across accesses (the drivers use real pointers).
class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Returns true on hit. On miss the line is filled (evicting LRU; a dirty
  /// eviction counts a writeback). `write` marks the line dirty.
  bool access(std::uint64_t addr, bool write);

  /// Speculative fill: like a read miss but accounted as prefetch traffic,
  /// not as a demand miss. No-op if the line is already resident.
  void prefetch_fill(std::uint64_t addr);

  const CacheConfig& config() const { return cfg_; }
  const CacheStats& stats() const { return stats_; }

  /// Bytes fetched from the next level (demand + prefetch fills).
  index_t bytes_in() const {
    return (stats_.misses + stats_.prefetch_fills) * cfg_.line_bytes;
  }
  /// Bytes written to the next level (dirty evictions).
  index_t bytes_out() const { return stats_.writebacks * cfg_.line_bytes; }

  /// Flushes every dirty line (counts writebacks), e.g. at end of run.
  void flush();

 private:
  struct Way {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  // larger == more recently used
  };

  CacheConfig cfg_;
  CacheStats stats_;
  std::vector<Way> ways_;  // set-major: ways_[set * assoc + way]
  std::uint64_t tick_ = 0;
};

/// Multi-level hierarchy (two or three levels): an access walks down until
/// it hits; the last level's misses and writebacks are the DRAM traffic
/// Fig. 9(b) reports. An optional next-line prefetcher at the last level
/// models the streaming prefetch hardware of the paper's Nehalem platform.
class CacheHierarchy {
 public:
  CacheHierarchy(const CacheConfig& l1, const CacheConfig& llc)
      : levels_{Cache(l1), Cache(llc)} {}
  CacheHierarchy(const CacheConfig& l1, const CacheConfig& l2,
                 const CacheConfig& l3)
      : levels_{Cache(l1), Cache(l2), Cache(l3)} {}

  /// Enables next-line prefetch into the last level on sequential misses.
  void enable_prefetcher(bool on) { prefetch_ = on; }

  void read(const void* p) { access(reinterpret_cast<std::uint64_t>(p), false); }
  void write(const void* p) { access(reinterpret_cast<std::uint64_t>(p), true); }

  void access(std::uint64_t addr, bool is_write);

  /// Total bytes exchanged with main memory (fills + writebacks).
  index_t dram_bytes() const {
    return levels_.back().bytes_in() + levels_.back().bytes_out();
  }
  /// Lines brought in purely by the prefetcher.
  index_t prefetched_lines() const { return prefetched_; }

  const Cache& l1() const { return levels_.front(); }
  const Cache& l2() const { return levels_[1]; }
  const Cache& llc() const { return levels_.back(); }
  std::size_t level_count() const { return levels_.size(); }

  void flush();

 private:
  std::vector<Cache> levels_;
  bool prefetch_ = false;
  std::uint64_t last_miss_line_ = ~0ull;
  index_t prefetched_ = 0;
};

/// The paper's CPU platform: Nehalem-generation cores (32 KB L1D, 256 KB
/// L2, 8 MB shared L3, 64-byte lines).
inline CacheConfig nehalem_l1() { return {32 * 1024, 64, 8}; }
inline CacheConfig nehalem_l2() { return {256 * 1024, 64, 8}; }
inline CacheConfig nehalem_llc() { return {8 * 1024 * 1024, 64, 16}; }

}  // namespace cellnpdp
