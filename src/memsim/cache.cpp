#include "memsim/cache.hpp"

#include <cassert>

namespace cellnpdp {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  assert(cfg.size_bytes > 0 && cfg.line_bytes > 0 && cfg.associativity > 0);
  assert(cfg.size_bytes % (cfg.line_bytes * cfg.associativity) == 0);
  ways_.resize(static_cast<std::size_t>(cfg.set_count() * cfg.associativity));
}

bool Cache::access(std::uint64_t addr, bool write) {
  ++stats_.accesses;
  const std::uint64_t line = addr / static_cast<std::uint64_t>(cfg_.line_bytes);
  const std::uint64_t set =
      line % static_cast<std::uint64_t>(cfg_.set_count());
  const std::uint64_t tag = line / static_cast<std::uint64_t>(cfg_.set_count());
  Way* base = ways_.data() + set * static_cast<std::uint64_t>(cfg_.associativity);

  Way* victim = base;
  for (index_t w = 0; w < cfg_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = ++tick_;
      way.dirty = way.dirty || write;
      return true;
    }
    if (!way.valid) {
      victim = &way;  // prefer an empty way
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }

  ++stats_.misses;
  if (victim->valid && victim->dirty) ++stats_.writebacks;
  victim->valid = true;
  victim->dirty = write;
  victim->tag = tag;
  victim->lru = ++tick_;
  return false;
}

void Cache::prefetch_fill(std::uint64_t addr) {
  // Reuse the demand path, then reclassify the statistics.
  const index_t misses_before = stats_.misses;
  const index_t accesses_before = stats_.accesses;
  if (!access(addr, false)) ++stats_.prefetch_fills;
  stats_.misses = misses_before;
  stats_.accesses = accesses_before;
}

void Cache::flush() {
  for (auto& way : ways_) {
    if (way.valid && way.dirty) ++stats_.writebacks;
    way.valid = false;
    way.dirty = false;
  }
}

void CacheHierarchy::access(std::uint64_t addr, bool is_write) {
  // Walk down until a level hits. Write-allocate: each missing level sees
  // the access; dirtiness is approximated by marking every filled level
  // dirty on a write, which counts the eventual writeback traffic.
  for (std::size_t lvl = 0; lvl < levels_.size(); ++lvl) {
    const bool last = lvl + 1 == levels_.size();
    const bool hit = levels_[lvl].access(addr, is_write);
    if (last && prefetch_) {
      // Idealised next-line streamer: once two consecutive lines reach the
      // last level, every following line of the stream is fetched ahead.
      Cache& llc = levels_[lvl];
      const std::uint64_t line =
          addr / static_cast<std::uint64_t>(llc.config().line_bytes);
      if (line == last_miss_line_ + 1) {
        const std::uint64_t next =
            (line + 1) * static_cast<std::uint64_t>(llc.config().line_bytes);
        const index_t before = llc.stats().prefetch_fills;
        llc.prefetch_fill(next);
        if (llc.stats().prefetch_fills != before) ++prefetched_;
      }
      last_miss_line_ = line;
    }
    if (hit) return;
  }
}

void CacheHierarchy::flush() {
  for (auto& c : levels_) c.flush();
}

}  // namespace cellnpdp
