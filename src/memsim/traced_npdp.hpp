// Traffic tracers: run the original and the blocked NPDP access patterns
// through the cache model and report DRAM traffic (Fig. 9(b)).
//
// The tracers replay the *memory access pattern* of each algorithm (they
// also perform the arithmetic, so results stay checkable):
//   * original: the Fig. 1 loop over the row-major triangle with d[i][j]
//     registered across the k loop — per relaxation one read of d[i][k]
//     (sequential) and one of d[k][j] (the ragged-stride column walk).
//   * blocked (NDL): block-granularity streaming — each memory block that
//     participates in a block relaxation is streamed once per pass, which
//     is what the engine's tile walk does from the cache's point of view.
#pragma once

#include "common/defs.hpp"
#include "layout/blocked.hpp"
#include "layout/triangular.hpp"
#include "memsim/cache.hpp"

namespace cellnpdp {

struct TrafficResult {
  index_t dram_bytes = 0;
  index_t accesses = 0;
  double llc_miss_rate = 0.0;
};

/// Original algorithm over the triangular layout, traced.
template <class T>
TrafficResult traced_original(TriangularMatrix<T>& d, CacheHierarchy& h) {
  const index_t n = d.size();
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j - 1; i > -1; --i) {
      h.read(&d.at(i, j));
      T acc = d.at(i, j);
      for (index_t k = i; k < j; ++k) {
        h.read(&d.at(i, k));
        h.read(&d.at(k, j));
        const T cand = d.at(i, k) + d.at(k, j);
        if (cand < acc) acc = cand;
      }
      h.write(&d.at(i, j));
      d.at(i, j) = acc;
    }
  h.flush();
  TrafficResult r;
  r.dram_bytes = h.dram_bytes();
  r.accesses = h.l1().stats().accesses;
  r.llc_miss_rate = h.l2().stats().miss_rate();
  return r;
}

/// Blocked (NDL) algorithm, traced at streaming granularity: per memory
/// block relaxation, the two operand blocks are read once and the target
/// block is read and written once.
template <class T>
TrafficResult traced_blocked(BlockedTriangularMatrix<T>& mat,
                             CacheHierarchy& h) {
  const index_t m = mat.blocks_per_side();
  const index_t cells = mat.cells_per_block();

  auto stream_block = [&](index_t bi, index_t bj, bool write) {
    const T* p = mat.block(bi, bj);
    for (index_t c = 0; c < cells; ++c) {
      h.read(p + c);
      if (write) h.write(p + c);
    }
  };

  for (index_t bj = 0; bj < m; ++bj)
    for (index_t bi = bj; bi >= 0; --bi) {
      // Middle passes.
      for (index_t mk = bi + 1; mk < bj; ++mk) {
        stream_block(bi, mk, false);
        stream_block(mk, bj, false);
        stream_block(bi, bj, true);
      }
      // Stage 2 with the two diagonal blocks (or the self-contained
      // diagonal block pass).
      if (bi != bj) {
        stream_block(bi, bi, false);
        stream_block(bj, bj, false);
      }
      stream_block(bi, bj, true);
    }
  h.flush();
  TrafficResult r;
  r.dram_bytes = h.dram_bytes();
  r.accesses = h.l1().stats().accesses;
  r.llc_miss_rate = h.l2().stats().miss_rate();
  return r;
}

}  // namespace cellnpdp
