// The simplified task dependence graph of the parallel procedure (§IV-B,
// Fig. 7).
//
// Tasks are the scheduling blocks of the upper block triangle of an m x m
// grid. Task (si,sj) truly depends on every block (si,k) and (k,sj) with
// si <= k <= sj, but the paper keeps only the two *nearest* predecessors —
// the task on its left (si,sj-1) and the task below it (si+1,sj) — because
// the chains along the row and the column transitively cover the full set
// (DESIGN.md §5). Off-diagonal tasks therefore wait for exactly two
// notifications; diagonal tasks are ready immediately.
#pragma once

#include <cassert>
#include <utility>
#include <vector>

#include "common/defs.hpp"

namespace cellnpdp {

class BlockDependenceGraph {
 public:
  explicit BlockDependenceGraph(index_t m) : m_(m) { assert(m >= 1); }

  index_t grid_side() const { return m_; }
  index_t task_count() const { return triangle_cells(m_); }

  /// Linear id of task (si,sj), si <= sj (block-row-major over the triangle).
  index_t task_id(index_t si, index_t sj) const {
    assert(0 <= si && si <= sj && sj < m_);
    return si * m_ - si * (si - 1) / 2 + (sj - si);
  }

  /// Inverse of task_id.
  std::pair<index_t, index_t> coords(index_t id) const {
    assert(0 <= id && id < task_count());
    index_t si = 0;
    while (id >= m_ - si) {
      id -= m_ - si;
      ++si;
    }
    return {si, si + id};
  }

  /// Number of predecessors in the simplified graph: 0 on the diagonal,
  /// 2 elsewhere (the paper's "notified twice").
  int dependency_count(index_t si, index_t sj) const {
    return si == sj ? 0 : 2;
  }

  /// The (at most two) tasks unblocked when (si,sj) finishes: the task to
  /// its right and the task above it.
  std::vector<std::pair<index_t, index_t>> dependents(index_t si,
                                                      index_t sj) const {
    std::vector<std::pair<index_t, index_t>> out;
    if (sj + 1 < m_) out.emplace_back(si, sj + 1);
    if (si - 1 >= 0) out.emplace_back(si - 1, sj);
    return out;
  }

  /// The *full* (non-simplified) dependence set of (si,sj): every (si,k) and
  /// (k,sj) other than the task itself. Used by tests to prove schedule
  /// validity and by the ablation comparing graph variants.
  std::vector<std::pair<index_t, index_t>> full_dependencies(
      index_t si, index_t sj) const {
    std::vector<std::pair<index_t, index_t>> out;
    for (index_t k = si; k <= sj; ++k) {
      if (k != sj) out.emplace_back(si, k);   // row predecessors
      if (k != si) out.emplace_back(k, sj);   // column predecessors
    }
    return out;
  }

 private:
  index_t m_;
};

/// Mutable ready-state over a BlockDependenceGraph. Not thread safe; the
/// executor and the simulated PPE wrap it with their own synchronisation.
class ReadyTracker {
 public:
  explicit ReadyTracker(const BlockDependenceGraph& g)
      : graph_(&g), waiting_(static_cast<std::size_t>(g.task_count())) {
    for (index_t id = 0; id < g.task_count(); ++id) {
      const auto [si, sj] = g.coords(id);
      waiting_[static_cast<std::size_t>(id)] = g.dependency_count(si, sj);
    }
  }

  /// Tasks ready before anything has run (the diagonal).
  std::vector<index_t> initial_ready() const {
    std::vector<index_t> out;
    for (index_t id = 0; id < graph_->task_count(); ++id)
      if (waiting_[static_cast<std::size_t>(id)] == 0) out.push_back(id);
    return out;
  }

  /// Marks `id` complete and returns the tasks that just became ready.
  std::vector<index_t> complete(index_t id) {
    const auto [si, sj] = graph_->coords(id);
    std::vector<index_t> ready;
    for (const auto& [di, dj] : graph_->dependents(si, sj)) {
      const index_t dep = graph_->task_id(di, dj);
      if (--waiting_[static_cast<std::size_t>(dep)] == 0)
        ready.push_back(dep);
    }
    ++completed_;
    return ready;
  }

  bool all_complete() const { return completed_ == graph_->task_count(); }
  index_t completed() const { return completed_; }

 private:
  const BlockDependenceGraph* graph_;
  std::vector<int> waiting_;
  index_t completed_ = 0;
};

}  // namespace cellnpdp
