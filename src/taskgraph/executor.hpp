// Host-side task-queue executor: the PPEprocedure of Fig. 8 mapped onto
// worker threads. Workers pull ready scheduling-block tasks from a shared
// queue, run the user's task body, and release dependents.
//
// Observability: every run emits, when tracing is armed (obs::Tracer),
// one "task" span per scheduling block on its worker's timeline lane,
// "enqueue" instants and a "ready_depth" counter for queue dynamics; the
// global metrics registry accumulates task counts and task-duration
// histograms. Passing an ExecutorStats out-param additionally returns
// wall time and per-worker busy time for utilization reports.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "taskgraph/dependence_graph.hpp"

namespace cellnpdp {

/// What one executor run measured. Busy time is the time spent inside
/// task bodies; idle is wall_seconds - busy (queue waits + wakeups).
struct ExecutorStats {
  double wall_seconds = 0;
  std::vector<double> worker_busy;     ///< seconds per worker
  std::vector<index_t> worker_tasks;   ///< tasks per worker
  index_t tasks = 0;

  double busy_total() const {
    double s = 0;
    for (double b : worker_busy) s += b;
    return s;
  }
};

class TaskQueueExecutor {
 public:
  using TaskFn = std::function<void(index_t si, index_t sj)>;

  /// Runs every task of `graph` on `threads` workers, honouring the
  /// simplified dependence relation. Blocks until all tasks finish.
  /// Fills `stats` (when non-null) with wall/busy accounting.
  static void run(const BlockDependenceGraph& graph, std::size_t threads,
                  const TaskFn& body, ExecutorStats* stats = nullptr);

  /// Serial reference executor; additionally records completion order so
  /// tests can validate the schedule against the full dependence relation.
  static std::vector<index_t> run_serial(const BlockDependenceGraph& graph,
                                         const TaskFn& body,
                                         ExecutorStats* stats = nullptr);
};

}  // namespace cellnpdp
