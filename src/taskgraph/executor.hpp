// Host-side task-queue executor: the PPEprocedure of Fig. 8 mapped onto
// worker threads. Workers pull ready scheduling-block tasks from a shared
// queue, run the user's task body, and release dependents.
//
// Cancellation is cooperative: when a CancelToken is attached and trips,
// the executor stops releasing ready tasks — workers finish the task they
// are on (task bodies additionally poll the token at memory-block
// granularity) and return without popping further work, so an aborted run
// frees its workers within one block's worth of compute.
//
// Observability: every run emits, when tracing is armed (obs::Tracer),
// one "task" span per scheduling block on its worker's timeline lane,
// "enqueue" instants and a "ready_depth" counter for queue dynamics; the
// global metrics registry accumulates task counts, task-duration
// histograms, and the number of tasks abandoned by cancelled runs.
// Passing an ExecutorStats out-param additionally returns wall time and
// per-worker busy time for utilization reports.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/retry.hpp"
#include "taskgraph/dependence_graph.hpp"

namespace cellnpdp {

struct TaskRecovery;

/// What one executor run measured. Busy time is the time spent inside
/// task bodies; idle is wall_seconds - busy (queue waits + wakeups).
struct ExecutorStats {
  double wall_seconds = 0;
  std::vector<double> worker_busy;     ///< seconds per worker
  std::vector<index_t> worker_tasks;   ///< tasks per worker
  index_t tasks = 0;

  double busy_total() const {
    double s = 0;
    for (double b : worker_busy) s += b;
    return s;
  }
};

class TaskQueueExecutor {
 public:
  using TaskFn = std::function<void(index_t si, index_t sj)>;

  /// Runs every task of `graph` on `threads` workers, honouring the
  /// simplified dependence relation. Blocks until all tasks finish — or,
  /// when `cancel` trips, until every worker has finished its current
  /// task. Returns true when the run completed, false when it was
  /// abandoned mid-graph. Fills `stats` (when non-null) with wall/busy
  /// accounting either way.
  ///
  /// Failure semantics: a task body that throws is retried per `recovery`
  /// (when given); a task that still fails after its attempts aborts the
  /// run — no further tasks are released, every worker winds down after
  /// its current task, and the first failure is rethrown (after `stats`
  /// is filled) once all workers have returned.
  static bool run(const BlockDependenceGraph& graph, std::size_t threads,
                  const TaskFn& body, ExecutorStats* stats = nullptr,
                  const CancelToken& cancel = {},
                  const TaskRecovery* recovery = nullptr);

  /// Serial reference executor; additionally records completion order so
  /// tests can validate the schedule against the full dependence relation.
  /// A cancelled run returns the (shorter) prefix it completed. Same
  /// retry/rethrow semantics as run().
  static std::vector<index_t> run_serial(const BlockDependenceGraph& graph,
                                         const TaskFn& body,
                                         ExecutorStats* stats = nullptr,
                                         const CancelToken& cancel = {},
                                         const TaskRecovery* recovery =
                                             nullptr);
};

/// Per-task re-execution policy. A failed task is re-run in place by the
/// worker that hit the failure, after `reset` (when set) restores the
/// task's output region to its seeded state — required for general-mode
/// instances, where finalize_cell over a partially relaxed block is not
/// idempotent. Dependents are only ever released on success, so a re-run
/// never races with readers of the task's blocks.
struct TaskRecovery {
  RetryPolicy retry;
  TaskQueueExecutor::TaskFn reset;  ///< may be null (pure re-run)
};

}  // namespace cellnpdp
