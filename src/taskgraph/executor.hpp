// Host-side task-queue executor: the PPEprocedure of Fig. 8 mapped onto
// worker threads. Workers pull ready scheduling-block tasks from a shared
// queue, run the user's task body, and release dependents.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "taskgraph/dependence_graph.hpp"

namespace cellnpdp {

class TaskQueueExecutor {
 public:
  using TaskFn = std::function<void(index_t si, index_t sj)>;

  /// Runs every task of `graph` on `threads` workers, honouring the
  /// simplified dependence relation. Blocks until all tasks finish.
  static void run(const BlockDependenceGraph& graph, std::size_t threads,
                  const TaskFn& body);

  /// Serial reference executor; additionally records completion order so
  /// tests can validate the schedule against the full dependence relation.
  static std::vector<index_t> run_serial(const BlockDependenceGraph& graph,
                                         const TaskFn& body);
};

}  // namespace cellnpdp
