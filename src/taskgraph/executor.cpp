#include "taskgraph/executor.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cellnpdp {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SchedMetrics {
  obs::Counter& tasks = obs::metrics().counter("sched.tasks");
  obs::Counter& enqueued = obs::metrics().counter("sched.enqueued");
  obs::Counter& abandoned = obs::metrics().counter("sched.cancelled_tasks");
  obs::Histogram& task_ns = obs::metrics().histogram("sched.task_ns");
  obs::Histogram& ready_depth = obs::metrics().histogram("sched.ready_depth");
  static SchedMetrics& get() {
    static SchedMetrics m;
    return m;
  }
};

}  // namespace

bool TaskQueueExecutor::run(const BlockDependenceGraph& graph,
                            std::size_t threads, const TaskFn& body,
                            ExecutorStats* stats, const CancelToken& cancel) {
  threads = std::max<std::size_t>(1, threads);
  SchedMetrics& sm = SchedMetrics::get();

  ReadyTracker tracker(graph);
  std::deque<index_t> ready;
  for (index_t id : tracker.initial_ready()) ready.push_back(id);
  sm.enqueued.add(static_cast<std::int64_t>(ready.size()));

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::int64_t> busy_ns(threads, 0);
  std::vector<index_t> ntasks(threads, 0);
  index_t executed = 0;  // guarded by mu
  const std::int64_t t_start = now_ns();

  auto worker = [&](std::size_t w) {
    obs::Tracer::instance().name_this_thread("worker " +
                                             std::to_string(w));
    std::unique_lock lk(mu);
    for (;;) {
      if (cancel.armed_token()) {
        // Bounded waits so an externally-tripped token (or its deadline,
        // forced here since a task is a coarse enough boundary for a clock
        // read) is observed even while the queue is empty.
        while (ready.empty() && !tracker.all_complete() &&
               !cancel.poll_deadline_now())
          cv.wait_for(lk, std::chrono::milliseconds(1));
      } else {
        cv.wait(lk, [&] { return !ready.empty() || tracker.all_complete(); });
      }
      if (tracker.all_complete() || cancel.cancelled()) {
        cv.notify_all();  // release any peer still in a bounded wait
        return;
      }
      const index_t id = ready.front();
      ready.pop_front();
      const auto [si, sj] = graph.coords(id);
      CELLNPDP_TRACE_COUNTER("sched", "ready_depth",
                             static_cast<std::int64_t>(ready.size()));

      lk.unlock();
      const std::int64_t t0 = now_ns();
      {
        CELLNPDP_TRACE_SPAN("sched", "task", si, sj);
        body(si, sj);
      }
      const std::int64_t dt = now_ns() - t0;
      busy_ns[w] += dt;
      ++ntasks[w];
      sm.tasks.add();
      sm.task_ns.observe(dt);
      lk.lock();
      ++executed;

      // A tripped token stops the release of dependents: the run winds
      // down as soon as every in-flight task body returns.
      if (cancel.cancelled()) {
        cv.notify_all();
        return;
      }
      for (index_t next : tracker.complete(id)) {
        ready.push_back(next);
        CELLNPDP_TRACE_INSTANT("sched", "enqueue", next);
        sm.enqueued.add();
      }
      sm.ready_depth.observe(static_cast<std::int64_t>(ready.size()));
      CELLNPDP_TRACE_COUNTER("sched", "ready_depth",
                             static_cast<std::int64_t>(ready.size()));
      // Wake everyone when the run is over, otherwise wake enough workers
      // for the newly released tasks.
      if (tracker.all_complete()) {
        cv.notify_all();
      } else {
        cv.notify_one();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& th : pool) th.join();

  const bool completed = executed == graph.task_count();
  if (!completed)
    sm.abandoned.add(
        static_cast<std::int64_t>(graph.task_count() - executed));
  if (stats != nullptr) {
    stats->wall_seconds = double(now_ns() - t_start) / 1e9;
    stats->worker_busy.assign(threads, 0);
    for (std::size_t t = 0; t < threads; ++t)
      stats->worker_busy[t] = double(busy_ns[t]) / 1e9;
    stats->worker_tasks = ntasks;
    stats->tasks = executed;
  }
  return completed;
}

std::vector<index_t> TaskQueueExecutor::run_serial(
    const BlockDependenceGraph& graph, const TaskFn& body,
    ExecutorStats* stats, const CancelToken& cancel) {
  SchedMetrics& sm = SchedMetrics::get();
  ReadyTracker tracker(graph);
  std::deque<index_t> ready;
  for (index_t id : tracker.initial_ready()) ready.push_back(id);

  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(graph.task_count()));
  const std::int64_t t_start = now_ns();
  std::int64_t busy = 0;
  while (!ready.empty()) {
    if (cancel.poll_deadline_now()) break;
    const index_t id = ready.front();
    ready.pop_front();
    const auto [si, sj] = graph.coords(id);
    const std::int64_t t0 = now_ns();
    {
      CELLNPDP_TRACE_SPAN("sched", "task", si, sj);
      body(si, sj);
    }
    const std::int64_t dt = now_ns() - t0;
    busy += dt;
    sm.tasks.add();
    sm.task_ns.observe(dt);
    order.push_back(id);
    for (index_t next : tracker.complete(id)) ready.push_back(next);
  }
  const index_t executed = static_cast<index_t>(order.size());
  if (executed != graph.task_count())
    sm.abandoned.add(
        static_cast<std::int64_t>(graph.task_count() - executed));
  if (stats != nullptr) {
    stats->wall_seconds = double(now_ns() - t_start) / 1e9;
    stats->worker_busy = {double(busy) / 1e9};
    stats->worker_tasks = {executed};
    stats->tasks = executed;
  }
  return order;
}

}  // namespace cellnpdp
