#include "taskgraph/executor.hpp"

#include <algorithm>

namespace cellnpdp {

void TaskQueueExecutor::run(const BlockDependenceGraph& graph,
                            std::size_t threads, const TaskFn& body) {
  threads = std::max<std::size_t>(1, threads);

  ReadyTracker tracker(graph);
  std::deque<index_t> ready;
  for (index_t id : tracker.initial_ready()) ready.push_back(id);

  std::mutex mu;
  std::condition_variable cv;

  auto worker = [&] {
    std::unique_lock lk(mu);
    for (;;) {
      cv.wait(lk, [&] { return !ready.empty() || tracker.all_complete(); });
      if (tracker.all_complete()) return;
      const index_t id = ready.front();
      ready.pop_front();
      const auto [si, sj] = graph.coords(id);

      lk.unlock();
      body(si, sj);
      lk.lock();

      for (index_t next : tracker.complete(id)) ready.push_back(next);
      // Wake everyone when the run is over, otherwise wake enough workers
      // for the newly released tasks.
      if (tracker.all_complete()) {
        cv.notify_all();
      } else {
        cv.notify_one();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
}

std::vector<index_t> TaskQueueExecutor::run_serial(
    const BlockDependenceGraph& graph, const TaskFn& body) {
  ReadyTracker tracker(graph);
  std::deque<index_t> ready;
  for (index_t id : tracker.initial_ready()) ready.push_back(id);

  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(graph.task_count()));
  while (!ready.empty()) {
    const index_t id = ready.front();
    ready.pop_front();
    const auto [si, sj] = graph.coords(id);
    body(si, sj);
    order.push_back(id);
    for (index_t next : tracker.complete(id)) ready.push_back(next);
  }
  return order;
}

}  // namespace cellnpdp
