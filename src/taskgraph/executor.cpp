#include "taskgraph/executor.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <string>
#include <thread>

#include "common/fault_hook.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cellnpdp {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SchedMetrics {
  obs::Counter& tasks = obs::metrics().counter("sched.tasks");
  obs::Counter& enqueued = obs::metrics().counter("sched.enqueued");
  obs::Counter& abandoned = obs::metrics().counter("sched.cancelled_tasks");
  obs::Counter& retries = obs::metrics().counter("sched.task_retries");
  obs::Counter& failures = obs::metrics().counter("sched.task_failures");
  obs::Histogram& task_ns = obs::metrics().histogram("sched.task_ns");
  obs::Histogram& ready_depth = obs::metrics().histogram("sched.ready_depth");
  static SchedMetrics& get() {
    static SchedMetrics m;
    return m;
  }
};

/// One task execution with the task-granular fault-injection site and the
/// retry loop. Throws (the last failure) once attempts are exhausted; a
/// tripped cancel token also stops retrying — there is no point re-running
/// work whose run is being abandoned.
void run_task_with_recovery(const TaskQueueExecutor::TaskFn& body,
                            index_t si, index_t sj,
                            const TaskRecovery* recovery,
                            const CancelToken& cancel, SchedMetrics& sm) {
  int attempt = 1;
  for (;;) {
    try {
      maybe_inject_task_fault(si, sj);
      body(si, sj);
      return;
    } catch (...) {
      if (recovery == nullptr || attempt >= recovery->retry.max_attempts ||
          cancel.cancelled()) {
        sm.failures.add();
        throw;
      }
      sm.retries.add();
      CELLNPDP_TRACE_INSTANT("sched", "task_retry", si, sj);
      const auto delay = recovery->retry.backoff(
          attempt + 1, (static_cast<std::uint64_t>(si) << 32) ^
                           static_cast<std::uint64_t>(sj));
      if (delay.count() > 0) std::this_thread::sleep_for(delay);
      if (recovery->reset) recovery->reset(si, sj);
      ++attempt;
    }
  }
}

}  // namespace

bool TaskQueueExecutor::run(const BlockDependenceGraph& graph,
                            std::size_t threads, const TaskFn& body,
                            ExecutorStats* stats, const CancelToken& cancel,
                            const TaskRecovery* recovery) {
  threads = std::max<std::size_t>(1, threads);
  SchedMetrics& sm = SchedMetrics::get();

  ReadyTracker tracker(graph);
  std::deque<index_t> ready;
  for (index_t id : tracker.initial_ready()) ready.push_back(id);
  sm.enqueued.add(static_cast<std::int64_t>(ready.size()));

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::int64_t> busy_ns(threads, 0);
  std::vector<index_t> ntasks(threads, 0);
  index_t executed = 0;             // guarded by mu
  bool failed = false;              // guarded by mu
  std::exception_ptr failure;       // first exhausted-retries throw
  const std::int64_t t_start = now_ns();

  auto worker = [&](std::size_t w) {
    obs::Tracer::instance().name_this_thread("worker " +
                                             std::to_string(w));
    std::unique_lock lk(mu);
    for (;;) {
      if (cancel.armed_token()) {
        // Bounded waits so an externally-tripped token (or its deadline,
        // forced here since a task is a coarse enough boundary for a clock
        // read) is observed even while the queue is empty.
        while (ready.empty() && !tracker.all_complete() && !failed &&
               !cancel.poll_deadline_now())
          cv.wait_for(lk, std::chrono::milliseconds(1));
      } else {
        cv.wait(lk, [&] {
          return !ready.empty() || tracker.all_complete() || failed;
        });
      }
      if (tracker.all_complete() || cancel.cancelled() || failed) {
        cv.notify_all();  // release any peer still in a bounded wait
        return;
      }
      const index_t id = ready.front();
      ready.pop_front();
      const auto [si, sj] = graph.coords(id);
      CELLNPDP_TRACE_COUNTER("sched", "ready_depth",
                             static_cast<std::int64_t>(ready.size()));

      lk.unlock();
      const std::int64_t t0 = now_ns();
      std::exception_ptr task_err;
      {
        CELLNPDP_TRACE_SPAN("sched", "task", si, sj);
        try {
          run_task_with_recovery(body, si, sj, recovery, cancel, sm);
        } catch (...) {
          task_err = std::current_exception();
        }
      }
      const std::int64_t dt = now_ns() - t0;
      busy_ns[w] += dt;
      lk.lock();
      if (task_err) {
        // Retries exhausted: abort the run. The first failure wins the
        // rethrow; the task's tracker entry stays open so the graph winds
        // down as abandoned rather than complete.
        if (!failure) failure = task_err;
        failed = true;
        cv.notify_all();
        return;
      }
      ++ntasks[w];
      sm.tasks.add();
      sm.task_ns.observe(dt);
      ++executed;

      // A tripped token (or a peer's failure) stops the release of
      // dependents: the run winds down as soon as every in-flight task
      // body returns.
      if (cancel.cancelled() || failed) {
        cv.notify_all();
        return;
      }
      for (index_t next : tracker.complete(id)) {
        ready.push_back(next);
        CELLNPDP_TRACE_INSTANT("sched", "enqueue", next);
        sm.enqueued.add();
      }
      sm.ready_depth.observe(static_cast<std::int64_t>(ready.size()));
      CELLNPDP_TRACE_COUNTER("sched", "ready_depth",
                             static_cast<std::int64_t>(ready.size()));
      // Wake everyone when the run is over, otherwise wake enough workers
      // for the newly released tasks.
      if (tracker.all_complete()) {
        cv.notify_all();
      } else {
        cv.notify_one();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& th : pool) th.join();

  const bool completed = executed == graph.task_count();
  if (!completed)
    sm.abandoned.add(
        static_cast<std::int64_t>(graph.task_count() - executed));
  if (stats != nullptr) {
    stats->wall_seconds = double(now_ns() - t_start) / 1e9;
    stats->worker_busy.assign(threads, 0);
    for (std::size_t t = 0; t < threads; ++t)
      stats->worker_busy[t] = double(busy_ns[t]) / 1e9;
    stats->worker_tasks = ntasks;
    stats->tasks = executed;
  }
  if (failure) std::rethrow_exception(failure);
  return completed;
}

std::vector<index_t> TaskQueueExecutor::run_serial(
    const BlockDependenceGraph& graph, const TaskFn& body,
    ExecutorStats* stats, const CancelToken& cancel,
    const TaskRecovery* recovery) {
  SchedMetrics& sm = SchedMetrics::get();
  ReadyTracker tracker(graph);
  std::deque<index_t> ready;
  for (index_t id : tracker.initial_ready()) ready.push_back(id);

  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(graph.task_count()));
  const std::int64_t t_start = now_ns();
  std::int64_t busy = 0;
  std::exception_ptr failure;
  while (!ready.empty()) {
    if (cancel.poll_deadline_now()) break;
    const index_t id = ready.front();
    ready.pop_front();
    const auto [si, sj] = graph.coords(id);
    const std::int64_t t0 = now_ns();
    {
      CELLNPDP_TRACE_SPAN("sched", "task", si, sj);
      try {
        run_task_with_recovery(body, si, sj, recovery, cancel, sm);
      } catch (...) {
        failure = std::current_exception();
      }
    }
    if (failure) break;
    const std::int64_t dt = now_ns() - t0;
    busy += dt;
    sm.tasks.add();
    sm.task_ns.observe(dt);
    order.push_back(id);
    for (index_t next : tracker.complete(id)) ready.push_back(next);
  }
  const index_t executed = static_cast<index_t>(order.size());
  if (executed != graph.task_count())
    sm.abandoned.add(
        static_cast<std::int64_t>(graph.task_count() - executed));
  if (stats != nullptr) {
    stats->wall_seconds = double(now_ns() - t_start) / 1e9;
    stats->worker_busy = {double(busy) / 1e9};
    stats->worker_tasks = {executed};
    stats->tasks = executed;
  }
  if (failure) std::rethrow_exception(failure);
  return order;
}

}  // namespace cellnpdp
