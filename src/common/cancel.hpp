// Cooperative cancellation token shared by every solve path.
//
// A CancelToken is a cheap handle onto shared cancellation state. Solvers
// poll it at *memory-block* granularity: the fast path of poll() is one
// relaxed atomic load, so nothing is added to the kernel path. Cancellation
// can be requested explicitly (request_cancel) or implicitly by attaching a
// deadline; the deadline is checked inside poll() only every
// kDeadlineStride calls (per polling thread), so even deadline-carrying
// solves stay clock-read-free on most blocks.
//
// A default-constructed token is *inert*: it can never be cancelled and
// polls compile down to a null-pointer test. Armed tokens are created with
// CancelToken::armed() (or with_deadline) and share state across copies, so
// a dispatcher can hold one copy and trip every worker polling another.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace cellnpdp {

enum class CancelReason : std::uint8_t {
  None = 0,      ///< not cancelled
  Requested,     ///< explicit request_cancel()
  Deadline,      ///< attached deadline passed
  Shed,          ///< load was shed by an overload policy
  Shutdown,      ///< owner is stopping
};

constexpr const char* cancel_reason_name(CancelReason r) {
  switch (r) {
    case CancelReason::None: return "none";
    case CancelReason::Requested: return "requested";
    case CancelReason::Deadline: return "deadline";
    case CancelReason::Shed: return "shed";
    case CancelReason::Shutdown: return "shutdown";
  }
  return "?";
}

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// How many poll() calls (per polling thread) between deadline checks.
  static constexpr std::uint32_t kDeadlineStride = 64;

  /// Inert token: never cancelled, polls are free of atomics entirely.
  CancelToken() = default;

  /// A fresh armed token (its own shared state, not yet cancelled).
  static CancelToken armed() { return CancelToken(std::make_shared<State>()); }

  /// An armed token that trips itself (reason Deadline) once `d` passes.
  static CancelToken with_deadline(Clock::time_point d) {
    CancelToken t = armed();
    t.state_->deadline = d;
    t.state_->has_deadline.store(true, std::memory_order_release);
    return t;
  }
  template <class Rep, class Period>
  static CancelToken after(std::chrono::duration<Rep, Period> d) {
    return with_deadline(Clock::now() + d);
  }

  bool armed_token() const { return state_ != nullptr; }

  /// True once cancellation was requested (or a deadline observed). One
  /// relaxed atomic load; safe from any thread.
  bool cancelled() const {
    return state_ != nullptr &&
           state_->reason.load(std::memory_order_relaxed) !=
               static_cast<std::uint8_t>(CancelReason::None);
  }

  CancelReason reason() const {
    if (state_ == nullptr) return CancelReason::None;
    return static_cast<CancelReason>(
        state_->reason.load(std::memory_order_relaxed));
  }

  /// Trips the token. The first reason to arrive wins; later requests are
  /// no-ops so the recorded reason stays meaningful. No-op on inert tokens.
  void request_cancel(CancelReason r = CancelReason::Requested) const {
    if (state_ == nullptr || r == CancelReason::None) return;
    std::uint8_t expected = static_cast<std::uint8_t>(CancelReason::None);
    state_->reason.compare_exchange_strong(expected,
                                           static_cast<std::uint8_t>(r),
                                           std::memory_order_relaxed);
  }

  /// The solver-side check, called once per memory block: relaxed load of
  /// the reason, plus — on every kDeadlineStride-th call of the calling
  /// thread, for tokens that carry a deadline — one clock read that trips
  /// the token when the deadline has passed. Returns true when cancelled.
  bool poll() const {
    if (state_ == nullptr) return false;
    if (state_->reason.load(std::memory_order_relaxed) !=
        static_cast<std::uint8_t>(CancelReason::None))
      return true;
    if (state_->has_deadline.load(std::memory_order_relaxed)) {
      thread_local std::uint32_t strider = 0;
      if (++strider % kDeadlineStride == 0 &&
          Clock::now() > state_->deadline) {
        request_cancel(CancelReason::Deadline);
        return true;
      }
    }
    return false;
  }

  /// Forces a deadline check now (used at coarse boundaries — e.g. once
  /// per task — where a clock read is affordable and latency matters).
  bool poll_deadline_now() const {
    if (state_ == nullptr) return false;
    if (cancelled()) return true;
    if (state_->has_deadline.load(std::memory_order_relaxed) &&
        Clock::now() > state_->deadline) {
      request_cancel(CancelReason::Deadline);
      return true;
    }
    return false;
  }

  bool has_deadline() const {
    return state_ != nullptr &&
           state_->has_deadline.load(std::memory_order_relaxed);
  }
  Clock::time_point deadline() const {
    return state_ != nullptr ? state_->deadline : Clock::time_point{};
  }

 private:
  struct State {
    std::atomic<std::uint8_t> reason{
        static_cast<std::uint8_t>(CancelReason::None)};
    std::atomic<bool> has_deadline{false};
    Clock::time_point deadline{};  ///< written once before has_deadline
  };

  explicit CancelToken(std::shared_ptr<State> s) : state_(std::move(s)) {}

  std::shared_ptr<State> state_;  ///< null: inert token
};

}  // namespace cellnpdp
