// Common definitions shared by every cellnpdp module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace cellnpdp {

/// Index type used for cell and block coordinates. Signed so that the
/// descending loops of the paper's Fig. 1 flowchart can be written verbatim.
using index_t = std::int64_t;

/// The identity element of the (min, +) semiring: +inf for floating-point
/// cells; for integer cells a large sentinel such that identity + identity
/// still cannot overflow or undercut any real value (callers must keep
/// |values| well below identity/2, which every bundled application does).
template <class T>
constexpr T minplus_identity() {
  if constexpr (std::is_floating_point_v<T>) {
    return std::numeric_limits<T>::infinity();
  } else {
    return std::numeric_limits<T>::max() / 4;
  }
}

/// Returns true when `v` can never influence a (min,+) relaxation, i.e. is
/// the padding value written into the off-triangle cells of square blocks.
template <class T>
constexpr bool is_minplus_identity(T v) {
  return v >= minplus_identity<T>();
}

/// ceil(a / b) for non-negative integers.
constexpr index_t ceil_div(index_t a, index_t b) { return (a + b - 1) / b; }

/// Number of cells in an upper triangle (diagonal included) of side n.
constexpr index_t triangle_cells(index_t n) { return n * (n + 1) / 2; }

/// Number of scalar relaxations the Fig. 1 loop nest performs for size n:
/// sum over j of sum over i<j of (j - i)  ==  n(n-1)(n+1)/6  ~  n^3/6.
constexpr index_t npdp_relaxations(index_t n) {
  return n * (n - 1) * (n + 1) / 6;
}

}  // namespace cellnpdp
