// A small fixed-size worker pool used by the parallel NPDP procedure and the
// baselines. Deliberately simple: a locked deque of std::function jobs plus a
// blocking wait-for-idle, which is all the task-queue model of the paper
// needs on the host side.
//
// Fault tolerance: every job exception is captured (wait_idle rethrows the
// first and exposes the full set through last_errors(), so multi-fault
// tests can assert on all failures), and an injected WorkerDeath (see
// common/fault_hook.hpp) makes a worker retire at job pickup — the job it
// was about to take stays queued, and a replacement worker inheriting the
// same index is spawned before the dying one returns, so no work is ever
// lost to a death.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cellnpdp {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1). The pool is not resizable; the
  /// parallel solver creates one pool per configured core count so that the
  /// speedup-anatomy benches measure exactly the requested parallelism.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Safe to call from worker threads (jobs may spawn jobs).
  void submit(std::function<void()> job);

  /// Blocks until every submitted job (including jobs submitted by jobs)
  /// has finished executing. If any job threw since the last wait_idle(),
  /// rethrows the first such exception; the complete set (in completion
  /// order) is available through last_errors() until the next wait that
  /// observes a failure. The pool itself stays healthy and reusable after
  /// the rethrow.
  void wait_idle();

  /// Every job exception captured by the wait_idle() that last observed
  /// failures (the first entry is the one it rethrew). Empty when the last
  /// wait completed cleanly.
  std::vector<std::exception_ptr> last_errors() const;

  /// The configured concurrency. Stable across injected worker deaths
  /// (replacements inherit the retired worker's slot).
  std::size_t thread_count() const { return nthreads_; }

  /// Workers retired by injected WorkerDeath faults since construction.
  std::uint64_t worker_deaths() const;

  /// Runs fn(i) for i in [begin, end) across the pool and waits.
  /// Work is split into contiguous chunks, one chunk per worker.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Cumulative seconds each worker slot has spent inside jobs since the
  /// pool was created. Call while the pool is idle (e.g. after wait_idle()).
  std::vector<double> busy_seconds() const;

 private:
  void worker_loop(std::size_t index);

  const std::size_t nthreads_;
  std::vector<std::thread> workers_;   // grows when deaths spawn replacements
  std::deque<std::function<void()>> jobs_;
  std::vector<std::int64_t> busy_ns_;  // per worker slot; guarded by mu_
  std::vector<std::exception_ptr> errors_;       // since last failing wait
  std::vector<std::exception_ptr> last_errors_;  // what that wait observed
  std::uint64_t deaths_ = 0;           // guarded by mu_
  mutable std::mutex mu_;
  std::condition_variable cv_job_;    // signalled when a job arrives
  std::condition_variable cv_idle_;   // signalled when the pool may be idle
  std::size_t in_flight_ = 0;         // popped but not yet finished
  bool stop_ = false;
};

}  // namespace cellnpdp
