// Deterministic pseudo-random workload generation.
//
// Every experiment in the harness seeds its own SplitMix64 stream so results
// are bit-reproducible across runs and independent of module ordering.
#pragma once

#include <cstdint>

#include "common/defs.hpp"

namespace cellnpdp {

/// SplitMix64: tiny, fast, and good enough for workload generation.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_unit() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_in(double lo, double hi) { return lo + (hi - lo) * next_unit(); }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    return next_u64() % bound;  // bias negligible for workload generation
  }

 private:
  std::uint64_t state_;
};

/// The canonical random NPDP instance used throughout tests and benches:
/// cell (i,j) is initialised to a deterministic value in [0, 100) derived
/// from (seed, i, j). Diagonal cells are set to 0, matching the boundary
/// form used by the application instances and making the k == i self-term
/// of the Fig. 1 loop a no-op (see DESIGN.md §5).
template <class T>
T random_init_value(std::uint64_t seed, index_t i, index_t j) {
  if (i == j) return T(0);
  SplitMix64 rng(seed ^ (static_cast<std::uint64_t>(i) << 32) ^
                 static_cast<std::uint64_t>(j) * 0x9E3779B97F4A7C15ull);
  return static_cast<T>(rng.next_in(0.0, 100.0));
}

}  // namespace cellnpdp
