#include "common/fault_hook.hpp"

#include <chrono>
#include <thread>

namespace cellnpdp {

namespace detail {
std::atomic<FaultHook*> g_fault_hook{nullptr};
}

void install_fault_hook(FaultHook* hook) noexcept {
  detail::g_fault_hook.store(hook, std::memory_order_release);
}

void maybe_inject_task_fault(std::int64_t k1, std::int64_t k2) {
  FaultHook* h = fault_hook();
  if (h == nullptr) return;
  if (h->fire(FaultSite::TaskStall, k1, k2)) {
    const std::int64_t ms = h->stall_ms(FaultSite::TaskStall);
    if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
  if (h->fire(FaultSite::TaskThrow, k1, k2)) {
    throw InjectedFault(FaultSite::TaskThrow,
                        "task (" + std::to_string(k1) + "," +
                            std::to_string(k2) + ")");
  }
}

}  // namespace cellnpdp
