#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "obs/trace.hpp"

namespace cellnpdp {

namespace {
std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  busy_ns_.assign(threads, 0);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard lk(mu_);
    jobs_.push_back(std::move(job));
  }
  cv_job_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return jobs_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = std::exchange(first_error_, nullptr);
    lk.unlock();
    std::rethrow_exception(e);
  }
}

std::vector<double> ThreadPool::busy_seconds() const {
  std::lock_guard lk(mu_);
  std::vector<double> out(busy_ns_.size());
  for (std::size_t i = 0; i < busy_ns_.size(); ++i)
    out[i] = double(busy_ns_[i]) / 1e9;
  return out;
}

void ThreadPool::worker_loop(std::size_t index) {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lk(mu_);
      cv_job_.wait(lk, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++in_flight_;
    }
    obs::Tracer::instance().name_this_thread("pool " + std::to_string(index));
    const std::int64_t t0 = now_ns();
    std::exception_ptr error;
    {
      CELLNPDP_TRACE_SPAN("pool", "job");
      try {
        job();
      } catch (...) {
        error = std::current_exception();
      }
    }
    const std::int64_t dt = now_ns() - t0;
    {
      std::lock_guard lk(mu_);
      busy_ns_[index] += dt;
      if (error && !first_error_) first_error_ = error;
      --in_flight_;
      if (jobs_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, thread_count());
  const std::size_t per = (total + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  wait_idle();
}

}  // namespace cellnpdp
