#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/fault_hook.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cellnpdp {

namespace {
std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : nthreads_(std::max<std::size_t>(1, threads)) {
  busy_ns_.assign(nthreads_, 0);
  workers_.reserve(nthreads_);
  for (std::size_t i = 0; i < nthreads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  // Index loop: replacement workers spawned by injected deaths append to
  // workers_, so the vector may be longer than the initial thread count.
  for (std::size_t i = 0; i < workers_.size(); ++i)
    if (workers_[i].joinable()) workers_[i].join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard lk(mu_);
    jobs_.push_back(std::move(job));
  }
  cv_job_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return jobs_.empty() && in_flight_ == 0; });
  if (!errors_.empty()) {
    last_errors_ = std::move(errors_);
    errors_.clear();
    std::exception_ptr first = last_errors_.front();
    lk.unlock();
    std::rethrow_exception(first);
  }
}

std::vector<std::exception_ptr> ThreadPool::last_errors() const {
  std::lock_guard lk(mu_);
  return last_errors_;
}

std::uint64_t ThreadPool::worker_deaths() const {
  std::lock_guard lk(mu_);
  return deaths_;
}

std::vector<double> ThreadPool::busy_seconds() const {
  std::lock_guard lk(mu_);
  std::vector<double> out(busy_ns_.size());
  for (std::size_t i = 0; i < busy_ns_.size(); ++i)
    out[i] = double(busy_ns_[i]) / 1e9;
  return out;
}

void ThreadPool::worker_loop(std::size_t index) {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lk(mu_);
      cv_job_.wait(lk, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      // Injected worker death fires *before* the pop, so the job the dying
      // worker was about to take stays queued for its replacement — a
      // death loses a thread, never a job. The replacement inherits the
      // worker slot (index), keeping busy accounting and thread_count()
      // stable. Suppressed during shutdown: there is nobody left to serve.
      if (!stop_) {
        if (FaultHook* h = fault_hook();
            h != nullptr &&
            h->fire(FaultSite::WorkerDeath,
                    static_cast<std::int64_t>(index),
                    static_cast<std::int64_t>(jobs_.size()))) {
          ++deaths_;
          obs::metrics().counter("pool.worker_deaths").add();
          workers_.emplace_back([this, index] { worker_loop(index); });
          cv_job_.notify_one();  // the replacement takes over the queue
          return;
        }
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++in_flight_;
    }
    obs::Tracer::instance().name_this_thread("pool " + std::to_string(index));
    const std::int64_t t0 = now_ns();
    std::exception_ptr error;
    {
      CELLNPDP_TRACE_SPAN("pool", "job");
      try {
        job();
      } catch (...) {
        error = std::current_exception();
      }
    }
    const std::int64_t dt = now_ns() - t0;
    {
      std::lock_guard lk(mu_);
      busy_ns_[index] += dt;
      if (error) errors_.push_back(error);
      --in_flight_;
      if (jobs_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, thread_count());
  const std::size_t per = (total + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  wait_idle();
}

}  // namespace cellnpdp
