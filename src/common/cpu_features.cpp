#include "common/cpu_features.hpp"

#include <cpuid.h>

namespace cellnpdp {

namespace {

CpuFeatures detect() {
  CpuFeatures f;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.sse2 = edx & bit_SSE2;
    f.sse41 = ecx & bit_SSE4_1;
    f.avx = ecx & bit_AVX;
    f.fma = ecx & bit_FMA;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = ebx & bit_AVX2;
  }
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect();
  return f;
}

std::string cpu_features_string() {
  const CpuFeatures& f = cpu_features();
  std::string s;
  if (f.sse2) s += "sse2 ";
  if (f.sse41) s += "sse4.1 ";
  if (f.avx) s += "avx ";
  if (f.avx2) s += "avx2 ";
  if (f.fma) s += "fma ";
  if (!s.empty()) s.pop_back();
  return s;
}

}  // namespace cellnpdp
