// Runtime CPU feature detection, used to pick the widest available kernel
// backend and to report the platform in bench headers.
#pragma once

#include <string>

namespace cellnpdp {

struct CpuFeatures {
  bool sse2 = false;
  bool sse41 = false;
  bool avx = false;
  bool avx2 = false;
  bool fma = false;
};

/// Queries CPUID once and caches the result.
const CpuFeatures& cpu_features();

/// Human-readable summary, e.g. "sse2 sse4.1 avx avx2 fma".
std::string cpu_features_string();

}  // namespace cellnpdp
