// Retry policy shared by every recovery path: per-task re-execution in the
// executor, per-block re-execution in the resilient solver, and per-request
// attempts in the serve layer. Backoff is capped exponential with
// deterministic jitter — a SplitMix64 stream keyed by (jitter_seed, salt,
// attempt), so two retriers with different salts decorrelate while a rerun
// with the same seed backs off identically (the fault-replay determinism
// check in verify.sh depends on this).
#pragma once

#include <chrono>
#include <cstdint>

#include "common/rng.hpp"

namespace cellnpdp {

struct RetryPolicy {
  /// Total attempts including the first; 1 disables retrying.
  int max_attempts = 1;
  std::chrono::milliseconds base_backoff{1};
  std::chrono::milliseconds max_backoff{64};
  std::uint64_t jitter_seed = 0x5EEDB0FFull;

  bool enabled() const { return max_attempts > 1; }

  /// Delay before `attempt` (2-based: the wait after attempt-1 failed).
  /// Exponential in the attempt number, capped at max_backoff, with the
  /// top half of the delay jittered away deterministically.
  std::chrono::milliseconds backoff(int attempt,
                                    std::uint64_t salt = 0) const {
    if (attempt <= 1 || base_backoff.count() <= 0)
      return std::chrono::milliseconds(0);
    const int exp = attempt - 2 > 20 ? 20 : attempt - 2;
    std::int64_t delay_ms = base_backoff.count() << exp;
    if (delay_ms > max_backoff.count()) delay_ms = max_backoff.count();
    if (delay_ms <= 1) return std::chrono::milliseconds(delay_ms);
    SplitMix64 rng(jitter_seed ^ salt * 0x9E3779B97F4A7C15ull ^
                   static_cast<std::uint64_t>(attempt));
    const std::int64_t half = delay_ms / 2;
    const std::int64_t jitter =
        static_cast<std::int64_t>(rng.next_below(
            static_cast<std::uint64_t>(half) + 1));
    return std::chrono::milliseconds(delay_ms - jitter);
  }
};

}  // namespace cellnpdp
