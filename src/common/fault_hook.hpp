// Fault-injection hook: the zero-cost-when-off seam between the execution
// layers (task-queue executor, thread pool, solver pool, serve dispatcher)
// and the resilience harness (src/resilience).
//
// The layers call maybe_inject_*() at their natural failure boundaries;
// with no hook installed that is one relaxed atomic load plus a null test
// — nothing is allocated, no branch history beyond the always-not-taken
// test, so the clean path stays within measurement noise (enforced by
// bench_resilience). Installing a FaultHook (normally a
// resilience::FaultInjector driven by a seeded FaultPlan) makes the same
// call sites fire deterministic faults: thrown exceptions, stalls, block
// corruption, worker deaths, and admission overload.
//
// This header lives in common/ (not resilience/) on purpose: the executor
// and thread pool must be able to reach the hook without depending on the
// resilience module that sits above them.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace cellnpdp {

/// Where a fault can be injected. Sites are coordinates into a FaultPlan:
/// each plan rule names one site and the rate/cap of its firings there.
enum class FaultSite : int {
  TaskThrow = 0,  ///< task/request body throws InjectedFault
  TaskStall,      ///< task/request body sleeps for the rule's stall_ms
  BlockCorrupt,   ///< a just-relaxed memory block is scribbled (torn DMA)
  WorkerDeath,    ///< a pool worker retires mid-run (and is respawned)
  QueueOverload,  ///< admission behaves as if the queue were full
};

inline constexpr int kFaultSiteCount = 5;

constexpr const char* fault_site_name(FaultSite s) {
  switch (s) {
    case FaultSite::TaskThrow: return "task-throw";
    case FaultSite::TaskStall: return "task-stall";
    case FaultSite::BlockCorrupt: return "block-corrupt";
    case FaultSite::WorkerDeath: return "worker-death";
    case FaultSite::QueueOverload: return "queue-overload";
  }
  return "?";
}

/// The exception a TaskThrow firing raises out of a task/request body.
/// Distinct from std::runtime_error users so tests can tell an injected
/// failure from a genuine one.
struct InjectedFault : std::runtime_error {
  FaultSite site;
  explicit InjectedFault(FaultSite s, const std::string& where)
      : std::runtime_error(std::string("injected fault (") +
                           fault_site_name(s) + ") at " + where),
        site(s) {}
};

/// Decides, per call, whether a fault fires at a site. Implementations
/// must be thread-safe: every execution layer calls fire() concurrently.
/// k1/k2 are site-specific coordinates ((si,sj) for tasks, (bi,bj) for
/// blocks, worker index for deaths, request id for overload) recorded in
/// the injector's fired-fault log.
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  virtual bool fire(FaultSite site, std::int64_t k1, std::int64_t k2) = 0;
  /// Sleep duration for a TaskStall firing, in milliseconds.
  virtual std::int64_t stall_ms(FaultSite site) const = 0;
};

namespace detail {
extern std::atomic<FaultHook*> g_fault_hook;
}

/// The installed hook, or null (the default). One atomic load.
inline FaultHook* fault_hook() noexcept {
  return detail::g_fault_hook.load(std::memory_order_acquire);
}

/// Installs (or with null, removes) the process-wide hook. The caller owns
/// the hook and must keep it alive — and must uninstall it — while any
/// solve/serve traffic may still be running; resilience::
/// FaultInjectionScope is the RAII wrapper that gets this right.
void install_fault_hook(FaultHook* hook) noexcept;

/// Task-granular injection, called by the executor / solver pool before a
/// task or request body runs. Fires TaskStall (sleeps) then TaskThrow
/// (throws InjectedFault). No-op without an installed hook.
void maybe_inject_task_fault(std::int64_t k1, std::int64_t k2);

}  // namespace cellnpdp
