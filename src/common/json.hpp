// Minimal JSON writer/parser used by the observability layer and the
// machine-readable bench outputs. Writer is streaming (commas and nesting
// handled by a state stack); parser builds a small value tree — enough to
// validate emitted traces and metrics snapshots, not a general-purpose
// JSON library.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace cellnpdp {

/// Escapes `s` into a double-quoted JSON string literal.
inline void json_escape(std::ostream& os, std::string_view s) {
  os << '"';
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

/// Streaming JSON writer. Call sequence mirrors the document structure;
/// the writer inserts commas and validates key/value alternation only via
/// its container stack (misuse produces malformed output, not UB).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view k) {
    comma();
    json_escape(os_, k);
    os_ << ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    comma();
    json_escape(os_, v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    comma();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double v) {
    comma();
    if (std::isfinite(v)) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", v);
      os_ << buf;
    } else {
      os_ << "null";  // JSON has no inf/nan
    }
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    comma();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v) {
    comma();
    os_ << v;
    return *this;
  }

  template <class V>
  JsonWriter& kv(std::string_view k, V&& v) {
    key(k);
    return value(std::forward<V>(v));
  }

 private:
  JsonWriter& open(char c) {
    comma();
    os_ << c;
    first_.push_back(true);
    return *this;
  }
  JsonWriter& close(char c) {
    os_ << c;
    if (!first_.empty()) first_.pop_back();
    return *this;
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;  // value directly follows its key
      return;
    }
    if (first_.empty()) return;
    if (!first_.back()) os_ << ',';
    first_.back() = false;
  }

  std::ostream& os_;
  std::vector<bool> first_;
  bool pending_value_ = false;
};

/// Parsed JSON value tree.
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool is_number() const { return type == Type::Number; }
  bool is_string() const { return type == Type::String; }
  bool has(const std::string& k) const { return obj.count(k) > 0; }
  const JsonValue& at(const std::string& k) const { return obj.at(k); }
};

namespace detail {

class JsonParser {
 public:
  JsonParser(std::string_view s, std::string* err) : s_(s), err_(err) {}

  bool parse(JsonValue& out) {
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (err_ != nullptr)
      *err_ = std::string(msg) + " at offset " + std::to_string(pos_);
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.type = JsonValue::Type::String;
      return parse_string(out.str);
    }
    if (c == 't' || c == 'f') return parse_literal(out);
    if (c == 'n') return parse_literal(out);
    return parse_number(out);
  }
  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::Object;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string k;
      if (pos_ >= s_.size() || s_[pos_] != '"' || !parse_string(k))
        return fail("expected object key");
      if (!consume(':')) return fail("expected ':'");
      JsonValue v;
      if (!parse_value(v)) return false;
      out.obj.emplace(std::move(k), std::move(v));
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }
  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::Array;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JsonValue v;
      if (!parse_value(v)) return false;
      out.arr.push_back(std::move(v));
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }
  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // Minimal UTF-8 encoding; surrogate pairs are not recombined
          // (the writer never emits them).
          if (code < 0x80) {
            out.push_back(char(code));
          } else if (code < 0x800) {
            out.push_back(char(0xC0 | (code >> 6)));
            out.push_back(char(0x80 | (code & 0x3F)));
          } else {
            out.push_back(char(0xE0 | (code >> 12)));
            out.push_back(char(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(char(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }
  bool parse_literal(JsonValue& out) {
    auto match = [&](std::string_view lit) {
      if (s_.substr(pos_, lit.size()) != lit) return false;
      pos_ += lit.size();
      return true;
    };
    if (match("true")) {
      out.type = JsonValue::Type::Bool;
      out.boolean = true;
      return true;
    }
    if (match("false")) {
      out.type = JsonValue::Type::Bool;
      out.boolean = false;
      return true;
    }
    if (match("null")) {
      out.type = JsonValue::Type::Null;
      return true;
    }
    return fail("bad literal");
  }
  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+'))
      ++pos_;
    if (pos_ == start) return fail("expected value");
    out.type = JsonValue::Type::Number;
    out.number = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                             nullptr);
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string* err_;
};

}  // namespace detail

/// Parses `text` into `out`; returns false (and sets `err` if given) on
/// malformed input.
inline bool json_parse(std::string_view text, JsonValue& out,
                       std::string* err = nullptr) {
  return detail::JsonParser(text, err).parse(out);
}

}  // namespace cellnpdp
