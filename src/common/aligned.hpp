// Aligned heap storage for SIMD-width data.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

namespace cellnpdp {

/// Default alignment for all numeric buffers: one cache line, which is also
/// enough for every SSE/AVX2 load the kernels issue.
inline constexpr std::size_t kBufferAlignment = 64;

/// Minimal allocator that over-aligns every allocation to kBufferAlignment.
/// Used through `aligned_vector<T>` so kernel code can assume aligned rows.
template <class T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t{kBufferAlignment});
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kBufferAlignment});
  }

  template <class U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace cellnpdp
