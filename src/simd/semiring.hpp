// The semiring concept the solve engine is generic over.
//
// The NPDP recurrence d[i][j] = (+)_k d[i][k] (x) d[k][j] only uses two
// operations: an associative+commutative reduction (+) ("plus") and an
// associative combine (x) ("times") that distributes over it. Everything
// else in the engine — blocking, the register-cached kernel schedule,
// padding, the parallel drivers — is operation-agnostic, so each workload
// is one instantiation of the same machinery:
//
//   min-plus      (min, +)  shortest chains / optimal parenthesization
//   max-plus      (max, +)  longest chains / maximum-score structures
//   counting      (+,  *)   number of derivations / parse counting
//   viterbi-log   (max, +)  most-probable derivation over log-probs
//
// A semiring type S exposes:
//   S::id          the runtime SemiringId tag
//   S::idempotent  whether a (+) b with a == b equals a (min/max do; + does
//                  not) — idempotent semirings relax with a compare+select
//                  ("does this candidate improve the cell?") and tolerate
//                  re-applying a relaxation; counting must apply each
//                  candidate exactly once, which the blocked engine
//                  guarantees by construction
//   S::zero()      the (+) identity and (x) annihilator; the padding value
//   S::one()       the (x) identity; the default cell weight
//   S::plus/times  the scalar operations
//   S::improves    for idempotent semirings: does cand strictly beat acc?
//   S::vplus/vtimes  the Vec<T, W> lane-wise operations the computing-block
//                  kernels are written against
//
// viterbi-log is structurally max-plus (multiplying probabilities is adding
// log-probs; the most probable split is the max) but keeps its own id so
// backends, the wire protocol, and workload generators can distinguish the
// probabilistic workload (inputs are log-probs <= 0) from generic max-plus.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <type_traits>

#include "common/defs.hpp"
#include "common/rng.hpp"
#include "simd/vec.hpp"

namespace cellnpdp {

enum class SemiringId : std::uint8_t {
  MinPlus = 0,
  MaxPlus = 1,
  Counting = 2,
  ViterbiLog = 3,
};

inline constexpr int kSemiringCount = 4;

constexpr std::string_view semiring_name(SemiringId s) {
  switch (s) {
    case SemiringId::MinPlus: return "min-plus";
    case SemiringId::MaxPlus: return "max-plus";
    case SemiringId::Counting: return "counting";
    case SemiringId::ViterbiLog: return "viterbi-log";
  }
  return "?";
}

/// Parses a semiring name; returns false on unknown names.
inline bool semiring_from_name(std::string_view name, SemiringId* out) {
  for (int i = 0; i < kSemiringCount; ++i) {
    const auto s = static_cast<SemiringId>(i);
    if (semiring_name(s) == name) {
      *out = s;
      return true;
    }
  }
  return false;
}

/// The identity of (max,+): the value no relaxation can come from.
template <class T>
constexpr T maxplus_identity() {
  if constexpr (std::is_floating_point_v<T>) {
    return -std::numeric_limits<T>::infinity();
  } else {
    return -(std::numeric_limits<T>::max() / 4);
  }
}

template <class T>
struct MinPlusSemiring {
  using value_type = T;
  static constexpr SemiringId id = SemiringId::MinPlus;
  static constexpr bool idempotent = true;
  static constexpr T zero() { return minplus_identity<T>(); }
  static constexpr T one() { return T(0); }
  static T plus(T a, T b) { return b < a ? b : a; }
  static T times(T a, T b) { return a + b; }
  static bool improves(T cand, T acc) { return cand < acc; }
  template <int W>
  static Vec<T, W> vplus(Vec<T, W> a, Vec<T, W> b) {
    return vmin(a, b);
  }
  template <int W>
  static Vec<T, W> vtimes(Vec<T, W> a, Vec<T, W> b) {
    return a + b;
  }
};

template <class T>
struct MaxPlusSemiring {
  using value_type = T;
  static constexpr SemiringId id = SemiringId::MaxPlus;
  static constexpr bool idempotent = true;
  static constexpr T zero() { return maxplus_identity<T>(); }
  static constexpr T one() { return T(0); }
  static T plus(T a, T b) { return b > a ? b : a; }
  static T times(T a, T b) { return a + b; }
  static bool improves(T cand, T acc) { return cand > acc; }
  template <int W>
  static Vec<T, W> vplus(Vec<T, W> a, Vec<T, W> b) {
    return vmax(a, b);
  }
  template <int W>
  static Vec<T, W> vtimes(Vec<T, W> a, Vec<T, W> b) {
    return a + b;
  }
};

/// Plus-times over ordinary arithmetic: d[i][j] counts (weighted)
/// derivations. Not idempotent — the engine must apply every (i,k,j)
/// candidate exactly once, and callers must keep real cell values >= 1
/// (see semiring_init_value) so the 0 * inf = NaN combination can only
/// arise between padding cells, which real cells never read.
template <class T>
struct CountingSemiring {
  using value_type = T;
  static constexpr SemiringId id = SemiringId::Counting;
  static constexpr bool idempotent = false;
  static constexpr T zero() { return T(0); }
  static constexpr T one() { return T(1); }
  static T plus(T a, T b) { return a + b; }
  static T times(T a, T b) { return a * b; }
  /// Unused (the engine accumulates with plus when !idempotent); kept so
  /// generic code can name it without specialisation.
  static bool improves(T, T) { return false; }
  template <int W>
  static Vec<T, W> vplus(Vec<T, W> a, Vec<T, W> b) {
    return a + b;
  }
  template <int W>
  static Vec<T, W> vtimes(Vec<T, W> a, Vec<T, W> b) {
    return a * b;
  }
};

/// Max-times over probabilities, computed in log-space: cells hold
/// log-probabilities (<= 0), (x) is + (multiplying probs), (+) is max
/// (the most probable derivation). Arithmetic is exactly max-plus, so the
/// instantiation shares its operations; the distinct id tags the workload.
template <class T>
struct ViterbiLogSemiring {
  using value_type = T;
  static constexpr SemiringId id = SemiringId::ViterbiLog;
  static constexpr bool idempotent = true;
  static constexpr T zero() { return maxplus_identity<T>(); }
  static constexpr T one() { return T(0); }
  static T plus(T a, T b) { return b > a ? b : a; }
  static T times(T a, T b) { return a + b; }
  static bool improves(T cand, T acc) { return cand > acc; }
  template <int W>
  static Vec<T, W> vplus(Vec<T, W> a, Vec<T, W> b) {
    return vmax(a, b);
  }
  template <int W>
  static Vec<T, W> vtimes(Vec<T, W> a, Vec<T, W> b) {
    return a + b;
  }
};

/// Runtime-to-compile-time dispatch: calls f with a value of the semiring
/// tag type selected by `id` and returns whatever f returns.
template <class T, class F>
decltype(auto) with_semiring(SemiringId id, F&& f) {
  switch (id) {
    case SemiringId::MinPlus: return f(MinPlusSemiring<T>{});
    case SemiringId::MaxPlus: return f(MaxPlusSemiring<T>{});
    case SemiringId::Counting: return f(CountingSemiring<T>{});
    case SemiringId::ViterbiLog: return f(ViterbiLogSemiring<T>{});
  }
  throw std::invalid_argument("unknown semiring id");
}

/// Runtime forms of the semiring constants (for padding allocation and
/// workload setup outside templated code).
template <class T>
T semiring_zero(SemiringId id) {
  return with_semiring<T>(id, [](auto s) { return decltype(s)::zero(); });
}
template <class T>
T semiring_one(SemiringId id) {
  return with_semiring<T>(id, [](auto s) { return decltype(s)::one(); });
}

/// The canonical random workload cell value for a semiring — the
/// per-semiring analogue of random_init_value (which it matches exactly
/// for min-plus, keeping every existing seeded workload bit-identical):
///
///   min-plus / max-plus  0 on the diagonal, uniform [0, 100) off it
///   viterbi-log          the same values negated: log-probs in (-100, 0]
///   counting             small integers in [1, 5): real cells never hold
///                        0, so no real relaxation can form 0 * inf
template <class T>
T semiring_init_value(SemiringId id, std::uint64_t seed, index_t i,
                      index_t j) {
  switch (id) {
    case SemiringId::MaxPlus:
    case SemiringId::MinPlus: return random_init_value<T>(seed, i, j);
    case SemiringId::ViterbiLog: return -random_init_value<T>(seed, i, j);
    case SemiringId::Counting: {
      SplitMix64 rng(seed ^ (static_cast<std::uint64_t>(i) << 32) ^
                     static_cast<std::uint64_t>(j) * 0x9E3779B97F4A7C15ull);
      return T(1 + rng.next_below(4));
    }
  }
  return T(0);
}

}  // namespace cellnpdp
