// Computing-block kernels (paper §IV-A, Fig. 6), generic over a semiring.
//
// A *computing block* is a WxW tile; the kernel relaxes C = C (+) (A (x) B)
// where (x) is the semiring "matrix product" of Fig. 6(b):
//
//     C[r][c] = C[r][c] (+) (+)_k A[r][k] (x) B[k][c]
//
// For (min,+) this is exactly the paper's kernel: C[r][c] =
// min(C[r][c], min_k A[r][k] + B[k][c]). The register-cached schedule is
// the paper's 80-instruction variant regardless of the semiring: the W rows
// of B are loaded once, each C row is loaded, relaxed with W
// splat+times+plus steps, and stored — 12 loads, 16 shuffles, 16 (x), 16
// compares, 16 selects, 4 stores for W = 4 (Table I; for non-idempotent
// (+) the compare+select pair is a single lane add instead).
//
// The separable variant additionally folds a per-(r,k,c) factor
// u[r]*v[k]*w[c] (an ordinary product, (x)-combined with the candidate),
// which is what the optimal-matrix-parenthesization instance needs
// (p_i * p_k * p_j); pure NPDP passes no term.
//
// The minplus_* entry points below are thin aliases onto the generic
// kernels instantiated with MinPlusSemiring — same instructions, same
// results, kept for the existing call sites and the op-count model.
#pragma once

#include <utility>

#include "common/defs.hpp"
#include "simd/semiring.hpp"
#include "simd/vec.hpp"

// Keep the compiler from auto-vectorising the deliberately scalar ablation
// kernels, otherwise the "SIMD off" measurements silently use SIMD. GCC
// honours the function attribute; clang ignores it (and has no equivalent
// function-level spelling), so the scalar kernels additionally carry
// CELLNPDP_NOVEC_LOOP on their inner loops, which clang does honour.
#if defined(__GNUC__) && !defined(__clang__)
#define CELLNPDP_NOVEC __attribute__((optimize("no-tree-vectorize")))
#else
#define CELLNPDP_NOVEC
#endif

#if defined(__clang__)
#define CELLNPDP_NOVEC_LOOP \
  _Pragma("clang loop vectorize(disable) interleave(disable)")
#else
#define CELLNPDP_NOVEC_LOOP
#endif

namespace cellnpdp {

namespace detail {

template <class S, class T, int W, std::size_t... K>
inline Vec<T, W> semiring_row(Vec<T, W> c, Vec<T, W> a, const Vec<T, W>* b,
                              std::index_sequence<K...>) {
  ((c = S::template vplus<W>(
        c, S::template vtimes<W>(Vec<T, W>::template splat<K>(a), b[K]))),
   ...);
  return c;
}

template <class S, class T, int W, std::size_t... K>
inline Vec<T, W> semiring_row_sep(Vec<T, W> c, Vec<T, W> a,
                                  const Vec<T, W>* b, const T* uv,
                                  Vec<T, W> wv, std::index_sequence<K...>) {
  // The factor product is associated (u*v)*w to stay bit-identical to the
  // scalar reference path.
  ((c = S::template vplus<W>(
        c, S::template vtimes<W>(
               S::template vtimes<W>(Vec<T, W>::template splat<K>(a), b[K]),
               Vec<T, W>::set1(uv[K]) * wv))),
   ...);
  return c;
}

}  // namespace detail

/// Register-cached WxW computing-block relaxation: C = C (+) (A (x) B).
/// sc/sa/sb are row strides in elements; rows must be kBufferAlignment
/// aligned when a SIMD Vec specialisation is selected.
template <class S, class T, int W>
inline void semiring_cb(T* C, index_t sc, const T* A, index_t sa, const T* B,
                        index_t sb) {
  using V = Vec<T, W>;
  V b[W];
  for (int k = 0; k < W; ++k) b[k] = V::load(B + k * sb);
  for (int r = 0; r < W; ++r) {
    V c = V::load(C + r * sc);
    const V a = V::load(A + r * sa);
    c = detail::semiring_row<S, T, W>(c, a, b, std::make_index_sequence<W>{});
    c.store(C + r * sc);
  }
}

/// As semiring_cb but with the separable extra factor u[r]*v[k]*w[c]:
///     C[r][c] = C[r][c] (+) (+)_k (A[r][k] (x) B[k][c]) (x) u[r]*v[k]*w[c]
/// u/v/w point at the W per-row / per-k / per-column factors of this tile.
template <class S, class T, int W>
inline void semiring_cb_sep(T* C, index_t sc, const T* A, index_t sa,
                            const T* B, index_t sb, const T* u, const T* v,
                            const T* w) {
  using V = Vec<T, W>;
  const V wv = V::load(w);
  V b[W];
  for (int k = 0; k < W; ++k) b[k] = V::load(B + k * sb);
  for (int r = 0; r < W; ++r) {
    V c = V::load(C + r * sc);
    const V a = V::load(A + r * sa);
    T uv[W];
    for (int k = 0; k < W; ++k) uv[k] = u[r] * v[k];
    c = detail::semiring_row_sep<S, T, W>(c, a, b, uv, wv,
                                          std::make_index_sequence<W>{});
    c.store(C + r * sc);
  }
}

/// The paper's (min,+) kernel: semiring_cb instantiated with min-plus.
template <class T, int W>
inline void minplus_cb(T* C, index_t sc, const T* A, index_t sa, const T* B,
                       index_t sb) {
  semiring_cb<MinPlusSemiring<T>, T, W>(C, sc, A, sa, B, sb);
}

/// (min,+) kernel with the separable term u[r]*v[k]*w[c].
template <class T, int W>
inline void minplus_cb_sep(T* C, index_t sc, const T* A, index_t sa,
                           const T* B, index_t sb, const T* u, const T* v,
                           const T* w) {
  semiring_cb_sep<MinPlusSemiring<T>, T, W>(C, sc, A, sa, B, sb, u, v, w);
}

namespace detail {

template <class T, int W, std::size_t... K>
inline void minplus_row_arg(Vec<T, W>& c, Vec<T, W>& kc, Vec<T, W> a,
                            const Vec<T, W>* b, T kbase,
                            std::index_sequence<K...>) {
  // For each k: cand = a[k] + B[k]; where cand improves, take it and
  // remember k. k indices are stored in T lanes (exact below 2^24 for
  // float, far beyond any practical n for double).
  ((void)([&] {
     const Vec<T, W> cand = Vec<T, W>::template splat<K>(a) + b[K];
     const Vec<T, W> m = vlt(cand, c);
     c = vblend(m, cand, c);
     kc = vblend(m, Vec<T, W>::set1(kbase + T(K)), kc);
   }()),
   ...);
}

}  // namespace detail

/// Argmin-tracking variant of minplus_cb: KC mirrors C and holds, for each
/// cell, the global k index (as a T) of the relaxation that produced the
/// current value, or whatever it held before if no candidate improved.
/// `kbase` is the global index of B's first row. Min-plus only: traceback
/// is defined for the optimisation semirings, and max-plus goes through
/// the same engine with improves() flipped, not through this kernel.
template <class T, int W>
inline void minplus_cb_arg(T* C, T* KC, index_t sc, const T* A, index_t sa,
                           const T* B, index_t sb, index_t kbase) {
  using V = Vec<T, W>;
  V b[W];
  for (int k = 0; k < W; ++k) b[k] = V::load(B + k * sb);
  for (int r = 0; r < W; ++r) {
    V c = V::load(C + r * sc);
    V kc = V::load(KC + r * sc);
    const V a = V::load(A + r * sa);
    detail::minplus_row_arg<T, W>(c, kc, a, b, T(kbase),
                                  std::make_index_sequence<W>{});
    c.store(C + r * sc);
    kc.store(KC + r * sc);
  }
}

/// Scalar argmin-tracking tile relaxation (runtime side); also handles the
/// separable k-term when u/v/w are non-null.
template <class T>
CELLNPDP_NOVEC void minplus_tile_scalar_arg(T* C, T* KC, index_t sc,
                                            const T* A, index_t sa,
                                            const T* B, index_t sb,
                                            index_t side, index_t kbase,
                                            const T* u, const T* v,
                                            const T* w) {
  for (index_t r = 0; r < side; ++r)
    for (index_t k = 0; k < side; ++k) {
      const T avk = A[r * sa + k];
      const T uv = u != nullptr ? u[r] * v[k] : T(0);
      CELLNPDP_NOVEC_LOOP
      for (index_t c = 0; c < side; ++c) {
        T cand = avk + B[k * sb + c];
        if (u != nullptr) cand += uv * w[c];
        if (cand < C[r * sc + c]) {
          C[r * sc + c] = cand;
          KC[r * sc + c] = T(kbase + k);
        }
      }
    }
}

/// Deliberately scalar tile relaxation with a runtime side, used by the
/// "SIMD off" ablation and by the baselines. Never auto-vectorised.
template <class S, class T>
CELLNPDP_NOVEC void semiring_tile_scalar(T* C, index_t sc, const T* A,
                                         index_t sa, const T* B, index_t sb,
                                         index_t side) {
  for (index_t r = 0; r < side; ++r)
    for (index_t k = 0; k < side; ++k) {
      const T a = A[r * sa + k];
      CELLNPDP_NOVEC_LOOP
      for (index_t c = 0; c < side; ++c) {
        const T cand = S::times(a, B[k * sb + c]);
        T& dst = C[r * sc + c];
        if constexpr (S::idempotent) {
          if (S::improves(cand, dst)) dst = cand;
        } else {
          dst = S::plus(dst, cand);
        }
      }
    }
}

/// Scalar separable-term tile relaxation (runtime side).
template <class S, class T>
CELLNPDP_NOVEC void semiring_tile_scalar_sep(T* C, index_t sc, const T* A,
                                             index_t sa, const T* B,
                                             index_t sb, index_t side,
                                             const T* u, const T* v,
                                             const T* w) {
  for (index_t r = 0; r < side; ++r)
    for (index_t k = 0; k < side; ++k) {
      const T avk = A[r * sa + k];
      const T uv = u[r] * v[k];
      CELLNPDP_NOVEC_LOOP
      for (index_t c = 0; c < side; ++c) {
        const T cand = S::times(S::times(avk, B[k * sb + c]), uv * w[c]);
        T& dst = C[r * sc + c];
        if constexpr (S::idempotent) {
          if (S::improves(cand, dst)) dst = cand;
        } else {
          dst = S::plus(dst, cand);
        }
      }
    }
}

/// (min,+) scalar tile (the ablation baseline's historical entry point).
template <class T>
CELLNPDP_NOVEC void minplus_tile_scalar(T* C, index_t sc, const T* A,
                                        index_t sa, const T* B, index_t sb,
                                        index_t side) {
  semiring_tile_scalar<MinPlusSemiring<T>, T>(C, sc, A, sa, B, sb, side);
}

/// (min,+) scalar separable-term tile.
template <class T>
CELLNPDP_NOVEC void minplus_tile_scalar_sep(T* C, index_t sc, const T* A,
                                            index_t sa, const T* B,
                                            index_t sb, index_t side,
                                            const T* u, const T* v,
                                            const T* w) {
  semiring_tile_scalar_sep<MinPlusSemiring<T>, T>(C, sc, A, sa, B, sb, side,
                                                  u, v, w);
}

/// Instruction mix of one WxW computing-block relaxation as it would be
/// emitted for the Cell SPE ISA (which has no lane-wise min: each min costs
/// a compare plus a select). Consumed by the SPU pipeline model.
struct KernelOpCounts {
  int loads = 0;
  int shuffles = 0;
  int adds = 0;
  int compares = 0;
  int selects = 0;
  int stores = 0;

  int total() const {
    return loads + shuffles + adds + compares + selects + stores;
  }
};

/// The paper's register-cached schedule (Table I): 80 instructions at W = 4.
constexpr KernelOpCounts cb_op_counts_cached(int w) {
  // B rows + C rows + A rows loaded once each; one shuffle/add/cmp/sel per
  // (r, k) pair; one store per C row.
  return {3 * w, w * w, w * w, w * w, w * w, w};
}

/// The naive schedule (Fig. 6(b) repeated per step): 128 instructions at
/// W = 4 — every step reloads C, B and A and stores C.
constexpr KernelOpCounts cb_op_counts_uncached(int w) {
  return {3 * w * w, w * w, w * w, w * w, w * w, w * w};
}

}  // namespace cellnpdp
