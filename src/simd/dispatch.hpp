// Runtime kernel selection.
//
// The blocked engine is parameterised by a KernelKind:
//   Scalar - no SIMD at all (the ablation baseline; never auto-vectorised)
//   Native - the 128-bit width of the paper's platforms (SSE: 4 floats or
//            2 doubles per register, mirroring the Cell SPE exactly)
//   Wide   - the 256-bit AVX2 extension kernel (8 floats / 4 doubles),
//            one of the "wider machines" ablations
//
// and by a semiring S (default min-plus): cb_kernel<T, S>(kind) returns
// the bundle of S-specialised computing-block kernels. The argmin kernel
// exists only for min-plus (arg is null otherwise; the engine guards it).
#pragma once

#include <string_view>
#include <type_traits>

#include "simd/kernels.hpp"
#include "simd/semiring.hpp"

namespace cellnpdp {

enum class KernelKind { Scalar, Native, Wide };

constexpr std::string_view kernel_kind_name(KernelKind k) {
  switch (k) {
    case KernelKind::Scalar: return "scalar";
    case KernelKind::Native: return "simd128";
    case KernelKind::Wide: return "simd256";
  }
  return "?";
}

template <class T>
struct CbKernel {
  using PureFn = void (*)(T*, index_t, const T*, index_t, const T*, index_t);
  using SepFn = void (*)(T*, index_t, const T*, index_t, const T*, index_t,
                         const T*, const T*, const T*);
  using ArgFn = void (*)(T*, T*, index_t, const T*, index_t, const T*,
                         index_t, index_t);

  index_t width = 4;       ///< computing-block side in cells
  PureFn pure = nullptr;   ///< C = C (+) (A (x) B)
  SepFn sep = nullptr;     ///< with separable u*v*w factor
  ArgFn arg = nullptr;     ///< pure relaxation + argmin-k (min-plus only)
  KernelKind kind = KernelKind::Scalar;
};

namespace detail {

template <class S, class T, int W>
CELLNPDP_NOVEC void scalar_pure_fixed(T* C, index_t sc, const T* A, index_t sa,
                                      const T* B, index_t sb) {
  semiring_tile_scalar<S, T>(C, sc, A, sa, B, sb, W);
}

template <class S, class T, int W>
CELLNPDP_NOVEC void scalar_sep_fixed(T* C, index_t sc, const T* A, index_t sa,
                                     const T* B, index_t sb, const T* u,
                                     const T* v, const T* w) {
  semiring_tile_scalar_sep<S, T>(C, sc, A, sa, B, sb, W, u, v, w);
}

template <class T, int W>
CELLNPDP_NOVEC void scalar_arg_fixed(T* C, T* KC, index_t sc, const T* A,
                                     index_t sa, const T* B, index_t sb,
                                     index_t kbase) {
  minplus_tile_scalar_arg<T>(C, KC, sc, A, sa, B, sb, W, kbase,
                             static_cast<const T*>(nullptr),
                             static_cast<const T*>(nullptr),
                             static_cast<const T*>(nullptr));
}

}  // namespace detail

/// Returns the computing-block kernel bundle for (T, S, kind). The
/// returned width always divides the engine's default memory-block sides.
/// Defaults to min-plus, which keeps every historical call site intact.
template <class T, class S = MinPlusSemiring<T>>
CbKernel<T> cb_kernel(KernelKind kind) {
  constexpr bool minplus = std::is_same_v<S, MinPlusSemiring<T>>;
  CbKernel<T> k;
  k.kind = kind;
  switch (kind) {
    case KernelKind::Scalar:
      k.width = 4;
      k.pure = &detail::scalar_pure_fixed<S, T, 4>;
      k.sep = &detail::scalar_sep_fixed<S, T, 4>;
      if constexpr (minplus) k.arg = &detail::scalar_arg_fixed<T, 4>;
      break;
    case KernelKind::Native: {
      constexpr int W = sizeof(T) == 4 ? 4 : 2;
      k.width = W;
      k.pure = &semiring_cb<S, T, W>;
      k.sep = &semiring_cb_sep<S, T, W>;
      if constexpr (minplus) k.arg = &minplus_cb_arg<T, W>;
      break;
    }
    case KernelKind::Wide: {
      constexpr int W = sizeof(T) == 4 ? 8 : 4;
      k.width = W;
      k.pure = &semiring_cb<S, T, W>;
      k.sep = &semiring_cb_sep<S, T, W>;
      if constexpr (minplus) k.arg = &minplus_cb_arg<T, W>;
      break;
    }
  }
  return k;
}

}  // namespace cellnpdp
