// Portable fixed-width vector wrapper.
//
// The paper's SPE procedure is written against a 128-bit SIMD register file
// (load / store / shuffle-splat / add / compare / select). Those operations
// exist in every mainstream ISA (the paper notes VMX and SSE expose the same
// set, §IV-A), so the kernels are written once against Vec<T, W> and the
// backend is chosen per specialisation:
//
//   Vec<float, 4>   -> SSE     (__m128)   - the Cell SPE / Nehalem width
//   Vec<float, 8>   -> AVX2    (__m256)   - widened extension kernel
//   Vec<double, 2>  -> SSE2    (__m128d)  - the Cell SPE DP width
//   Vec<double, 4>  -> AVX     (__m256d)
//   anything else   -> scalar array fallback (the "SIMD off" ablation)
//
// All loads/stores assume kBufferAlignment-aligned rows, which the layout
// module guarantees.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/defs.hpp"

#if CELLNPDP_HAVE_AVX2
#include <immintrin.h>
#endif

namespace cellnpdp {

/// Generic scalar fallback; correct for any arithmetic T and width W.
template <class T, int W>
struct Vec {
  T lane[W];

  static Vec load(const T* p) {
    Vec r;
    for (int i = 0; i < W; ++i) r.lane[i] = p[i];
    return r;
  }
  static Vec loadu(const T* p) { return load(p); }
  void store(T* p) const {
    for (int i = 0; i < W; ++i) p[i] = lane[i];
  }
  static Vec set1(T x) {
    Vec r;
    for (int i = 0; i < W; ++i) r.lane[i] = x;
    return r;
  }
  /// Broadcast lane L of a into every lane (the paper's `shuffle`).
  template <int L>
  static Vec splat(Vec a) {
    return set1(a.lane[L]);
  }
  friend Vec operator+(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] + b.lane[i];
    return r;
  }
  friend Vec operator*(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] * b.lane[i];
    return r;
  }
  /// Lane-wise minimum (the paper's compare + select pair).
  friend Vec vmin(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < W; ++i) r.lane[i] = b.lane[i] < a.lane[i] ? b.lane[i] : a.lane[i];
    return r;
  }
  /// Lane-wise maximum (the max-plus / Viterbi reduction).
  friend Vec vmax(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < W; ++i) r.lane[i] = b.lane[i] > a.lane[i] ? b.lane[i] : a.lane[i];
    return r;
  }
  /// Lane mask a < b (non-zero where true). Consumed only by vblend.
  friend Vec vlt(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] < b.lane[i] ? T(1) : T(0);
    return r;
  }
  /// mask ? a : b, lane-wise (mask lanes are all-ones or all-zero).
  friend Vec vblend(Vec mask, Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < W; ++i) r.lane[i] = mask.lane[i] != T(0) ? a.lane[i] : b.lane[i];
    return r;
  }
};

#if CELLNPDP_HAVE_AVX2

template <>
struct Vec<float, 4> {
  __m128 v;

  static Vec load(const float* p) { return {_mm_load_ps(p)}; }
  static Vec loadu(const float* p) { return {_mm_loadu_ps(p)}; }
  void store(float* p) const { _mm_store_ps(p, v); }
  static Vec set1(float x) { return {_mm_set1_ps(x)}; }
  template <int L>
  static Vec splat(Vec a) {
    return {_mm_shuffle_ps(a.v, a.v, _MM_SHUFFLE(L, L, L, L))};
  }
  friend Vec operator+(Vec a, Vec b) { return {_mm_add_ps(a.v, b.v)}; }
  friend Vec operator*(Vec a, Vec b) { return {_mm_mul_ps(a.v, b.v)}; }
  friend Vec vmin(Vec a, Vec b) { return {_mm_min_ps(a.v, b.v)}; }
  friend Vec vmax(Vec a, Vec b) { return {_mm_max_ps(a.v, b.v)}; }
  friend Vec vlt(Vec a, Vec b) { return {_mm_cmplt_ps(a.v, b.v)}; }
  friend Vec vblend(Vec mask, Vec a, Vec b) {
    return {_mm_blendv_ps(b.v, a.v, mask.v)};
  }
};

template <>
struct Vec<float, 8> {
  __m256 v;

  static Vec load(const float* p) { return {_mm256_load_ps(p)}; }
  static Vec loadu(const float* p) { return {_mm256_loadu_ps(p)}; }
  void store(float* p) const { _mm256_store_ps(p, v); }
  static Vec set1(float x) { return {_mm256_set1_ps(x)}; }
  template <int L>
  static Vec splat(Vec a) {
    // Broadcast 32-bit lane L of the 256-bit register into all 8 lanes.
    const __m128 half =
        L < 4 ? _mm256_castps256_ps128(a.v) : _mm256_extractf128_ps(a.v, 1);
    const __m128 s = _mm_shuffle_ps(half, half, _MM_SHUFFLE(L & 3, L & 3, L & 3, L & 3));
    return {_mm256_set_m128(s, s)};
  }
  friend Vec operator+(Vec a, Vec b) { return {_mm256_add_ps(a.v, b.v)}; }
  friend Vec operator*(Vec a, Vec b) { return {_mm256_mul_ps(a.v, b.v)}; }
  friend Vec vmin(Vec a, Vec b) { return {_mm256_min_ps(a.v, b.v)}; }
  friend Vec vmax(Vec a, Vec b) { return {_mm256_max_ps(a.v, b.v)}; }
  friend Vec vlt(Vec a, Vec b) {
    return {_mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ)};
  }
  friend Vec vblend(Vec mask, Vec a, Vec b) {
    return {_mm256_blendv_ps(b.v, a.v, mask.v)};
  }
};

template <>
struct Vec<double, 2> {
  __m128d v;

  static Vec load(const double* p) { return {_mm_load_pd(p)}; }
  static Vec loadu(const double* p) { return {_mm_loadu_pd(p)}; }
  void store(double* p) const { _mm_store_pd(p, v); }
  static Vec set1(double x) { return {_mm_set1_pd(x)}; }
  template <int L>
  static Vec splat(Vec a) {
    return {_mm_shuffle_pd(a.v, a.v, L ? 3 : 0)};
  }
  friend Vec operator+(Vec a, Vec b) { return {_mm_add_pd(a.v, b.v)}; }
  friend Vec operator*(Vec a, Vec b) { return {_mm_mul_pd(a.v, b.v)}; }
  friend Vec vmin(Vec a, Vec b) { return {_mm_min_pd(a.v, b.v)}; }
  friend Vec vmax(Vec a, Vec b) { return {_mm_max_pd(a.v, b.v)}; }
  friend Vec vlt(Vec a, Vec b) { return {_mm_cmplt_pd(a.v, b.v)}; }
  friend Vec vblend(Vec mask, Vec a, Vec b) {
    return {_mm_blendv_pd(b.v, a.v, mask.v)};
  }
};

template <>
struct Vec<double, 4> {
  __m256d v;

  static Vec load(const double* p) { return {_mm256_load_pd(p)}; }
  static Vec loadu(const double* p) { return {_mm256_loadu_pd(p)}; }
  void store(double* p) const { _mm256_store_pd(p, v); }
  static Vec set1(double x) { return {_mm256_set1_pd(x)}; }
  template <int L>
  static Vec splat(Vec a) {
    const __m128d half =
        L < 2 ? _mm256_castpd256_pd128(a.v) : _mm256_extractf128_pd(a.v, 1);
    const __m128d s = _mm_shuffle_pd(half, half, (L & 1) ? 3 : 0);
    return {_mm256_set_m128d(s, s)};
  }
  friend Vec operator+(Vec a, Vec b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend Vec operator*(Vec a, Vec b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend Vec vmin(Vec a, Vec b) { return {_mm256_min_pd(a.v, b.v)}; }
  friend Vec vmax(Vec a, Vec b) { return {_mm256_max_pd(a.v, b.v)}; }
  friend Vec vlt(Vec a, Vec b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
  }
  friend Vec vblend(Vec mask, Vec a, Vec b) {
    return {_mm256_blendv_pd(b.v, a.v, mask.v)};
  }
};

template <>
struct Vec<std::int32_t, 4> {
  __m128i v;

  static Vec load(const std::int32_t* p) {
    return {_mm_load_si128(reinterpret_cast<const __m128i*>(p))};
  }
  static Vec loadu(const std::int32_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  void store(std::int32_t* p) const {
    _mm_store_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static Vec set1(std::int32_t x) { return {_mm_set1_epi32(x)}; }
  template <int L>
  static Vec splat(Vec a) {
    return {_mm_shuffle_epi32(a.v, _MM_SHUFFLE(L, L, L, L))};
  }
  friend Vec operator+(Vec a, Vec b) { return {_mm_add_epi32(a.v, b.v)}; }
  friend Vec operator*(Vec a, Vec b) { return {_mm_mullo_epi32(a.v, b.v)}; }
  friend Vec vmin(Vec a, Vec b) { return {_mm_min_epi32(a.v, b.v)}; }
  friend Vec vmax(Vec a, Vec b) { return {_mm_max_epi32(a.v, b.v)}; }
  friend Vec vlt(Vec a, Vec b) { return {_mm_cmplt_epi32(a.v, b.v)}; }
  friend Vec vblend(Vec mask, Vec a, Vec b) {
    return {_mm_blendv_epi8(b.v, a.v, mask.v)};
  }
};

template <>
struct Vec<std::int32_t, 8> {
  __m256i v;

  static Vec load(const std::int32_t* p) {
    return {_mm256_load_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static Vec loadu(const std::int32_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(std::int32_t* p) const {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static Vec set1(std::int32_t x) { return {_mm256_set1_epi32(x)}; }
  template <int L>
  static Vec splat(Vec a) {
    const __m128i half = L < 4 ? _mm256_castsi256_si128(a.v)
                               : _mm256_extracti128_si256(a.v, 1);
    const __m128i s =
        _mm_shuffle_epi32(half, _MM_SHUFFLE(L & 3, L & 3, L & 3, L & 3));
    return {_mm256_set_m128i(s, s)};
  }
  friend Vec operator+(Vec a, Vec b) { return {_mm256_add_epi32(a.v, b.v)}; }
  friend Vec operator*(Vec a, Vec b) {
    return {_mm256_mullo_epi32(a.v, b.v)};
  }
  friend Vec vmin(Vec a, Vec b) { return {_mm256_min_epi32(a.v, b.v)}; }
  friend Vec vmax(Vec a, Vec b) { return {_mm256_max_epi32(a.v, b.v)}; }
  friend Vec vlt(Vec a, Vec b) { return {_mm256_cmpgt_epi32(b.v, a.v)}; }
  friend Vec vblend(Vec mask, Vec a, Vec b) {
    return {_mm256_blendv_epi8(b.v, a.v, mask.v)};
  }
};

#endif  // CELLNPDP_HAVE_AVX2

}  // namespace cellnpdp
