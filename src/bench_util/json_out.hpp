// Machine-readable bench output: the JSON companion of table.hpp.
//
// Each bench builds one BenchJson("name", cfg), adds flat records of
// string/number fields, and on destruction the file BENCH_<name>.json is
// written into cfg.json_dir (unless JSON output is disabled). The format
// is deliberately flat so trend tooling can ingest it without per-bench
// schemas:
//
//   {"bench":"table3_cpu","full":false,"records":[
//     {"precision":"single","n":1024,"original_s":1.2,...}, ...]}
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "bench_util/bench_config.hpp"
#include "common/json.hpp"

namespace cellnpdp {

class BenchJson {
 public:
  using Field = std::variant<std::string, double, std::int64_t, bool>;

  class Record {
   public:
    Record& set(const char* key, std::string v) {
      fields_.emplace_back(key, Field(std::move(v)));
      return *this;
    }
    Record& set(const char* key, const char* v) {
      return set(key, std::string(v));
    }
    Record& set(const char* key, double v) {
      fields_.emplace_back(key, Field(v));
      return *this;
    }
    Record& set(const char* key, std::int64_t v) {
      fields_.emplace_back(key, Field(v));
      return *this;
    }
    Record& set(const char* key, int v) {
      return set(key, static_cast<std::int64_t>(v));
    }
    Record& set(const char* key, std::size_t v) {
      return set(key, static_cast<std::int64_t>(v));
    }
    Record& set(const char* key, bool v) {
      fields_.emplace_back(key, Field(v));
      return *this;
    }

   private:
    friend class BenchJson;
    std::vector<std::pair<std::string, Field>> fields_;
  };

  BenchJson(std::string name, const BenchConfig& cfg)
      : name_(std::move(name)), enabled_(cfg.json), dir_(cfg.json_dir),
        full_(cfg.full) {}

  /// Adds and returns a new record; chain .set() calls onto it.
  Record& record() {
    records_.emplace_back();
    return records_.back();
  }

  /// Writes the file; called automatically from the destructor. Returns
  /// the path written, or "" when disabled / on failure.
  std::string flush() {
    if (!enabled_ || flushed_) return "";
    flushed_ = true;
    const std::string path = dir_ + "/BENCH_" + name_ + ".json";
    std::ofstream os(path);
    if (!os) return "";
    JsonWriter w(os);
    w.begin_object();
    w.kv("bench", name_);
    w.kv("full", full_);
    w.key("records").begin_array();
    for (const Record& r : records_) {
      w.begin_object();
      for (const auto& [k, f] : r.fields_) {
        w.key(k);
        std::visit([&](const auto& v) { w.value(v); }, f);
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
    std::printf("[bench json: %s, %zu records]\n", path.c_str(),
                records_.size());
    return path;
  }

  ~BenchJson() { flush(); }

 private:
  std::string name_;
  bool enabled_;
  std::string dir_;
  bool full_;
  bool flushed_ = false;
  std::vector<Record> records_;
};

}  // namespace cellnpdp
