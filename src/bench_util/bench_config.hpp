// Shared bench configuration.
//
// By default every bench binary finishes in tens of seconds on one core so
// `for b in build/bench/*; do $b; done` is practical; pass `--full` (or set
// CELLNPDP_FULL=1) to run the paper's full problem sizes where that is a
// native measurement (simulated experiments always run the full sizes —
// the timing-only simulator is cheap).
#pragma once

#include <cstdlib>
#include <cstring>
#include <string>

namespace cellnpdp {

struct BenchConfig {
  bool full = false;
  bool json = true;            ///< write BENCH_<name>.json (see json_out.hpp)
  std::string json_dir = ".";  ///< where the JSON files land

  static BenchConfig from_args(int argc, char** argv) {
    BenchConfig cfg;
    const char* env = std::getenv("CELLNPDP_FULL");
    if (env != nullptr && env[0] == '1') cfg.full = true;
    const char* json_env = std::getenv("CELLNPDP_JSON");
    if (json_env != nullptr && json_env[0] == '0') cfg.json = false;
    const char* dir_env = std::getenv("CELLNPDP_JSON_DIR");
    if (dir_env != nullptr && dir_env[0] != '\0') cfg.json_dir = dir_env;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) cfg.full = true;
      if (std::strcmp(argv[i], "--no-json") == 0) cfg.json = false;
      if (std::strcmp(argv[i], "--json-dir") == 0 && i + 1 < argc)
        cfg.json_dir = argv[++i];
    }
    return cfg;
  }
};

inline void print_bench_header(const std::string& title,
                               const BenchConfig& cfg) {
  std::string bar(title.size() + 8, '=');
  std::printf("\n%s\n=== %s ===\n%s\n", bar.c_str(), title.c_str(),
              bar.c_str());
  if (!cfg.full)
    std::printf("(scaled sizes; pass --full or CELLNPDP_FULL=1 for the "
                "paper's full native sizes)\n");
}

}  // namespace cellnpdp
