// Fixed-width table printer for the paper-style bench outputs.
#pragma once

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace cellnpdp {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <class... Cells>
  void row(Cells&&... cells) {
    std::vector<std::string> r;
    (r.push_back(to_cell(std::forward<Cells>(cells))), ...);
    rows_.push_back(std::move(r));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      width[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], r[c].size());

    auto line = [&](const std::vector<std::string>& cells) {
      os << "| ";
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : std::string{};
        os << s << std::string(width[c] - s.size(), ' ')
           << (c + 1 < headers_.size() ? " | " : " |\n");
      }
    };
    line(headers_);
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c)
      os << std::string(width[c] + 2, '-') << (c + 1 < headers_.size() ? "|" : "|\n");
    for (const auto& r : rows_) line(r);
  }

 private:
  template <class T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      std::ostringstream ss;
      ss << v;
      return ss.str();
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.3 ms" / "4.56 s" / "1.9 h" style durations.
inline std::string fmt_seconds(double s) {
  char buf[64];
  if (s < 0)
    std::snprintf(buf, sizeof buf, "n/a");
  else if (s < 1e-3)
    std::snprintf(buf, sizeof buf, "%.1f us", s * 1e6);
  else if (s < 1.0)
    std::snprintf(buf, sizeof buf, "%.2f ms", s * 1e3);
  else if (s < 600)
    std::snprintf(buf, sizeof buf, "%.3g s", s);
  else if (s < 36000)
    std::snprintf(buf, sizeof buf, "%.3g min", s / 60);
  else
    std::snprintf(buf, sizeof buf, "%.3g h", s / 3600);
  return buf;
}

inline std::string fmt_bytes(double b) {
  char buf[64];
  if (b < 1e6)
    std::snprintf(buf, sizeof buf, "%.1f KB", b / 1e3);
  else if (b < 1e9)
    std::snprintf(buf, sizeof buf, "%.1f MB", b / 1e6);
  else
    std::snprintf(buf, sizeof buf, "%.2f GB", b / 1e9);
  return buf;
}

inline std::string fmt_x(double f) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx", f);
  return buf;
}

inline std::string fmt_pct(double f) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", f * 100);
  return buf;
}

}  // namespace cellnpdp
