// Section V performance model, in closed form.
//
// Notation follows the paper: N1 problem size (cells per side), S bytes per
// element, LS local-store bytes, B memory bandwidth, N2 memory-block side,
// N3 computing-block side, C_C cycles per computing-block step, f clock,
// C_N core (SPE) count.
//
// Key results encoded here and checked by tests:
//   * N2 = sqrt(LS / (6 S))  - six block buffers must fit in the LS;
//   * T_M = N1^3 S / (3 N2 B)  - total fetched bytes over bandwidth;
//   * T_C = N1^3 C_C / (6 N3^3 f C_N);
//   * T_all = max(T_M, T_C), U = U_C * min(1, T_C / T_M);
//   * both T_M and T_C carry the factor N1^3, so U is independent of the
//     problem size — the paper's §V headline result.
#pragma once

#include <algorithm>
#include <cmath>

#include "common/defs.hpp"

namespace cellnpdp {

struct ModelParams {
  double n1 = 0;              ///< problem size (cells)
  double elem_bytes = 4;      ///< S
  double ls_bytes = 256e3;    ///< LS
  double bandwidth = 25.6e9;  ///< B (bytes/s)
  double clock_hz = 3.2e9;    ///< f
  double cores = 16;          ///< C_N
  double n3 = 4;              ///< computing-block side
  double kernel_cycles = 54;  ///< C_C: cycles per computing-block step
  double kernel_ops = 320;    ///< useful 32-bit ops per step (80 instr * 4)
  double peak_ops_per_cycle_per_core = 8;  ///< dual issue * 4 lanes
  double n2_override = 0;  ///< use this memory-block side instead of the
                           ///< LS-derived maximum (0 = derive)
};

/// Memory-block side: the LS-derived maximum (six buffers of N2^2*S bytes
/// must fit), unless explicitly overridden to match a concrete run.
inline double model_block_side(const ModelParams& p) {
  if (p.n2_override > 0) return p.n2_override;
  return std::sqrt(p.ls_bytes / (6.0 * p.elem_bytes));
}

/// Total bytes fetched into local stores: ~ (N1/N2)^3/3 blocks of N2^2*S.
inline double model_fetched_bytes(const ModelParams& p) {
  const double n2 = model_block_side(p);
  return p.n1 * p.n1 * p.n1 * p.elem_bytes / (3.0 * n2);
}

/// T_M: memory time.
inline double model_memory_time(const ModelParams& p) {
  return model_fetched_bytes(p) / p.bandwidth;
}

/// T_C: compute time — N1^3/(6*N3^3) computing-block steps, C_C cycles
/// each, spread over C_N cores.
inline double model_compute_time(const ModelParams& p) {
  const double steps = p.n1 * p.n1 * p.n1 / (6.0 * p.n3 * p.n3 * p.n3);
  return steps * p.kernel_cycles / (p.clock_hz * p.cores);
}

inline double model_total_time(const ModelParams& p) {
  return std::max(model_memory_time(p), model_compute_time(p));
}

/// U_C: utilization while a computing-block step executes.
inline double model_kernel_utilization(const ModelParams& p) {
  return p.kernel_ops /
         (p.kernel_cycles * p.peak_ops_per_cycle_per_core);
}

/// U = U_C * T_C / T_all = U_C * min(1, T_C / T_M): the processor
/// utilization of the whole run. Independent of N1 (both times scale as
/// N1^3).
inline double model_utilization(const ModelParams& p) {
  const double tc = model_compute_time(p);
  const double tm = model_memory_time(p);
  return model_kernel_utilization(p) * std::min(1.0, tc / tm);
}

/// The §V constraint: the minimum bandwidth that keeps the machine
/// compute-bound (T_M <= T_C), i.e. B >= 3*sqrt(6)*S^{3/2}*N3^3*f*C_N /
/// (C_C*sqrt(LS)) — returned directly so callers can compare with B.
inline double model_required_bandwidth(const ModelParams& p) {
  const double n2 = model_block_side(p);
  // T_M <= T_C  <=>  B >= (N1^3 S / (3 N2)) / T_C; N1^3 cancels:
  const double per_n13_bytes = p.elem_bytes / (3.0 * n2);
  const double per_n13_tc =
      p.kernel_cycles / (6.0 * p.n3 * p.n3 * p.n3 * p.clock_hz * p.cores);
  return per_n13_bytes / per_n13_tc;
}

/// True when the configuration is compute-bound.
inline bool model_compute_bound(const ModelParams& p) {
  return model_memory_time(p) <= model_compute_time(p);
}

}  // namespace cellnpdp
