// In-process distributed solve: runs a whole P-peer group inside one
// process, each rank on its own thread with its own full-size matrix and
// its own PeerGroup over real loopback sockets. This is the harness the
// `distributed` backend, test_dist, and bench_dist share — the wire
// path, handshakes, checksums, and dependence tracking are exactly the
// multi-process ones; only process isolation is skipped (verify.sh's
// dist phase covers the true multi-process form via `npdp dist-solve`).
//
// All listeners are bound (port 0 → ephemeral) before any peer thread
// starts, so every rank knows every port and the mesh comes up without
// retries.
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "dist/dist_solver.hpp"
#include "layout/blocked.hpp"

namespace cellnpdp::dist {

/// Solves `inst` across `peers` in-process ranks and returns rank 0's
/// assembled matrix (all ranks assemble identical bytes; tests check).
/// Per-rank stats land in *stats (resized to `peers`) when given.
/// Throws DistError if any rank fails.
template <class T>
BlockedTriangularMatrix<T> solve_distributed_in_process(
    const NpdpInstance<T>& inst, const DistOptions& opts, std::uint32_t peers,
    std::vector<DistStats>* stats = nullptr) {
  if (peers < 2) throw DistError("in-process solve needs >= 2 peers");
  std::vector<PeerEndpoint> endpoints(peers);
  std::vector<net::FdGuard> listeners(peers);
  std::string err;
  for (std::uint32_t r = 0; r < peers; ++r) {
    const int fd = net::tcp_listen("127.0.0.1", 0, &err);
    if (fd < 0) throw DistError("listen failed: " + err);
    listeners[r].reset(fd);
    endpoints[r].host = "127.0.0.1";
    endpoints[r].port = net::local_port(fd);
  }

  if (stats != nullptr) {
    stats->clear();
    stats->resize(peers);
  }
  std::vector<std::unique_ptr<BlockedTriangularMatrix<T>>> mats(peers);
  std::vector<std::string> errors(peers);
  std::vector<std::thread> threads;
  threads.reserve(peers);
  for (std::uint32_t r = 0; r < peers; ++r) {
    threads.emplace_back([&, r, lfd = std::move(listeners[r])]() mutable {
      try {
        mats[r] = std::make_unique<BlockedTriangularMatrix<T>>(
            inst.n, opts.tuning.block_side, semiring_zero<T>(inst.semiring));
        PeerGroup group(r, endpoints, opts.group);
        group.adopt_listener(lfd.release());
        solve_distributed_into(*mats[r], inst, group, opts,
                               stats != nullptr ? &(*stats)[r] : nullptr);
      } catch (const std::exception& e) {
        errors[r] = e.what();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::uint32_t r = 0; r < peers; ++r)
    if (!errors[r].empty())
      throw DistError("rank " + std::to_string(r) + ": " + errors[r]);
  return std::move(*mats[0]);
}

/// Registers the `distributed` solver backend (an in-process 3-peer
/// coordinator) with the global BackendRegistry. Idempotent. Lives here —
/// called by main()s that link the dist library — because the backend
/// library cannot depend on dist (dist → net → serve → backend would
/// cycle).
void register_distributed_backend();

}  // namespace cellnpdp::dist
