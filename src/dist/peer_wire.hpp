// Wire frames for the peer-execution tier (src/dist): the four symmetric
// frame kinds a distributed solve exchanges, riding the same 20-byte
// versioned header as every other npdp frame (src/net/protocol.hpp) and
// decoded with the same bounds-checked WireReader discipline — a payload
// must be consumed exactly, enum bytes are range-checked, and any
// malformation is answered with a typed ProtoError instead of trusting
// the bytes.
//
//   PeerHello      opens a peer connection: sender rank, group size, and
//                  a workload fingerprint (n, block side, semiring, elem
//                  width, config hash) that every peer must agree on —
//                  two processes solving different instances must fail
//                  the handshake, not diverge silently.
//   BlockAnnounce  a finished block's coordinates, payload size, and
//                  FNV-1a checksum. Always precedes the matching
//                  BlockData on the same connection, so the receiver can
//                  validate geometry and reserve before the big frame.
//   BlockData      the block itself: coordinates, checksum again, then
//                  the raw bs*bs cell bytes exactly as they sit in the
//                  BlockedTriangularMatrix slab (one contiguous memcpy
//                  each way keeps the exchange bit-exact).
//   PeerDone       the sender has computed every block it owns and has
//                  every remote block; carries counters for sanity.
//
// Peer frames are v2 frames: a v1 header on any of them is rejected
// (kind "peer frames require protocol v2"), because v1 predates the peer
// tier and nothing at that version can have produced one legitimately.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "net/protocol.hpp"

namespace cellnpdp::dist {

/// The handshake payload. `config_hash` fingerprints whatever the driver
/// cannot express in the explicit fields (seed, workload mode, kernel);
/// peers compare the whole struct field-for-field.
struct PeerHello {
  std::uint32_t rank = 0;
  std::uint32_t nranks = 0;
  std::uint64_t config_hash = 0;
  std::int64_t n = 0;
  std::int64_t block_side = 0;
  std::uint8_t semiring = 0;   ///< SemiringId as a byte
  std::uint8_t elem_bytes = 0; ///< sizeof(T): 4 = float, 8 = double
};

struct BlockAnnounce {
  std::uint32_t bi = 0;
  std::uint32_t bj = 0;
  std::uint32_t bytes = 0;
  std::uint64_t checksum = 0;
};

/// Decoded view of a BlockData payload. `data` points into the payload
/// buffer passed to decode (zero-copy; the caller memcpys into its slab).
struct BlockDataView {
  std::uint32_t bi = 0;
  std::uint32_t bj = 0;
  std::uint64_t checksum = 0;
  const std::uint8_t* data = nullptr;
  std::size_t len = 0;
};

struct PeerDone {
  std::uint32_t rank = 0;
  std::uint32_t blocks_computed = 0;
  std::uint64_t bytes_sent = 0;
};

/// Fixed non-payload prefix of a BlockData frame (bi, bj, checksum).
constexpr std::size_t kBlockDataPrefix = 4 + 4 + 8;

inline std::vector<std::uint8_t> encode_peer_hello(std::uint64_t id,
                                                   const PeerHello& h) {
  std::vector<std::uint8_t> body;
  net::put_u32(body, h.rank);
  net::put_u32(body, h.nranks);
  net::put_u64(body, h.config_hash);
  net::put_i64(body, h.n);
  net::put_i64(body, h.block_side);
  net::put_u8(body, h.semiring);
  net::put_u8(body, h.elem_bytes);
  std::vector<std::uint8_t> out;
  out.reserve(net::kHeaderSize + body.size());
  net::encode_header(out, net::MsgType::PeerHello, id,
                     static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

inline std::vector<std::uint8_t> encode_block_announce(
    std::uint64_t id, const BlockAnnounce& a) {
  std::vector<std::uint8_t> body;
  net::put_u32(body, a.bi);
  net::put_u32(body, a.bj);
  net::put_u32(body, a.bytes);
  net::put_u64(body, a.checksum);
  std::vector<std::uint8_t> out;
  out.reserve(net::kHeaderSize + body.size());
  net::encode_header(out, net::MsgType::BlockAnnounce, id,
                     static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

inline std::vector<std::uint8_t> encode_block_data(std::uint64_t id,
                                                   std::uint32_t bi,
                                                   std::uint32_t bj,
                                                   std::uint64_t checksum,
                                                   const void* data,
                                                   std::size_t len) {
  std::vector<std::uint8_t> out;
  out.reserve(net::kHeaderSize + kBlockDataPrefix + len);
  net::encode_header(out, net::MsgType::BlockData, id,
                     static_cast<std::uint32_t>(kBlockDataPrefix + len));
  net::put_u32(out, bi);
  net::put_u32(out, bj);
  net::put_u64(out, checksum);
  const auto* p = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), p, p + len);
  return out;
}

inline std::vector<std::uint8_t> encode_peer_done(std::uint64_t id,
                                                  const PeerDone& d) {
  std::vector<std::uint8_t> body;
  net::put_u32(body, d.rank);
  net::put_u32(body, d.blocks_computed);
  net::put_u64(body, d.bytes_sent);
  std::vector<std::uint8_t> out;
  out.reserve(net::kHeaderSize + body.size());
  net::encode_header(out, net::MsgType::PeerDone, id,
                     static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

namespace wire_detail {
inline bool require_v2(std::uint16_t version, std::string* err) {
  if (version >= 2) return true;
  *err = "peer frames require protocol v2";
  return false;
}
inline bool finish(const net::WireReader& r, std::string* err) {
  if (r.done()) return true;
  *err = r.ok ? "trailing bytes after payload" : "payload truncated";
  return false;
}
}  // namespace wire_detail

inline bool decode_peer_hello(std::uint16_t version, const std::uint8_t* p,
                              std::size_t n, PeerHello* out,
                              std::string* err) {
  if (!wire_detail::require_v2(version, err)) return false;
  net::WireReader r(p, n);
  out->rank = r.u32();
  out->nranks = r.u32();
  out->config_hash = r.u64();
  out->n = r.i64();
  out->block_side = r.i64();
  out->semiring = r.u8();
  out->elem_bytes = r.u8();
  if (!wire_detail::finish(r, err)) return false;
  if (out->nranks < 1 || out->rank >= out->nranks) {
    *err = "hello: rank out of range";
    return false;
  }
  if (out->semiring >= kSemiringCount) {
    *err = "hello: semiring byte out of range";
    return false;
  }
  if (out->elem_bytes != 4 && out->elem_bytes != 8) {
    *err = "hello: element width must be 4 or 8";
    return false;
  }
  if (out->n < 1 || out->block_side < 1) {
    *err = "hello: n and block side must be >= 1";
    return false;
  }
  return true;
}

inline bool decode_block_announce(std::uint16_t version,
                                  const std::uint8_t* p, std::size_t n,
                                  BlockAnnounce* out, std::string* err) {
  if (!wire_detail::require_v2(version, err)) return false;
  net::WireReader r(p, n);
  out->bi = r.u32();
  out->bj = r.u32();
  out->bytes = r.u32();
  out->checksum = r.u64();
  if (!wire_detail::finish(r, err)) return false;
  if (out->bi > out->bj) {
    *err = "announce: block above the diagonal (bi > bj)";
    return false;
  }
  return true;
}

/// `expected_len` is the receiver's block_bytes (known from the hello);
/// a payload of any other size is rejected before the data is trusted —
/// this is what keeps an oversize or short BlockData from ever reaching
/// the matrix slab.
inline bool decode_block_data(std::uint16_t version, const std::uint8_t* p,
                              std::size_t n, std::size_t expected_len,
                              BlockDataView* out, std::string* err) {
  if (!wire_detail::require_v2(version, err)) return false;
  net::WireReader r(p, n);
  out->bi = r.u32();
  out->bj = r.u32();
  out->checksum = r.u64();
  if (!r.ok) {
    *err = "payload truncated";
    return false;
  }
  out->data = p + r.off;
  out->len = n - r.off;
  if (out->len != expected_len) {
    *err = "block data: payload is " + std::to_string(out->len) +
           " bytes, expected " + std::to_string(expected_len);
    return false;
  }
  if (out->bi > out->bj) {
    *err = "block data: block above the diagonal (bi > bj)";
    return false;
  }
  return true;
}

inline bool decode_peer_done(std::uint16_t version, const std::uint8_t* p,
                             std::size_t n, PeerDone* out, std::string* err) {
  if (!wire_detail::require_v2(version, err)) return false;
  net::WireReader r(p, n);
  out->rank = r.u32();
  out->blocks_computed = r.u32();
  out->bytes_sent = r.u64();
  return wire_detail::finish(r, err);
}

}  // namespace cellnpdp::dist
