#include "dist/stats_endpoint.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <sstream>
#include <vector>

#include "net/protocol.hpp"
#include "obs/metrics.hpp"

namespace cellnpdp::dist {

namespace {

constexpr int kPollSliceMs = 100;

/// Reads one complete frame from a blocking fd, polling in short slices
/// so `stop` is honoured. Returns false on close/error/stop.
bool read_frame(int fd, const std::atomic<bool>& stop,
                std::vector<std::uint8_t>* buf, net::FrameHeader* h) {
  buf->clear();
  std::size_t want = net::kHeaderSize;
  bool have_header = false;
  std::uint8_t tmp[16 * 1024];
  while (!stop.load(std::memory_order_acquire)) {
    if (buf->size() >= want) {
      if (!have_header) {
        if (net::parse_header(buf->data(), buf->size(), h) !=
            net::HeaderParse::Ok)
          return false;  // bad magic: the stream is unsynchronized
        if (h->len > net::kDefaultMaxFrame) return false;
        have_header = true;
        want = net::kHeaderSize + h->len;
      }
      if (have_header && buf->size() >= want) return true;
    }
    const long got =
        net::recv_some(fd, tmp, std::min(sizeof tmp, want - buf->size()),
                       kPollSliceMs);
    if (got > 0)
      buf->insert(buf->end(), tmp, tmp + got);
    else if (got == 0 || got == -1)
      return false;
    // -2: slice elapsed, loop re-checks stop.
  }
  return false;
}

std::string stats_json() {
  std::ostringstream os;
  os << "{\"metrics\":";
  obs::metrics().write_json(os);
  os << "}";
  return os.str();
}

}  // namespace

bool StatsEndpoint::start(const std::string& host, std::uint16_t port,
                          std::string* err) {
  const int fd = net::tcp_listen(host, port, err);
  if (fd < 0) return false;
  listener_.reset(fd);
  port_ = net::local_port(fd);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void StatsEndpoint::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  listener_.reset();
}

void StatsEndpoint::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd pfd{listener_.get(), POLLIN, 0};
    if (::poll(&pfd, 1, kPollSliceMs) <= 0) continue;
    const int cfd = ::accept4(listener_.get(), nullptr, nullptr, 0);
    if (cfd < 0) continue;
    net::FdGuard conn(cfd);
    std::vector<std::uint8_t> buf;
    net::FrameHeader h;
    // One connection at a time: `npdp top` polls with a single short
    // connection per refresh, so serialising accepts is plenty.
    while (read_frame(cfd, stop_, &buf, &h)) {
      std::vector<std::uint8_t> reply;
      switch (h.type) {
        case net::MsgType::Ping:
          reply = net::encode_pong(h.id);
          break;
        case net::MsgType::Stats:
          reply = net::encode_stats_text(h.id, stats_json());
          break;
        case net::MsgType::StatsRequest: {
          net::WireStats ws;
          ws.metrics = obs::metrics().snapshot();
          reply = net::encode_stats_response(h.id, ws);
          break;
        }
        default:
          reply = net::encode_proto_error(
              h.id, net::ProtoErrorCode::UnknownType,
              "stats endpoint serves ping/stats only");
          break;
      }
      if (!net::send_all(cfd, reply.data(), reply.size())) break;
    }
  }
}

}  // namespace cellnpdp::dist
