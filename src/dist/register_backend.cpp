// The `distributed` coordinator backend: one registry name that runs a
// 3-peer in-process distributed solve over real loopback sockets. It
// registers from the dist library (not backend/registry.cpp) because the
// backend library cannot link dist — dist → net → serve → backend would
// close a dependency cycle — so main()s that link cellnpdp_dist opt in
// by calling register_distributed_backend().
#include <memory>
#include <mutex>

#include "backend/solver_backend.hpp"
#include "dist/in_process.hpp"

namespace cellnpdp::dist {

namespace {

constexpr std::uint32_t kBackendPeers = 3;

struct DistributedBackend final : backend::SolverBackend {
  const char* name() const override { return "distributed"; }
  backend::Capabilities caps() const override {
    backend::Capabilities c;
    c.double_precision = true;
    c.weighted = true;
    c.parallel = true;  // tuning.threads = compute threads per peer
    c.semirings = backend::kAllSemirings;
    return c;
  }
  backend::BackendResult solve(const NpdpInstance<float>& inst,
                               const ExecutionContext& ctx) const override {
    DistOptions opts;
    opts.tuning = ctx.tuning;
    backend::BackendResult r;
    auto mat = std::make_shared<BlockedTriangularMatrix<float>>(
        solve_distributed_in_process(inst, opts, kBackendPeers));
    r.value = mat->size() > 0
                  ? double(mat->at(0, mat->size() - 1))
                  : 0.0;
    r.blocked = std::move(mat);
    return r;
  }
};

}  // namespace

void register_distributed_backend() {
  static std::once_flag once;
  std::call_once(once, [] {
    backend::BackendRegistry::instance().add(
        std::make_unique<DistributedBackend>());
  });
}

}  // namespace cellnpdp::dist
