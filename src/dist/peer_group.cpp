#include "dist/peer_group.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.hpp"

namespace cellnpdp::dist {

namespace {

using Clock = std::chrono::steady_clock;

/// Receive poll slice: short enough that stop() is honoured promptly,
/// long enough that an idle receiver costs ~10 wakeups/second.
constexpr int kPollSliceMs = 100;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

bool hello_compatible(const PeerHello& a, const PeerHello& b) {
  return a.nranks == b.nranks && a.config_hash == b.config_hash &&
         a.n == b.n && a.block_side == b.block_side &&
         a.semiring == b.semiring && a.elem_bytes == b.elem_bytes;
}

std::string describe(const PeerEndpoint& e) {
  return e.host + ":" + std::to_string(e.port);
}

}  // namespace

std::vector<PeerEndpoint> parse_peer_list(const std::string& spec) {
  std::vector<PeerEndpoint> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string item =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    const std::size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= item.size())
      throw DistError("peer list: expected host:port, got '" + item + "'");
    const std::string port_s = item.substr(colon + 1);
    long port = 0;
    for (const char c : port_s) {
      if (c < '0' || c > '9')
        throw DistError("peer list: bad port in '" + item + "'");
      port = port * 10 + (c - '0');
      if (port > 65535)
        throw DistError("peer list: port out of range in '" + item + "'");
    }
    PeerEndpoint e;
    e.host = item.substr(0, colon);
    e.port = static_cast<std::uint16_t>(port);
    out.push_back(std::move(e));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

PeerGroup::PeerGroup(std::uint32_t rank, std::vector<PeerEndpoint> endpoints,
                     PeerGroupOptions opts)
    : rank_(rank),
      endpoints_(std::move(endpoints)),
      opts_(opts),
      conns_(endpoints_.size()),
      hellos_(endpoints_.size()) {
  if (endpoints_.size() < 2)
    throw DistError("peer group needs at least 2 endpoints");
  if (rank_ >= endpoints_.size())
    throw DistError("rank " + std::to_string(rank_) + " out of range for " +
                    std::to_string(endpoints_.size()) + " peers");
}

PeerGroup::~PeerGroup() { stop(); }

void PeerGroup::adopt_listener(int fd) { listener_.reset(fd); }

bool PeerGroup::read_frame(int fd, std::vector<std::uint8_t>* buf,
                           net::FrameHeader* h, int deadline_ms,
                           std::string* err) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           deadline_ms < 0 ? 0 : deadline_ms);
  buf->clear();
  std::size_t want = net::kHeaderSize;  // grows once the header is parsed
  bool have_header = false;
  std::uint8_t tmp[64 * 1024];
  while (true) {
    if (stopping_.load(std::memory_order_acquire)) {
      *err = "stopped";
      return false;
    }
    if (buf->size() >= want) {
      if (!have_header) {
        switch (net::parse_header(buf->data(), buf->size(), h)) {
          case net::HeaderParse::BadMagic:
            *err = "bad magic: peer stream unsynchronized";
            return false;
          case net::HeaderParse::NeedMore:
            break;  // unreachable: buf->size() >= kHeaderSize
          case net::HeaderParse::Ok: {
            if (h->version < net::kMinVersion || h->version > net::kVersion) {
              *err = "unsupported protocol version " +
                     std::to_string(h->version);
              return false;
            }
            if (h->len > opts_.max_frame) {
              *err = "frame too large (" + std::to_string(h->len) +
                     " > " + std::to_string(opts_.max_frame) + ")";
              return false;
            }
            have_header = true;
            want = net::kHeaderSize + h->len;
            break;
          }
        }
      }
      if (have_header && buf->size() >= want) return true;
    }
    const std::size_t chunk =
        std::min(sizeof tmp, want > buf->size() ? want - buf->size()
                                                : sizeof tmp);
    const long got = net::recv_some(fd, tmp, chunk, kPollSliceMs);
    if (got > 0) {
      buf->insert(buf->end(), tmp, tmp + got);
      continue;
    }
    if (got == 0) {
      *err = buf->empty() ? "peer closed connection"
                          : "peer closed connection mid-frame (" +
                                std::to_string(buf->size()) +
                                " bytes buffered)";
      return false;
    }
    if (got == -1) {
      *err = "recv error";
      return false;
    }
    // -2: poll slice elapsed with no bytes.
    if (deadline_ms >= 0 && Clock::now() >= deadline) {
      *err = "read timeout";
      return false;
    }
  }
}

void PeerGroup::establish(const PeerHello& self) {
  if (self.rank != rank_ || self.nranks != nranks())
    throw DistError("hello rank/nranks does not match the group");
  hellos_[rank_] = self;

  std::string err;
  if (!listener_.valid()) {
    const int lfd =
        net::tcp_listen(endpoints_[rank_].host, endpoints_[rank_].port, &err);
    if (lfd < 0)
      throw DistError("rank " + std::to_string(rank_) + ": listen on " +
                      describe(endpoints_[rank_]) + " failed: " + err);
    listener_.reset(lfd);
  }

  const auto deadline =
      Clock::now() + std::chrono::milliseconds(opts_.connect_timeout_ms);
  const auto hello_frame = encode_peer_hello(rank_, self);

  // Validates and stores a hello read from `fd`; returns the peer rank.
  const auto finish_handshake = [&](int fd, std::string who,
                                    bool expect_lower) -> std::uint32_t {
    std::vector<std::uint8_t> buf;
    net::FrameHeader h;
    if (!read_frame(fd, &buf, &h, remaining_ms(deadline), &err))
      throw DistError("handshake with " + who + ": " + err);
    if (h.type != net::MsgType::PeerHello)
      throw DistError("handshake with " + who + ": expected PeerHello, got " +
                      std::to_string(static_cast<int>(h.type)));
    PeerHello peer;
    if (!decode_peer_hello(h.version, buf.data() + net::kHeaderSize, h.len,
                           &peer, &err))
      throw DistError("handshake with " + who + ": " + err);
    if (peer.rank == rank_ || peer.rank >= nranks())
      throw DistError("handshake with " + who + ": rank " +
                      std::to_string(peer.rank) + " invalid");
    if (expect_lower ? peer.rank < rank_ : peer.rank > rank_) {
      // expected direction; fall through
    } else {
      throw DistError("handshake with " + who + ": rank " +
                      std::to_string(peer.rank) +
                      " connected from the wrong side");
    }
    if (!hello_compatible(self, peer))
      throw DistError(
          "handshake with " + who +
          ": workload fingerprint mismatch (peers must run identical "
          "instances)");
    if (conns_[peer.rank].fd.valid())
      throw DistError("handshake with " + who + ": duplicate rank " +
                      std::to_string(peer.rank));
    hellos_[peer.rank] = peer;
    return peer.rank;
  };

  // Phase 1 — actively connect to every lower rank (they are listening).
  for (std::uint32_t l = 0; l < rank_; ++l) {
    int fd = -1;
    while (true) {
      const int left = remaining_ms(deadline);
      if (left == 0)
        throw DistError("rank " + std::to_string(rank_) + ": connect to peer " +
                        std::to_string(l) + " (" + describe(endpoints_[l]) +
                        ") timed out: " + err);
      fd = net::tcp_connect_timeout(endpoints_[l].host, endpoints_[l].port,
                                    left, &err);
      if (fd >= 0) break;
      if (Clock::now() >= deadline)
        throw DistError("rank " + std::to_string(rank_) + ": connect to peer " +
                        std::to_string(l) + " (" + describe(endpoints_[l]) +
                        ") timed out: " + err);
      // The peer may simply not have bound yet; retry until the deadline.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    net::FdGuard guard(fd);
    if (!net::send_all(fd, hello_frame.data(), hello_frame.size()))
      throw DistError("rank " + std::to_string(rank_) +
                      ": hello send to peer " + std::to_string(l) + " failed");
    const std::uint32_t who =
        finish_handshake(fd, "peer " + std::to_string(l), /*expect_lower=*/
                         true);
    if (who != l)
      throw DistError("endpoint " + describe(endpoints_[l]) +
                      " answered as rank " + std::to_string(who) +
                      ", expected " + std::to_string(l));
    conns_[l].fd = std::move(guard);
  }

  // Phase 2 — accept every higher rank (they connect to us).
  std::uint32_t pending = nranks() - 1 - rank_;
  while (pending > 0) {
    struct pollfd pfd{listener_.get(), POLLIN, 0};
    const int left = remaining_ms(deadline);
    if (left == 0)
      throw DistError("rank " + std::to_string(rank_) + ": timed out with " +
                      std::to_string(pending) + " peer(s) unconnected");
    const int pr = ::poll(&pfd, 1, std::min(left, kPollSliceMs));
    if (pr < 0 && errno != EINTR)
      throw DistError("rank " + std::to_string(rank_) + ": poll failed");
    if (pr <= 0) continue;
    const int cfd = ::accept4(listener_.get(), nullptr, nullptr, 0);
    if (cfd < 0) continue;
    net::FdGuard guard(cfd);
    int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const std::uint32_t who =
        finish_handshake(cfd, "accepted peer", /*expect_lower=*/false);
    if (!net::send_all(cfd, hello_frame.data(), hello_frame.size()))
      throw DistError("rank " + std::to_string(rank_) +
                      ": hello reply to rank " + std::to_string(who) +
                      " failed");
    conns_[who].fd = std::move(guard);
    --pending;
  }
}

void PeerGroup::start_receiving(FrameHandler on_frame, ErrorHandler on_error) {
  receivers_.reserve(nranks() - 1);
  for (std::uint32_t p = 0; p < nranks(); ++p) {
    if (p == rank_) continue;
    if (!conns_[p].fd.valid())
      throw DistError("start_receiving before establish()");
    receivers_.emplace_back([this, p, on_frame, on_error] {
      receiver_loop(p, on_frame, on_error);
    });
  }
}

void PeerGroup::receiver_loop(std::uint32_t peer, FrameHandler on_frame,
                              ErrorHandler on_error) {
  auto& rx_bytes = obs::metrics().counter("net.peer.bytes_received");
  std::vector<std::uint8_t> buf;
  std::string err;
  while (true) {
    net::FrameHeader h;
    if (!read_frame(conns_[peer].fd.get(), &buf, &h, /*deadline_ms=*/-1,
                    &err)) {
      // A frame-boundary EOF from a peer whose protocol completed is the
      // normal end of stream: a rank that assembles its matrix first
      // closes its sockets while slower ranks are still draining others.
      if (buf.empty() &&
          conns_[peer].finished.load(std::memory_order_acquire))
        return;
      if (!stopping_.load(std::memory_order_acquire)) on_error(peer, err);
      return;
    }
    bytes_received_.fetch_add(net::kHeaderSize + h.len,
                              std::memory_order_relaxed);
    rx_bytes.add(static_cast<std::int64_t>(net::kHeaderSize + h.len));
    try {
      on_frame(peer, h, buf.data() + net::kHeaderSize, h.len);
    } catch (const std::exception& e) {
      if (!stopping_.load(std::memory_order_acquire)) on_error(peer, e.what());
      return;
    }
  }
}

void PeerGroup::send_to(std::uint32_t rank,
                        const std::vector<std::uint8_t>& frame) {
  if (rank >= nranks() || rank == rank_ || !conns_[rank].fd.valid())
    throw DistError("send_to: no connection to rank " + std::to_string(rank));
  {
    std::lock_guard<std::mutex> lock(conns_[rank].send_mu);
    if (!net::send_all(conns_[rank].fd.get(), frame.data(), frame.size()))
      throw DistError("send to rank " + std::to_string(rank) +
                      " failed (peer gone?)");
  }
  bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  obs::metrics()
      .counter("net.peer.bytes_sent")
      .add(static_cast<std::int64_t>(frame.size()));
}

void PeerGroup::send_to_all(const std::vector<std::uint8_t>& frame) {
  for (std::uint32_t p = 0; p < nranks(); ++p)
    if (p != rank_) send_to(p, frame);
}

void PeerGroup::mark_finished(std::uint32_t peer) {
  if (peer < conns_.size())
    conns_[peer].finished.store(true, std::memory_order_release);
}

void PeerGroup::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // Already stopping: just make sure the threads are joined (the first
    // caller may have been the destructor racing an explicit stop()).
  } else {
    for (auto& c : conns_)
      if (c.fd.valid()) ::shutdown(c.fd.get(), SHUT_RDWR);
  }
  for (auto& t : receivers_)
    if (t.joinable()) t.join();
  receivers_.clear();
}

}  // namespace cellnpdp::dist
