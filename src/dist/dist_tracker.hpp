// Distributed dependence tracking for a peer solve.
//
// The simplified two-predecessor graph of BlockDependenceGraph is only
// valid when completion order is globally observable: the left and below
// neighbours transitively cover the full input set *because* everything
// upstream of them finished first in the same address space. Across
// peers that guarantee is gone — blocks arrive over sockets in whatever
// order the network delivers them, so block (bi,bj) must count its FULL
// input set: every (bi,k) with bi <= k < bj and every (k,bj) with
// bi < k <= bj, i.e. 2*(bj-bi) inputs (0 on the diagonal).
//
// DistTracker keeps one countdown per block this rank owns (owner =
// bj mod P, block-column-cyclic, matching cluster_sim) plus an
// arrived-bitmap over ALL blocks so duplicate deliveries are detected
// and the "every block visible" half of the termination condition can be
// answered. Not thread safe: the solver's event loop is its only caller.
#pragma once

#include <cstdint>
#include <vector>

#include "common/defs.hpp"
#include "taskgraph/dependence_graph.hpp"

namespace cellnpdp::dist {

class DistTracker {
 public:
  DistTracker(index_t grid_side, std::uint32_t rank, std::uint32_t nranks)
      : graph_(grid_side), rank_(rank), nranks_(nranks),
        waiting_(static_cast<std::size_t>(graph_.task_count()), -1),
        arrived_(static_cast<std::size_t>(graph_.task_count()), 0) {
    for (index_t id = 0; id < graph_.task_count(); ++id) {
      const auto [bi, bj] = graph_.coords(id);
      if (!owns(bi, bj)) continue;
      ++owned_total_;
      waiting_[static_cast<std::size_t>(id)] =
          2 * static_cast<int>(bj - bi);  // full input set, not simplified
    }
  }

  const BlockDependenceGraph& graph() const { return graph_; }
  index_t grid_side() const { return graph_.grid_side(); }

  bool owns(index_t bi, index_t bj) const {
    (void)bi;
    return static_cast<std::uint32_t>(bj) % nranks_ == rank_;
  }
  static std::uint32_t owner_of(index_t bj, std::uint32_t nranks) {
    return static_cast<std::uint32_t>(bj) % nranks;
  }

  /// Owned blocks ready before any input arrives (owned diagonal blocks).
  std::vector<index_t> initial_ready() const {
    std::vector<index_t> out;
    for (index_t id = 0; id < graph_.task_count(); ++id)
      if (waiting_[static_cast<std::size_t>(id)] == 0 &&
          !arrived_[static_cast<std::size_t>(id)])
        out.push_back(id);
    return out;
  }

  /// Records block (bi,bj) as visible (computed locally or received) and
  /// returns the owned blocks that just became ready. Returns an empty
  /// list for a duplicate (already-visible) block — the caller treats
  /// duplicates as protocol errors for received frames.
  std::vector<index_t> mark_visible(index_t bi, index_t bj) {
    const index_t id = graph_.task_id(bi, bj);
    std::vector<index_t> ready;
    if (arrived_[static_cast<std::size_t>(id)]) return ready;
    arrived_[static_cast<std::size_t>(id)] = 1;
    ++visible_;
    if (owns(bi, bj)) ++owned_done_;
    // Full-graph dependents: every block whose input set contains
    // (bi,bj) — the rest of row bi to the right, and the rest of column
    // bj above. Only owned blocks carry countdowns.
    const index_t m = graph_.grid_side();
    for (index_t j = bj + 1; j < m; ++j) retire_input(bi, j, &ready);
    for (index_t i = 0; i < bi; ++i) retire_input(i, bj, &ready);
    return ready;
  }

  bool seen(index_t bi, index_t bj) const {
    return arrived_[static_cast<std::size_t>(graph_.task_id(bi, bj))] != 0;
  }

  index_t owned_total() const { return owned_total_; }
  index_t owned_done() const { return owned_done_; }
  index_t visible() const { return visible_; }
  bool all_owned_done() const { return owned_done_ == owned_total_; }
  /// True when every block of the triangle is visible locally — the
  /// matrix is fully assembled on this rank.
  bool all_visible() const { return visible_ == graph_.task_count(); }

 private:
  void retire_input(index_t bi, index_t bj, std::vector<index_t>* ready) {
    if (!owns(bi, bj)) return;
    const auto id = static_cast<std::size_t>(graph_.task_id(bi, bj));
    if (--waiting_[id] == 0 && !arrived_[id])
      ready->push_back(static_cast<index_t>(id));
  }

  BlockDependenceGraph graph_;
  std::uint32_t rank_;
  std::uint32_t nranks_;
  std::vector<int> waiting_;       ///< inputs outstanding; -1 = not owned
  std::vector<std::uint8_t> arrived_;
  index_t owned_total_ = 0;
  index_t owned_done_ = 0;
  index_t visible_ = 0;
};

}  // namespace cellnpdp::dist
