// The peer mesh under a distributed solve: one PeerGroup per rank owns
// the TCP connections to every other rank, establishes them with a
// PeerHello handshake that refuses mismatched workloads, and pumps
// received frames to the solver from one receiver thread per connection.
//
// Establishment is deadlock-free by construction: rank r listens on
// endpoints[r], actively connects to every rank below it (with retry
// until the connect deadline, so peers may start in any order), and
// accepts from every rank above it. The connector sends its PeerHello
// first; the acceptor validates the fingerprint and answers with its
// own, so both sides prove they are solving the same instance before a
// single block crosses the wire.
//
// Sending is thread-safe per connection (one mutex per peer fd) and a
// send failure throws DistError — a half-written frame means the peer is
// gone and the solve cannot complete. Receiving never blocks forever on
// a byte that will not come: reads poll in short slices so stop() is
// honoured promptly, and a connection that closes before the solve is
// finished is reported through the on_error callback rather than hung on.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dist/peer_wire.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace cellnpdp::dist {

/// Any failure that aborts a distributed solve: handshake mismatch,
/// connect deadline, peer death mid-solve, malformed peer frame.
class DistError : public std::runtime_error {
 public:
  explicit DistError(const std::string& what) : std::runtime_error(what) {}
};

struct PeerEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Parses "host:port[,host:port...]" into endpoints; throws DistError on
/// malformed input (missing colon, port out of range).
std::vector<PeerEndpoint> parse_peer_list(const std::string& spec);

struct PeerGroupOptions {
  int connect_timeout_ms = 5000;  ///< total budget to build the full mesh
  std::size_t max_frame = net::kDefaultMaxFrame;
};

class PeerGroup {
 public:
  /// A received frame, handed to the receive handler. `payload` is only
  /// valid for the duration of the call.
  using FrameHandler = std::function<void(
      std::uint32_t src_rank, const net::FrameHeader& header,
      const std::uint8_t* payload, std::size_t len)>;
  /// Called (once per failing connection) when a peer dies or sends
  /// garbage; the receiver thread exits after reporting.
  using ErrorHandler =
      std::function<void(std::uint32_t src_rank, const std::string& what)>;

  PeerGroup(std::uint32_t rank, std::vector<PeerEndpoint> endpoints,
            PeerGroupOptions opts = {});
  ~PeerGroup();

  PeerGroup(const PeerGroup&) = delete;
  PeerGroup& operator=(const PeerGroup&) = delete;

  /// Hands the group a pre-bound listening fd for endpoints[rank]
  /// (ownership transfers). The in-process driver binds all listeners
  /// up front so every peer knows every port before any connect starts.
  void adopt_listener(int fd);

  /// Builds the full mesh and completes the hello exchange with every
  /// peer. `self` must carry this group's rank; throws DistError on any
  /// mismatch, timeout, or wire failure. Fills `peer_hellos()`.
  void establish(const PeerHello& self);

  /// Starts one receiver thread per peer connection. Must follow
  /// establish(). Handlers may be called concurrently from different
  /// receiver threads (one per peer, frames from one peer in order).
  void start_receiving(FrameHandler on_frame, ErrorHandler on_error);

  /// Sends one encoded frame to every peer (throws DistError on failure).
  void send_to_all(const std::vector<std::uint8_t>& frame);
  void send_to(std::uint32_t rank, const std::vector<std::uint8_t>& frame);

  /// Marks the group as shutting down and closes all sockets; receiver
  /// threads exit without reporting errors. Idempotent; the destructor
  /// calls it.
  void stop();

  /// Marks `peer` as having finished its protocol (its PeerDone was
  /// processed). A clean EOF from a finished peer is a normal shutdown —
  /// a rank that assembles its matrix first closes its sockets while
  /// slower ranks are still draining — and is not reported as an error.
  /// Call from that peer's frame handler (the same receiver thread that
  /// will later observe the EOF).
  void mark_finished(std::uint32_t peer);

  std::uint32_t rank() const { return rank_; }
  std::uint32_t nranks() const {
    return static_cast<std::uint32_t>(endpoints_.size());
  }
  bool stopping() const { return stopping_.load(std::memory_order_acquire); }

  std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }

  /// The hello each peer presented during establishment (index = rank;
  /// the entry for this group's own rank is `self` as passed in).
  const std::vector<PeerHello>& peer_hellos() const { return hellos_; }

 private:
  struct Conn {
    net::FdGuard fd;
    std::mutex send_mu;
    std::atomic<bool> finished{false};  ///< peer completed its protocol
  };

  void receiver_loop(std::uint32_t peer, FrameHandler on_frame,
                     ErrorHandler on_error);
  /// Reads exactly one frame (header + payload) from `fd` into `buf`.
  /// Returns false with *err set on close/error/deadline; a deadline of
  /// <0 means wait indefinitely (still honouring stop()).
  bool read_frame(int fd, std::vector<std::uint8_t>* buf,
                  net::FrameHeader* h, int deadline_ms, std::string* err);

  std::uint32_t rank_;
  std::vector<PeerEndpoint> endpoints_;
  PeerGroupOptions opts_;
  net::FdGuard listener_;
  std::vector<Conn> conns_;  ///< index = peer rank; self entry unused
  std::vector<PeerHello> hellos_;
  std::vector<std::thread> receivers_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> messages_sent_{0};
};

}  // namespace cellnpdp::dist
