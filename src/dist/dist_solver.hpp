// The distributed blocked solve: every peer runs this same driver over
// its own full-size BlockedTriangularMatrix, computes the block columns
// it owns (bj mod P == rank, matching cluster_sim's placement), and
// broadcasts each finished block to every other peer as a BlockAnnounce
// + BlockData pair. Received blocks are checksum-verified and memcpy'd
// into the local slab, so every peer ends the solve holding the complete
// assembled matrix — bit-identical to solve_blocked_serial, because an
// owned block is only relaxed once its full input set is final and
// remote blocks are exact byte copies of the bytes their owner computed.
//
// There is no antidiagonal barrier anywhere: the DistTracker releases an
// owned block the moment its last input (local or remote) lands, so a
// peer's compute overlaps other peers' compute and the wire transfer of
// finished blocks.
//
// Threading per peer: PeerGroup runs one receiver thread per connection;
// receivers verify + memcpy remote blocks and push events into a mutex +
// condvar inbox that the single solver loop drains. The solver loop does
// all tracker updates and all sends (per-connection FIFO keeps Announce
// before Data and PeerDone after the last block). With tuning.threads >
// 1 the block relaxations themselves fan out over a ThreadPool; the
// finished-block event rides the same inbox, so every cross-thread
// handoff is a mutex chain (TSan-clean by construction).
//
// Failure: a peer dying mid-solve surfaces as a receiver error event or
// a send failure, and the solve throws DistError promptly — never a hang
// and never a partial matrix reported as success. Recovery is
// restart-and-resolve: instances are regenerated deterministically from
// the seed, so rerunning the whole group reproduces the identical
// result (docs/distributed.md).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/execution_context.hpp"
#include "core/instance.hpp"
#include "dist/dist_tracker.hpp"
#include "dist/peer_group.hpp"
#include "dist/peer_wire.hpp"
#include "layout/blocked.hpp"
#include "obs/metrics.hpp"
#include "resilience/checksum.hpp"

namespace cellnpdp::dist {

struct DistOptions {
  NpdpOptions tuning;            ///< block side, kernel, compute threads
  PeerGroupOptions group;        ///< connect deadline, frame-size cap
  /// Fingerprint of whatever the explicit hello fields cannot express
  /// (workload seed, instance mode); peers must agree or the handshake
  /// fails.
  std::uint64_t config_hash = 0;
  /// No event and no computable block for this long aborts the solve —
  /// a wedged peer must become an error, not a hang.
  int stall_timeout_ms = 60000;
};

/// Telemetry of one peer's side of a distributed solve.
struct DistStats {
  index_t blocks_owned = 0;
  index_t blocks_computed = 0;
  index_t blocks_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  double wall_seconds = 0;
  double stall_seconds = 0;  ///< solver loop idle, waiting on remote input
};

namespace detail {

/// The per-(T,S) driver. One instance lives on the stack of one peer's
/// solve call; receiver threads only touch it through the inbox and the
/// matrix slab regions they exclusively own (see file comment).
template <class S, class T>
class PeerSolveRun {
 public:
  PeerSolveRun(BlockedTriangularMatrix<T>& mat, const NpdpInstance<T>& inst,
               PeerGroup& group, const DistOptions& opts, DistStats* stats)
      : mat_(mat),
        inst_(inst),
        group_(group),
        opts_(opts),
        stats_(stats),
        engine_(mat, inst, opts.tuning),
        tracker_(mat.blocks_per_side(), group.rank(), group.nranks()),
        received_(static_cast<std::size_t>(
            tracker_.graph().task_count())),
        pending_announce_(group.nranks()) {}

  SolveStatus run() {
    Stopwatch sw;
    // On ANY exit — error included — receivers must be joined before this
    // object unwinds: their handler lambdas point into it.
    try {
      start();
      run_loop();
    } catch (...) {
      group_.stop();
      throw;
    }
    group_.stop();
    if (stats_ != nullptr) {
      stats_->blocks_owned = tracker_.owned_total();
      stats_->blocks_computed = tracker_.owned_done();
      stats_->bytes_sent = group_.bytes_sent();
      stats_->bytes_received = group_.bytes_received();
      stats_->messages_sent = group_.messages_sent();
      stats_->wall_seconds = sw.seconds();
    }
    return SolveStatus::Ok;
  }

 private:
  void start() {
    PeerHello hello;
    hello.rank = group_.rank();
    hello.nranks = group_.nranks();
    hello.config_hash = opts_.config_hash;
    hello.n = inst_.n;
    hello.block_side = opts_.tuning.block_side;
    hello.semiring = static_cast<std::uint8_t>(inst_.semiring);
    hello.elem_bytes = static_cast<std::uint8_t>(sizeof(T));
    group_.establish(hello);

    // Seed the full matrix BEFORE receivers start: a remote block that
    // lands early must never race the seeding writes to its slab.
    engine_.seed();
    group_.start_receiving(
        [this](std::uint32_t src, const net::FrameHeader& h,
               const std::uint8_t* payload, std::size_t len) {
          on_frame(src, h, payload, len);
        },
        [this](std::uint32_t src, const std::string& what) {
          push_event(Event{Event::Error, 0, 0, src,
                           "peer " + std::to_string(src) + ": " + what});
        });
  }

  void run_loop() {
    std::unique_ptr<ThreadPool> pool;
    if (opts_.tuning.threads > 1)
      pool = std::make_unique<ThreadPool>(opts_.tuning.threads);

    for (const index_t id : tracker_.initial_ready()) ready_.push_back(id);

    auto& stall_ns = obs::metrics().counter("net.peer.stall_ns");
    const auto stall_budget =
        std::chrono::milliseconds(opts_.stall_timeout_ms);
    auto last_progress = std::chrono::steady_clock::now();
    std::uint32_t done_peers = 0;
    bool done_sent = false;
    index_t in_flight = 0;  // blocks handed to the pool, not yet finished

    while (true) {
      // Launch (or run inline) every ready owned block.
      while (!ready_.empty()) {
        const index_t id = ready_.front();
        ready_.pop_front();
        const auto [bi, bj] = tracker_.graph().coords(id);
        if (pool != nullptr) {
          ++in_flight;
          pool->submit([this, bi = bi, bj = bj] {
            try {
              engine_.compute_block(bi, bj, &sink_.local());
              push_event(Event{Event::LocalDone, bi, bj, 0, {}});
            } catch (const std::exception& e) {
              push_event(Event{Event::Error, bi, bj, group_.rank(),
                               std::string("compute failed: ") + e.what()});
            }
          });
        } else {
          engine_.compute_block(bi, bj, &sink_.local());
          finish_local(bi, bj);
          last_progress = std::chrono::steady_clock::now();
        }
      }

      if (tracker_.all_owned_done() && in_flight == 0 && !done_sent) {
        PeerDone d;
        d.rank = group_.rank();
        d.blocks_computed = static_cast<std::uint32_t>(tracker_.owned_done());
        d.bytes_sent = group_.bytes_sent();
        group_.send_to_all(encode_peer_done(group_.rank(), d));
        done_sent = true;
      }
      if (done_sent && tracker_.all_visible() &&
          done_peers == group_.nranks() - 1)
        break;

      // Nothing computable: sleep on the inbox until a remote block, a
      // local completion, a PeerDone, or an error arrives.
      std::vector<Event> batch;
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (inbox_.empty()) {
          const auto t0 = std::chrono::steady_clock::now();
          cv_.wait_for(lock, std::chrono::milliseconds(100),
                       [this] { return !inbox_.empty(); });
          const auto waited = std::chrono::steady_clock::now() - t0;
          const auto ns =
              std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
                  .count();
          stall_ns.add(ns);
          if (stats_ != nullptr) stats_->stall_seconds += double(ns) * 1e-9;
        }
        batch.swap(inbox_);
      }
      if (!batch.empty()) last_progress = std::chrono::steady_clock::now();
      for (const Event& ev : batch) {
        switch (ev.kind) {
          case Event::LocalDone:
            --in_flight;
            finish_local(ev.bi, ev.bj);
            break;
          case Event::Remote: {
            if (stats_ != nullptr) ++stats_->blocks_received;
            for (const index_t id : tracker_.mark_visible(ev.bi, ev.bj))
              ready_.push_back(id);
            break;
          }
          case Event::PeerDoneSeen:
            ++done_peers;
            break;
          case Event::Error:
            throw DistError(ev.what);
        }
      }
      if (std::chrono::steady_clock::now() - last_progress > stall_budget)
        throw DistError(
            "rank " + std::to_string(group_.rank()) + " stalled: " +
            std::to_string(tracker_.owned_done()) + "/" +
            std::to_string(tracker_.owned_total()) + " owned computed, " +
            std::to_string(tracker_.visible()) + "/" +
            std::to_string(tracker_.graph().task_count()) +
            " blocks visible after " +
            std::to_string(opts_.stall_timeout_ms) + " ms without progress");
    }
  }

  struct Event {
    enum Kind { LocalDone, Remote, PeerDoneSeen, Error } kind;
    index_t bi = 0, bj = 0;
    std::uint32_t src = 0;
    std::string what;
  };

  void push_event(Event ev) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      inbox_.push_back(std::move(ev));
    }
    cv_.notify_one();
  }

  /// Broadcast + tracker update for a block this rank just computed.
  /// Solver-loop thread only.
  void finish_local(index_t bi, index_t bj) {
    const T* blk = mat_.block(bi, bj);
    const auto bytes = static_cast<std::size_t>(mat_.block_bytes());
    const std::uint64_t sum = resilience::fnv1a(blk, bytes);
    const auto id =
        static_cast<std::uint64_t>(tracker_.graph().task_id(bi, bj));
    BlockAnnounce a;
    a.bi = static_cast<std::uint32_t>(bi);
    a.bj = static_cast<std::uint32_t>(bj);
    a.bytes = static_cast<std::uint32_t>(bytes);
    a.checksum = sum;
    group_.send_to_all(encode_block_announce(id, a));
    group_.send_to_all(encode_block_data(
        id, a.bi, a.bj, sum, blk, bytes));
    obs::metrics()
        .counter("net.peer.blocks_sent")
        .add(static_cast<std::int64_t>(group_.nranks() - 1));
    for (const index_t rid : tracker_.mark_visible(bi, bj))
      ready_.push_back(rid);
  }

  /// Receiver-thread frame handler. Throwing aborts the connection and
  /// surfaces as an Error event (PeerGroup routes the exception through
  /// on_error).
  void on_frame(std::uint32_t src, const net::FrameHeader& h,
                const std::uint8_t* payload, std::size_t len) {
    std::string err;
    switch (h.type) {
      case net::MsgType::BlockAnnounce: {
        BlockAnnounce a;
        if (!decode_block_announce(h.version, payload, len, &a, &err))
          throw DistError("bad BlockAnnounce: " + err);
        validate_remote_coords(src, a.bi, a.bj);
        if (a.bytes != static_cast<std::uint32_t>(mat_.block_bytes()))
          throw DistError("BlockAnnounce for (" + std::to_string(a.bi) +
                          "," + std::to_string(a.bj) + ") announces " +
                          std::to_string(a.bytes) + " bytes, expected " +
                          std::to_string(mat_.block_bytes()));
        auto& pending = pending_announce_[src];
        const index_t id = tracker_.graph().task_id(a.bi, a.bj);
        if (!pending.emplace(id, a).second)
          throw DistError("duplicate BlockAnnounce for (" +
                          std::to_string(a.bi) + "," + std::to_string(a.bj) +
                          ")");
        return;
      }
      case net::MsgType::BlockData: {
        BlockDataView v;
        if (!decode_block_data(h.version, payload, len,
                               static_cast<std::size_t>(mat_.block_bytes()),
                               &v, &err))
          throw DistError("bad BlockData: " + err);
        validate_remote_coords(src, v.bi, v.bj);
        auto& pending = pending_announce_[src];
        const index_t id = tracker_.graph().task_id(v.bi, v.bj);
        const auto it = pending.find(id);
        if (it == pending.end())
          throw DistError("BlockData for (" + std::to_string(v.bi) + "," +
                          std::to_string(v.bj) + ") without announce");
        if (it->second.checksum != v.checksum)
          throw DistError("BlockData checksum does not match its announce");
        pending.erase(it);
        if (resilience::fnv1a(v.data, v.len) != v.checksum)
          throw DistError("BlockData for (" + std::to_string(v.bi) + "," +
                          std::to_string(v.bj) + ") failed its checksum");
        if (received_[static_cast<std::size_t>(id)].exchange(
                1, std::memory_order_acq_rel) != 0)
          throw DistError("duplicate BlockData for (" + std::to_string(v.bi) +
                          "," + std::to_string(v.bj) + ")");
        std::memcpy(mat_.block(static_cast<index_t>(v.bi),
                               static_cast<index_t>(v.bj)),
                    v.data, v.len);
        obs::metrics().counter("net.peer.blocks_received").add();
        obs::metrics()
            .counter("net.peer.blocks_received{peer=" + std::to_string(src) +
                     "}")
            .add();
        push_event(Event{Event::Remote, static_cast<index_t>(v.bi),
                         static_cast<index_t>(v.bj), src, {}});
        return;
      }
      case net::MsgType::PeerDone: {
        PeerDone d;
        if (!decode_peer_done(h.version, payload, len, &d, &err))
          throw DistError("bad PeerDone: " + err);
        if (d.rank != src)
          throw DistError("PeerDone rank " + std::to_string(d.rank) +
                          " from connection of rank " + std::to_string(src));
        // PeerDone is the last frame a peer sends; from here an EOF on
        // this connection is that peer shutting down normally, not dying.
        group_.mark_finished(src);
        push_event(Event{Event::PeerDoneSeen, 0, 0, src, {}});
        return;
      }
      default:
        throw DistError("unexpected frame type " +
                        std::to_string(static_cast<int>(h.type)) +
                        " on an established peer connection");
    }
  }

  void validate_remote_coords(std::uint32_t src, std::uint32_t bi,
                              std::uint32_t bj) {
    const auto m = static_cast<std::uint32_t>(mat_.blocks_per_side());
    if (bj >= m || bi > bj)
      throw DistError("block (" + std::to_string(bi) + "," +
                      std::to_string(bj) + ") outside the triangle");
    if (DistTracker::owner_of(static_cast<index_t>(bj), group_.nranks()) !=
        src)
      throw DistError("peer " + std::to_string(src) +
                      " sent block (" + std::to_string(bi) + "," +
                      std::to_string(bj) + ") it does not own");
  }

  BlockedTriangularMatrix<T>& mat_;
  const NpdpInstance<T>& inst_;
  PeerGroup& group_;
  const DistOptions& opts_;
  DistStats* stats_;
  BlockEngine<T, S> engine_;
  DistTracker tracker_;
  EngineStatsSink sink_;

  // Receiver-side state. `received_` is the cross-thread dedup guard
  // (atomic per block); `pending_announce_[rank]` is only ever touched by
  // that rank's receiver thread.
  std::vector<std::atomic<std::uint8_t>> received_;
  std::vector<std::map<index_t, BlockAnnounce>> pending_announce_;

  // Solver-loop state.
  std::deque<index_t> ready_;

  // The inbox: receivers and pool workers produce, the solver loop
  // consumes.
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Event> inbox_;
};

}  // namespace detail

/// One peer's share of a distributed solve. `mat` must be freshly
/// constructed (or reset) with the semiring zero and match the
/// instance/tuning geometry; on return it holds the COMPLETE assembled
/// matrix. Throws DistError on any peer failure; never hangs past the
/// stall timeout.
template <class T>
SolveStatus solve_distributed_into(BlockedTriangularMatrix<T>& mat,
                                   const NpdpInstance<T>& inst,
                                   PeerGroup& group, const DistOptions& opts,
                                   DistStats* stats = nullptr) {
  return with_semiring<T>(inst.semiring, [&](auto s) {
    detail::PeerSolveRun<decltype(s), T> run(mat, inst, group, opts, stats);
    return run.run();
  });
}

}  // namespace cellnpdp::dist
