// A minimal stats-only wire endpoint for peer processes. A dist-solve
// peer is not a request/response server — its sockets speak the peer
// frames — but `npdp top` still needs a port to poll, so each peer can
// open one of these: a single background thread that accepts ordinary
// protocol connections and answers Ping, Stats (JSON text) and
// StatsRequest (the binary registry snapshot `npdp top` renders).
// Request types it does not serve get the standard typed ProtoError
// (UnknownType), same policy as the full NpdpServer.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "net/socket.hpp"

namespace cellnpdp::dist {

class StatsEndpoint {
 public:
  StatsEndpoint() = default;
  ~StatsEndpoint() { stop(); }
  StatsEndpoint(const StatsEndpoint&) = delete;
  StatsEndpoint& operator=(const StatsEndpoint&) = delete;

  /// Binds host:port (0 = ephemeral) and starts the accept thread.
  bool start(const std::string& host, std::uint16_t port, std::string* err);
  void stop();

  std::uint16_t port() const { return port_; }

 private:
  void serve_loop();

  net::FdGuard listener_;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
};

}  // namespace cellnpdp::dist
