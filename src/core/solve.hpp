// Top-level solvers: the public entry points of the library.
#pragma once

#include <algorithm>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/instance.hpp"
#include "layout/blocked.hpp"
#include "obs/trace.hpp"
#include "taskgraph/dependence_graph.hpp"
#include "taskgraph/executor.hpp"

namespace cellnpdp {

/// Telemetry of one solve: wall time, per-worker busy time (from the
/// executor or pool) and the merged engine work counters. Pass to any
/// solver to enable collection; all fields cost a couple of clock reads
/// per scheduling block, nothing on the kernel path beyond the counters.
struct SolveStats {
  double wall_seconds = 0;
  std::vector<double> worker_busy;    ///< seconds inside task bodies
  std::vector<index_t> worker_tasks;  ///< tasks per worker (task-queue only)
  index_t tasks = 0;
  EngineStats engine;                 ///< merged across workers

  double busy_total() const {
    double s = 0;
    for (double b : worker_busy) s += b;
    return s;
  }
  /// Mean worker occupancy in [0,1].
  double utilization() const {
    if (wall_seconds <= 0 || worker_busy.empty()) return 0;
    return busy_total() / (wall_seconds * double(worker_busy.size()));
  }
};

/// Serial blocked solve into a caller-owned matrix, which must already
/// match the instance/options geometry and hold the (min,+) identity in
/// every cell (freshly constructed or reset()). Lets a serving layer reuse
/// one arena allocation across many requests of the same shape.
template <class T>
void solve_blocked_serial_into(BlockedTriangularMatrix<T>& mat,
                               const NpdpInstance<T>& inst,
                               const NpdpOptions& opts,
                               SolveStats* ss = nullptr) {
  CELLNPDP_TRACE_SPAN("solve", "solve_blocked_serial");
  BlockEngine<T> engine(mat, inst, opts);
  engine.seed();
  const index_t m = engine.blocks_per_side();
  Stopwatch sw;
  EngineStats* st = ss != nullptr ? &ss->engine : nullptr;
  for (index_t bj = 0; bj < m; ++bj)
    for (index_t bi = bj; bi >= 0; --bi) engine.compute_block(bi, bj, st);
  if (ss != nullptr) {
    ss->wall_seconds = sw.seconds();
    ss->worker_busy = {ss->wall_seconds};
    ss->tasks = triangle_cells(m);
    ss->worker_tasks = {ss->tasks};
  }
}

/// Serial blocked solver: the Fig. 4(b) flowchart — memory blocks walked
/// column-ascending, row-descending.
template <class T>
BlockedTriangularMatrix<T> solve_blocked_serial(const NpdpInstance<T>& inst,
                                                const NpdpOptions& opts,
                                                SolveStats* ss = nullptr) {
  BlockedTriangularMatrix<T> mat(inst.n, opts.block_side);
  solve_blocked_serial_into(mat, inst, opts, ss);
  return mat;
}

/// Parallel blocked solver: tier 2 of CellNPDP — scheduling blocks of
/// opts.sched_side x opts.sched_side memory blocks dispatched through the
/// simplified dependence graph onto opts.threads workers.
template <class T>
BlockedTriangularMatrix<T> solve_blocked_parallel(const NpdpInstance<T>& inst,
                                                  const NpdpOptions& opts,
                                                  SolveStats* ss = nullptr) {
  CELLNPDP_TRACE_SPAN("solve", "solve_blocked_parallel");
  BlockedTriangularMatrix<T> mat(inst.n, opts.block_side);
  BlockEngine<T> engine(mat, inst, opts);
  engine.seed();

  const index_t m = engine.blocks_per_side();
  const index_t ss_side = std::max<index_t>(1, opts.sched_side);
  const index_t ms = ceil_div(m, ss_side);
  BlockDependenceGraph graph(ms);

  EngineStatsSink sink;
  const bool want_stats = ss != nullptr;

  // One task = one scheduling block; its memory blocks are walked in the
  // same column-ascending / row-descending order (paper §IV-B). Each
  // worker counts into its own stats shard (merged below).
  auto body = [&](index_t si, index_t sj) {
    EngineStats* st = want_stats ? &sink.local() : nullptr;
    const index_t col_lo = sj * ss_side,
                  col_hi = std::min(m, (sj + 1) * ss_side);
    const index_t row_lo = si * ss_side,
                  row_hi = std::min(m, (si + 1) * ss_side);
    for (index_t bj = col_lo; bj < col_hi; ++bj)
      for (index_t bi = std::min(bj, row_hi - 1); bi >= row_lo; --bi)
        engine.compute_block(bi, bj, st);
  };

  ExecutorStats es;
  ExecutorStats* esp = want_stats ? &es : nullptr;
  if (opts.threads <= 1) {
    TaskQueueExecutor::run_serial(graph, body, esp);
  } else {
    TaskQueueExecutor::run(graph, opts.threads, body, esp);
  }
  if (want_stats) {
    ss->wall_seconds = es.wall_seconds;
    ss->worker_busy = std::move(es.worker_busy);
    ss->worker_tasks = std::move(es.worker_tasks);
    ss->tasks = es.tasks;
    ss->engine = sink.merged();
  }
  return mat;
}

/// Alternative tier-2 schedule: block anti-diagonals processed step by
/// step with a barrier between steps (the structure of the prior works the
/// paper improves on, §II-B). Blocks within one wavefront are mutually
/// independent; the barrier is the cost this schedule pays.
template <class T>
BlockedTriangularMatrix<T> solve_blocked_wavefront(
    const NpdpInstance<T>& inst, const NpdpOptions& opts,
    SolveStats* ss = nullptr) {
  CELLNPDP_TRACE_SPAN("solve", "solve_blocked_wavefront");
  BlockedTriangularMatrix<T> mat(inst.n, opts.block_side);
  BlockEngine<T> engine(mat, inst, opts);
  engine.seed();
  const index_t m = engine.blocks_per_side();
  ThreadPool pool(opts.threads);
  EngineStatsSink sink;
  const bool want_stats = ss != nullptr;
  Stopwatch sw;
  for (index_t d = 0; d < m; ++d) {
    pool.parallel_for(0, static_cast<std::size_t>(m - d),
                      [&](std::size_t bi) {
                        EngineStats* st = want_stats ? &sink.local() : nullptr;
                        engine.compute_block(static_cast<index_t>(bi),
                                             static_cast<index_t>(bi) + d,
                                             st);
                      });
  }
  if (want_stats) {
    ss->wall_seconds = sw.seconds();
    ss->worker_busy = pool.busy_seconds();
    ss->tasks = triangle_cells(m);
    ss->engine = sink.merged();
  }
  return mat;
}

/// Convenience dispatcher.
template <class T>
BlockedTriangularMatrix<T> solve_blocked(const NpdpInstance<T>& inst,
                                         const NpdpOptions& opts,
                                         SolveStats* ss = nullptr) {
  return opts.threads <= 1 ? solve_blocked_serial(inst, opts, ss)
                           : solve_blocked_parallel(inst, opts, ss);
}

}  // namespace cellnpdp
