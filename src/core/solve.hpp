// Top-level solvers: the public entry points of the library.
#pragma once

#include <algorithm>

#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/instance.hpp"
#include "layout/blocked.hpp"
#include "taskgraph/dependence_graph.hpp"
#include "taskgraph/executor.hpp"

namespace cellnpdp {

/// Serial blocked solver: the Fig. 4(b) flowchart — memory blocks walked
/// column-ascending, row-descending.
template <class T>
BlockedTriangularMatrix<T> solve_blocked_serial(const NpdpInstance<T>& inst,
                                                const NpdpOptions& opts) {
  BlockedTriangularMatrix<T> mat(inst.n, opts.block_side);
  BlockEngine<T> engine(mat, inst, opts);
  engine.seed();
  const index_t m = engine.blocks_per_side();
  for (index_t bj = 0; bj < m; ++bj)
    for (index_t bi = bj; bi >= 0; --bi) engine.compute_block(bi, bj);
  return mat;
}

/// Parallel blocked solver: tier 2 of CellNPDP — scheduling blocks of
/// opts.sched_side x opts.sched_side memory blocks dispatched through the
/// simplified dependence graph onto opts.threads workers.
template <class T>
BlockedTriangularMatrix<T> solve_blocked_parallel(const NpdpInstance<T>& inst,
                                                  const NpdpOptions& opts) {
  BlockedTriangularMatrix<T> mat(inst.n, opts.block_side);
  BlockEngine<T> engine(mat, inst, opts);
  engine.seed();

  const index_t m = engine.blocks_per_side();
  const index_t ss = std::max<index_t>(1, opts.sched_side);
  const index_t ms = ceil_div(m, ss);
  BlockDependenceGraph graph(ms);

  // One task = one scheduling block; its memory blocks are walked in the
  // same column-ascending / row-descending order (paper §IV-B).
  auto body = [&](index_t si, index_t sj) {
    const index_t col_lo = sj * ss, col_hi = std::min(m, (sj + 1) * ss);
    const index_t row_lo = si * ss, row_hi = std::min(m, (si + 1) * ss);
    for (index_t bj = col_lo; bj < col_hi; ++bj)
      for (index_t bi = std::min(bj, row_hi - 1); bi >= row_lo; --bi)
        engine.compute_block(bi, bj);
  };

  if (opts.threads <= 1) {
    TaskQueueExecutor::run_serial(graph, body);
  } else {
    TaskQueueExecutor::run(graph, opts.threads, body);
  }
  return mat;
}

/// Alternative tier-2 schedule: block anti-diagonals processed step by
/// step with a barrier between steps (the structure of the prior works the
/// paper improves on, §II-B). Blocks within one wavefront are mutually
/// independent; the barrier is the cost this schedule pays.
template <class T>
BlockedTriangularMatrix<T> solve_blocked_wavefront(
    const NpdpInstance<T>& inst, const NpdpOptions& opts) {
  BlockedTriangularMatrix<T> mat(inst.n, opts.block_side);
  BlockEngine<T> engine(mat, inst, opts);
  engine.seed();
  const index_t m = engine.blocks_per_side();
  ThreadPool pool(opts.threads);
  for (index_t d = 0; d < m; ++d) {
    pool.parallel_for(0, static_cast<std::size_t>(m - d),
                      [&](std::size_t bi) {
                        engine.compute_block(static_cast<index_t>(bi),
                                             static_cast<index_t>(bi) + d);
                      });
  }
  return mat;
}

/// Convenience dispatcher.
template <class T>
BlockedTriangularMatrix<T> solve_blocked(const NpdpInstance<T>& inst,
                                         const NpdpOptions& opts) {
  return opts.threads <= 1 ? solve_blocked_serial(inst, opts)
                           : solve_blocked_parallel(inst, opts);
}

}  // namespace cellnpdp
