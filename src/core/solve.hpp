// Top-level solvers: the public entry points of the library.
//
// Every solver comes in two forms: an ExecutionContext form — the unified
// entry point carrying cancellation/deadline, tuning, the stats sink, and
// optional arena/pool, returning a SolveStatus — and a legacy
// (opts, stats) form kept source-compatible for callers that never cancel.
// Cancellation is polled at memory-block granularity (one relaxed atomic
// load per block, nothing on the kernel path): a cancelled solve returns
// SolveStatus::Cancelled with a partial but never torn matrix — every
// block is either fully relaxed or untouched since seeding.
#pragma once

#include <algorithm>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/execution_context.hpp"
#include "core/instance.hpp"
#include "layout/blocked.hpp"
#include "obs/trace.hpp"
#include "taskgraph/dependence_graph.hpp"
#include "taskgraph/executor.hpp"

namespace cellnpdp {

namespace detail {

/// The serial driver, compiled once per (T, S) pair.
template <class S, class T>
SolveStatus solve_blocked_serial_into_s(BlockedTriangularMatrix<T>& mat,
                                        const NpdpInstance<T>& inst,
                                        const ExecutionContext& ctx) {
  SolveStats* ss = ctx.stats;
  BlockEngine<T, S> engine(mat, inst, ctx.tuning);
  engine.seed();
  const index_t m = engine.blocks_per_side();
  Stopwatch sw;
  EngineStats* st = ss != nullptr ? &ss->engine : nullptr;
  SolveStatus status = SolveStatus::Ok;
  index_t done = 0;
  for (index_t bj = 0; bj < m && status == SolveStatus::Ok; ++bj) {
    for (index_t bi = bj; bi >= 0; --bi) {
      if (ctx.poll()) {
        status = SolveStatus::Cancelled;
        break;
      }
      engine.compute_block(bi, bj, st);
      ++done;
    }
  }
  if (ss != nullptr) {
    ss->wall_seconds = sw.seconds();
    ss->worker_busy = {ss->wall_seconds};
    ss->tasks = done;
    ss->worker_tasks = {done};
  }
  return status;
}

}  // namespace detail

/// Serial blocked solve into a caller-owned matrix, which must already
/// match the instance/context geometry and hold the semiring zero in
/// every cell (freshly constructed or reset() with the right pad). Lets a
/// serving layer reuse one arena allocation across many requests of the
/// same shape. Dispatches on inst.semiring; each instantiation runs the
/// same driver with the S-specialised engine.
template <class T>
SolveStatus solve_blocked_serial_into(BlockedTriangularMatrix<T>& mat,
                                      const NpdpInstance<T>& inst,
                                      const ExecutionContext& ctx) {
  CELLNPDP_TRACE_SPAN("solve", "solve_blocked_serial");
  return with_semiring<T>(inst.semiring, [&](auto s) {
    return detail::solve_blocked_serial_into_s<decltype(s)>(mat, inst, ctx);
  });
}

/// Legacy form (no cancellation).
template <class T>
void solve_blocked_serial_into(BlockedTriangularMatrix<T>& mat,
                               const NpdpInstance<T>& inst,
                               const NpdpOptions& opts,
                               SolveStats* ss = nullptr) {
  ExecutionContext ctx;
  ctx.tuning = opts;
  ctx.stats = ss;
  solve_blocked_serial_into(mat, inst, ctx);
}

/// Serial blocked solver: the Fig. 4(b) flowchart — memory blocks walked
/// column-ascending, row-descending.
template <class T>
BlockedTriangularMatrix<T> solve_blocked_serial(const NpdpInstance<T>& inst,
                                                const NpdpOptions& opts,
                                                SolveStats* ss = nullptr) {
  BlockedTriangularMatrix<T> mat(inst.n, opts.block_side,
                                 semiring_zero<T>(inst.semiring));
  solve_blocked_serial_into(mat, inst, opts, ss);
  return mat;
}

namespace detail {

/// The task-queue parallel driver, compiled once per (T, S) pair.
template <class S, class T>
SolveStatus solve_blocked_parallel_into_s(BlockedTriangularMatrix<T>& mat,
                                          const NpdpInstance<T>& inst,
                                          const ExecutionContext& ctx) {
  const NpdpOptions& opts = ctx.tuning;
  SolveStats* ss = ctx.stats;
  BlockEngine<T, S> engine(mat, inst, opts);
  engine.seed();

  const index_t m = engine.blocks_per_side();
  const index_t ss_side = std::max<index_t>(1, opts.sched_side);
  const index_t ms = ceil_div(m, ss_side);
  BlockDependenceGraph graph(ms);

  EngineStatsSink sink;
  const bool want_stats = ss != nullptr;

  // One task = one scheduling block; its memory blocks are walked in the
  // same column-ascending / row-descending order (paper §IV-B). Each
  // worker counts into its own stats shard (merged below).
  auto body = [&](index_t si, index_t sj) {
    EngineStats* st = want_stats ? &sink.local() : nullptr;
    const index_t col_lo = sj * ss_side,
                  col_hi = std::min(m, (sj + 1) * ss_side);
    const index_t row_lo = si * ss_side,
                  row_hi = std::min(m, (si + 1) * ss_side);
    for (index_t bj = col_lo; bj < col_hi; ++bj)
      for (index_t bi = std::min(bj, row_hi - 1); bi >= row_lo; --bi) {
        if (ctx.poll()) return;  // dependents are never released
        engine.compute_block(bi, bj, st);
      }
  };

  // Optional per-task recovery: a scheduling block whose body threw is
  // re-seeded (every memory block back to its post-seed() state) and
  // re-run. Safe because dependents are only released on task success, so
  // nobody has read the half-written blocks, and peers never write them.
  TaskRecovery rec;
  const TaskRecovery* recp = nullptr;
  if (ctx.retry.enabled()) {
    rec.retry = ctx.retry;
    rec.reset = [&engine, m, ss_side](index_t si, index_t sj) {
      const index_t col_lo = sj * ss_side,
                    col_hi = std::min(m, (sj + 1) * ss_side);
      const index_t row_lo = si * ss_side,
                    row_hi = std::min(m, (si + 1) * ss_side);
      for (index_t bj = col_lo; bj < col_hi; ++bj)
        for (index_t bi = std::min(bj, row_hi - 1); bi >= row_lo; --bi)
          engine.seed_block(bi, bj);
    };
    recp = &rec;
  }

  ExecutorStats es;
  ExecutorStats* esp = want_stats ? &es : nullptr;
  bool completed;
  if (opts.threads <= 1) {
    const auto order = TaskQueueExecutor::run_serial(graph, body, esp,
                                                     ctx.cancel, recp);
    completed = static_cast<index_t>(order.size()) == graph.task_count() &&
                !ctx.cancelled();
  } else {
    completed = TaskQueueExecutor::run(graph, opts.threads, body, esp,
                                       ctx.cancel, recp) &&
                !ctx.cancelled();
  }
  if (want_stats) {
    ss->wall_seconds = es.wall_seconds;
    ss->worker_busy = std::move(es.worker_busy);
    ss->worker_tasks = std::move(es.worker_tasks);
    ss->tasks = es.tasks;
    ss->engine = sink.merged();
  }
  return completed ? SolveStatus::Ok : SolveStatus::Cancelled;
}

}  // namespace detail

/// Parallel blocked solve into a caller-owned (freshly reset) matrix:
/// tier 2 of CellNPDP — scheduling blocks of sched_side x sched_side
/// memory blocks dispatched through the simplified dependence graph onto
/// tuning.threads workers. Each task body polls the cancel token per
/// memory block; the executor stops releasing tasks once it trips.
template <class T>
SolveStatus solve_blocked_parallel_into(BlockedTriangularMatrix<T>& mat,
                                        const NpdpInstance<T>& inst,
                                        const ExecutionContext& ctx) {
  CELLNPDP_TRACE_SPAN("solve", "solve_blocked_parallel");
  return with_semiring<T>(inst.semiring, [&](auto s) {
    return detail::solve_blocked_parallel_into_s<decltype(s)>(mat, inst,
                                                              ctx);
  });
}

/// Parallel blocked solver (allocating form, legacy signature).
template <class T>
BlockedTriangularMatrix<T> solve_blocked_parallel(const NpdpInstance<T>& inst,
                                                  const NpdpOptions& opts,
                                                  SolveStats* ss = nullptr) {
  BlockedTriangularMatrix<T> mat(inst.n, opts.block_side,
                                 semiring_zero<T>(inst.semiring));
  ExecutionContext ctx;
  ctx.tuning = opts;
  ctx.stats = ss;
  solve_blocked_parallel_into(mat, inst, ctx);
  return mat;
}

namespace detail {

/// The wavefront driver, compiled once per (T, S) pair.
template <class S, class T>
SolveStatus solve_blocked_wavefront_into_s(BlockedTriangularMatrix<T>& mat,
                                           const NpdpInstance<T>& inst,
                                           const ExecutionContext& ctx) {
  const NpdpOptions& opts = ctx.tuning;
  SolveStats* ss = ctx.stats;
  BlockEngine<T, S> engine(mat, inst, opts);
  engine.seed();
  const index_t m = engine.blocks_per_side();
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = ctx.pool;
  if (pool == nullptr) {
    owned = std::make_unique<ThreadPool>(opts.threads);
    pool = owned.get();
  }
  EngineStatsSink sink;
  const bool want_stats = ss != nullptr;
  Stopwatch sw;
  SolveStatus status = SolveStatus::Ok;
  for (index_t d = 0; d < m && status == SolveStatus::Ok; ++d) {
    pool->parallel_for(0, static_cast<std::size_t>(m - d),
                       [&](std::size_t bi) {
                         if (ctx.poll()) return;
                         EngineStats* st =
                             want_stats ? &sink.local() : nullptr;
                         engine.compute_block(static_cast<index_t>(bi),
                                              static_cast<index_t>(bi) + d,
                                              st);
                       });
    if (ctx.cancel.poll_deadline_now()) status = SolveStatus::Cancelled;
  }
  if (want_stats) {
    ss->wall_seconds = sw.seconds();
    ss->worker_busy = pool->busy_seconds();
    ss->tasks = triangle_cells(m);
    ss->engine = sink.merged();
  }
  return status;
}

}  // namespace detail

/// Alternative tier-2 schedule: block anti-diagonals processed step by
/// step with a barrier between steps (the structure of the prior works the
/// paper improves on, §II-B). Blocks within one wavefront are mutually
/// independent; the barrier is the cost this schedule pays. Uses (and
/// never destroys) ctx.pool when provided; cancellation is observed
/// between blocks and between wavefront steps.
template <class T>
SolveStatus solve_blocked_wavefront_into(BlockedTriangularMatrix<T>& mat,
                                         const NpdpInstance<T>& inst,
                                         const ExecutionContext& ctx) {
  CELLNPDP_TRACE_SPAN("solve", "solve_blocked_wavefront");
  return with_semiring<T>(inst.semiring, [&](auto s) {
    return detail::solve_blocked_wavefront_into_s<decltype(s)>(mat, inst,
                                                               ctx);
  });
}

template <class T>
BlockedTriangularMatrix<T> solve_blocked_wavefront(
    const NpdpInstance<T>& inst, const NpdpOptions& opts,
    SolveStats* ss = nullptr) {
  BlockedTriangularMatrix<T> mat(inst.n, opts.block_side,
                                 semiring_zero<T>(inst.semiring));
  ExecutionContext ctx;
  ctx.tuning = opts;
  ctx.stats = ss;
  solve_blocked_wavefront_into(mat, inst, ctx);
  return mat;
}

/// Convenience dispatcher over the context's thread count.
template <class T>
SolveStatus solve_blocked_into(BlockedTriangularMatrix<T>& mat,
                               const NpdpInstance<T>& inst,
                               const ExecutionContext& ctx) {
  return ctx.tuning.threads <= 1
             ? solve_blocked_serial_into(mat, inst, ctx)
             : solve_blocked_parallel_into(mat, inst, ctx);
}

/// Convenience dispatcher (legacy signature).
template <class T>
BlockedTriangularMatrix<T> solve_blocked(const NpdpInstance<T>& inst,
                                         const NpdpOptions& opts,
                                         SolveStats* ss = nullptr) {
  return opts.threads <= 1 ? solve_blocked_serial(inst, opts, ss)
                           : solve_blocked_parallel(inst, opts, ss);
}

}  // namespace cellnpdp
