// Reference solvers: the paper's original algorithm (Fig. 1) and an
// order-independent golden model for the generalised recurrence. These are
// the correctness oracles for every optimised engine in the repository.
#pragma once

#include "common/cancel.hpp"
#include "common/defs.hpp"
#include "core/instance.hpp"
#include "layout/triangular.hpp"
#include "simd/kernels.hpp"

namespace cellnpdp {

/// The original NPDP algorithm, verbatim from Fig. 1, over the row-major
/// triangular layout of the previous works. Pure mode only; cells must be
/// pre-seeded by the caller. Never auto-vectorised (it is the paper's
/// scalar baseline).
template <class T>
CELLNPDP_NOVEC void solve_fig1(TriangularMatrix<T>& d) {
  const index_t n = d.size();
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j - 1; i > -1; --i) {
      CELLNPDP_NOVEC_LOOP
      for (index_t k = i; k < j; ++k) {
        const T cand = d.at(i, k) + d.at(k, j);
        if (cand < d.at(i, j)) d.at(i, j) = cand;
      }
    }
}

/// Golden model: solves `inst` by increasing span j-i, evaluating the
/// documented semantics directly. Matches solve_fig1 bit-for-bit in pure
/// mode (tests enforce this). Polls `cancel` once per span (the coarsest
/// granularity that still aborts within a few milliseconds at realistic
/// sizes); `completed` (when non-null) receives false on cancellation.
template <class T>
TriangularMatrix<T> solve_reference(const NpdpInstance<T>& inst,
                                    const CancelToken& cancel,
                                    bool* completed = nullptr) {
  const index_t n = inst.n;
  TriangularMatrix<T> d(n);
  for (index_t i = 0; i < n; ++i) d.at(i, i) = inst.init(i, i);

  const bool general = inst.general_mode();
  for (index_t span = 1; span < n; ++span) {
    if (cancel.poll()) {
      if (completed != nullptr) *completed = false;
      return d;
    }
    for (index_t i = 0; i + span < n; ++i) {
      const index_t j = i + span;
      const T init = inst.init(i, j);
      T acc = minplus_identity<T>();
      for (index_t k = i + 1; k < j; ++k) {
        T cand = d.at(i, k) + d.at(k, j);
        if (inst.ku != nullptr) cand += inst.ku[i] * inst.kv[k] * inst.kw[j];
        if (inst.kterm) cand += inst.kterm(i, k, j);
        if (cand < acc) acc = cand;
      }
      if (general) {
        const T w = inst.weight ? inst.weight(i, j) : T(0);
        const T relaxed = w + acc;
        d.at(i, j) = relaxed < init ? relaxed : init;
      } else {
        // Pure mode: fold the Fig. 1 k == i self-term into the seed.
        T seed = init;
        const T self = init + d.at(i, i);
        if (self < seed) seed = self;
        d.at(i, j) = acc < seed ? acc : seed;
      }
    }
  }
  if (completed != nullptr) *completed = true;
  return d;
}

template <class T>
TriangularMatrix<T> solve_reference(const NpdpInstance<T>& inst) {
  return solve_reference(inst, CancelToken{});
}

/// Semiring-generic golden model: solve_reference with (min, +) replaced
/// by S::plus/S::times, candidate-for-candidate. The min-plus
/// instantiation is bit-identical to solve_reference (tests enforce it);
/// every blocked engine instantiation must match this model exactly in
/// its own domain — element-for-element equality, no tolerance.
template <class S, class T = typename S::value_type>
TriangularMatrix<T> solve_reference_semiring(const NpdpInstance<T>& inst) {
  const index_t n = inst.n;
  TriangularMatrix<T> d(n);
  for (index_t i = 0; i < n; ++i) d.at(i, i) = inst.init(i, i);

  const bool general = inst.general_mode();
  for (index_t span = 1; span < n; ++span)
    for (index_t i = 0; i + span < n; ++i) {
      const index_t j = i + span;
      const T init = inst.init(i, j);
      T acc = S::zero();
      for (index_t k = i + 1; k < j; ++k) {
        T cand = S::times(d.at(i, k), d.at(k, j));
        if (inst.ku != nullptr)
          cand = S::times(cand, inst.ku[i] * inst.kv[k] * inst.kw[j]);
        if (inst.kterm) cand = S::times(cand, inst.kterm(i, k, j));
        acc = S::plus(acc, cand);
      }
      if (general) {
        const T w = inst.weight ? inst.weight(i, j) : S::one();
        d.at(i, j) = S::plus(init, S::times(w, acc));
      } else {
        // Pure mode: fold the Fig. 1 k == i self-term into the seed.
        const T seed = S::plus(init, S::times(init, d.at(i, i)));
        d.at(i, j) = S::plus(seed, acc);
      }
    }
  return d;
}

/// Runtime-dispatched form of solve_reference_semiring over the
/// instance's semiring tag.
template <class T>
TriangularMatrix<T> solve_reference_any(const NpdpInstance<T>& inst) {
  return with_semiring<T>(inst.semiring, [&](auto s) {
    return solve_reference_semiring<decltype(s)>(inst);
  });
}

}  // namespace cellnpdp
