// Optimal-decision recovery.
//
// With argmin tracking enabled the engine records, per cell, the k whose
// relaxation produced the final value (or -1 when the seed / init value
// survived). visit_splits() walks the implied binary split tree — the
// optimal parenthesization / BST shape / bifurcation structure.
#pragma once

#include <functional>
#include <optional>

#include "core/engine.hpp"
#include "core/instance.hpp"
#include "core/solve.hpp"

namespace cellnpdp {

template <class T>
struct NpdpSolution {
  BlockedTriangularMatrix<T> values;
  BlockedTriangularMatrix<T> argmin;  ///< k per cell, as T; -1 = no split

  index_t argmin_at(index_t i, index_t j) const {
    return static_cast<index_t>(argmin.at(i, j));
  }
};

/// Solves with argmin tracking (serial blocked engine), honouring the
/// context's cancel token at memory-block granularity. On Cancelled the
/// solution holds a partial (never torn) pair of tables.
template <class T>
SolveStatus solve_blocked_with_argmin_into(NpdpSolution<T>& sol,
                                           const NpdpInstance<T>& inst,
                                           const ExecutionContext& ctx) {
  BlockEngine<T> engine(sol.values, inst, ctx.tuning);
  engine.set_argmin(&sol.argmin);
  engine.seed();
  const index_t m = engine.blocks_per_side();
  for (index_t bj = 0; bj < m; ++bj)
    for (index_t bi = bj; bi >= 0; --bi) {
      if (ctx.poll()) return SolveStatus::Cancelled;
      engine.compute_block(bi, bj);
    }
  return SolveStatus::Ok;
}

/// Solves with argmin tracking (serial blocked engine).
template <class T>
NpdpSolution<T> solve_blocked_with_argmin(const NpdpInstance<T>& inst,
                                          const NpdpOptions& opts) {
  NpdpSolution<T> sol{
      BlockedTriangularMatrix<T>(inst.n, opts.block_side),
      BlockedTriangularMatrix<T>(inst.n, opts.block_side)};
  ExecutionContext ctx;
  ctx.tuning = opts;
  solve_blocked_with_argmin_into(sol, inst, ctx);
  return sol;
}

/// Calls fn(i, k, j) for every split on the optimal decision tree rooted at
/// (i, j), recursing into (i,k) and (k,j). Cells whose value came from
/// their seed are leaves.
template <class T, class Fn>
void visit_splits(const NpdpSolution<T>& sol, index_t i, index_t j,
                  Fn&& fn) {
  if (i >= j) return;
  const index_t k = sol.argmin_at(i, j);
  if (k < 0) return;  // seed value survived: leaf
  fn(i, k, j);
  visit_splits(sol, i, k, fn);
  visit_splits(sol, k, j, fn);
}

}  // namespace cellnpdp
