// Max-plus NPDP: d[i][j] = max(d[i][j], d[i][k] + d[k][j]).
//
// Some NPDP instances maximise (longest chains, maximum-score
// parenthesizations). Historically this was served by the semiring
// isomorphism
//
//   max-plus over x  ==  -( min-plus over -x )
//
// (negation maps +inf to -inf, sums to sums, max to min). The engine now
// instantiates natively over MaxPlusSemiring, which lifts the adapter's
// restriction on separable k-terms (u*v*w cannot be sign-flipped
// factor-wise); the negation path is kept as a regression oracle because
// float negation is exact, so both must agree bit-for-bit.
#pragma once

#include "core/reference.hpp"
#include "core/solve.hpp"

namespace cellnpdp {

namespace maxplus_detail {

template <class T>
NpdpInstance<T> negate_instance(const NpdpInstance<T>& inst) {
  NpdpInstance<T> neg;
  neg.n = inst.n;
  // Capturing the source functors by value keeps the adapter safe even if
  // the original instance goes away.
  auto init = inst.init;
  neg.init = [init](index_t i, index_t j) { return -init(i, j); };
  if (inst.weight) {
    auto w = inst.weight;
    neg.weight = [w](index_t i, index_t j) { return -w(i, j); };
  }
  // The separable k-term cannot be sign-flipped through u*v*w factor-wise
  // in general (three factors); callers needing it must use the native
  // max-plus path.
  neg.ku = nullptr;
  neg.kv = nullptr;
  neg.kw = nullptr;
  return neg;
}

}  // namespace maxplus_detail

/// Solves the max-plus analogue of the instance (init/weight interpreted
/// under max): d[i][j] = max(init, [weight +] max_k d[i][k] + d[k][j]
/// [+ ku[i]*kv[k]*kw[j]]). Runs the engine's native MaxPlusSemiring
/// instantiation, so separable k-terms are supported.
template <class T>
BlockedTriangularMatrix<T> solve_blocked_maxplus(const NpdpInstance<T>& inst,
                                                 const NpdpOptions& opts) {
  NpdpInstance<T> mp = inst;
  mp.semiring = SemiringId::MaxPlus;
  return solve_blocked(mp, opts);
}

/// The historical negate-and-solve adapter, preserved as a regression
/// oracle for the native path: float negation is exact, so the two must
/// agree bit-for-bit on every instance both accept. Separable k-terms are
/// not supported through this adapter.
template <class T>
BlockedTriangularMatrix<T> solve_blocked_maxplus_via_negation(
    const NpdpInstance<T>& inst, const NpdpOptions& opts) {
  if (inst.ku != nullptr)
    throw std::invalid_argument(
        "solve_blocked_maxplus_via_negation: separable k-terms unsupported");
  const auto neg = maxplus_detail::negate_instance(inst);
  auto table = solve_blocked(neg, opts);
  T* p = table.data();
  for (index_t c = 0; c < table.total_cells(); ++c) p[c] = -p[c];
  return table;
}

/// Golden model for the max-plus semantics (direct, no negation), used by
/// tests to validate both blocked paths.
template <class T>
TriangularMatrix<T> solve_reference_maxplus(const NpdpInstance<T>& inst) {
  const index_t n = inst.n;
  TriangularMatrix<T> d(n);
  for (index_t i = 0; i < n; ++i) d.at(i, i) = inst.init(i, i);
  const bool general = inst.general_mode();
  for (index_t span = 1; span < n; ++span)
    for (index_t i = 0; i + span < n; ++i) {
      const index_t j = i + span;
      const T init = inst.init(i, j);
      T acc = maxplus_identity<T>();
      for (index_t k = i + 1; k < j; ++k) {
        T cand = d.at(i, k) + d.at(k, j);
        if (inst.ku != nullptr) cand += inst.ku[i] * inst.kv[k] * inst.kw[j];
        acc = std::max(acc, cand);
      }
      if (general) {
        const T w = inst.weight ? inst.weight(i, j) : T(0);
        d.at(i, j) = std::max(init, w + acc);
      } else {
        T seed = std::max(init, init + d.at(i, i));
        d.at(i, j) = std::max(seed, acc);
      }
    }
  return d;
}

}  // namespace cellnpdp
