// The blocked NPDP engine: tier 1 of CellNPDP (§IV-A) on host memory.
//
// A memory block B(bi,bj) is relaxed in two stages (DESIGN.md §5):
//
//   stage 1  - contributions from all *middle* memory blocks
//              k in (bi,bj): C = min(C, block(bi,k) (+) block(k,bj));
//              a pure (min,+) tile GEMM with no inner dependences.
//   stage 2  - computing blocks of C walked left-to-right / bottom-to-top;
//              each tile first folds in the triangular diagonal blocks
//              B(bi,bi), B(bj,bj) at tile granularity, then a scalar corner
//              pass resolves the tile's own inner dependences.
//
// Diagonal memory blocks run the same tile walk with D1 = D2 = the block
// itself and scalar triangular tiles on the tile diagonal.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>

#include "common/aligned.hpp"
#include "core/instance.hpp"
#include "layout/blocked.hpp"
#include "obs/trace.hpp"

namespace cellnpdp {

/// Work counters, filled when a stats sink is attached to the engine. Used
/// by the utilization accounting of the benches and to validate the
/// simulator's closed-form work model against the real engine.
struct EngineStats {
  index_t kernel_calls = 0;    ///< WxW computing-block kernel invocations
  index_t corner_relax = 0;    ///< scalar relaxations in corner passes
  index_t diag_relax = 0;      ///< scalar relaxations in diagonal tiles
  index_t cells_finalized = 0; ///< finalize_cell executions

  index_t scalar_relax() const { return corner_relax + diag_relax; }

  EngineStats& operator+=(const EngineStats& o) {
    kernel_calls += o.kernel_calls;
    corner_relax += o.corner_relax;
    diag_relax += o.diag_relax;
    cells_finalized += o.cells_finalized;
    return *this;
  }
};

/// Per-thread EngineStats shards, merged on demand. Workers obtain their
/// shard once per task via local() (a thread-local cache, no lock on the
/// happy path) and bump it without synchronisation; merged() sums every
/// shard. This is what lets the parallel solvers account work without
/// serialising the hot kernel loop on shared counters.
class EngineStatsSink {
 public:
  /// The calling thread's shard (created on first use). The cache is
  /// keyed by a never-reused sink id, so a stale pointer into a destroyed
  /// sink can never be returned for a newer sink at the same address.
  EngineStats& local() {
    thread_local std::uint64_t cached_id = 0;
    thread_local EngineStats* cached = nullptr;
    if (cached_id != id_) {
      std::lock_guard lk(mu_);
      shards_.emplace_back();
      cached = &shards_.back();
      cached_id = id_;
    }
    return *cached;
  }

  /// Sum of every shard. Call after the parallel region has joined.
  EngineStats merged() const {
    std::lock_guard lk(mu_);
    EngineStats total;
    for (const EngineStats& s : shards_) total += s;
    return total;
  }

 private:
  static std::uint64_t next_sink_id() {
    static std::atomic<std::uint64_t> n{0};
    return ++n;
  }

  const std::uint64_t id_ = next_sink_id();
  mutable std::mutex mu_;
  std::deque<EngineStats> shards_;  // deque: stable addresses
};

/// The blocked engine, generic over a semiring S (see simd/semiring.hpp).
/// The default min-plus instantiation is bit-identical to the historical
/// hard-coded engine: every S::plus/times/improves call below expands to
/// the exact expression the min-plus code spelled out inline.
template <class T, class S = MinPlusSemiring<T>>
class BlockEngine {
 public:
  BlockEngine(BlockedTriangularMatrix<T>& mat, const NpdpInstance<T>& inst,
              const NpdpOptions& opts)
      : mat_(&mat),
        inst_(&inst),
        bs_(opts.block_side),
        kern_(cb_kernel<T, S>(opts.kernel)),
        general_(inst.general_mode()) {
    if (bs_ % kern_.width != 0)
      throw std::invalid_argument(
          "block_side must be a multiple of the kernel width");
    if (mat.block_side() != bs_ || mat.size() != inst.n)
      throw std::invalid_argument("matrix does not match instance/options");
    if (inst.semiring != S::id)
      throw std::invalid_argument(
          "instance semiring does not match the engine instantiation");
    if (!(mat.pad() == S::zero()))
      throw std::invalid_argument(
          "matrix padding is not the semiring's zero (construct or reset "
          "the matrix with semiring_zero<T>(inst.semiring))");
    tb_ = bs_ / kern_.width;
    ktg_ = static_cast<bool>(inst.kterm);
    if (ktg_ && inst.ku != nullptr)
      throw std::invalid_argument(
          "separable and general k-terms are mutually exclusive");
    if (inst.ku != nullptr) {
      // Pad the separable-term arrays to whole blocks so tile kernels can
      // read factor windows for padded k without going out of bounds.
      const std::size_t padded =
          static_cast<std::size_t>(mat.blocks_per_side() * bs_);
      ku_.assign(padded, T(0));
      kv_.assign(padded, T(0));
      kw_.assign(padded, T(0));
      for (index_t i = 0; i < inst.n; ++i) {
        ku_[static_cast<std::size_t>(i)] = inst.ku[i];
        kv_[static_cast<std::size_t>(i)] = inst.kv[i];
        kw_[static_cast<std::size_t>(i)] = inst.kw[i];
      }
    }
  }

  /// Seeds the matrix storage according to the mode (see NpdpInstance).
  void seed() {
    const index_t n = inst_->n;
    if (argm_ != nullptr) {
      T* a = argm_->data();
      for (index_t c = 0; c < argm_->total_cells(); ++c) a[c] = T(-1);
    }
    if (general_) {
      for (index_t i = 0; i < n; ++i) mat_->at(i, i) = inst_->init(i, i);
      return;  // off-diagonal cells keep the +inf written at construction
    }
    for (index_t i = 0; i < n; ++i) {
      const T dii = inst_->init(i, i);
      mat_->at(i, i) = dii;
      for (index_t j = i + 1; j < n; ++j) {
        const T init = inst_->init(i, j);
        const T self = S::times(init, dii);  // Fig. 1's k == i relaxation
        mat_->at(i, j) = S::plus(init, self);
      }
    }
  }

  /// Restores memory block (bi,bj) — and its argmin block, when attached —
  /// to the exact state seed() left it in: the semiring zero on padding
  /// and below-diagonal cells, the seed formula on in-triangle cells. The
  /// recovery paths call this before re-relaxing a block whose first
  /// execution threw mid-write or whose contents failed a checksum:
  /// general-mode finalize_cell is an overwrite (not a min-fold), so
  /// re-execution is only correct from a freshly seeded block, and
  /// corrupted values below the true minimum could never be repaired by
  /// re-relaxation alone. Bit-identical to seed() by construction (same
  /// arithmetic expressions in the same order).
  void seed_block(index_t bi, index_t bj) {
    T* Cb = mat_->block(bi, bj);
    const index_t cells = bs_ * bs_;
    const T id = S::zero();
    for (index_t c = 0; c < cells; ++c) Cb[c] = id;
    if (argm_ != nullptr) {
      T* Kb = argm_->data() + (Cb - mat_->data());
      for (index_t c = 0; c < cells; ++c) Kb[c] = T(-1);
    }
    const index_t n = inst_->n;
    const index_t row0 = bi * bs_;
    const index_t col0 = bj * bs_;
    for (index_t r = 0; r < bs_; ++r) {
      const index_t gi = row0 + r;
      if (gi >= n) break;
      for (index_t c = 0; c < bs_; ++c) {
        const index_t gj = col0 + c;
        if (gj < gi || gj >= n) continue;
        if (gi == gj) {
          Cb[r * bs_ + c] = inst_->init(gi, gi);
          continue;
        }
        if (general_) continue;  // off-diagonal cells stay the zero
        const T dii = inst_->init(gi, gi);
        const T init = inst_->init(gi, gj);
        const T self = S::times(init, dii);  // Fig. 1's k == i relaxation
        Cb[r * bs_ + c] = S::plus(init, self);
      }
    }
  }

  index_t blocks_per_side() const { return mat_->blocks_per_side(); }
  index_t block_side() const { return bs_; }
  index_t tiles_per_side() const { return tb_; }
  index_t kernel_width() const { return kern_.width; }

  /// Attaches a default work-counter sink, used by compute_block calls
  /// that do not pass an explicit per-thread sink. For multi-threaded
  /// runs pass each worker its own EngineStats (see EngineStatsSink)
  /// through the compute_block overload instead.
  void set_stats(EngineStats* stats) { stats_ = stats; }

  /// Attaches an argmin table (same geometry as the value matrix). Each
  /// cell ends up holding, as a T, the k index whose relaxation produced
  /// the final value, or -1 if the seed/init value survived. Must be
  /// attached before seed(). Min-plus only: argmin traceback over other
  /// semirings has no SIMD kernel (and no meaning for counting).
  void set_argmin(BlockedTriangularMatrix<T>* argm) {
    if constexpr (S::id != SemiringId::MinPlus)
      throw std::invalid_argument("argmin tracking requires min-plus");
    if (argm->block_side() != bs_ || argm->size() != inst_->n)
      throw std::invalid_argument("argmin matrix geometry mismatch");
    argm_ = argm;
  }

  /// Relaxes memory block (bi,bj). Every block it depends on — all (bi,k)
  /// and (k,bj) with bi <= k <= bj other than itself — must be final.
  /// Uses the sink attached with set_stats (if any).
  void compute_block(index_t bi, index_t bj) {
    compute_block(bi, bj, stats_);
  }

  /// As above with an explicit work-counter sink, so concurrent workers
  /// can each count into their own shard (EngineStatsSink::local()).
  void compute_block(index_t bi, index_t bj, EngineStats* st) {
    T* Cb = mat_->block(bi, bj);
    const index_t row0 = bi * bs_;
    const index_t col0 = bj * bs_;
    if (bi == bj) {
      CELLNPDP_TRACE_SPAN("inner", "inner.diag", bi, bj);
      inner_pass(Cb, Cb, Cb, /*diag=*/true, row0, col0, st);
      return;
    }
    {
      CELLNPDP_TRACE_SPAN("middle", "middle", bi, bj);
      for (index_t mk = bi + 1; mk < bj; ++mk)
        middle_pass(Cb, mat_->block(bi, mk), mat_->block(mk, bj),
                    row0, mk * bs_, col0, st);
    }
    CELLNPDP_TRACE_SPAN("inner", "inner", bi, bj);
    inner_pass(Cb, mat_->block(bi, bi), mat_->block(bj, bj),
               /*diag=*/false, row0, col0, st);
  }

 private:
  const T* tile(const T* base, index_t rt, index_t ct) const {
    return base + rt * kern_.width * bs_ + ct * kern_.width;
  }
  T* tile(T* base, index_t rt, index_t ct) const {
    return base + rt * kern_.width * bs_ + ct * kern_.width;
  }

  void run_kernel(T* C, const T* A, const T* B, index_t gi0, index_t gk0,
                  index_t gj0, EngineStats* st) const {
    if (st != nullptr) ++st->kernel_calls;
    if (ktg_) {
      generic_tile(C, A, B, gi0, gk0, gj0);
      return;
    }
    if (argm_ != nullptr) {
      // C and KC share the block offset: recover KC from the matrices.
      T* KC = argm_->data() + (C - mat_->data());
      if (!ku_.empty()) {
        minplus_tile_scalar_arg(C, KC, bs_, A, bs_, B, bs_, kern_.width, gk0,
                                ku_.data() + gi0, kv_.data() + gk0,
                                kw_.data() + gj0);
      } else {
        kern_.arg(C, KC, bs_, A, bs_, B, bs_, gk0);
      }
      return;
    }
    if (!ku_.empty()) {
      kern_.sep(C, bs_, A, bs_, B, bs_, ku_.data() + gi0, kv_.data() + gk0,
                kw_.data() + gj0);
    } else {
      kern_.pure(C, bs_, A, bs_, B, bs_);
    }
  }

  /// Scalar tile relaxation with the general per-(i,k,j) term; handles
  /// argmin tracking. Functor calls are skipped for padded indices (the
  /// operand there is the semiring zero, which annihilates the candidate).
  void generic_tile(T* C, const T* A, const T* B, index_t gi0, index_t gk0,
                    index_t gj0) const {
    const index_t W = kern_.width;
    const index_t n = inst_->n;
    T* KC = argm_ != nullptr ? argm_->data() + (C - mat_->data()) : nullptr;
    for (index_t r = 0; r < W; ++r) {
      const index_t gi = gi0 + r;
      for (index_t k = 0; k < W; ++k) {
        const index_t gk = gk0 + k;
        const T a = A[r * bs_ + k];
        for (index_t c = 0; c < W; ++c) {
          const index_t gj = gj0 + c;
          if (gi >= n || gk >= n || gj >= n) continue;
          const T cand = S::times(S::times(a, B[k * bs_ + c]),
                                  inst_->kterm(gi, gk, gj));
          T& dst = C[r * bs_ + c];
          if constexpr (S::idempotent) {
            if (S::improves(cand, dst)) {
              dst = cand;
              if (KC != nullptr) KC[r * bs_ + c] = T(gk);
            }
          } else {
            dst = S::plus(dst, cand);
          }
        }
      }
    }
  }

  /// Stage 1: C = min(C, A (+) B) for one middle block pair; a full tile
  /// triple loop with no ordering constraints.
  void middle_pass(T* Cb, const T* Ab, const T* Bb, index_t row0, index_t k0,
                   index_t col0, EngineStats* st) const {
    const index_t W = kern_.width;
    for (index_t rt = 0; rt < tb_; ++rt)
      for (index_t kt = 0; kt < tb_; ++kt)
        for (index_t ct = 0; ct < tb_; ++ct)
          run_kernel(tile(Cb, rt, ct), tile(Ab, rt, kt), tile(Bb, kt, ct),
                     row0 + rt * W, k0 + kt * W, col0 + ct * W, st);
  }

  /// Stage 2 (and the whole of a diagonal block): ordered tile walk.
  /// Per-tile trace spans are emitted from here (behind one hoisted
  /// enabled() check) rather than inside corner()/diagonal_tile(), so the
  /// scalar hot loops stay span-free when tracing is off.
  void inner_pass(T* Cb, const T* D1, const T* D2, bool diag, index_t row0,
                  index_t col0, EngineStats* st) const {
#ifndef CELLNPDP_NO_TRACING
    const bool traced = obs::Tracer::instance().enabled();
#else
    constexpr bool traced = false;
#endif
    const index_t W = kern_.width;
    for (index_t ct = 0; ct < tb_; ++ct) {
      for (index_t rt = diag ? ct : tb_ - 1; rt >= 0; --rt) {
        if (diag && rt == ct) {
          if (traced) {
            CELLNPDP_TRACE_SPAN("diag", "diag", rt, rt);
            diagonal_tile(Cb, rt, row0, col0, st);
          } else {
            diagonal_tile(Cb, rt, row0, col0, st);
          }
          continue;
        }
        // (a) k in the block-row range right of tile rt, paired with C
        // tiles below this one in tile-column ct. For a diagonal block the
        // range is clipped at ct: those are exactly its middle tiles.
        const index_t a_end = diag ? ct : tb_;
        for (index_t kt = rt + 1; kt < a_end; ++kt)
          run_kernel(tile(Cb, rt, ct), tile(D1, rt, kt), tile(Cb, kt, ct),
                     row0 + rt * W, row0 + kt * W, col0 + ct * W, st);
        // (b) k in the block-column range left of tile ct, paired with C
        // tiles left of this one in tile-row rt. Empty for diagonal blocks
        // (already covered by (a)).
        if (!diag)
          for (index_t kt = 0; kt < ct; ++kt)
            run_kernel(tile(Cb, rt, ct), tile(Cb, rt, kt), tile(D2, kt, ct),
                       row0 + rt * W, col0 + kt * W, col0 + ct * W, st);
        if (traced) {
          CELLNPDP_TRACE_SPAN("corner", "corner", rt, ct);
          corner(Cb, tile(D1, rt, rt), tile(D2, ct, ct), rt, ct, row0, col0,
                 st);
        } else {
          corner(Cb, tile(D1, rt, rt), tile(D2, ct, ct), rt, ct, row0, col0,
                 st);
        }
      }
    }
  }

  /// Scalar corner pass: folds in the same-tile parts of the diagonal
  /// blocks and the tile's own inner dependences, then finalises each cell.
  /// Cells are walked column-ascending / row-descending so every value read
  /// is already final.
  void corner(T* Cb, const T* A1, const T* B2, index_t rt, index_t ct,
              index_t row0, index_t col0, EngineStats* st) const {
    const index_t W = kern_.width;
    const index_t n = inst_->n;
    const bool kt_on = !ku_.empty();
    for (index_t lc = 0; lc < W; ++lc) {
      const index_t c = ct * W + lc;
      const index_t gj = col0 + c;
      for (index_t lr = W - 1; lr >= 0; --lr) {
        const index_t r = rt * W + lr;
        const index_t gi = row0 + r;
        T acc = Cb[r * bs_ + c];
        T karg = T(-2);  // sentinel: unchanged
        for (index_t lk = lr + 1; lk < W; ++lk) {
          const index_t gk = row0 + rt * W + lk;
          T cand = S::times(A1[lr * bs_ + lk], Cb[(rt * W + lk) * bs_ + c]);
          if (kt_on) cand = S::times(cand, ku_[gi] * kv_[gk] * kw_[gj]);
          if (ktg_) {
            if (gi >= n || gk >= n || gj >= n) continue;
            cand = S::times(cand, inst_->kterm(gi, gk, gj));
          }
          relax(acc, karg, cand, gk);
        }
        for (index_t lk = 0; lk < lc; ++lk) {
          const index_t gk = col0 + ct * W + lk;
          T cand = S::times(Cb[r * bs_ + ct * W + lk], B2[lk * bs_ + lc]);
          if (kt_on) cand = S::times(cand, ku_[gi] * kv_[gk] * kw_[gj]);
          if (ktg_) {
            if (gi >= n || gk >= n || gj >= n) continue;
            cand = S::times(cand, inst_->kterm(gi, gk, gj));
          }
          relax(acc, karg, cand, gk);
        }
        if (st != nullptr) st->corner_relax += (W - 1 - lr) + lc;
        finalize_cell(Cb, r, c, gi, gj, n, acc, st, karg);
      }
    }
  }

  /// A triangular tile on the diagonal of a diagonal block: fully
  /// self-contained, resolved with the original scalar recurrence.
  void diagonal_tile(T* Cb, index_t t, index_t row0, index_t col0,
                     EngineStats* st) const {
    const index_t W = kern_.width;
    const index_t n = inst_->n;
    const bool kt_on = !ku_.empty();
    for (index_t lc = 1; lc < W; ++lc) {
      const index_t c = t * W + lc;
      const index_t gj = col0 + c;
      for (index_t lr = lc - 1; lr >= 0; --lr) {
        const index_t r = t * W + lr;
        const index_t gi = row0 + r;
        T acc = Cb[r * bs_ + c];
        T karg = T(-2);
        for (index_t lk = lr + 1; lk < lc; ++lk) {
          const index_t gk = row0 + t * W + lk;
          T cand =
              S::times(Cb[r * bs_ + t * W + lk], Cb[(t * W + lk) * bs_ + c]);
          if (kt_on) cand = S::times(cand, ku_[gi] * kv_[gk] * kw_[gj]);
          if (ktg_) {
            if (gi >= n || gk >= n || gj >= n) continue;
            cand = S::times(cand, inst_->kterm(gi, gk, gj));
          }
          relax(acc, karg, cand, gk);
        }
        if (st != nullptr) st->diag_relax += lc - 1 - lr;
        finalize_cell(Cb, r, c, gi, gj, n, acc, st, karg);
      }
    }
  }

  /// Folds one candidate into the running cell value. Idempotent
  /// semirings relax with a strict-improvement compare (argmin tracking
  /// keeps the earliest winning k on ties, exactly as before); counting
  /// accumulates every candidate.
  void relax(T& acc, T& karg, T cand, index_t gk) const {
    if constexpr (S::idempotent) {
      if (S::improves(cand, acc)) {
        acc = cand;
        karg = T(gk);
      }
    } else {
      (void)karg;
      acc = S::plus(acc, cand);
    }
  }

  /// karg: the corner pass's improvement (global k), or -2 when the corner
  /// pass did not improve on the stage-kernel value.
  void finalize_cell(T* Cb, index_t r, index_t c, index_t gi, index_t gj,
                     index_t n, T acc, EngineStats* st,
                     T karg = T(-2)) const {
    if (st != nullptr) ++st->cells_finalized;
    T* arg_cell = nullptr;
    if (argm_ != nullptr) {
      arg_cell = argm_->data() + (Cb - mat_->data()) + r * bs_ + c;
      if (karg != T(-2)) *arg_cell = karg;
    }
    if (!general_) {
      Cb[r * bs_ + c] = acc;
      return;
    }
    if (gi >= n || gj >= n) return;  // padding stays the semiring zero
    const T init = inst_->init(gi, gj);
    const T w = inst_->weight ? inst_->weight(gi, gj) : S::one();
    const T relaxed = S::times(w, acc);
    if constexpr (S::idempotent) {
      if (S::improves(relaxed, init)) {
        Cb[r * bs_ + c] = relaxed;
      } else {
        Cb[r * bs_ + c] = init;
        if (arg_cell != nullptr) *arg_cell = T(-1);  // the init survived
      }
    } else {
      Cb[r * bs_ + c] = S::plus(init, relaxed);
    }
  }

  BlockedTriangularMatrix<T>* mat_;
  const NpdpInstance<T>* inst_;
  index_t bs_;
  index_t tb_ = 0;
  CbKernel<T> kern_;
  bool general_;
  bool ktg_ = false;
  EngineStats* stats_ = nullptr;
  BlockedTriangularMatrix<T>* argm_ = nullptr;
  aligned_vector<T> ku_, kv_, kw_;  // padded copies; empty when no k-term
};

}  // namespace cellnpdp
