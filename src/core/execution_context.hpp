// ExecutionContext: the one bundle of cross-cutting solve state threaded
// through every solve path — cancellation token + deadline, the stats sink
// for observability, engine tuning parameters, an optional reusable arena,
// and an optional shared thread pool. Before this existed each entry point
// (serial, task-queue, wavefront, baselines, serve) plumbed its own ad-hoc
// subset; the SolverBackend registry (src/backend) passes exactly one of
// these to whichever engine the caller resolved by name.
#pragma once

#include <chrono>
#include <vector>

#include "common/cancel.hpp"
#include "common/retry.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/instance.hpp"
#include "layout/blocked.hpp"

namespace cellnpdp {

/// How a solve ended. Cancellation is cooperative: Cancelled means the
/// solver observed the token and stopped at a memory-block boundary, so
/// the worker is free but the matrix holds a partial (never torn) result.
enum class SolveStatus { Ok, Cancelled };

constexpr const char* solve_status_name(SolveStatus s) {
  return s == SolveStatus::Ok ? "ok" : "cancelled";
}

/// Telemetry of one solve: wall time, per-worker busy time (from the
/// executor or pool) and the merged engine work counters. Attach to an
/// ExecutionContext (or pass to a legacy entry point) to enable
/// collection; all fields cost a couple of clock reads per scheduling
/// block, nothing on the kernel path beyond the counters.
struct SolveStats {
  double wall_seconds = 0;
  std::vector<double> worker_busy;    ///< seconds inside task bodies
  std::vector<index_t> worker_tasks;  ///< tasks per worker (task-queue only)
  index_t tasks = 0;
  EngineStats engine;                 ///< merged across workers

  double busy_total() const {
    double s = 0;
    for (double b : worker_busy) s += b;
    return s;
  }
  /// Mean worker occupancy in [0,1].
  double utilization() const {
    if (wall_seconds <= 0 || worker_busy.empty()) return 0;
    return busy_total() / (wall_seconds * double(worker_busy.size()));
  }
};

struct ExecutionContext {
  /// Cooperative cancellation + deadline. Default-constructed (inert)
  /// token: the solve can never be cancelled and polls cost nothing.
  CancelToken cancel;

  /// Engine tuning: block/scheduling-block sides, kernel, thread count.
  NpdpOptions tuning;

  /// Observability sink; null disables collection.
  SolveStats* stats = nullptr;

  /// Optional caller-owned workspace. A backend that solves into a
  /// blocked table uses this (after reset() by the caller) instead of
  /// allocating, so a serving layer can reuse one arena across requests
  /// of the same shape. Must match the instance/tuning geometry when set.
  BlockedTriangularMatrix<float>* arena = nullptr;

  /// Optional shared worker pool for pool-based schedules (wavefront,
  /// Tan). Null: the solver creates a pool of tuning.threads workers.
  ThreadPool* pool = nullptr;

  /// Per-task re-execution on failure (default: disabled). When enabled,
  /// the task-queue solvers re-seed and re-run a scheduling block whose
  /// body threw, up to retry.max_attempts, instead of aborting the solve.
  RetryPolicy retry;

  bool cancelled() const { return cancel.cancelled(); }
  /// The per-memory-block check (see CancelToken::poll).
  bool poll() const { return cancel.poll(); }

  /// Context with an armed token tripping after `d` from now.
  template <class Rep, class Period>
  static ExecutionContext with_deadline(std::chrono::duration<Rep, Period> d) {
    ExecutionContext ctx;
    ctx.cancel = CancelToken::after(d);
    return ctx;
  }
};

}  // namespace cellnpdp
