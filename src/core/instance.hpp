// Problem description and tuning options for the NPDP engine.
#pragma once

#include <cstddef>
#include <functional>

#include "common/defs.hpp"
#include "simd/dispatch.hpp"
#include "simd/semiring.hpp"

namespace cellnpdp {

/// One NPDP instance.
///
/// Semantics (DESIGN.md §5). With `init` only (pure mode) the engine solves
/// exactly the paper's Fig. 1 loop nest:
///
///     d[i][j] seeded with init(i,j)
///     for j asc, i desc, k in [i, j):  d[i][j] = min(d[i][j], d[i][k]+d[k][j])
///
/// (the k == i self-term is folded into the seed, which is equivalent for
/// every input because diagonal cells are never rewritten).
///
/// With `weight` and/or the separable k-term (ku/kv/kw) set, the engine
/// solves the generalised NPDP recurrence used by the application instances:
///
///     d[i][i] = init(i,i)
///     d[i][j] = min( init(i,j),
///                    weight(i,j) + min_{i<k<j} d[i][k] + d[k][j]
///                                            + ku[i]*kv[k]*kw[j] )
///
/// which covers optimal BST (weight = probability prefix sums) and optimal
/// matrix parenthesization (ku = kv = kw = dimension vector p).
template <class T>
struct NpdpInstance {
  index_t n = 0;

  /// The semiring the recurrence is evaluated in. min/max substitute for
  /// min in the semantics above; counting replaces (min, +) with (+, *).
  /// Every solver dispatches on this tag (see with_semiring).
  SemiringId semiring = SemiringId::MinPlus;

  /// Required: initial value of cell (i,j), 0 <= i <= j < n.
  std::function<T(index_t, index_t)> init;

  /// Optional k-independent per-cell weight (general mode).
  std::function<T(index_t, index_t)> weight;

  /// Optional separable per-k term ku[i]*kv[k]*kw[j]; all three point at
  /// caller-owned arrays of length n, or are all null.
  const T* ku = nullptr;
  const T* kv = nullptr;
  const T* kw = nullptr;

  /// Optional *general* per-relaxation term g(i,k,j), for costs that do
  /// not factor (e.g. polygon-triangulation triangle weights). Forces the
  /// engine onto scalar tiles (functor calls cannot vectorise); mutually
  /// exclusive with the separable term.
  std::function<T(index_t, index_t, index_t)> kterm;

  /// General mode: seed +inf, finalize with min(init, weight + acc).
  /// Pure mode: seed init and relax in place (bit-exact Fig. 1).
  bool general_mode() const {
    return static_cast<bool>(weight) || ku != nullptr ||
           static_cast<bool>(kterm);
  }
};

/// Engine tuning knobs. Defaults follow the paper: ~square memory blocks a
/// few tens of KB (32 KB at side 90 for floats; we use 64 so every kernel
/// width divides it), scheduling blocks of 1x1 memory blocks, one thread.
struct NpdpOptions {
  index_t block_side = 64;   ///< memory-block side, cells; multiple of width
  index_t sched_side = 1;    ///< scheduling-block side, in memory blocks
  KernelKind kernel = KernelKind::Native;
  std::size_t threads = 1;
};

}  // namespace cellnpdp
