// Cache-oblivious recursive NPDP, after Chowdhury & Ramachandran [7]
// (SPAA'08) — the other state-of-the-art line of work the paper discusses
// (§II-B): instead of tiling for a known cache size, the triangle is
// divided recursively so every level of a (multi-level) cache hierarchy is
// reused automatically.
//
// Structure (DESIGN.md §5 uses the same dependence analysis):
//
//   tri(lo,hi)              solve the self-contained sub-triangle
//     tri(lo,mid); tri(mid,hi); rect(lo,mid, mid,hi)
//
//   rect(r0,r1, c0,c1)      finalize the rectangle rows x cols, given the
//                           invariant that every k in [r1, c0) has already
//                           been applied to all of its cells
//     quadrants BL -> {TL, BR} -> TR, each first extending the invariant
//     with one recursive (min,+) multiply over the newly-gapped strip
//
//   mult(C, Arows, Bcols)   pure relaxation C = min(C, A (+) B): 8-way
//                           recursive splitting down to a scalar base
//
// Every cell receives each k in (i, j) exactly once (the strips partition
// the range), so the result matches the engine bit-for-bit on identically
// seeded tables.
#pragma once

#include <algorithm>

#include "common/cancel.hpp"
#include "common/defs.hpp"
#include "core/instance.hpp"
#include "layout/triangular.hpp"
#include "simd/kernels.hpp"

namespace cellnpdp {

struct RecursiveOptions {
  index_t base = 32;  ///< recursion leaf size (cells)
};

namespace recursive_detail {

/// Seeds a triangular table from an instance using the engine's pure-mode
/// convention (the Fig. 1 k == i self-term folded into the seed).
template <class T>
TriangularMatrix<T> seed_pure(const NpdpInstance<T>& inst) {
  TriangularMatrix<T> d(inst.n);
  for (index_t i = 0; i < inst.n; ++i) {
    const T dii = inst.init(i, i);
    d.at(i, i) = dii;
    for (index_t j = i + 1; j < inst.n; ++j) {
      const T init = inst.init(i, j);
      const T self = init + dii;
      d.at(i, j) = self < init ? self : init;
    }
  }
  return d;
}

template <class T>
class Recursor {
 public:
  Recursor(TriangularMatrix<T>& d, index_t base,
           const CancelToken& cancel = {})
      : d_(&d), base_(std::max<index_t>(2, base)), cancel_(cancel) {}

  /// True once the cancel token tripped; recursion unwinds without
  /// touching further cells (checked at every internal node and leaf, so
  /// the poll cadence matches the leaf size).
  bool cancelled() const { return cancel_.cancelled(); }

  void tri(index_t lo, index_t hi) {
    if (cancel_.poll()) return;
    if (hi - lo <= base_) {
      // Ordered scalar base: every k in (i, j), strictly (the self-term
      // lives in the seed).
      for (index_t j = lo; j < hi; ++j)
        for (index_t i = j - 1; i >= lo; --i) relax(i, j, i + 1, j);
      return;
    }
    const index_t mid = lo + (hi - lo) / 2;
    tri(lo, mid);
    tri(mid, hi);
    rect(lo, mid, mid, hi);
  }

  /// Rectangle rows [r0,r1) x cols [c0,c1); invariant: k in [r1, c0)
  /// already applied to every cell here.
  void rect(index_t r0, index_t r1, index_t c0, index_t c1) {
    if (cancel_.poll()) return;
    if (r1 - r0 <= base_ && c1 - c0 <= base_) {
      for (index_t j = c0; j < c1; ++j)
        for (index_t i = r1 - 1; i >= r0; --i) {
          relax(i, j, i + 1, r1);  // row-block internal / left-triangle k
          relax(i, j, c0, j);      // col-block internal / bottom k
        }
      return;
    }
    const index_t rm = r0 + (r1 - r0) / 2;
    const index_t cm = c0 + (c1 - c0) / 2;
    // BL: same gap as the parent — nothing to extend.
    rect(rm, r1, c0, cm);
    // TL: extend the gap with k in [rm, r1) (left strip x BL).
    mult(r0, rm, c0, cm, rm, r1);
    rect(r0, rm, c0, cm);
    // BR: extend with k in [c0, cm) (BL x bottom strip).
    mult(rm, r1, cm, c1, c0, cm);
    rect(rm, r1, cm, c1);
    // TR: extend with both strips (left x BR, TL x bottom).
    mult(r0, rm, cm, c1, rm, r1);
    mult(r0, rm, cm, c1, c0, cm);
    rect(r0, rm, cm, c1);
  }

 private:
  /// C[rows x cols] = min(C, d[rows][k] + d[k][cols]) for k in [k0, k1):
  /// 8-way recursive (min,+) multiply.
  void mult(index_t r0, index_t r1, index_t c0, index_t c1, index_t k0,
            index_t k1) {
    if (k0 >= k1 || cancel_.poll()) return;
    if (r1 - r0 <= base_ && c1 - c0 <= base_ && k1 - k0 <= base_) {
      for (index_t i = r0; i < r1; ++i)
        for (index_t k = k0; k < k1; ++k) {
          const T a = d_->at(i, k);
          for (index_t j = c0; j < c1; ++j) {
            const T cand = a + d_->at(k, j);
            T& dst = d_->at(i, j);
            if (cand < dst) dst = cand;
          }
        }
      return;
    }
    // Split the largest dimension in two (relaxation order irrelevant).
    const index_t dr = r1 - r0, dc = c1 - c0, dk = k1 - k0;
    if (dr >= dc && dr >= dk) {
      const index_t rm = r0 + dr / 2;
      mult(r0, rm, c0, c1, k0, k1);
      mult(rm, r1, c0, c1, k0, k1);
    } else if (dc >= dk) {
      const index_t cm = c0 + dc / 2;
      mult(r0, r1, c0, cm, k0, k1);
      mult(r0, r1, cm, c1, k0, k1);
    } else {
      const index_t km = k0 + dk / 2;
      mult(r0, r1, c0, c1, k0, km);
      mult(r0, r1, c0, c1, km, k1);
    }
  }

  void relax(index_t i, index_t j, index_t klo, index_t khi) {
    T acc = d_->at(i, j);
    for (index_t k = klo; k < khi; ++k) {
      const T cand = d_->at(i, k) + d_->at(k, j);
      if (cand < acc) acc = cand;
    }
    d_->at(i, j) = acc;
  }

  TriangularMatrix<T>* d_;
  index_t base_;
  CancelToken cancel_;
};

}  // namespace recursive_detail

/// Solves a pure-mode instance with the cache-oblivious recursion.
/// `completed` (when non-null) receives false if `cancel` tripped and the
/// returned table is partial.
template <class T>
TriangularMatrix<T> solve_recursive(const NpdpInstance<T>& inst,
                                    const RecursiveOptions& opts = {},
                                    const CancelToken& cancel = {},
                                    bool* completed = nullptr) {
  TriangularMatrix<T> d = recursive_detail::seed_pure(inst);
  if (inst.n > 1) {
    recursive_detail::Recursor<T> rec(d, opts.base, cancel);
    rec.tri(0, inst.n);
  }
  if (completed != nullptr) *completed = !cancel.cancelled();
  return d;
}

}  // namespace cellnpdp
