// TanNPDP: reimplementation of the state-of-the-art comparator the paper
// measures against (Tan et al. [24][25][26]: SC'06, SPAA'07, TPDS'09).
//
// Characteristics reproduced from those papers' descriptions (§II-B, §VI-C):
//   * the row-major triangular layout is kept (no layout change),
//   * the iteration space is tiled so a block of the table is reused while
//     it fits in the shared cache,
//   * within an off-diagonal tile the k-range with no intra-tile
//     dependences is processed by all cores in parallel; the dependent
//     remainder is serial,
//   * a helper thread walks the tiles needed next and touches their rows to
//     pull them into cache ("helper threading"),
//   * all arithmetic is scalar — the paper's point is precisely that this
//     line of work leaves SIMD on the table.
//
// In pure mode with non-negative diagonal seeds the result is bit-identical
// to Fig. 1 (tests enforce this).
#pragma once

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/cancel.hpp"
#include "common/defs.hpp"
#include "common/thread_pool.hpp"
#include "layout/triangular.hpp"
#include "simd/kernels.hpp"

namespace cellnpdp {

struct TanOptions {
  index_t tile = 128;          ///< tile side in cells
  std::size_t threads = 1;     ///< worker cores
  bool helper_prefetch = true; ///< emulate the helper prefetch thread
};

namespace tan_detail {

/// Serial scalar relaxation of cell (i,j) over k in [lo, hi).
template <class T>
CELLNPDP_NOVEC inline void relax_range(TriangularMatrix<T>& d, index_t i,
                                       index_t j, index_t lo, index_t hi) {
  T acc = d.at(i, j);
  for (index_t k = lo; k < hi; ++k) {
    const T cand = d.at(i, k) + d.at(k, j);
    if (cand < acc) acc = cand;
  }
  d.at(i, j) = acc;
}

template <class T>
CELLNPDP_NOVEC inline void touch_rows(const TriangularMatrix<T>& d,
                                      index_t r0, index_t r1, index_t c0,
                                      index_t c1, std::atomic<T>* sink) {
  // The helper thread of Tan et al. only warms the cache; accumulate into
  // an atomic sink so the loads cannot be optimised away.
  T acc{};
  for (index_t r = r0; r < r1; ++r)
    for (index_t c = std::max(r, c0); c < c1; c += 16) acc += d.at(r, c);
  sink->store(acc, std::memory_order_relaxed);
}

}  // namespace tan_detail

/// Runs TanNPDP in place over a seeded triangular matrix (pure mode).
/// Polls `cancel` at tile granularity; returns false when the run was
/// abandoned (the table then holds a partial, never torn, result).
template <class T>
bool solve_tan_npdp(TriangularMatrix<T>& d, const TanOptions& opts,
                    const CancelToken& cancel = {}) {
  const index_t n = d.size();
  const index_t ts = std::max<index_t>(4, opts.tile);
  const index_t m = ceil_div(n, ts);
  ThreadPool pool(opts.threads);
  std::atomic<T> prefetch_sink{};

  for (index_t bj = 0; bj < m; ++bj) {
    const index_t c0 = bj * ts, c1 = std::min(n, (bj + 1) * ts);
    for (index_t bi = bj; bi >= 0; --bi) {
      if (cancel.poll()) return false;
      const index_t r0 = bi * ts, r1 = std::min(n, (bi + 1) * ts);

      std::thread helper;
      if (opts.helper_prefetch && bi > 0) {
        // Warm the rows of the tile the next step will read.
        helper = std::thread([&, r0] {
          tan_detail::touch_rows(d, std::max<index_t>(0, r0 - ts), r0, c0, c1,
                                 &prefetch_sink);
        });
      }

      if (bi == bj) {
        // Diagonal tile: self-contained, original Fig. 1 order.
        for (index_t j = c0; j < c1; ++j)
          for (index_t i = j - 1; i >= r0; --i)
            tan_detail::relax_range(d, i, j, i, j);
      } else {
        // Phase 1 (parallel): k strictly between the tile's row range and
        // column range — no intra-tile dependences.
        const index_t mid_lo = r1, mid_hi = c0;
        if (mid_lo < mid_hi) {
          pool.parallel_for(
              static_cast<std::size_t>(r0), static_cast<std::size_t>(r1),
              [&](std::size_t i) {
                for (index_t j = c0; j < c1; ++j)
                  tan_detail::relax_range(d, static_cast<index_t>(i), j,
                                          mid_lo, mid_hi);
              });
        }
        // Phase 2 (serial): the dependent k ranges, ordered walk.
        for (index_t j = c0; j < c1; ++j)
          for (index_t i = r1 - 1; i >= r0; --i) {
            tan_detail::relax_range(d, i, j, i, std::min(r1, j));
            tan_detail::relax_range(d, i, j, std::max(mid_hi, i), j);
          }
      }
      if (helper.joinable()) helper.join();
    }
  }
  return true;
}

}  // namespace cellnpdp
