// Pluggable solver backends: every NPDP engine in the repository behind
// one name-resolved interface.
//
// Historically each engine — Fig. 1 reference, blocked serial, blocked
// task-queue parallel, TanNPDP, the cache-oblivious recursion, and the
// Cell simulator — was its own free function with its own plumbing, and
// the CLI / serve / bench layers hard-coded which one they called. The
// registry turns them into named SolverBackends that all take the same
// (NpdpInstance, ExecutionContext) pair: callers resolve by name
// ("blocked-parallel"), thread one context through (cancellation +
// deadline, tuning, stats sink, arena), and get a uniform result. Results
// are bit-identical to the concrete entry points each backend wraps
// (tests enforce this).
//
// This module sits above core, baselines, and cellsim on purpose: the
// engines do not know the registry exists.
#pragma once

#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/execution_context.hpp"
#include "core/instance.hpp"
#include "layout/blocked.hpp"
#include "layout/triangular.hpp"
#include "simd/semiring.hpp"

namespace cellnpdp::backend {

/// Bit for one SemiringId in Capabilities::semirings.
constexpr unsigned semiring_bit(SemiringId id) {
  return 1u << static_cast<unsigned>(id);
}

/// Every semiring the engine family instantiates.
constexpr unsigned kAllSemirings = (1u << kSemiringCount) - 1u;

/// What a backend can do; `npdp backends` prints these columns.
struct Capabilities {
  bool single_precision = true;   ///< float tables (the serve/CLI type)
  bool double_precision = false;  ///< engine family also instantiates for
                                  ///< double (through the C++ API)
  bool weighted = false;          ///< general mode: weight and/or k-terms
  bool traceback = false;         ///< argmin recovery available
  bool parallel = false;          ///< honours ExecutionContext tuning.threads
  bool cancellable = false;       ///< polls the cancel token mid-solve
  bool timing_model = false;      ///< simulated Cell timing, not host speed
  bool arena = false;             ///< solves into ExecutionContext::arena
                                  ///< when the caller provides one
  bool self_checking = false;     ///< verifies block checksums and repairs
                                  ///< corrupted blocks during the solve
  unsigned semirings =            ///< bitmask of supported SemiringId values
      semiring_bit(SemiringId::MinPlus);
};

inline bool supports_semiring(const Capabilities& c, SemiringId id) {
  return (c.semirings & semiring_bit(id)) != 0;
}

/// Comma-joined names of the supported semirings ("min-plus,counting").
inline std::string semirings_string(const Capabilities& c) {
  std::string out;
  for (unsigned i = 0; i < kSemiringCount; ++i)
    if ((c.semirings & (1u << i)) != 0) {
      if (!out.empty()) out += ',';
      out += semiring_name(static_cast<SemiringId>(i));
    }
  return out;
}

/// Outcome of one backend solve. On SolveStatus::Cancelled only `status`
/// is meaningful. Exactly one of `blocked` / `tri` is set on success —
/// unless the solve ran into a caller-provided arena (ExecutionContext),
/// which then holds the table and both pointers stay null.
struct BackendResult {
  SolveStatus status = SolveStatus::Ok;
  double value = 0;        ///< d[0][n-1]
  double sim_seconds = 0;  ///< simulated wall time (timing backends only)
  std::shared_ptr<BlockedTriangularMatrix<float>> blocked;
  std::shared_ptr<TriangularMatrix<float>> tri;
};

class SolverBackend {
 public:
  virtual ~SolverBackend() = default;
  virtual const char* name() const = 0;
  virtual Capabilities caps() const = 0;

  /// Solves `inst` under `ctx` (tuning, cancellation, stats, arena).
  /// Throws std::invalid_argument for instances outside the backend's
  /// capabilities (e.g. a weighted instance on a pure-only baseline).
  virtual BackendResult solve(const NpdpInstance<float>& inst,
                              const ExecutionContext& ctx) const = 0;
};

/// Resolution failure: unknown backend name. The CLI maps this onto its
/// bad-arguments exit code (3).
struct UnknownBackendError : std::invalid_argument {
  explicit UnknownBackendError(const std::string& name,
                               const std::string& known)
      : std::invalid_argument("unknown backend '" + name + "' (known: " +
                              known + ")") {}
};

class BackendRegistry {
 public:
  /// The process-wide registry, with every built-in backend registered on
  /// first use: reference, blocked-serial, blocked-parallel, tan,
  /// recursive, cellsim.
  static BackendRegistry& instance();

  /// Registers a backend; throws std::invalid_argument on duplicate name.
  void add(std::unique_ptr<SolverBackend> b);

  /// Null when the name is unknown.
  const SolverBackend* find(const std::string& name) const;

  /// All backends, sorted by name.
  std::vector<const SolverBackend*> list() const;

  /// Comma-separated sorted names (for error messages and --help).
  std::string known_names() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SolverBackend>> backends_;
};

/// find() or throw UnknownBackendError.
const SolverBackend& require_backend(const std::string& name);

}  // namespace cellnpdp::backend
