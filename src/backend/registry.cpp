// Built-in solver backends: thin adapters from the registry interface onto
// the concrete engines. Each adapter only translates (instance, context)
// into the engine's native calling convention — tuning comes from
// ctx.tuning, cancellation from ctx.cancel, the arena from ctx.arena — so
// results stay bit-identical to calling the engine directly with the same
// options (tests/test_cancel.cpp enforces this per backend).
#include "backend/solver_backend.hpp"

#include <algorithm>
#include <utility>

#include "baselines/recursive_npdp.hpp"
#include "baselines/tan_npdp.hpp"
#include "cellsim/config.hpp"
#include "cellsim/npdp_sim.hpp"
#include "core/reference.hpp"
#include "core/solve.hpp"
#include "resilience/resilient_solve.hpp"

namespace cellnpdp::backend {

namespace {

double top_value(const TriangularMatrix<float>& d) {
  return d.size() > 0 ? double(d.at(0, d.size() - 1)) : 0.0;
}

double top_value(const BlockedTriangularMatrix<float>& d) {
  return d.size() > 0 ? double(d.at(0, d.size() - 1)) : 0.0;
}

void require_pure(const char* name, const NpdpInstance<float>& inst) {
  if (inst.general_mode())
    throw std::invalid_argument(std::string("backend '") + name +
                                "' solves pure-mode instances only "
                                "(no weight / k-term)");
}

void require_semiring(const SolverBackend& b,
                      const NpdpInstance<float>& inst) {
  if (!supports_semiring(b.caps(), inst.semiring))
    throw std::invalid_argument(
        std::string("backend '") + b.name() + "' does not support the " +
        std::string(semiring_name(inst.semiring)) + " semiring (supported: " +
        semirings_string(b.caps()) + ")");
}

/// Fig. 1 golden model: the correctness oracle, O(n^3) scalar.
struct ReferenceBackend final : SolverBackend {
  const char* name() const override { return "reference"; }
  Capabilities caps() const override {
    Capabilities c;
    c.double_precision = true;
    c.weighted = true;
    c.cancellable = true;
    c.semirings = kAllSemirings;
    return c;
  }
  BackendResult solve(const NpdpInstance<float>& inst,
                      const ExecutionContext& ctx) const override {
    BackendResult r;
    if (inst.semiring != SemiringId::MinPlus) {
      // The generic golden model has no mid-solve cancellation point; it
      // is host-fast at every size the CLI/serve layers accept.
      auto d = solve_reference_any(inst);
      r.value = top_value(d);
      r.tri = std::make_shared<TriangularMatrix<float>>(std::move(d));
      return r;
    }
    bool completed = true;
    auto d = solve_reference(inst, ctx.cancel, &completed);
    if (!completed) {
      r.status = SolveStatus::Cancelled;
      return r;
    }
    r.value = top_value(d);
    r.tri = std::make_shared<TriangularMatrix<float>>(std::move(d));
    return r;
  }
};

/// Shared body of the two blocked-engine backends: honour ctx.arena when
/// the caller provided one (serve's per-worker workspace), allocate
/// otherwise.
template <class SolveInto>
BackendResult solve_blocked_backend(const NpdpInstance<float>& inst,
                                    const ExecutionContext& ctx,
                                    SolveInto&& solve_into) {
  BackendResult r;
  if (ctx.arena != nullptr) {
    r.status = solve_into(*ctx.arena);
    if (r.status == SolveStatus::Ok) r.value = top_value(*ctx.arena);
    return r;
  }
  auto mat = std::make_shared<BlockedTriangularMatrix<float>>(
      inst.n, ctx.tuning.block_side, semiring_zero<float>(inst.semiring));
  r.status = solve_into(*mat);
  if (r.status == SolveStatus::Ok) {
    r.value = top_value(*mat);
    r.blocked = std::move(mat);
  }
  return r;
}

/// Fig. 4(b): serial walk over the blocked triangular layout.
struct BlockedSerialBackend final : SolverBackend {
  const char* name() const override { return "blocked-serial"; }
  Capabilities caps() const override {
    Capabilities c;
    c.double_precision = true;
    c.weighted = true;
    c.traceback = true;
    c.cancellable = true;
    c.arena = true;
    c.semirings = kAllSemirings;
    return c;
  }
  BackendResult solve(const NpdpInstance<float>& inst,
                      const ExecutionContext& ctx) const override {
    return solve_blocked_backend(
        inst, ctx, [&](BlockedTriangularMatrix<float>& mat) {
          return solve_blocked_serial_into(mat, inst, ctx);
        });
  }
};

/// Tier 2: scheduling blocks through the task-queue executor.
struct BlockedParallelBackend final : SolverBackend {
  const char* name() const override { return "blocked-parallel"; }
  Capabilities caps() const override {
    Capabilities c;
    c.double_precision = true;
    c.weighted = true;
    c.traceback = true;
    c.parallel = true;
    c.cancellable = true;
    c.arena = true;
    c.semirings = kAllSemirings;
    return c;
  }
  BackendResult solve(const NpdpInstance<float>& inst,
                      const ExecutionContext& ctx) const override {
    return solve_blocked_backend(
        inst, ctx, [&](BlockedTriangularMatrix<float>& mat) {
          return solve_blocked_parallel_into(mat, inst, ctx);
        });
  }
};

/// TanNPDP comparator (tile = tuning.block_side, threads from tuning).
struct TanBackend final : SolverBackend {
  const char* name() const override { return "tan"; }
  Capabilities caps() const override {
    Capabilities c;
    c.double_precision = true;
    c.parallel = true;
    c.cancellable = true;
    return c;
  }
  BackendResult solve(const NpdpInstance<float>& inst,
                      const ExecutionContext& ctx) const override {
    require_pure(name(), inst);
    require_semiring(*this, inst);
    BackendResult r;
    auto d = std::make_shared<TriangularMatrix<float>>(inst.n);
    d->fill(inst.init);
    TanOptions topt;
    topt.tile = std::max<index_t>(4, ctx.tuning.block_side);
    topt.threads = ctx.tuning.threads;
    if (!solve_tan_npdp(*d, topt, ctx.cancel)) {
      r.status = SolveStatus::Cancelled;
      return r;
    }
    r.value = top_value(*d);
    r.tri = std::move(d);
    return r;
  }
};

/// Cache-oblivious recursion (Chowdhury & Ramachandran style).
struct RecursiveBackend final : SolverBackend {
  const char* name() const override { return "recursive"; }
  Capabilities caps() const override {
    Capabilities c;
    c.double_precision = true;
    c.cancellable = true;
    return c;
  }
  BackendResult solve(const NpdpInstance<float>& inst,
                      const ExecutionContext& ctx) const override {
    require_pure(name(), inst);
    require_semiring(*this, inst);
    BackendResult r;
    bool completed = true;
    auto d = solve_recursive(inst, RecursiveOptions{}, ctx.cancel, &completed);
    if (!completed) {
      r.status = SolveStatus::Cancelled;
      return r;
    }
    r.value = top_value(d);
    r.tri = std::make_shared<TriangularMatrix<float>>(std::move(d));
    return r;
  }
};

/// CellNPDP on the simulated QS20: functional execution (real values)
/// with modelled Cell timing in sim_seconds. Not cancellable — the event
/// simulation runs to completion once started (it is host-fast even for
/// the Table II sizes).
struct CellSimBackend final : SolverBackend {
  const char* name() const override { return "cellsim"; }
  Capabilities caps() const override {
    Capabilities c;
    c.double_precision = true;
    c.weighted = true;
    c.parallel = true;
    c.timing_model = true;
    return c;
  }
  BackendResult solve(const NpdpInstance<float>& inst,
                      const ExecutionContext& ctx) const override {
    require_semiring(*this, inst);
    CellSimOptions o;
    o.mode = ExecMode::Functional;
    o.block_side = ctx.tuning.block_side;
    o.sched_side = std::max<index_t>(1, ctx.tuning.sched_side);
    o.simd = ctx.tuning.kernel != KernelKind::Scalar;
    BackendResult r;
    auto mat = std::make_shared<BlockedTriangularMatrix<float>>(
        inst.n, ctx.tuning.block_side);
    const auto res = simulate_cellnpdp(inst, qs20(), o, mat.get());
    r.sim_seconds = res.seconds;
    r.value = top_value(*mat);
    r.blocked = std::move(mat);
    if (ctx.stats != nullptr) {
      ctx.stats->wall_seconds = res.seconds;
      ctx.stats->worker_busy = res.spe_busy;
      ctx.stats->worker_tasks = res.spe_tasks;
      ctx.stats->tasks = res.tasks;
    }
    return r;
  }
};

/// Self-checking serial solve: per-block retry + checksum repair
/// (src/resilience). Bit-identical to blocked-serial on a clean run;
/// under an active fault plan it detects injected throws/corruption and
/// heals at block granularity. Retry budget follows ctx.retry when the
/// caller set one, else the module default.
struct ResilientBackend final : SolverBackend {
  const char* name() const override { return "resilient"; }
  Capabilities caps() const override {
    Capabilities c;
    c.double_precision = true;
    c.weighted = true;
    c.cancellable = true;
    c.arena = true;
    c.self_checking = true;
    return c;
  }
  BackendResult solve(const NpdpInstance<float>& inst,
                      const ExecutionContext& ctx) const override {
    require_semiring(*this, inst);
    resilience::BlockRecoveryPolicy pol;
    if (ctx.retry.enabled()) pol.retry = ctx.retry;
    return solve_blocked_backend(
        inst, ctx, [&](BlockedTriangularMatrix<float>& mat) {
          return resilience::solve_blocked_serial_resilient_into(mat, inst,
                                                                 ctx, pol);
        });
  }
};

void register_builtins(BackendRegistry& reg) {
  reg.add(std::make_unique<ReferenceBackend>());
  reg.add(std::make_unique<BlockedSerialBackend>());
  reg.add(std::make_unique<BlockedParallelBackend>());
  reg.add(std::make_unique<TanBackend>());
  reg.add(std::make_unique<RecursiveBackend>());
  reg.add(std::make_unique<CellSimBackend>());
  reg.add(std::make_unique<ResilientBackend>());
}

}  // namespace

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry* reg = [] {
    auto* r = new BackendRegistry;
    register_builtins(*r);
    return r;
  }();
  return *reg;
}

void BackendRegistry::add(std::unique_ptr<SolverBackend> b) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& existing : backends_)
    if (std::string(existing->name()) == b->name())
      throw std::invalid_argument(std::string("duplicate backend '") +
                                  b->name() + "'");
  backends_.push_back(std::move(b));
}

const SolverBackend* BackendRegistry::find(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& b : backends_)
    if (name == b->name()) return b.get();
  return nullptr;
}

std::vector<const SolverBackend*> BackendRegistry::list() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<const SolverBackend*> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b.get());
  std::sort(out.begin(), out.end(),
            [](const SolverBackend* a, const SolverBackend* b) {
              return std::string(a->name()) < b->name();
            });
  return out;
}

std::string BackendRegistry::known_names() const {
  std::string names;
  for (const SolverBackend* b : list()) {
    if (!names.empty()) names += ", ";
    names += b->name();
  }
  return names;
}

const SolverBackend& require_backend(const std::string& name) {
  const SolverBackend* b = BackendRegistry::instance().find(name);
  if (b == nullptr)
    throw UnknownBackendError(name,
                              BackendRegistry::instance().known_names());
  return *b;
}

}  // namespace cellnpdp::backend
