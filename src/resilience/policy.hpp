// ResiliencePolicy: the one knob bundle the serve layer takes for its
// self-healing behaviour. Everything defaults off/inert, so a service
// configured without it behaves exactly as before this module existed.
//
// Degradation ladder (applied per request, in order):
//   1. hedge      — straggler past k x latency estimate gets a twin
//   2. retry      — failed attempt re-executed with capped backoff
//   3. fallback   — breaker-denied or retry-exhausted request re-runs on
//                   fallback_backend, answering Degraded
//   4. shed       — no fallback: answer RetryAfter with a back-off hint
#pragma once

#include <chrono>
#include <string>

#include "common/retry.hpp"
#include "resilience/circuit_breaker.hpp"
#include "resilience/hedge.hpp"

namespace cellnpdp::resilience {

struct ResiliencePolicy {
  /// Per-request retry of failed solve attempts (default: single attempt).
  RetryPolicy retry;

  /// Per-backend circuit breaking (default: off).
  bool breaker_enabled = false;
  BreakerPolicy breaker;

  /// Backend to degrade onto when the primary is broken or exhausted;
  /// empty disables the fallback rung.
  std::string fallback_backend;

  /// Straggler hedging (default: off).
  HedgePolicy hedge;

  /// RetryAfter hint floor when shedding without a breaker cooldown.
  std::chrono::milliseconds retry_after{250};
};

}  // namespace cellnpdp::resilience
