// FaultPlan: the declarative, seeded description of which faults to
// inject where. A plan is a seed plus one rule per fault site; whether a
// given *occurrence* of a site fires is a pure function of
// (seed, site, occurrence index), so the same plan replayed over the same
// execution injects the same faults — the property the verify.sh replay
// check asserts.
//
// JSON form (npdp --fault-plan file.json, FaultPlan::from_json_text):
//
//   {
//     "seed": 42,
//     "faults": [
//       {"site": "task-throw",    "rate": 0.01},
//       {"site": "block-corrupt", "rate": 0.001, "max_fires": 4},
//       {"site": "task-stall",    "rate": 1.0, "max_fires": 1,
//        "stall_ms": 300}
//     ]
//   }
//
// rate: probability per occurrence in [0,1]. max_fires: cap on total
// firings (-1 = unlimited). stall_ms: sleep for task-stall firings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault_hook.hpp"

namespace cellnpdp::resilience {

struct FaultRule {
  FaultSite site = FaultSite::TaskThrow;
  double rate = 0;               ///< firing probability per occurrence
  std::int64_t max_fires = -1;   ///< cap on firings; -1 = unlimited
  std::int64_t stall_ms = 50;    ///< sleep for TaskStall firings
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;

  const FaultRule* rule_for(FaultSite s) const {
    for (const FaultRule& r : rules)
      if (r.site == s) return &r;
    return nullptr;
  }

  /// Convenience builder for tests: one rule.
  static FaultPlan single(FaultSite site, double rate,
                          std::int64_t max_fires = -1,
                          std::uint64_t seed = 1,
                          std::int64_t stall_ms = 50) {
    FaultPlan p;
    p.seed = seed;
    p.rules.push_back(FaultRule{site, rate, max_fires, stall_ms});
    return p;
  }
};

/// "task-throw" -> FaultSite::TaskThrow; false on unknown names.
bool fault_site_from_name(const std::string& name, FaultSite* out);

/// Parses the JSON plan format above. Returns false and sets *err on
/// malformed JSON, unknown sites, out-of-range rates, or duplicate sites.
bool fault_plan_from_json_text(const std::string& text, FaultPlan* out,
                               std::string* err);

/// Reads and parses a plan file; false + *err on I/O or parse failure.
bool fault_plan_from_file(const std::string& path, FaultPlan* out,
                          std::string* err);

}  // namespace cellnpdp::resilience
