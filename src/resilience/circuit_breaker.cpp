#include "resilience/circuit_breaker.hpp"

#include <algorithm>

namespace cellnpdp::resilience {

bool CircuitBreaker::allow() {
  std::lock_guard<std::mutex> lk(mu_);
  switch (state_) {
    case BreakerState::Closed:
      return true;
    case BreakerState::Open: {
      if (Clock::now() - opened_at_ < policy_.open_for) return false;
      state_ = BreakerState::HalfOpen;
      probes_inflight_ = 0;
      probes_succeeded_ = 0;
      [[fallthrough]];
    }
    case BreakerState::HalfOpen:
      // Admit only as many probes as could still close the breaker:
      // outstanding slots plus recorded successes. Slots are returned by
      // record_success / record_failure / record_abandoned, so a probe
      // that never reports back cannot wedge the breaker HalfOpen.
      if (probes_inflight_ + probes_succeeded_ >= policy_.half_open_probes)
        return false;
      ++probes_inflight_;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ == BreakerState::HalfOpen) {
    if (probes_inflight_ > 0) --probes_inflight_;
    ++probes_succeeded_;
    if (probes_succeeded_ >= policy_.half_open_probes) {
      state_ = BreakerState::Closed;
      window_.clear();
      window_failures_ = 0;
    }
    return;
  }
  if (state_ == BreakerState::Closed) push_outcome_locked(true);
  // Open: a straggler finishing after the trip changes nothing.
}

void CircuitBreaker::record_failure() {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ == BreakerState::HalfOpen) {
    trip_locked();  // a failed probe re-opens, restarting the cooldown
    return;
  }
  if (state_ != BreakerState::Closed) return;
  push_outcome_locked(false);
  const int samples = static_cast<int>(window_.size());
  if (samples >= policy_.min_samples &&
      static_cast<double>(window_failures_) / samples >=
          policy_.failure_threshold)
    trip_locked();
}

void CircuitBreaker::record_abandoned() {
  std::lock_guard<std::mutex> lk(mu_);
  // Only meaningful while half-open; a grant issued in Closed that gets
  // cancelled after the breaker trips simply has no slot to return.
  if (state_ == BreakerState::HalfOpen && probes_inflight_ > 0)
    --probes_inflight_;
}

void CircuitBreaker::push_outcome_locked(bool ok) {
  window_.push_back(ok);
  if (!ok) ++window_failures_;
  while (static_cast<int>(window_.size()) > std::max(1, policy_.window)) {
    if (!window_.front()) --window_failures_;
    window_.pop_front();
  }
}

void CircuitBreaker::trip_locked() {
  state_ = BreakerState::Open;
  opened_at_ = Clock::now();
  probes_inflight_ = 0;
  probes_succeeded_ = 0;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lk(mu_);
  return state_;
}

std::int64_t CircuitBreaker::retry_after_ms() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ != BreakerState::Open) return 0;
  const auto elapsed = Clock::now() - opened_at_;
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(policy_.open_for -
                                                            elapsed);
  return std::max<std::int64_t>(1, left.count());
}

double CircuitBreaker::failure_rate() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (window_.empty()) return 0;
  return static_cast<double>(window_failures_) /
         static_cast<double>(window_.size());
}

void CircuitBreaker::force_open() {
  std::lock_guard<std::mutex> lk(mu_);
  trip_locked();
}

void CircuitBreaker::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  state_ = BreakerState::Closed;
  window_.clear();
  window_failures_ = 0;
  probes_inflight_ = 0;
  probes_succeeded_ = 0;
}

CircuitBreaker& BreakerBoard::breaker(const std::string& name,
                                      const BreakerPolicy& policy) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = breakers_.find(name);
  if (it == breakers_.end())
    it = breakers_.emplace(name, std::make_unique<CircuitBreaker>(policy))
             .first;
  return *it->second;
}

CircuitBreaker* BreakerBoard::find(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = breakers_.find(name);
  return it == breakers_.end() ? nullptr : it->second.get();
}

std::vector<BreakerBoard::Row> BreakerBoard::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Row> rows;
  rows.reserve(breakers_.size());
  for (const auto& [name, br] : breakers_)
    rows.push_back(
        Row{name, br->state(), br->failure_rate(), br->retry_after_ms()});
  return rows;
}

void BreakerBoard::reset_all() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, br] : breakers_) br->reset();
}

void BreakerBoard::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  breakers_.clear();
}

BreakerBoard& breakers() {
  static BreakerBoard board;
  return board;
}

}  // namespace cellnpdp::resilience
