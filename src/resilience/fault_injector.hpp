// FaultInjector: the FaultHook implementation behind every injected
// failure. Firing decisions are deterministic — occurrence k of site s
// fires iff SplitMix64(seed ^ f(s, k)).next_unit() < rate — and every
// firing is appended to a bounded log of (site, occurrence, k1, k2)
// records, which write_log() dumps as JSON for the replay-determinism
// check (same plan + same execution ⇒ byte-identical logs).
//
// Thread safety: occurrence counting and the rate decision are lock-free
// (one fetch_add + a hash per call); only actual firings — rare by
// construction — take the mutex that guards the cap and the log.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <vector>

#include "resilience/fault_plan.hpp"

namespace cellnpdp::obs {
class Counter;
}

namespace cellnpdp::resilience {

class FaultInjector final : public FaultHook {
 public:
  explicit FaultInjector(FaultPlan plan);

  bool fire(FaultSite site, std::int64_t k1, std::int64_t k2) override;
  std::int64_t stall_ms(FaultSite site) const override;

  struct Fired {
    FaultSite site;
    std::int64_t occurrence;  ///< which call at this site fired
    std::int64_t k1, k2;      ///< call-site coordinates
  };

  const FaultPlan& plan() const { return plan_; }
  /// Calls seen at `site` (fired or not).
  std::int64_t occurrences(FaultSite site) const;
  /// Firings at `site`.
  std::int64_t fired_count(FaultSite site) const;
  /// Copy of the fired-fault log (bounded at kLogCap entries).
  std::vector<Fired> fired_log() const;

  /// JSON dump of the plan seed and the fired log, for --fault-log and
  /// the verify.sh replay check.
  void write_log(std::ostream& os) const;

  static constexpr std::size_t kLogCap = 65536;

 private:
  struct SiteState {
    const FaultRule* rule = nullptr;    // null: site never fires
    obs::Counter* injected = nullptr;   // fault.injected.<site>
    std::atomic<std::int64_t> occ{0};
    std::atomic<std::int64_t> fired{0};
  };

  FaultPlan plan_;
  SiteState sites_[kFaultSiteCount];
  mutable std::mutex mu_;
  std::vector<Fired> log_;  // guarded by mu_
};

/// RAII plan activation: constructs an injector and installs it as the
/// process-wide hook; the destructor uninstalls before the injector dies.
/// Keep the scope alive across the whole faulty region (solve, service
/// lifetime, ...) — the hook is global, so scopes must not nest.
class FaultInjectionScope {
 public:
  explicit FaultInjectionScope(FaultPlan plan) : injector_(std::move(plan)) {
    install_fault_hook(&injector_);
  }
  ~FaultInjectionScope() { install_fault_hook(nullptr); }

  FaultInjectionScope(const FaultInjectionScope&) = delete;
  FaultInjectionScope& operator=(const FaultInjectionScope&) = delete;

  FaultInjector& injector() { return injector_; }

 private:
  FaultInjector injector_;
};

}  // namespace cellnpdp::resilience
