// Straggler hedging support: a per-shape latency estimator feeding the
// serve watchdog. A request whose elapsed time exceeds k x the estimate
// for its shape gets a hedge twin launched on another worker; the first
// finisher responds and the loser is cancelled through its own token
// (the tail-at-scale recipe, applied to stalled solve tasks).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>

namespace cellnpdp::resilience {

struct HedgePolicy {
  bool enabled = false;
  double k = 3.0;  ///< hedge when elapsed > k x shape latency estimate
  int min_samples = 8;  ///< no hedging until the estimate is warm
  std::chrono::milliseconds min_delay{2};  ///< floor on the hedge trigger
};

/// EWMA latency estimate per request shape key. One mutex: observations
/// happen once per completed solve and scans once per watchdog tick, both
/// far off the solve hot path.
class LatencyEstimator {
 public:
  explicit LatencyEstimator(double alpha = 0.2) : alpha_(alpha) {}

  void observe(std::uint64_t shape_key, std::int64_t latency_ns) {
    if (latency_ns < 0) return;
    std::lock_guard<std::mutex> lk(mu_);
    Ewma& e = shapes_[shape_key];
    e.mean_ns = e.count == 0
                    ? static_cast<double>(latency_ns)
                    : e.mean_ns + alpha_ * (latency_ns - e.mean_ns);
    ++e.count;
  }

  /// Estimate for `shape_key`, or 0 while fewer than `min_samples`
  /// observations exist (callers must not hedge on a cold estimate).
  std::int64_t estimate_ns(std::uint64_t shape_key, int min_samples) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = shapes_.find(shape_key);
    if (it == shapes_.end() || it->second.count < min_samples) return 0;
    return static_cast<std::int64_t>(it->second.mean_ns);
  }

  std::int64_t samples(std::uint64_t shape_key) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = shapes_.find(shape_key);
    return it == shapes_.end() ? 0 : it->second.count;
  }

 private:
  struct Ewma {
    double mean_ns = 0;
    std::int64_t count = 0;
  };
  double alpha_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, Ewma> shapes_;
};

}  // namespace cellnpdp::resilience
