// Per-memory-block checksums: the detection half of block-granular
// recovery. After a block is relaxed, record() hashes its bytes; verify()
// later recomputes and compares, catching torn or corrupted writes (the
// software analogue of a DMA that completed partially or scribbled — the
// failure mode the Cell's per-SPE local stores made a first-class concern).
// The hash compares exact bit patterns, so a single flipped mantissa bit
// is caught; no tolerance, because the blocked schedule is deterministic
// and a clean re-run is bit-identical.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "layout/blocked.hpp"

namespace cellnpdp::resilience {

/// FNV-1a processed a 64-bit word at a time (byte-serial FNV makes the
/// checksum pass cost ~15% of a solve; word-wise it is ~2%). Only ever
/// compared against itself — record() vs verify() — so it needs to be
/// deterministic and sensitive to any flipped bit, not standard.
inline std::uint64_t fnv1a(const void* data, std::size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xCBF29CE484222325ull;
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    h ^= w;
    h *= 0x100000001B3ull;
  }
  for (; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

/// One checksum slot per in-triangle memory block, indexed exactly like
/// the matrix's block storage.
template <class T>
class BlockChecksums {
 public:
  explicit BlockChecksums(const BlockedTriangularMatrix<T>& mat)
      : mat_(mat),
        sums_(static_cast<std::size_t>(triangle_cells(mat.blocks_per_side())),
              0) {}

  void record(index_t bi, index_t bj) {
    sums_[slot(bi, bj)] = hash_block(bi, bj);
  }

  bool verify(index_t bi, index_t bj) const {
    return sums_[slot(bi, bj)] == hash_block(bi, bj);
  }

 private:
  std::size_t slot(index_t bi, index_t bj) const {
    return static_cast<std::size_t>(mat_.block_index(bi, bj));
  }
  std::uint64_t hash_block(index_t bi, index_t bj) const {
    return fnv1a(mat_.block(bi, bj),
                 static_cast<std::size_t>(mat_.block_bytes()));
  }

  const BlockedTriangularMatrix<T>& mat_;
  std::vector<std::uint64_t> sums_;
};

}  // namespace cellnpdp::resilience
