#include "resilience/fault_injector.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cellnpdp::resilience {

bool fault_site_from_name(const std::string& name, FaultSite* out) {
  for (int s = 0; s < kFaultSiteCount; ++s) {
    if (name == fault_site_name(static_cast<FaultSite>(s))) {
      *out = static_cast<FaultSite>(s);
      return true;
    }
  }
  return false;
}

bool fault_plan_from_json_text(const std::string& text, FaultPlan* out,
                               std::string* err) {
  JsonValue root;
  if (!json_parse(text, root, err)) return false;
  auto fail = [err](const std::string& msg) {
    if (err != nullptr) *err = msg;
    return false;
  };
  if (!root.is_object()) return fail("fault plan must be a JSON object");

  FaultPlan plan;
  if (root.has("seed")) {
    const JsonValue& s = root.at("seed");
    if (!s.is_number() || s.number < 0)
      return fail("\"seed\" must be a non-negative number");
    plan.seed = static_cast<std::uint64_t>(s.number);
  }
  if (root.has("faults")) {
    const JsonValue& faults = root.at("faults");
    if (!faults.is_array()) return fail("\"faults\" must be an array");
    for (const JsonValue& f : faults.arr) {
      if (!f.is_object()) return fail("each fault must be an object");
      if (!f.has("site") || !f.at("site").is_string())
        return fail("each fault needs a string \"site\"");
      FaultRule rule;
      if (!fault_site_from_name(f.at("site").str, &rule.site))
        return fail("unknown fault site \"" + f.at("site").str + "\"");
      if (plan.rule_for(rule.site) != nullptr)
        return fail("duplicate rule for site \"" + f.at("site").str + "\"");
      if (f.has("rate")) {
        const JsonValue& r = f.at("rate");
        if (!r.is_number() || r.number < 0 || r.number > 1)
          return fail("\"rate\" must be a number in [0, 1]");
        rule.rate = r.number;
      }
      if (f.has("max_fires")) {
        const JsonValue& m = f.at("max_fires");
        if (!m.is_number()) return fail("\"max_fires\" must be a number");
        rule.max_fires = static_cast<std::int64_t>(m.number);
      }
      if (f.has("stall_ms")) {
        const JsonValue& m = f.at("stall_ms");
        if (!m.is_number() || m.number < 0)
          return fail("\"stall_ms\" must be a non-negative number");
        rule.stall_ms = static_cast<std::int64_t>(m.number);
      }
      plan.rules.push_back(rule);
    }
  }
  *out = std::move(plan);
  return true;
}

bool fault_plan_from_file(const std::string& path, FaultPlan* out,
                          std::string* err) {
  std::ifstream in(path);
  if (!in) {
    if (err != nullptr) *err = "cannot open fault plan file: " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return fault_plan_from_json_text(ss.str(), out, err);
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (int s = 0; s < kFaultSiteCount; ++s) {
    const FaultSite site = static_cast<FaultSite>(s);
    sites_[s].rule = plan_.rule_for(site);
    if (sites_[s].rule != nullptr)
      sites_[s].injected = &obs::metrics().counter(
          std::string("fault.injected.") + fault_site_name(site));
  }
}

bool FaultInjector::fire(FaultSite site, std::int64_t k1, std::int64_t k2) {
  SiteState& st = sites_[static_cast<int>(site)];
  const FaultRule* rule = st.rule;
  if (rule == nullptr || rule->rate <= 0) return false;
  const std::int64_t occurrence =
      st.occ.fetch_add(1, std::memory_order_relaxed);
  // The decision is a pure function of (plan seed, site, occurrence), so a
  // replay of the same execution makes identical decisions.
  SplitMix64 rng(plan_.seed ^
                 (static_cast<std::uint64_t>(site) + 1) * 0xD6E8FEB86659FD93ull ^
                 static_cast<std::uint64_t>(occurrence) * 0x9E3779B97F4A7C15ull);
  if (rng.next_unit() >= rule->rate) return false;

  std::lock_guard<std::mutex> lk(mu_);
  if (rule->max_fires >= 0 &&
      st.fired.load(std::memory_order_relaxed) >= rule->max_fires)
    return false;
  st.fired.fetch_add(1, std::memory_order_relaxed);
  if (log_.size() < kLogCap) log_.push_back(Fired{site, occurrence, k1, k2});
  if (st.injected != nullptr) st.injected->add();
  CELLNPDP_TRACE_INSTANT("fault", fault_site_name(site), k1, k2);
  return true;
}

std::int64_t FaultInjector::stall_ms(FaultSite site) const {
  const FaultRule* rule = sites_[static_cast<int>(site)].rule;
  return rule != nullptr ? rule->stall_ms : 0;
}

std::int64_t FaultInjector::occurrences(FaultSite site) const {
  return sites_[static_cast<int>(site)].occ.load(std::memory_order_relaxed);
}

std::int64_t FaultInjector::fired_count(FaultSite site) const {
  return sites_[static_cast<int>(site)].fired.load(std::memory_order_relaxed);
}

std::vector<FaultInjector::Fired> FaultInjector::fired_log() const {
  std::lock_guard<std::mutex> lk(mu_);
  return log_;
}

void FaultInjector::write_log(std::ostream& os) const {
  const std::vector<Fired> log = fired_log();
  JsonWriter w(os);
  w.begin_object();
  w.kv("seed", plan_.seed);
  w.key("fired").begin_array();
  for (const Fired& f : log) {
    w.begin_object();
    w.kv("site", fault_site_name(f.site));
    w.kv("occurrence", f.occurrence);
    w.kv("k1", f.k1);
    w.kv("k2", f.k2);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace cellnpdp::resilience
