// Self-checking serial blocked solve: the recovery half of the tentpole.
// Walks memory blocks in the canonical column-ascending / row-descending
// order, but wraps every block in (a) a retry loop — a thrown fault
// re-seeds just that block and re-runs it with capped backoff — and (b) a
// checksum round-trip that detects torn/corrupted block memory and repairs
// it by re-seeding and recomputing the block.
//
// Correctness of block-granular re-execution: a memory block's inputs are
// blocks strictly earlier in the walk (already relaxed, never written
// again) plus its own seeded cells. finalize_cell is NOT idempotent in
// general mode (it folds min(init, w + acc) over whatever the cell holds),
// so recovery always re-seeds before recomputing — after which the re-run
// reads exactly what the first run read and lands bit-identical.
#pragma once

#include <thread>

#include "common/fault_hook.hpp"
#include "common/retry.hpp"
#include "common/stopwatch.hpp"
#include "core/engine.hpp"
#include "core/execution_context.hpp"
#include "core/instance.hpp"
#include "layout/blocked.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/checksum.hpp"

namespace cellnpdp::resilience {

struct BlockRecoveryPolicy {
  /// Retry budget per block; defaults on, unlike ExecutionContext::retry,
  /// because being self-healing is this solver's purpose.
  RetryPolicy retry{/*max_attempts=*/4};
  /// Checksum every block after relaxation and repair mismatches.
  bool checksums = true;
};

/// What recovery actually did during one solve.
struct ResilienceReport {
  index_t blocks = 0;         ///< blocks relaxed (first attempts)
  index_t block_retries = 0;  ///< re-runs after a thrown fault
  index_t block_repairs = 0;  ///< re-runs after a checksum mismatch
};

/// Test/bench hook: fires the BlockCorrupt site and, when it fires,
/// scribbles deterministic garbage over the first half of the block —
/// modelling a torn DMA. The garbage is negative, below any reachable
/// cell value, so it cannot be silently absorbed by further min()s; only
/// detection + re-seeding fixes it, which is exactly what we must prove.
template <class T>
inline bool maybe_inject_block_corruption(BlockedTriangularMatrix<T>& mat,
                                          index_t bi, index_t bj) {
  FaultHook* hook = fault_hook();
  if (hook == nullptr || !hook->fire(FaultSite::BlockCorrupt, bi, bj))
    return false;
  T* b = mat.block(bi, bj);
  const index_t half = mat.cells_per_block() / 2;
  for (index_t c = 0; c < half; ++c)
    b[c] = static_cast<T>(-1e6) - static_cast<T>(c % 97);
  return true;
}

/// Serial blocked solve with per-block retry and checksum repair into a
/// caller-owned (freshly reset) matrix. Drop-in replacement for
/// solve_blocked_serial_into; `report` is optional.
template <class T>
SolveStatus solve_blocked_serial_resilient_into(
    BlockedTriangularMatrix<T>& mat, const NpdpInstance<T>& inst,
    const ExecutionContext& ctx, const BlockRecoveryPolicy& pol = {},
    ResilienceReport* report = nullptr) {
  CELLNPDP_TRACE_SPAN("solve", "solve_blocked_resilient");
  static obs::Counter& retries_ctr =
      obs::metrics().counter("resilience.block_retries");
  static obs::Counter& repairs_ctr =
      obs::metrics().counter("resilience.block_repairs");

  SolveStats* ss = ctx.stats;
  BlockEngine<T> engine(mat, inst, ctx.tuning);
  engine.seed();
  const index_t m = engine.blocks_per_side();
  BlockChecksums<T> sums(mat);
  Stopwatch sw;
  EngineStats* st = ss != nullptr ? &ss->engine : nullptr;
  ResilienceReport rep;
  SolveStatus status = SolveStatus::Ok;

  for (index_t bj = 0; bj < m && status == SolveStatus::Ok; ++bj) {
    for (index_t bi = bj; bi >= 0; --bi) {
      if (ctx.poll()) {
        status = SolveStatus::Cancelled;
        break;
      }
      const int max_attempts =
          pol.retry.enabled() ? pol.retry.max_attempts : 1;
      if (fault_hook() == nullptr) {
        // Hot path: identical to the plain serial solve — no try region
        // around the kernel, so the compiler sees the same loop it
        // optimises there. compute_block itself does not throw; the retry
        // scaffolding exists for the harness (and for genuinely transient
        // failures, which only occur with a hook or real faulty hardware).
        engine.compute_block(bi, bj, st);
      } else {
      for (int attempt = 1;; ++attempt) {
        try {
          maybe_inject_task_fault(bi, bj);
          engine.compute_block(bi, bj, st);
          break;
        } catch (...) {
          if (attempt >= max_attempts || ctx.cancelled()) throw;
          ++rep.block_retries;
          retries_ctr.add();
          CELLNPDP_TRACE_INSTANT("resilience", "block_retry", bi, bj);
          const auto delay = pol.retry.backoff(
              attempt + 1, (static_cast<std::uint64_t>(bi) << 32) ^
                               static_cast<std::uint64_t>(bj));
          if (delay.count() > 0) std::this_thread::sleep_for(delay);
          engine.seed_block(bi, bj);
        }
      }
      }
      ++rep.blocks;
      if (pol.checksums) {
        sums.record(bi, bj);
        maybe_inject_block_corruption(mat, bi, bj);
        if (!sums.verify(bi, bj)) {
          ++rep.block_repairs;
          repairs_ctr.add();
          CELLNPDP_TRACE_INSTANT("resilience", "block_repair", bi, bj);
          engine.seed_block(bi, bj);
          engine.compute_block(bi, bj, st);
          sums.record(bi, bj);
        }
      }
    }
  }

  if (ss != nullptr) {
    ss->wall_seconds = sw.seconds();
    ss->worker_busy = {ss->wall_seconds};
    ss->tasks = rep.blocks;
    ss->worker_tasks = {rep.blocks};
  }
  if (report != nullptr) *report = rep;
  return status;
}

}  // namespace cellnpdp::resilience
