// Per-backend circuit breaker: trips a backend out of rotation when its
// rolling failure rate crosses a threshold, then probes it back to health.
//
//   Closed    — normal operation; outcomes fill a rolling window.
//   Open      — every allow() is denied until the cooldown elapses.
//   HalfOpen  — a bounded number of probe requests pass; all probes
//               succeeding closes the breaker, any failure re-opens it.
//
// The serve dispatcher consults the breaker before executing and feeds
// outcomes back; a denied request falls down the degradation ladder
// (fallback backend, then shed with RetryAfter — see docs/resilience.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cellnpdp::resilience {

struct BreakerPolicy {
  int window = 32;              ///< rolling outcome window size
  int min_samples = 8;          ///< no tripping below this many outcomes
  double failure_threshold = 0.5;  ///< trip when failure rate >= this
  std::chrono::milliseconds open_for{1000};  ///< cooldown before probing
  int half_open_probes = 2;     ///< probes that must all succeed to close
};

enum class BreakerState { Closed, Open, HalfOpen };

constexpr const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
  }
  return "?";
}

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerPolicy policy = {}) : policy_(policy) {}

  /// May this request proceed? Open breakers whose cooldown has elapsed
  /// transition to HalfOpen and admit up to half_open_probes callers.
  bool allow();

  void record_success();
  void record_failure();
  /// Releases a half-open probe slot whose request produced no outcome
  /// (cancelled or deadline-expired mid-probe). Without this, abandoned
  /// probes would pin the breaker HalfOpen forever, denying everything.
  /// Conservative: a no-op unless a slot is actually held.
  void record_abandoned();

  BreakerState state() const;
  /// Suggested client back-off while open (>= 1ms); 0 when not open.
  std::int64_t retry_after_ms() const;
  /// Rolling failure rate over the current window.
  double failure_rate() const;

  /// Trips the breaker open immediately (tests, operator override).
  void force_open();
  /// Back to Closed with a cleared window.
  void reset();

 private:
  using Clock = std::chrono::steady_clock;

  void push_outcome_locked(bool ok);
  void trip_locked();

  BreakerPolicy policy_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::Closed;
  std::deque<bool> window_;       // true = success
  int window_failures_ = 0;
  Clock::time_point opened_at_{};
  int probes_inflight_ = 0;
  int probes_succeeded_ = 0;
};

/// Process-global board of breakers keyed by backend name, mirroring the
/// obs metrics registry: resolve once, update via the handle.
class BreakerBoard {
 public:
  struct Row {
    std::string name;
    BreakerState state;
    double failure_rate;
    std::int64_t retry_after_ms;
  };

  /// Returns (creating on first use with `policy`) the named breaker.
  CircuitBreaker& breaker(const std::string& name,
                          const BreakerPolicy& policy = {});
  /// Null when no breaker has been created for `name`.
  CircuitBreaker* find(const std::string& name);
  std::vector<Row> snapshot() const;
  /// Closes and clears every breaker (keeps handles valid).
  void reset_all();
  /// Drops all breakers (invalidates handles — tests only).
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
};

/// The process-wide board used by the serve layer and the CLI.
BreakerBoard& breakers();

}  // namespace cellnpdp::resilience
