#include "apps/polygon/triangulation.hpp"

#include "common/rng.hpp"

namespace cellnpdp::polygon {

std::vector<Point> random_convex_polygon(index_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<Point> pts(static_cast<std::size_t>(n));
  constexpr double kTau = 6.283185307179586;
  for (index_t i = 0; i < n; ++i) {
    const double angle = kTau * double(i) / double(n);
    const double r = 10.0 + rng.next_in(0.0, 0.5);  // small radial noise
    pts[static_cast<std::size_t>(i)] = {r * std::cos(angle),
                                        r * std::sin(angle)};
  }
  return pts;
}

}  // namespace cellnpdp::polygon
