// Optimal convex-polygon triangulation — the classic NPDP with a
// non-factorable per-split cost (Grama et al.'s polyadic example family):
//
//   d[i][j] = min_{i<k<j} d[i][k] + d[k][j] + w(v_i, v_k, v_j)
//   d[i][i+1] = 0
//
// over the polygon's vertices, where w is the triangle's perimeter (any
// triangle cost works). This exercises the engine's *general* k-term path
// (scalar tiles, since a functor cannot vectorise) and the argmin
// traceback (each split k names the triangle (i, k, j)).
#pragma once

#include <cmath>
#include <vector>

#include "core/reference.hpp"
#include "core/traceback.hpp"

namespace cellnpdp::polygon {

struct Point {
  double x = 0, y = 0;
};

struct Triangle {
  index_t a = 0, b = 0, c = 0;  ///< vertex indices
};

struct TriangulationResult {
  double cost = 0;                  ///< summed triangle perimeters
  std::vector<Triangle> triangles;  ///< exactly n-2 for an n-gon
};

inline double dist(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

inline double perimeter(const Point& a, const Point& b, const Point& c) {
  return dist(a, b) + dist(b, c) + dist(c, a);
}

/// Engine instance over the polygon's n vertices. The instance references
/// `pts`; keep it alive for the solve.
inline NpdpInstance<double> triangulation_instance(
    const std::vector<Point>& pts) {
  NpdpInstance<double> inst;
  inst.n = static_cast<index_t>(pts.size());
  inst.init = [](index_t i, index_t j) {
    if (j <= i + 1) return 0.0;  // edges and vertices cost nothing
    return minplus_identity<double>();
  };
  inst.kterm = [&pts](index_t i, index_t k, index_t j) {
    return perimeter(pts[static_cast<std::size_t>(i)],
                     pts[static_cast<std::size_t>(k)],
                     pts[static_cast<std::size_t>(j)]);
  };
  return inst;
}

/// Minimal-perimeter triangulation under an ExecutionContext (cancellation
/// + deadline, tuning). On Cancelled `out` is left untouched and the
/// partial tables are discarded.
inline SolveStatus triangulate(const std::vector<Point>& pts,
                               const ExecutionContext& ctx,
                               TriangulationResult* out) {
  if (pts.size() < 3) {
    *out = {};
    return SolveStatus::Ok;
  }
  const auto inst = triangulation_instance(pts);
  NpdpSolution<double> sol{
      BlockedTriangularMatrix<double>(inst.n, ctx.tuning.block_side),
      BlockedTriangularMatrix<double>(inst.n, ctx.tuning.block_side)};
  const SolveStatus st = solve_blocked_with_argmin_into(sol, inst, ctx);
  if (st != SolveStatus::Ok) return st;
  out->cost = sol.values.at(0, inst.n - 1);
  out->triangles.clear();
  visit_splits(sol, 0, inst.n - 1, [&](index_t i, index_t k, index_t j) {
    out->triangles.push_back({i, k, j});
  });
  return SolveStatus::Ok;
}

/// Minimal-perimeter triangulation via the blocked engine (+ argmin
/// traceback for the triangle list).
inline TriangulationResult triangulate(const std::vector<Point>& pts,
                                       const NpdpOptions& opts) {
  TriangulationResult res;
  ExecutionContext ctx;
  ctx.tuning = opts;
  triangulate(pts, ctx, &res);
  return res;
}

/// Textbook O(n^3) reference.
inline double triangulate_reference(const std::vector<Point>& pts) {
  const index_t n = static_cast<index_t>(pts.size());
  if (n < 3) return 0.0;
  TriangularMatrix<double> d(n);
  for (index_t i = 0; i < n; ++i) d.at(i, i) = 0.0;
  for (index_t i = 0; i + 1 < n; ++i) d.at(i, i + 1) = 0.0;
  for (index_t span = 2; span < n; ++span)
    for (index_t i = 0; i + span < n; ++i) {
      const index_t j = i + span;
      double best = minplus_identity<double>();
      for (index_t k = i + 1; k < j; ++k)
        best = std::min(best, d.at(i, k) + d.at(k, j) +
                                  perimeter(pts[static_cast<std::size_t>(i)],
                                            pts[static_cast<std::size_t>(k)],
                                            pts[static_cast<std::size_t>(j)]));
      d.at(i, j) = best;
    }
  return d.at(0, n - 1);
}

/// Deterministic random convex polygon (points on a perturbed circle,
/// sorted by angle — convex for small radial noise).
std::vector<Point> random_convex_polygon(index_t n, std::uint64_t seed);

}  // namespace cellnpdp::polygon
