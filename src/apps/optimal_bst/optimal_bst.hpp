// Optimal binary search tree — NPDP application #2 (§I).
//
// Knuth's formulation: keys 1..n with hit probabilities p[1..n] and miss
// (gap) probabilities q[0..n]; e[i][j] is the expected cost of the optimal
// subtree over gaps i..j. The standard recurrence splits at a *key* k:
// e[i][j] = min_{i<k<=j} (e[i][k-1] + e[k][j]) + w(i,j) — not shared-k.
// Substituting c[x][y] = e[x][y-1] over n+1 boundary nodes gives
//
//   c[x][y] = min_{x<k<y} c[x][k] + c[k][y] + w(x, y-1)
//   c[x][x+1] = q[x]
//
// which is the engine's generalised NPDP with a k-independent weight.
#pragma once

#include <vector>

#include "core/reference.hpp"
#include "core/solve.hpp"

namespace cellnpdp {

template <class T>
struct BstInstanceData {
  std::vector<T> p;   ///< p[1..n]; p[0] unused
  std::vector<T> q;   ///< q[0..n]
  std::vector<T> pw;  ///< prefix sums for w(i,j)

  index_t keys() const { return static_cast<index_t>(p.size()) - 1; }

  /// w(i,j) = sum q[i..j] + sum p[i+1..j] (expected visits of the subtree).
  T w(index_t i, index_t j) const {
    return pw[static_cast<std::size_t>(j + 1)] -
           pw[static_cast<std::size_t>(i)] -
           (i > 0 ? p[static_cast<std::size_t>(i)] : T(0));
  }
};

template <class T>
BstInstanceData<T> make_bst_data(std::vector<T> p, std::vector<T> q) {
  BstInstanceData<T> d;
  d.p = std::move(p);
  d.q = std::move(q);
  // pw[t] = sum_{u<t} (q[u] + p[u]) with p[0] treated as 0.
  d.pw.resize(d.q.size() + 0 + 1);
  d.pw[0] = T(0);
  for (std::size_t t = 0; t < d.q.size(); ++t) {
    const T pt = t < d.p.size() && t > 0 ? d.p[t] : T(0);
    d.pw[t + 1] = d.pw[t] + d.q[t] + pt;
  }
  return d;
}

/// Engine instance over n+2 boundary nodes: c[x][y] = e[x][y-1] ranges
/// over gap intervals, so the full answer e[0][n] lives at c[0][n+1].
template <class T>
NpdpInstance<T> optimal_bst_instance(const BstInstanceData<T>& d) {
  NpdpInstance<T> inst;
  inst.n = d.keys() + 2;  // boundary nodes 0..n+1
  inst.init = [&d](index_t x, index_t y) {
    if (x == y) return T(0);
    if (y == x + 1) return d.q[static_cast<std::size_t>(x)];
    return minplus_identity<T>();
  };
  inst.weight = [&d](index_t x, index_t y) { return d.w(x, y - 1); };
  return inst;
}

/// Expected search cost of the optimal BST under an ExecutionContext
/// (cancellation + deadline, tuning, stats). On Cancelled `cost` is left
/// untouched.
template <class T>
SolveStatus solve_optimal_bst(const BstInstanceData<T>& d,
                              const ExecutionContext& ctx, T* cost) {
  const auto inst = optimal_bst_instance(d);
  BlockedTriangularMatrix<T> table(inst.n, ctx.tuning.block_side);
  const SolveStatus st = solve_blocked_into(table, inst, ctx);
  if (st == SolveStatus::Ok) *cost = table.at(0, inst.n - 1);
  return st;
}

/// Expected search cost of the optimal BST, via the blocked engine.
template <class T>
T solve_optimal_bst(const BstInstanceData<T>& d, const NpdpOptions& opts) {
  ExecutionContext ctx;
  ctx.tuning = opts;
  T cost{};
  solve_optimal_bst(d, ctx, &cost);
  return cost;
}

/// Classic Knuth O(n^3) reference on the e[i][j] table; `speedup` enables
/// Knuth's O(n^2) monotone-root optimisation (results must be identical).
template <class T>
T solve_optimal_bst_reference(const BstInstanceData<T>& d,
                              bool speedup = false) {
  const index_t n = d.keys();
  // e and root over gap indices 0..n.
  std::vector<std::vector<T>> e(static_cast<std::size_t>(n + 1),
                                std::vector<T>(static_cast<std::size_t>(n + 1)));
  std::vector<std::vector<index_t>> root(
      static_cast<std::size_t>(n + 1),
      std::vector<index_t>(static_cast<std::size_t>(n + 1), 0));
  for (index_t i = 0; i <= n; ++i) {
    e[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] =
        d.q[static_cast<std::size_t>(i)];
    root[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = i;
  }
  for (index_t span = 1; span <= n; ++span)
    for (index_t i = 0; i + span <= n; ++i) {
      const index_t j = i + span;
      T best = minplus_identity<T>();
      index_t arg = i + 1;
      index_t klo = i + 1, khi = j;
      if (speedup && span >= 2) {
        klo = root[static_cast<std::size_t>(i)][static_cast<std::size_t>(j - 1)];
        khi = root[static_cast<std::size_t>(i + 1)][static_cast<std::size_t>(j)];
      }
      for (index_t k = klo; k <= khi; ++k) {
        const T cand = e[static_cast<std::size_t>(i)][static_cast<std::size_t>(k - 1)] +
                       e[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)];
        if (cand < best) {
          best = cand;
          arg = k;
        }
      }
      e[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          best + d.w(i, j);
      root[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = arg;
    }
  return e[0][static_cast<std::size_t>(n)];
}

}  // namespace cellnpdp
