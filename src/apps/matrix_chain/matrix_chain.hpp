// Optimal matrix-chain parenthesization — one of the three NPDP
// applications the paper names (§I). In boundary form the recurrence is
// exactly the engine's generalised NPDP with a separable k-term:
//
//   c[i][j] = min_{i<k<j} c[i][k] + c[k][j] + p[i]*p[k]*p[j]
//   c[i][i+1] = 0                       (a single matrix costs nothing)
//
// over boundary nodes 0..n for a chain of n matrices with dimensions
// p[0] x p[1], p[1] x p[2], ...
#pragma once

#include <string>
#include <vector>

#include "core/reference.hpp"
#include "core/solve.hpp"
#include "layout/convert.hpp"

namespace cellnpdp {

template <class T>
struct MatrixChainResult {
  T cost = 0;                      ///< minimal scalar multiplications
  std::vector<index_t> split;      ///< split[i*(n+1)+j]: argmin k for (i,j)
  std::string parenthesization;    ///< e.g. "((A0 A1) A2)"
};

/// Builds the engine instance for dimension vector p (size n+1).
template <class T>
NpdpInstance<T> matrix_chain_instance(const std::vector<T>& p) {
  NpdpInstance<T> inst;
  inst.n = static_cast<index_t>(p.size());
  inst.init = [](index_t i, index_t j) {
    if (i == j || j == i + 1) return T(0);
    return minplus_identity<T>();
  };
  inst.ku = p.data();
  inst.kv = p.data();
  inst.kw = p.data();
  return inst;
}

namespace matrix_chain_detail {

template <class T>
void render(const std::vector<index_t>& split, index_t n, index_t i,
            index_t j, std::string& out) {
  if (j == i + 1) {
    out += "A" + std::to_string(i);
    return;
  }
  out += "(";
  const index_t k = split[static_cast<std::size_t>(i * (n + 1) + j)];
  render<T>(split, n, i, k, out);
  out += " ";
  render<T>(split, n, k, j, out);
  out += ")";
}

}  // namespace matrix_chain_detail

/// Recovers split points from a solved boundary table by re-finding each
/// argmin (O(n^3) total, only used for reporting).
template <class T, class Table>
std::vector<index_t> matrix_chain_splits(const Table& c,
                                         const std::vector<T>& p) {
  const index_t nodes = static_cast<index_t>(p.size());
  std::vector<index_t> split(static_cast<std::size_t>(nodes * nodes), -1);
  for (index_t i = 0; i < nodes; ++i)
    for (index_t j = i + 2; j < nodes; ++j) {
      T best = minplus_identity<T>();
      index_t arg = i + 1;
      for (index_t k = i + 1; k < j; ++k) {
        const T cand = c.at(i, k) + c.at(k, j) + p[static_cast<std::size_t>(i)] *
                           p[static_cast<std::size_t>(k)] *
                           p[static_cast<std::size_t>(j)];
        if (cand < best) {
          best = cand;
          arg = k;
        }
      }
      split[static_cast<std::size_t>(i * nodes + j)] = arg;
    }
  return split;
}

/// Solves the chain with the blocked engine under an ExecutionContext
/// (cancellation + deadline, tuning, stats). On Cancelled `out` is left
/// untouched and the partial table is discarded.
template <class T>
SolveStatus solve_matrix_chain(const std::vector<T>& p,
                               const ExecutionContext& ctx,
                               MatrixChainResult<T>* out) {
  const auto inst = matrix_chain_instance(p);
  BlockedTriangularMatrix<T> table(inst.n, ctx.tuning.block_side);
  const SolveStatus st = solve_blocked_into(table, inst, ctx);
  if (st != SolveStatus::Ok) return st;
  out->cost = table.at(0, inst.n - 1);
  out->split = matrix_chain_splits<T>(table, p);
  out->parenthesization.clear();
  matrix_chain_detail::render<T>(out->split, inst.n - 1, 0, inst.n - 1,
                                 out->parenthesization);
  return SolveStatus::Ok;
}

/// Solves the chain with the blocked engine.
template <class T>
MatrixChainResult<T> solve_matrix_chain(const std::vector<T>& p,
                                        const NpdpOptions& opts) {
  ExecutionContext ctx;
  ctx.tuning = opts;
  MatrixChainResult<T> res;
  solve_matrix_chain(p, ctx, &res);
  return res;
}

/// Classic textbook O(n^3) reference with an explicit split table.
template <class T>
MatrixChainResult<T> solve_matrix_chain_reference(const std::vector<T>& p) {
  const index_t nodes = static_cast<index_t>(p.size());
  TriangularMatrix<T> c(nodes);
  std::vector<index_t> split(static_cast<std::size_t>(nodes * nodes), -1);
  for (index_t i = 0; i < nodes; ++i) c.at(i, i) = T(0);
  for (index_t i = 0; i + 1 < nodes; ++i) c.at(i, i + 1) = T(0);
  for (index_t span = 2; span < nodes; ++span)
    for (index_t i = 0; i + span < nodes; ++i) {
      const index_t j = i + span;
      T best = minplus_identity<T>();
      index_t arg = i + 1;
      for (index_t k = i + 1; k < j; ++k) {
        const T cand = c.at(i, k) + c.at(k, j) +
                       p[static_cast<std::size_t>(i)] *
                           p[static_cast<std::size_t>(k)] *
                           p[static_cast<std::size_t>(j)];
        if (cand < best) {
          best = cand;
          arg = k;
        }
      }
      c.at(i, j) = best;
      split[static_cast<std::size_t>(i * nodes + j)] = arg;
    }
  MatrixChainResult<T> res;
  res.cost = c.at(0, nodes - 1);
  res.split = std::move(split);
  matrix_chain_detail::render<T>(res.split, nodes - 1, 0, nodes - 1,
                                 res.parenthesization);
  return res;
}

}  // namespace cellnpdp
