// Exhaustive parse-tree enumeration: the independent oracle for the CYK
// parser. Exponential; usable for n up to ~8 with small grammars.
#pragma once

#include <algorithm>
#include <cmath>

#include "apps/cyk/cyk.hpp"

namespace cellnpdp::cyk {

namespace brute_detail {

/// Minimum derivation cost of nonterminal `a` over tokens [i, j) by plain
/// recursion over all rules and splits (no memoisation: an independent
/// code path, deliberately not the DP).
inline Weight best_cost(const Grammar& g, const std::vector<int>& tokens,
                        int a, index_t i, index_t j, int depth) {
  // Cost is additive and non-negative, so derivations never need to be
  // deeper than the span allows; depth guards degenerate grammars.
  if (depth > 64) return kInfW;
  Weight best = kInfW;
  if (j == i + 1) {
    for (const auto& r : g.terminal)
      if (r.lhs == a && r.terminal == tokens[static_cast<std::size_t>(i)])
        best = std::min(best, r.w);
    return best;
  }
  for (const auto& r : g.binary) {
    if (r.lhs != a) continue;
    for (index_t k = i + 1; k < j; ++k) {
      const Weight l = best_cost(g, tokens, r.left, i, k, depth + 1);
      if (l >= kInfW) continue;
      const Weight rr = best_cost(g, tokens, r.right, k, j, depth + 1);
      if (rr >= kInfW) continue;
      best = std::min(best, l + rr + r.w);
    }
  }
  return best;
}

/// Sum over all derivations of nonterminal `a` spanning [i, j) of the
/// product of per-rule contributions (exp(-w) for inside probabilities,
/// 1 for tree counting). CNF guarantees termination: binary rules split
/// into strictly smaller spans, so the recursion is span-bounded.
inline double sum_derivations(const Grammar& g, const std::vector<int>& tokens,
                              int a, index_t i, index_t j,
                              bool probabilities) {
  const auto contrib = [probabilities](Weight w) {
    return probabilities ? std::exp(-double(w)) : 1.0;
  };
  if (j == i + 1) {
    double total = 0;
    for (const auto& r : g.terminal)
      if (r.lhs == a && r.terminal == tokens[static_cast<std::size_t>(i)])
        total += contrib(r.w);
    return total;
  }
  double total = 0;
  for (const auto& r : g.binary) {
    if (r.lhs != a) continue;
    for (index_t k = i + 1; k < j; ++k) {
      const double l =
          sum_derivations(g, tokens, r.left, i, k, probabilities);
      if (l == 0) continue;
      const double rr =
          sum_derivations(g, tokens, r.right, k, j, probabilities);
      total += l * rr * contrib(r.w);
    }
  }
  return total;
}

}  // namespace brute_detail

inline Weight brute_force_parse_cost(const Grammar& g,
                                     const std::vector<int>& tokens) {
  if (tokens.empty()) return kInfW;
  return brute_detail::best_cost(g, tokens, g.start, 0,
                                 static_cast<index_t>(tokens.size()), 0);
}

/// Total probability of all derivations (weights as -log p) — the oracle
/// for CykParser::inside.
inline double brute_force_inside(const Grammar& g,
                                 const std::vector<int>& tokens) {
  if (tokens.empty()) return 0.0;
  return brute_detail::sum_derivations(
      g, tokens, g.start, 0, static_cast<index_t>(tokens.size()), true);
}

/// Number of distinct parse trees — the oracle for
/// CykParser::count_parses.
inline double brute_force_parse_count(const Grammar& g,
                                      const std::vector<int>& tokens) {
  if (tokens.empty()) return 0.0;
  return brute_detail::sum_derivations(
      g, tokens, g.start, 0, static_cast<index_t>(tokens.size()), false);
}

/// Evaluates a parse tree independently: checks structural validity and
/// returns the summed rule weights (+inf when invalid).
inline Weight evaluate_parse_tree(const Grammar& g,
                                  const std::vector<int>& tokens,
                                  const std::vector<ParseNode>& nodes) {
  Weight total = 0;
  for (const auto& nd : nodes) {
    if (nd.j == nd.i + 1) {
      if (nd.rule_index < 0 ||
          nd.rule_index >= static_cast<int>(g.terminal.size()))
        return kInfW;
      const auto& r = g.terminal[static_cast<std::size_t>(nd.rule_index)];
      if (r.lhs != nd.lhs ||
          r.terminal != tokens[static_cast<std::size_t>(nd.i)])
        return kInfW;
      total += r.w;
    } else {
      if (nd.rule_index < 0 ||
          nd.rule_index >= static_cast<int>(g.binary.size()))
        return kInfW;
      const auto& r = g.binary[static_cast<std::size_t>(nd.rule_index)];
      if (r.lhs != nd.lhs || nd.split <= nd.i || nd.split >= nd.j)
        return kInfW;
      total += r.w;
    }
  }
  return total;
}

}  // namespace cellnpdp::cyk
