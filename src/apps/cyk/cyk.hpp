// Weighted CYK parsing — the textbook nonserial polyadic DP besides
// matrix parenthesization (Grama et al. [13], the classification the paper
// builds on).
//
// Grammar in Chomsky normal form: binary rules A -> B C and terminal rules
// A -> t, each with a non-negative weight (e.g. a negative log
// probability). The Viterbi chart is
//
//   best[i][j][A] = min over rules A->BC and splits i<k<j of
//                   best[i][k][B] + best[k][j][C] + w(A->BC)
//   best[i][i+1][A] = w(A -> token[i])
//
// over boundary positions 0..n — for every nonterminal a triangular
// (min,+) table with exactly the paper's dependence structure. The split
// minimum is evaluated with the same transpose trick as the Zuker folder
// (a shifted transpose of every table turns each bifurcation into two
// contiguous rows), vectorised with the library's Vec primitives.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "common/defs.hpp"

namespace cellnpdp::cyk {

using Weight = float;
inline constexpr Weight kInfW = std::numeric_limits<Weight>::infinity();

struct BinaryRule {
  int lhs;  ///< A
  int left; ///< B
  int right;///< C
  Weight w;
};

struct TerminalRule {
  int lhs;
  int terminal;  ///< token id
  Weight w;
};

struct Grammar {
  int nonterminals = 0;
  int terminals = 0;
  int start = 0;
  std::vector<BinaryRule> binary;
  std::vector<TerminalRule> terminal;

  /// Basic shape validation; throws std::invalid_argument on bad ids.
  void validate() const;
};

struct ParseOptions {
  bool simd = true;
};

struct ParseNode {
  int lhs = -1;
  index_t i = 0, j = 0;   ///< boundary span [i, j)
  int rule_index = -1;    ///< into Grammar::binary (span > 1) or ::terminal
  index_t split = -1;     ///< k for binary nodes
};

struct ParseResult {
  Weight cost = kInfW;                ///< +inf: not derivable
  bool accepted() const { return cost < kInfW; }
  std::vector<ParseNode> nodes;       ///< preorder parse tree (if accepted)
};

/// Viterbi CYK parser. Holds per-nonterminal charts; reusable across
/// sentences.
class CykParser {
 public:
  explicit CykParser(Grammar g, ParseOptions opts = {});

  /// Parses the token sequence; returns best cost and parse tree.
  ParseResult parse(const std::vector<int>& tokens);

  /// Inside algorithm (probabilistic CYK): rule weights are interpreted
  /// as negative log probabilities, and the chart accumulates in the
  /// counting (+, *) semiring over p = exp(-w) — the returned value is
  /// the total probability of all derivations of the start symbol.
  double inside(const std::vector<int>& tokens);

  /// Number of distinct parse trees of the start symbol (the same (+, *)
  /// chart pass with every rule contributing weight 1). Exact while the
  /// count fits a float chart cell (< 2^24).
  double count_parses(const std::vector<int>& tokens);

  const Grammar& grammar() const { return g_; }

  /// Split-loop relaxations performed (the NPDP work).
  index_t bifurcation_relaxations() const { return bif_relax_; }

 private:
  Weight& chart(int a, index_t i, index_t j) {
    return charts_[static_cast<std::size_t>(a)]
                  [static_cast<std::size_t>(i * stride_ + j)];
  }
  Weight& chart_t(int a, index_t j, index_t k) {
    return charts_t_[static_cast<std::size_t>(a)]
                    [static_cast<std::size_t>(j * stride_ + k)];
  }

  /// min over k in [x, y-1] of row[k] + rowt[k].
  Weight split_min(const Weight* row, const Weight* rowt, index_t x,
                   index_t y);

  /// sum over k in [x, y-1] of row[k] * rowt[k] (the (+, *) analogue).
  Weight split_sum(const Weight* row, const Weight* rowt, index_t x,
                   index_t y);

  /// Shared (+, *) chart pass: rule contribution exp(-w) when
  /// `probabilities`, 1 otherwise.
  double sum_product(const std::vector<int>& tokens, bool probabilities);

  void build_tree(const std::vector<int>& tokens, int a, index_t i,
                  index_t j, ParseResult& out);

  Grammar g_;
  ParseOptions opts_;
  index_t n_ = 0;
  index_t stride_ = 0;
  std::vector<aligned_vector<Weight>> charts_;    ///< per nonterminal
  std::vector<aligned_vector<Weight>> charts_t_;  ///< shifted transposes
  index_t bif_relax_ = 0;
};

// --- ready-made grammars for tests and examples ---------------------------

/// S -> S S | ( S ) as CNF; tokens: 0 = '(', 1 = ')'. Recognises balanced
/// parenthesis strings (cost = number of rule applications).
Grammar balanced_parens_grammar();

/// S -> a S b | a b as CNF; tokens 0 = 'a', 1 = 'b'. Recognises a^n b^n.
Grammar anbn_grammar();

/// Deterministic random CNF grammar (every nonterminal derives something).
Grammar random_grammar(int nonterminals, int terminals, int binary_rules,
                       std::uint64_t seed);

/// S -> S S | t for every terminal t: accepts every non-empty string; the
/// Viterbi parse picks the cheapest binary bracketing (weights drawn from
/// the seed), which makes it a good traceback workload.
Grammar universal_grammar(int terminals, std::uint64_t seed);

/// Tokenises a string of single-character terminals via a lookup table.
std::vector<int> tokens_from_string(const std::string& s,
                                    const std::string& alphabet);

}  // namespace cellnpdp::cyk
