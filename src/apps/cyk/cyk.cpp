#include "apps/cyk/cyk.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "simd/semiring.hpp"
#include "simd/vec.hpp"

namespace cellnpdp::cyk {

namespace {
constexpr index_t kVecW = 8;
using V8 = Vec<Weight, kVecW>;
}  // namespace

void Grammar::validate() const {
  auto check_nt = [&](int a) {
    if (a < 0 || a >= nonterminals)
      throw std::invalid_argument("bad nonterminal id");
  };
  check_nt(start);
  for (const auto& r : binary) {
    check_nt(r.lhs);
    check_nt(r.left);
    check_nt(r.right);
    if (r.w < 0) throw std::invalid_argument("negative rule weight");
  }
  for (const auto& r : terminal) {
    check_nt(r.lhs);
    if (r.terminal < 0 || r.terminal >= terminals)
      throw std::invalid_argument("bad terminal id");
    if (r.w < 0) throw std::invalid_argument("negative rule weight");
  }
}

CykParser::CykParser(Grammar g, ParseOptions opts)
    : g_(std::move(g)), opts_(opts) {
  g_.validate();
}

Weight CykParser::split_min(const Weight* row, const Weight* rowt, index_t x,
                            index_t y) {
  bif_relax_ += y - x;
  Weight best = kInfW;
  index_t k = x;
  if (opts_.simd && y - x >= 2 * kVecW) {
    V8 acc = V8::set1(kInfW);
    for (; k + kVecW <= y; k += kVecW)
      acc = vmin(acc, V8::loadu(row + k) + V8::loadu(rowt + k));
    alignas(kBufferAlignment) Weight lanes[kVecW];
    acc.store(lanes);
    for (index_t l = 0; l < kVecW; ++l) best = std::min(best, lanes[l]);
  }
  for (; k < y; ++k) best = std::min(best, row[k] + rowt[k]);
  return best;
}

Weight CykParser::split_sum(const Weight* row, const Weight* rowt, index_t x,
                            index_t y) {
  using S = CountingSemiring<Weight>;
  bif_relax_ += y - x;
  Weight total = S::zero();
  index_t k = x;
  if (opts_.simd && y - x >= 2 * kVecW) {
    V8 acc = V8::set1(S::zero());
    for (; k + kVecW <= y; k += kVecW)
      acc = S::vplus<kVecW>(
          acc, S::vtimes<kVecW>(V8::loadu(row + k), V8::loadu(rowt + k)));
    alignas(kBufferAlignment) Weight lanes[kVecW];
    acc.store(lanes);
    for (index_t l = 0; l < kVecW; ++l) total = S::plus(total, lanes[l]);
  }
  for (; k < y; ++k) total = S::plus(total, S::times(row[k], rowt[k]));
  return total;
}

double CykParser::sum_product(const std::vector<int>& tokens,
                              bool probabilities) {
  n_ = static_cast<index_t>(tokens.size());
  if (n_ == 0) return 0.0;
  const index_t bounds = n_ + 1;
  stride_ = (bounds + kVecW - 1) / kVecW * kVecW;
  const std::size_t cells = static_cast<std::size_t>(bounds * stride_);
  charts_.assign(static_cast<std::size_t>(g_.nonterminals), {});
  charts_t_.assign(static_cast<std::size_t>(g_.nonterminals), {});
  // Chart cells live in the counting semiring, so empty cells (and the
  // stride padding the SIMD loop reads) hold its zero — an annihilator,
  // exactly like +inf in the Viterbi chart.
  for (int a = 0; a < g_.nonterminals; ++a) {
    charts_[static_cast<std::size_t>(a)].assign(cells, 0.0f);
    charts_t_[static_cast<std::size_t>(a)].assign(cells, 0.0f);
  }
  bif_relax_ = 0;
  const auto contrib = [probabilities](Weight w) {
    return probabilities ? static_cast<Weight>(std::exp(-double(w)))
                         : Weight(1);
  };

  for (index_t i = 0; i < n_; ++i)
    for (const auto& r : g_.terminal)
      if (r.terminal == tokens[static_cast<std::size_t>(i)])
        chart(r.lhs, i, i + 1) += contrib(r.w);
  for (index_t i = 0; i < n_; ++i)
    for (int a = 0; a < g_.nonterminals; ++a)
      chart_t(a, i + 1, i) = chart(a, i, i + 1);

  for (index_t span = 2; span <= n_; ++span) {
    for (index_t i = 0; i + span <= n_; ++i) {
      const index_t j = i + span;
      for (const auto& r : g_.binary) {
        const Weight* brow =
            charts_[static_cast<std::size_t>(r.left)].data() + i * stride_;
        const Weight* crow =
            charts_t_[static_cast<std::size_t>(r.right)].data() + j * stride_;
        const Weight m = split_sum(brow, crow, i + 1, j);
        chart(r.lhs, i, j) += m * contrib(r.w);
      }
      for (int a = 0; a < g_.nonterminals; ++a)
        chart_t(a, j, i) = chart(a, i, j);
    }
  }
  return double(chart(g_.start, 0, n_));
}

double CykParser::inside(const std::vector<int>& tokens) {
  return sum_product(tokens, true);
}

double CykParser::count_parses(const std::vector<int>& tokens) {
  return sum_product(tokens, false);
}

ParseResult CykParser::parse(const std::vector<int>& tokens) {
  ParseResult out;
  n_ = static_cast<index_t>(tokens.size());
  if (n_ == 0) return out;
  const index_t bounds = n_ + 1;  // boundary positions 0..n
  stride_ = (bounds + kVecW - 1) / kVecW * kVecW;
  const std::size_t cells = static_cast<std::size_t>(bounds * stride_);
  charts_.assign(static_cast<std::size_t>(g_.nonterminals), {});
  charts_t_.assign(static_cast<std::size_t>(g_.nonterminals), {});
  for (int a = 0; a < g_.nonterminals; ++a) {
    charts_[static_cast<std::size_t>(a)].assign(cells, kInfW);
    charts_t_[static_cast<std::size_t>(a)].assign(cells, kInfW);
  }
  bif_relax_ = 0;

  // Terminal rules seed span-1 cells.
  for (index_t i = 0; i < n_; ++i)
    for (const auto& r : g_.terminal)
      if (r.terminal == tokens[static_cast<std::size_t>(i)]) {
        Weight& c = chart(r.lhs, i, i + 1);
        c = std::min(c, r.w);
      }
  for (index_t i = 0; i < n_; ++i)
    for (int a = 0; a < g_.nonterminals; ++a)
      chart_t(a, i + 1, i) = chart(a, i, i + 1);

  // Spans bottom-up; the split minimum reads row (i,*) of B against the
  // shifted transpose row (*,j) of C — both contiguous.
  for (index_t span = 2; span <= n_; ++span) {
    for (index_t i = 0; i + span <= n_; ++i) {
      const index_t j = i + span;
      for (const auto& r : g_.binary) {
        const Weight* brow =
            charts_[static_cast<std::size_t>(r.left)].data() + i * stride_;
        const Weight* crow =
            charts_t_[static_cast<std::size_t>(r.right)].data() + j * stride_;
        // k in (i, j): best[i][k][B] + best[k][j][C].
        const Weight m = split_min(brow, crow, i + 1, j);
        if (m + r.w < chart(r.lhs, i, j)) chart(r.lhs, i, j) = m + r.w;
      }
      for (int a = 0; a < g_.nonterminals; ++a)
        chart_t(a, j, i) = chart(a, i, j);
    }
  }

  out.cost = chart(g_.start, 0, n_);
  if (out.accepted()) build_tree(tokens, g_.start, 0, n_, out);
  return out;
}

void CykParser::build_tree(const std::vector<int>& tokens, int a, index_t i,
                           index_t j, ParseResult& out) {
  ParseNode node;
  node.lhs = a;
  node.i = i;
  node.j = j;
  const Weight target = chart(a, i, j);

  if (j == i + 1) {
    for (int r = 0; r < static_cast<int>(g_.terminal.size()); ++r) {
      const auto& tr = g_.terminal[static_cast<std::size_t>(r)];
      if (tr.lhs == a &&
          tr.terminal == tokens[static_cast<std::size_t>(i)] &&
          tr.w == target) {
        node.rule_index = r;
        out.nodes.push_back(node);
        return;
      }
    }
    throw std::logic_error("CYK traceback: no terminal rule matches");
  }

  for (int r = 0; r < static_cast<int>(g_.binary.size()); ++r) {
    const auto& br = g_.binary[static_cast<std::size_t>(r)];
    if (br.lhs != a) continue;
    for (index_t k = i + 1; k < j; ++k) {
      const Weight cand =
          chart(br.left, i, k) + chart_t(br.right, j, k) + br.w;
      if (cand == target) {
        node.rule_index = r;
        node.split = k;
        out.nodes.push_back(node);
        build_tree(tokens, br.left, i, k, out);
        build_tree(tokens, br.right, k, j, out);
        return;
      }
    }
  }
  throw std::logic_error("CYK traceback: no binary rule matches");
}

Grammar balanced_parens_grammar() {
  // CNF of S -> S S | ( S ) | ( ):
  //   S -> S S | L R' | L R;  R' -> S R;  L -> '(';  R -> ')'
  Grammar g;
  g.nonterminals = 4;  // 0 = S, 1 = L, 2 = R, 3 = R'
  g.terminals = 2;     // 0 = '(', 1 = ')'
  g.start = 0;
  g.binary = {{0, 0, 0, 1.0f}, {0, 1, 3, 1.0f}, {0, 1, 2, 1.0f},
              {3, 0, 2, 1.0f}};
  g.terminal = {{1, 0, 0.0f}, {2, 1, 0.0f}};
  return g;
}

Grammar anbn_grammar() {
  // CNF of S -> a S b | a b:
  //   S -> A T | A B;  T -> S B;  A -> 'a';  B -> 'b'
  Grammar g;
  g.nonterminals = 4;  // 0 = S, 1 = A, 2 = B, 3 = T
  g.terminals = 2;     // 0 = 'a', 1 = 'b'
  g.start = 0;
  g.binary = {{0, 1, 3, 1.0f}, {0, 1, 2, 1.0f}, {3, 0, 2, 1.0f}};
  g.terminal = {{1, 0, 0.0f}, {2, 1, 0.0f}};
  return g;
}

Grammar random_grammar(int nonterminals, int terminals, int binary_rules,
                       std::uint64_t seed) {
  SplitMix64 rng(seed);
  Grammar g;
  g.nonterminals = nonterminals;
  g.terminals = terminals;
  g.start = 0;
  // Every nonterminal gets at least one terminal rule so everything can
  // bottom out.
  for (int a = 0; a < nonterminals; ++a)
    g.terminal.push_back(
        {a, static_cast<int>(rng.next_below(static_cast<std::uint64_t>(terminals))),
         Weight(rng.next_below(8))});
  for (int r = 0; r < binary_rules; ++r)
    g.binary.push_back(
        {static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nonterminals))),
         static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nonterminals))),
         static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nonterminals))),
         Weight(rng.next_below(8))});
  return g;
}

Grammar universal_grammar(int terminals, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Grammar g;
  g.nonterminals = 1;
  g.terminals = terminals;
  g.start = 0;
  g.binary = {{0, 0, 0, Weight(1 + rng.next_below(4))}};
  for (int t = 0; t < terminals; ++t)
    g.terminal.push_back({0, t, Weight(rng.next_below(5))});
  return g;
}

std::vector<int> tokens_from_string(const std::string& s,
                                    const std::string& alphabet) {
  std::vector<int> out;
  out.reserve(s.size());
  for (char ch : s) {
    const auto pos = alphabet.find(ch);
    if (pos == std::string::npos)
      throw std::invalid_argument(std::string("token not in alphabet: ") + ch);
    out.push_back(static_cast<int>(pos));
  }
  return out;
}

}  // namespace cellnpdp::cyk
