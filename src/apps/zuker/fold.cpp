#include "apps/zuker/fold.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "simd/vec.hpp"

namespace cellnpdp::zuker {

namespace {
constexpr index_t kVecW = 8;
using V8 = Vec<Energy, kVecW>;
}  // namespace

Energy ZukerFolder::bif_rows(const Energy* row, const Energy* rowt, index_t x,
                             index_t y) {
  // min over k in [x, y-1].
  bif_relax_.fetch_add(y - x, std::memory_order_relaxed);
  Energy best = kInf;
  index_t k = x;
  if (opts_.simd && y - x >= 2 * kVecW) {
    V8 acc = V8::set1(kInf);
    for (; k + kVecW <= y; k += kVecW)
      acc = vmin(acc, V8::loadu(row + k) + V8::loadu(rowt + k));
    alignas(kBufferAlignment) Energy lanes[kVecW];
    acc.store(lanes);
    for (index_t l = 0; l < kVecW; ++l) best = std::min(best, lanes[l]);
  }
  for (; k < y; ++k) best = std::min(best, row[k] + rowt[k]);
  return best;
}

Energy ZukerFolder::v_two_loop_candidate(const std::vector<Base>& s, index_t i,
                                         index_t j, index_t p,
                                         index_t q) const {
  const int oc = pair_class(s[static_cast<std::size_t>(i)],
                            s[static_cast<std::size_t>(j)]);
  const int ic = pair_class(s[static_cast<std::size_t>(p)],
                            s[static_cast<std::size_t>(q)]);
  if (ic < 0) return kInf;
  const Energy inner = v_[static_cast<std::size_t>(p * stride_ + q)];
  return em_.two_loop(oc, ic, p - i - 1, j - q - 1) + inner;
}

FoldResult ZukerFolder::fold(const std::vector<Base>& seq) {
  n_ = static_cast<index_t>(seq.size());
  FoldResult out;
  if (n_ == 0) return out;
  if (n_ == 1) {
    out.structure = ".";
    return out;
  }
  stride_ = (n_ + kVecW - 1) / kVecW * kVecW;
  const std::size_t cells = static_cast<std::size_t>(n_ * stride_);
  v_.assign(cells, kInf);
  wm_.assign(cells, kInf);
  w_.assign(cells, kInf);
  wmt_.assign(cells, kInf);
  wt_.assign(cells, kInf);
  bif_relax_ = 0;

  for (index_t i = 0; i < n_; ++i) W(i, i) = 0;  // WM(i,i), V(i,i) stay +inf

  // Cells on one anti-diagonal only depend on shorter spans, so they can
  // be computed concurrently (wavefront parallelism). Writes are disjoint
  // per cell, including the shifted-transpose mirrors.
  std::unique_ptr<ThreadPool> pool;
  if (opts_.threads > 1) pool = std::make_unique<ThreadPool>(opts_.threads);

  for (index_t span = 1; span < n_; ++span) {
    // One anti-diagonal is a coarse enough boundary for a forced deadline
    // check; the matrices stay consistent (all spans < this one complete).
    if (opts_.cancel.poll_deadline_now()) {
      out.cancelled = true;
      return out;
    }
    const index_t cells = n_ - span;
    if (pool != nullptr && cells >= 64) {
      pool->parallel_for(0, static_cast<std::size_t>(cells),
                         [&](std::size_t i) {
                           compute_cell(seq, static_cast<index_t>(i),
                                        static_cast<index_t>(i) + span);
                         });
    } else {
      for (index_t i = 0; i < cells; ++i) compute_cell(seq, i, i + span);
    }
  }

  out.mfe = W(0, n_ - 1);
  trace(seq, out);
  return out;
}

void ZukerFolder::trace(const std::vector<Base>& s, FoldResult& out) {
  out.pairs.clear();
  trace_w(s, 0, n_ - 1, out);
  std::sort(out.pairs.begin(), out.pairs.end());
  out.structure.assign(static_cast<std::size_t>(n_), '.');
  for (const auto& [i, j] : out.pairs) {
    out.structure[static_cast<std::size_t>(i)] = '(';
    out.structure[static_cast<std::size_t>(j)] = ')';
  }
}

void ZukerFolder::trace_w(const std::vector<Base>& s, index_t i, index_t j,
                          FoldResult& out) {
  while (i < j) {
    const Energy w = W(i, j);
    if (w == W(i + 1, j)) {
      ++i;
      continue;
    }
    if (w == W(i, j - 1)) {
      --j;
      continue;
    }
    if (w == V(i, j)) {
      trace_v(s, i, j, out);
      return;
    }
    for (index_t k = i; k < j; ++k) {
      if (w == W(i, k) + wt_[static_cast<std::size_t>(j * stride_ + k)]) {
        trace_w(s, i, k, out);
        trace_w(s, k + 1, j, out);
        return;
      }
    }
    throw std::logic_error("W traceback: no candidate matches");
  }
}

void ZukerFolder::trace_v(const std::vector<Base>& s, index_t i, index_t j,
                          FoldResult& out) {
  out.pairs.emplace_back(i, j);
  const Energy v = V(i, j);
  const index_t span = j - i;
  if (v == em_.hairpin(span - 1)) return;
  const index_t pmax = std::min(j - 2, i + 1 + em_.max_internal);
  for (index_t p = i + 1; p <= pmax; ++p) {
    const index_t s1 = p - i - 1;
    for (index_t q = j - 1; q > p; --q) {
      if (s1 + (j - 1 - q) > em_.max_internal) break;
      if (v == v_two_loop_candidate(s, i, j, p, q)) {
        trace_v(s, p, q, out);
        return;
      }
    }
  }
  // Multiloop: find the split.
  for (index_t k = i + 1; k < j - 1; ++k) {
    const Energy cand = em_.ml_close + em_.ml_branch + (WM(i + 1, k) +
                        wmt_[static_cast<std::size_t>((j - 1) * stride_ + k)]);
    if (v == cand) {
      trace_wm(s, i + 1, k, out);
      trace_wm(s, k + 1, j - 1, out);
      return;
    }
  }
  throw std::logic_error("V traceback: no candidate matches");
}

void ZukerFolder::trace_wm(const std::vector<Base>& s, index_t i, index_t j,
                           FoldResult& out) {
  while (true) {
    const Energy wm = WM(i, j);
    if (i < j && wm == WM(i + 1, j) + em_.ml_unpaired) {
      ++i;
      continue;
    }
    if (i < j && wm == WM(i, j - 1) + em_.ml_unpaired) {
      --j;
      continue;
    }
    if (wm == V(i, j) + em_.ml_branch) {
      trace_v(s, i, j, out);
      return;
    }
    for (index_t k = i; k < j; ++k) {
      if (wm == WM(i, k) + wmt_[static_cast<std::size_t>(j * stride_ + k)]) {
        trace_wm(s, i, k, out);
        trace_wm(s, k + 1, j, out);
        return;
      }
    }
    throw std::logic_error("WM traceback: no candidate matches");
  }
}

void ZukerFolder::compute_cell(const std::vector<Base>& seq, index_t i,
                               index_t j) {
  const index_t span = j - i;

  // ---- V(i,j): structures closed by pair (i,j) ------------------------
  Energy v = kInf;
  if (can_pair(seq[static_cast<std::size_t>(i)],
               seq[static_cast<std::size_t>(j)])) {
    v = em_.hairpin(span - 1);
    // Two-loops (stack / bulge / internal), bounded by max_internal.
    const index_t pmax = std::min(j - 2, i + 1 + em_.max_internal);
    for (index_t p = i + 1; p <= pmax; ++p) {
      const index_t s1 = p - i - 1;
      for (index_t q = j - 1; q > p; --q) {
        if (s1 + (j - 1 - q) > em_.max_internal) break;
        v = std::min(v, v_two_loop_candidate(seq, i, j, p, q));
      }
    }
    // Multiloop closed by (i,j): a + b + two WM components.
    if (span >= 3)
      v = std::min(v, em_.ml_close + em_.ml_branch + bif_wm(i + 1, j - 1));
  }
  V(i, j) = v;

  // ---- WM(i,j): multiloop component ------------------------------------
  Energy wm = std::min(WM(i + 1, j) + em_.ml_unpaired,
                       WM(i, j - 1) + em_.ml_unpaired);
  wm = std::min(wm, v + em_.ml_branch);
  wm = std::min(wm, bif_wm(i, j));
  WM(i, j) = wm;

  // ---- W(i,j): external region ------------------------------------------
  Energy w = std::min(W(i + 1, j), W(i, j - 1));
  w = std::min(w, v);
  w = std::min(w, bif_w(i, j));
  W(i, j) = w;

  // Shifted transposes for later bifurcations: X T(j,k) = X(k+1,j).
  if (i >= 1) {
    wmt_[static_cast<std::size_t>(j * stride_ + (i - 1))] = wm;
    wt_[static_cast<std::size_t>(j * stride_ + (i - 1))] = w;
  }
}

FoldResult fold_sequence(const std::string& seq, FoldOptions opts) {
  ZukerFolder folder(EnergyModel{}, opts);
  return folder.fold(parse_sequence(seq));
}

}  // namespace cellnpdp::zuker
