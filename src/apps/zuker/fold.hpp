// Zuker minimum-free-energy folding (paper §I, §II-A: the NPDP inside the
// Zuker algorithm).
//
// Matrices (all over 0 <= i <= j < n):
//   V(i,j)  - MFE of a structure closed by pair (i,j);
//   WM(i,j) - MFE of a non-empty multiloop component (>= 1 branch);
//   W(i,j)  - MFE of the external region [i,j]  (W(0,n-1) is the answer).
//
// The O(n^3) bifurcation terms
//   min_k WM(i,k) + WM(k+1,j)   and   min_k W(i,k) + W(k+1,j)
// are the nonserial polyadic DP the paper targets. They are evaluated with
// the library's SIMD primitives: the folder maintains shifted transposes
// WMT(j,k) = WM(k+1,j), WT(j,k) = W(k+1,j), which turn every bifurcation
// into two contiguous rows — an elementwise add + min reduction, the exact
// data-layout trick of §III applied to Zuker.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include <atomic>
#include <cstddef>

#include "apps/zuker/energy_model.hpp"
#include "common/aligned.hpp"
#include "common/cancel.hpp"

namespace cellnpdp::zuker {

struct FoldOptions {
  bool simd = true;        ///< vectorised bifurcations (false: scalar ablation)
  std::size_t threads = 1; ///< cells of one anti-diagonal computed in
                           ///< parallel (they are mutually independent)
  CancelToken cancel;      ///< checked once per anti-diagonal; a tripped
                           ///< token abandons the fold (result.cancelled)
};

struct FoldResult {
  Energy mfe = 0;
  std::string structure;  ///< dot-bracket
  std::vector<std::pair<index_t, index_t>> pairs;
  bool cancelled = false; ///< fold abandoned; other fields are meaningless
};

class ZukerFolder {
 public:
  explicit ZukerFolder(EnergyModel em = {}, FoldOptions opts = {})
      : em_(std::move(em)), opts_(opts) {}

  FoldResult fold(const std::vector<Base>& seq);

  const EnergyModel& model() const { return em_; }

  /// Scalar relaxations performed inside bifurcation minima (the NPDP
  /// work); used by benches for rate reporting.
  index_t bifurcation_relaxations() const {
    return bif_relax_.load(std::memory_order_relaxed);
  }

 private:
  Energy& V(index_t i, index_t j) { return v_[idx(i, j)]; }
  Energy& WM(index_t i, index_t j) { return wm_[idx(i, j)]; }
  Energy& W(index_t i, index_t j) { return w_[idx(i, j)]; }
  std::size_t idx(index_t i, index_t j) const {
    return static_cast<std::size_t>(i * stride_ + j);
  }

  /// min over k in [x, y-1] of row[k] + rowt[k] (both contiguous).
  Energy bif_rows(const Energy* row, const Energy* rowt, index_t x,
                  index_t y);
  Energy bif_wm(index_t x, index_t y) {
    return bif_rows(wm_.data() + x * stride_, wmt_.data() + y * stride_, x, y);
  }
  Energy bif_w(index_t x, index_t y) {
    return bif_rows(w_.data() + x * stride_, wt_.data() + y * stride_, x, y);
  }

  /// Candidates of V(i,j) other than the hairpin; used by fold and the
  /// traceback (identical arithmetic so equality is exact).
  Energy v_two_loop_candidate(const std::vector<Base>& s, index_t i,
                              index_t j, index_t p, index_t q) const;

  void trace(const std::vector<Base>& s, FoldResult& out);
  void trace_w(const std::vector<Base>& s, index_t i, index_t j,
               FoldResult& out);
  void trace_v(const std::vector<Base>& s, index_t i, index_t j,
               FoldResult& out);
  void trace_wm(const std::vector<Base>& s, index_t i, index_t j,
                FoldResult& out);

  void compute_cell(const std::vector<Base>& seq, index_t i, index_t j);

  EnergyModel em_;
  FoldOptions opts_;
  index_t n_ = 0;
  index_t stride_ = 0;
  aligned_vector<Energy> v_, wm_, w_, wmt_, wt_;
  std::atomic<index_t> bif_relax_{0};
};

/// Convenience: fold a string sequence with default options.
FoldResult fold_sequence(const std::string& seq, FoldOptions opts = {});

}  // namespace cellnpdp::zuker
