// Simplified Zuker energy model for RNA secondary structure.
//
// The paper benchmarks the NPDP kernel inside the Zuker algorithm [17];
// this module provides a self-contained minimum-free-energy model with the
// standard loop decomposition (hairpin / stack / internal / bulge /
// multiloop) so the application can run end-to-end. Parameters are
// Turner-magnitude but simplified (documented in DESIGN.md): there are no
// dangling ends or terminal-AU penalties, and internal loops larger than
// `max_internal` unpaired bases are disallowed — the brute-force reference
// applies the identical rules, so the two stay exactly comparable.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/defs.hpp"

namespace cellnpdp::zuker {

using Energy = float;  // kcal/mol; negative stabilises

inline constexpr Energy kInf = std::numeric_limits<Energy>::infinity();

enum Base : std::uint8_t { A = 0, C = 1, G = 2, U = 3 };

/// Parses "ACGU" (case-insensitive, T treated as U). Throws on others.
std::vector<Base> parse_sequence(const std::string& seq);
std::string bases_to_string(const std::vector<Base>& b);

/// Watson-Crick + GU wobble pair classes; -1 if the bases cannot pair.
inline int pair_class(Base a, Base b) {
  if (a == A && b == U) return 0;
  if (a == U && b == A) return 1;
  if (a == G && b == C) return 2;
  if (a == C && b == G) return 3;
  if (a == G && b == U) return 4;
  if (a == U && b == G) return 5;
  return -1;
}

inline bool can_pair(Base a, Base b) { return pair_class(a, b) >= 0; }

/// Minimum hairpin loop size (unpaired bases between the closing pair).
inline constexpr index_t kMinHairpin = 3;

struct EnergyModel {
  // Hairpin loop penalty by unpaired size (Jacobson-Stockmayer shape).
  Energy hairpin_base = 4.5f;
  Energy hairpin_slope = 1.6f;

  // Stacking energies stack[inner][outer] by pair class; symmetric-ish,
  // GC-rich stacks strongest.
  std::array<std::array<Energy, 6>, 6> stack{};

  // Internal/bulge loops: penalty grows with total unpaired size.
  Energy internal_base = 2.8f;
  Energy internal_slope = 1.4f;
  Energy bulge_base = 3.3f;
  index_t max_internal = 10;  ///< larger internal loops are disallowed

  // Multiloop affine model: a + b * branches + c * unpaired.
  Energy ml_close = 3.4f;   ///< a (charged at the closing pair)
  Energy ml_branch = 0.4f;  ///< b (per branch, closing pair included)
  Energy ml_unpaired = 0.1f;///< c

  EnergyModel();

  Energy hairpin(index_t size) const {
    if (size < kMinHairpin) return kInf;
    return hairpin_base +
           hairpin_slope * std::log2(static_cast<float>(size) /
                                     static_cast<float>(kMinHairpin));
  }

  /// Loop closed by outer pair (classes oc) around inner pair (ic) with s1
  /// unpaired on the 5' side and s2 on the 3' side.
  Energy two_loop(int oc, int ic, index_t s1, index_t s2) const {
    const index_t total = s1 + s2;
    if (total == 0) return stack[static_cast<std::size_t>(oc)]
                                [static_cast<std::size_t>(ic)];
    if (total > max_internal) return kInf;
    if (s1 == 0 || s2 == 0)
      return bulge_base + internal_slope * std::log2(1.0f + float(total));
    return internal_base + internal_slope * std::log2(1.0f + float(total));
  }
};

/// Deterministic random RNA sequence with uniform base composition.
std::vector<Base> random_sequence(index_t n, std::uint64_t seed);

}  // namespace cellnpdp::zuker
