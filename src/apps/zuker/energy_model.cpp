#include "apps/zuker/energy_model.hpp"

#include <stdexcept>

#include "common/rng.hpp"

namespace cellnpdp::zuker {

std::vector<Base> parse_sequence(const std::string& seq) {
  std::vector<Base> out;
  out.reserve(seq.size());
  for (char ch : seq) {
    switch (ch) {
      case 'A': case 'a': out.push_back(A); break;
      case 'C': case 'c': out.push_back(C); break;
      case 'G': case 'g': out.push_back(G); break;
      case 'U': case 'u':
      case 'T': case 't': out.push_back(U); break;
      default:
        throw std::invalid_argument(std::string("bad base: ") + ch);
    }
  }
  return out;
}

std::string bases_to_string(const std::vector<Base>& b) {
  static const char* kLetters = "ACGU";
  std::string s;
  s.reserve(b.size());
  for (Base x : b) s += kLetters[static_cast<int>(x)];
  return s;
}

EnergyModel::EnergyModel() {
  // Pair classes: 0 AU, 1 UA, 2 GC, 3 CG, 4 GU, 5 UG. Strength of a stack
  // grows with the number of strong (GC) pairs involved; wobble pairs are
  // weakest. Values are Turner-magnitude, symmetrised.
  auto strength = [](int cls) {
    switch (cls) {
      case 2: case 3: return 2;  // GC
      case 0: case 1: return 1;  // AU
      default: return 0;         // GU wobble
    }
  };
  for (int o = 0; o < 6; ++o)
    for (int i = 0; i < 6; ++i) {
      static constexpr Energy kBySum[5] = {-0.5f, -1.1f, -1.6f, -2.2f, -2.9f};
      stack[static_cast<std::size_t>(o)][static_cast<std::size_t>(i)] =
          kBySum[strength(o) + strength(i)];
    }
}

std::vector<Base> random_sequence(index_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<Base> out(static_cast<std::size_t>(n));
  for (auto& b : out) b = static_cast<Base>(rng.next_below(4));
  return out;
}

}  // namespace cellnpdp::zuker
