// Exhaustive reference for the Zuker folder: enumerates every nested
// secondary structure and evaluates it with an independent loop-
// decomposition evaluator (no shared code with the DP). Exponential —
// usable to n ~ 14 — but it is what makes the folder's tests meaningful.
#pragma once

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "apps/zuker/energy_model.hpp"

namespace cellnpdp::zuker {

using Structure = std::vector<std::pair<index_t, index_t>>;

/// All nested structures over [i, j] (inclusive), pairs obeying base
/// complementarity and the minimum hairpin distance.
inline std::vector<Structure> enumerate_structures(const std::vector<Base>& s,
                                                   index_t i, index_t j) {
  std::vector<Structure> out;
  if (i >= j) {
    out.push_back({});
    return out;
  }
  // Base i unpaired.
  for (auto& st : enumerate_structures(s, i + 1, j)) out.push_back(std::move(st));
  // Base i paired with k (hairpin distance enforced structurally).
  for (index_t k = i + kMinHairpin + 1; k <= j; ++k) {
    if (!can_pair(s[static_cast<std::size_t>(i)],
                  s[static_cast<std::size_t>(k)]))
      continue;
    const auto inner = enumerate_structures(s, i + 1, k - 1);
    const auto rest = enumerate_structures(s, k + 1, j);
    for (const auto& in : inner)
      for (const auto& re : rest) {
        Structure st;
        st.emplace_back(i, k);
        st.insert(st.end(), in.begin(), in.end());
        st.insert(st.end(), re.begin(), re.end());
        out.push_back(std::move(st));
      }
  }
  return out;
}

/// Independent energy evaluator: walks the nesting tree and charges each
/// loop by the model's rules. Returns +inf for structures the model
/// disallows (oversized internal loops).
inline Energy evaluate_structure(const std::vector<Base>& s,
                                 const Structure& pairs,
                                 const EnergyModel& em) {
  Structure sorted = pairs;
  std::sort(sorted.begin(), sorted.end());

  // Direct children of each pair (and of the external level, parent = -1).
  std::map<index_t, std::vector<index_t>> children;  // by pair index
  std::vector<index_t> stack;                        // open pair indices
  children[-1] = {};
  for (index_t pi = 0; pi < static_cast<index_t>(sorted.size()); ++pi) {
    while (!stack.empty() &&
           sorted[static_cast<std::size_t>(stack.back())].second <
               sorted[static_cast<std::size_t>(pi)].first)
      stack.pop_back();
    children[stack.empty() ? -1 : stack.back()].push_back(pi);
    children[pi];  // ensure entry
    stack.push_back(pi);
  }

  Energy total = 0;
  for (index_t pi = 0; pi < static_cast<index_t>(sorted.size()); ++pi) {
    const auto [i, j] = sorted[static_cast<std::size_t>(pi)];
    const auto& kids = children[pi];
    const int oc = pair_class(s[static_cast<std::size_t>(i)],
                              s[static_cast<std::size_t>(j)]);
    if (kids.empty()) {
      total += em.hairpin(j - i - 1);
    } else if (kids.size() == 1) {
      const auto [p, q] = sorted[static_cast<std::size_t>(kids[0])];
      const int ic = pair_class(s[static_cast<std::size_t>(p)],
                                s[static_cast<std::size_t>(q)]);
      total += em.two_loop(oc, ic, p - i - 1, j - q - 1);
    } else {
      index_t unpaired = j - i - 1;
      for (index_t c : kids) {
        const auto [p, q] = sorted[static_cast<std::size_t>(c)];
        unpaired -= q - p + 1;
      }
      total += em.ml_close +
               em.ml_branch * static_cast<Energy>(kids.size() + 1) +
               em.ml_unpaired * static_cast<Energy>(unpaired);
    }
  }
  return total;  // external unpaired bases cost nothing
}

struct BruteResult {
  Energy mfe = 0;
  Structure best;
  index_t structures = 0;
};

/// Minimum over every structure; ties resolved arbitrarily.
inline BruteResult brute_force_fold(const std::vector<Base>& s,
                                    const EnergyModel& em) {
  BruteResult res;
  if (s.empty()) return res;
  const auto all =
      enumerate_structures(s, 0, static_cast<index_t>(s.size()) - 1);
  res.structures = static_cast<index_t>(all.size());
  res.mfe = 0;  // the empty structure
  for (const auto& st : all) {
    const Energy e = evaluate_structure(s, st, em);
    if (e < res.mfe) {
      res.mfe = e;
      res.best = st;
    }
  }
  return res;
}

}  // namespace cellnpdp::zuker
