// Binary serialization of DP tables.
//
// Large NPDP tables (a 16384-cell single-precision triangle is ~537 MB)
// are expensive to recompute; this module checkpoints them. The format is
// a fixed little-endian header plus raw cell data:
//
//   magic  "CNPD"      4 bytes
//   version u32        currently 1
//   elem    u32        4 = f32, 8 = f64, 14 = i32
//   layout  u32        0 = triangular, 1 = blocked
//   n       i64        problem size (cells per side)
//   bs      i64        block side (blocked layout; 0 for triangular)
//   data    raw        cell payload in storage order
//
// Round trips are bit-exact (including +inf padding). Loads validate every
// header field and the payload size before touching the data.
#pragma once

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "layout/blocked.hpp"
#include "layout/triangular.hpp"

namespace cellnpdp {

namespace io_detail {

inline constexpr char kMagic[4] = {'C', 'N', 'P', 'D'};
inline constexpr std::uint32_t kVersion = 1;

template <class T>
constexpr std::uint32_t elem_tag() {
  if constexpr (std::is_same_v<T, float>) return 4;
  if constexpr (std::is_same_v<T, double>) return 8;
  if constexpr (std::is_same_v<T, std::int32_t>) return 14;
}

struct Header {
  std::uint32_t version = kVersion;
  std::uint32_t elem = 0;
  std::uint32_t layout = 0;
  index_t n = 0;
  index_t bs = 0;
};

inline void write_header(std::ostream& os, const Header& h) {
  os.write(kMagic, 4);
  os.write(reinterpret_cast<const char*>(&h.version), sizeof h.version);
  os.write(reinterpret_cast<const char*>(&h.elem), sizeof h.elem);
  os.write(reinterpret_cast<const char*>(&h.layout), sizeof h.layout);
  os.write(reinterpret_cast<const char*>(&h.n), sizeof h.n);
  os.write(reinterpret_cast<const char*>(&h.bs), sizeof h.bs);
}

inline Header read_header(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("table_io: bad magic");
  Header h;
  is.read(reinterpret_cast<char*>(&h.version), sizeof h.version);
  is.read(reinterpret_cast<char*>(&h.elem), sizeof h.elem);
  is.read(reinterpret_cast<char*>(&h.layout), sizeof h.layout);
  is.read(reinterpret_cast<char*>(&h.n), sizeof h.n);
  is.read(reinterpret_cast<char*>(&h.bs), sizeof h.bs);
  if (!is) throw std::runtime_error("table_io: truncated header");
  if (h.version != kVersion)
    throw std::runtime_error("table_io: unsupported version");
  if (h.n < 0 || h.bs < 0) throw std::runtime_error("table_io: bad sizes");
  return h;
}

}  // namespace io_detail

template <class T>
void save_table(std::ostream& os, const TriangularMatrix<T>& t) {
  io_detail::Header h;
  h.elem = io_detail::elem_tag<T>();
  h.layout = 0;
  h.n = t.size();
  io_detail::write_header(os, h);
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.cell_count() *
                                        static_cast<index_t>(sizeof(T))));
  if (!os) throw std::runtime_error("table_io: write failed");
}

template <class T>
void save_table(std::ostream& os, const BlockedTriangularMatrix<T>& b) {
  io_detail::Header h;
  h.elem = io_detail::elem_tag<T>();
  h.layout = 1;
  h.n = b.size();
  h.bs = b.block_side();
  io_detail::write_header(os, h);
  os.write(reinterpret_cast<const char*>(b.data()),
           static_cast<std::streamsize>(b.total_cells() *
                                        static_cast<index_t>(sizeof(T))));
  if (!os) throw std::runtime_error("table_io: write failed");
}

template <class T>
TriangularMatrix<T> load_triangular(std::istream& is) {
  const auto h = io_detail::read_header(is);
  if (h.elem != io_detail::elem_tag<T>())
    throw std::runtime_error("table_io: element type mismatch");
  if (h.layout != 0)
    throw std::runtime_error("table_io: not a triangular table");
  TriangularMatrix<T> t(h.n);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.cell_count() *
                                       static_cast<index_t>(sizeof(T))));
  if (!is || is.gcount() != static_cast<std::streamsize>(
                                t.cell_count() *
                                static_cast<index_t>(sizeof(T))))
    throw std::runtime_error("table_io: truncated payload");
  return t;
}

template <class T>
BlockedTriangularMatrix<T> load_blocked(std::istream& is) {
  const auto h = io_detail::read_header(is);
  if (h.elem != io_detail::elem_tag<T>())
    throw std::runtime_error("table_io: element type mismatch");
  if (h.layout != 1)
    throw std::runtime_error("table_io: not a blocked table");
  if (h.bs < 1) throw std::runtime_error("table_io: bad block side");
  BlockedTriangularMatrix<T> b(h.n, h.bs);
  is.read(reinterpret_cast<char*>(b.data()),
          static_cast<std::streamsize>(b.total_cells() *
                                       static_cast<index_t>(sizeof(T))));
  if (!is || is.gcount() != static_cast<std::streamsize>(
                                b.total_cells() *
                                static_cast<index_t>(sizeof(T))))
    throw std::runtime_error("table_io: truncated payload");
  return b;
}

/// File-path conveniences.
template <class Table>
void save_table_file(const std::string& path, const Table& t) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("table_io: cannot open " + path);
  save_table(os, t);
}

template <class T>
TriangularMatrix<T> load_triangular_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("table_io: cannot open " + path);
  return load_triangular<T>(is);
}

template <class T>
BlockedTriangularMatrix<T> load_blocked_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("table_io: cannot open " + path);
  return load_blocked<T>(is);
}

}  // namespace cellnpdp
