// NpdpRouter: the consistent-hash routing tier in front of net-serve
// replicas.
//
// Topology:
//
//   clients ──► EpollFrontEnd (router)           src/net reactor machinery
//                  │ decode payload → content hash = placement key
//                  ▼
//               HashRing (virtual nodes)          src/router/hash_ring.hpp
//                  │ owner replica
//                  ▼
//               Upstream pool: one pipelined connection + io thread per
//               replica; frames forwarded with a router-assigned id,
//               replies matched back and re-stamped with the client id
//
// Placement is keyed on serve::content_hash(payload) — the same function
// that keys each replica's LRU result cache — so every asker of one
// computation lands on one replica and the fleet's aggregate cache
// capacity shards instead of duplicating (the serving-tier analogue of
// the paper's fixed block→SPE ownership map).
//
// The request payload is forwarded byte-for-byte (only the header id is
// rewritten), so the v2 trace context passes through untouched and
// merge-traces still stitches complete client→server chains.
//
// Health: a background prober polls each replica's binary StatsRequest
// frame. A replica that fails the probe leaves the ring (its arc falls to
// the clockwise survivors — minimal remap); one whose circuit breaker
// board reports an Open breaker is put in *draining* (no new placements,
// in-flight requests finish). When an upstream connection dies, every
// request in flight on it is re-placed on the survivors with a bounded
// attempt budget, so a killed replica costs retries, not client errors;
// only an exhausted budget or an empty ring synthesizes a terminal
// response (Error / RetryAfter, backend "router").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frontend.hpp"
#include "net/protocol.hpp"
#include "router/hash_ring.hpp"

namespace cellnpdp::router {

struct ReplicaEndpoint {
  std::string name;  ///< ring identity (stable across reconnects)
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct RouterOptions {
  net::FrontEndOptions net;  ///< listen endpoint, reactors, caps
  std::vector<ReplicaEndpoint> replicas;
  int vnodes = 64;        ///< ring points per replica
  int max_attempts = 3;   ///< placements per request before Error
  std::int64_t probe_interval_ms = 200;
  int probe_timeout_ms = 1000;    ///< per probe connect/read
  int connect_timeout_ms = 1000;  ///< upstream data connections
  std::int64_t retry_after_hint_ms = 250;  ///< hint when the ring is empty
};

/// Point-in-time router counters.
struct RouterStats {
  std::uint64_t forwarded = 0;    ///< frames placed on an upstream
  std::uint64_t replies = 0;      ///< upstream replies routed back
  std::uint64_t requeued = 0;     ///< re-placed after an upstream died
  std::uint64_t synthesized = 0;  ///< router-authored terminal replies
  std::uint64_t no_replica = 0;   ///< synthesized: ring empty
  std::uint64_t exhausted = 0;    ///< synthesized: attempt budget spent
  std::uint64_t replica_down = 0;   ///< upstream connection losses
  std::uint64_t probe_failures = 0; ///< failed health probes
  std::size_t pending = 0;          ///< requests awaiting a reply
  std::size_t healthy = 0;          ///< replicas currently in the ring
};

/// Per-replica health + traffic view (stats plane and tests).
struct ReplicaHealth {
  std::string name;
  bool in_ring = false;
  bool draining = false;   ///< breaker open upstream: placements paused
  bool connected = false;  ///< data connection currently up
  std::uint64_t forwarded = 0;
  std::uint64_t replies = 0;
  std::uint64_t disconnects = 0;
};

class NpdpRouter {
 public:
  explicit NpdpRouter(RouterOptions opts);
  ~NpdpRouter();  // stop()

  NpdpRouter(const NpdpRouter&) = delete;
  NpdpRouter& operator=(const NpdpRouter&) = delete;

  /// Probes every replica once (synchronously — the ring starts
  /// truthful), then binds the front-end and starts the upstream io
  /// threads + the background prober. False with *err when the listen
  /// socket fails or no replicas are configured.
  bool start(std::string* err);

  /// Graceful drain: the front-end stops accepting and waits (bounded)
  /// for every pending reply, then upstream io threads and the prober
  /// come down. Idempotent.
  void stop();

  std::uint16_t port() const { return fe_.port(); }

  RouterStats stats() const;
  std::vector<ReplicaHealth> health() const;
  net::FrontEndStats net_stats() const { return fe_.stats(); }
  const RouterOptions& options() const { return opts_; }

 private:
  struct Upstream;
  struct Pending;

  void handle_frame(const net::EpollFrontEnd::ConnPtr& c,
                    const net::FrameHeader& h, const std::uint8_t* payload);
  /// Places a pending request on the ring owner of its key (walking past
  /// non-accepting replicas). On success the entry is registered in
  /// pending_ and its frame queued on the upstream; p is consumed.
  /// On failure (ring empty / every owner refusing) p is left intact.
  bool place(std::uint64_t rid, Pending& p);
  /// Authors a terminal reply for a request the fleet cannot serve.
  void synthesize(Pending& p, serve::Status st, const std::string& detail);
  void upstream_io_loop(Upstream& u);
  /// Connection-loss path (io thread): closes the socket, pulls every
  /// pending request placed on this replica, and re-places each with an
  /// incremented attempt count.
  void upstream_down(Upstream& u, const char* why);
  void on_upstream_frame(Upstream& u, const net::FrameHeader& h,
                         std::vector<std::uint8_t> frame);
  void prober_loop();
  /// One synchronous probe sweep; returns the number of in-ring replicas.
  std::size_t probe_pass();
  std::string stats_json() const;

  const RouterOptions opts_;
  net::EpollFrontEnd fe_;
  HashRing ring_;
  mutable std::mutex ring_mu_;

  std::vector<std::unique_ptr<Upstream>> upstreams_;

  mutable std::mutex pending_mu_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::atomic<std::uint64_t> next_id_{1};

  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> io_stop_{false};
  std::atomic<bool> probe_stop_{false};
  std::thread prober_;

  std::atomic<std::uint64_t> forwarded_{0}, replies_{0}, requeued_{0},
      synthesized_{0}, no_replica_{0}, exhausted_{0}, replica_down_{0},
      probe_failures_{0};
};

}  // namespace cellnpdp::router
