#include "router/router.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "common/json.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/circuit_breaker.hpp"
#include "serve/request.hpp"

namespace cellnpdp::router {

namespace {
using SteadyClock = std::chrono::steady_clock;
using net::EpollFrontEnd;
using net::FrameHeader;

/// Wire byte for an Open breaker (resilience::BreakerState is frozen in
/// declaration order; the stats frame ships it as a u8).
constexpr std::uint8_t kBreakerOpenWire = 1;

void patch_frame_id(std::vector<std::uint8_t>& frame, std::uint64_t id) {
  // The request id lives only at header bytes [8, 16) — payloads never
  // embed it — so re-stamping a frame for a different id space is one
  // little-endian store.
  for (int i = 0; i < 8; ++i)
    frame[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(id >> (8 * i));
}
}  // namespace

/// One configured replica: a pipelined data connection owned by a
/// dedicated io thread, plus the membership flags the prober drives.
struct NpdpRouter::Upstream {
  ReplicaEndpoint ep;

  std::mutex mu;  ///< guards queue + accepting
  std::vector<std::vector<std::uint8_t>> queue;  ///< frames to forward
  /// Placements allowed. Checked under mu by place(); cleared under the
  /// same mu by the down path, which also empties the queue — so a frame
  /// can never slip into a queue that was already abandoned.
  bool accepting = false;

  net::FdGuard wakefd;  ///< kicks the io thread when the queue fills
  std::thread io;

  std::atomic<bool> connected{false};
  std::atomic<bool> in_ring{false};
  std::atomic<bool> draining{false};
  std::atomic<std::uint64_t> forwarded{0}, replies{0}, disconnects{0};

  // io-thread-only state.
  net::FdGuard fd;  ///< data connection; io thread is the sole owner
  std::vector<std::uint8_t> rbuf;
};

/// One client request in flight through the router.
struct NpdpRouter::Pending {
  EpollFrontEnd::ConnRef conn;
  std::uint64_t client_id = 0;
  std::vector<std::uint8_t> frame;  ///< router-stamped header + payload
  int attempts = 0;   ///< placements so far
  std::uint64_t key = 0;  ///< content hash (placement key)
  std::uint64_t trace_id = 0;
  bool sampled = false;
  std::string replica;  ///< where it is currently placed
  SteadyClock::time_point sent{};
};

NpdpRouter::NpdpRouter(RouterOptions opts)
    : opts_(std::move(opts)),
      fe_([&] {
        net::FrontEndOptions f = opts_.net;
        f.counter_prefix = "router";
        return f;
      }()),
      ring_(opts_.vnodes) {
  fe_.set_frame_handler(
      [this](const EpollFrontEnd::ConnPtr& c, const FrameHeader& h,
             const std::uint8_t* payload) { handle_frame(c, h, payload); });
  for (const auto& ep : opts_.replicas) {
    auto u = std::make_unique<Upstream>();
    u->ep = ep;
    upstreams_.push_back(std::move(u));
  }
}

NpdpRouter::~NpdpRouter() { stop(); }

bool NpdpRouter::start(std::string* err) {
  if (started_.exchange(true)) {
    *err = "router already started";
    return false;
  }
  if (upstreams_.empty()) {
    *err = "router needs at least one replica";
    return false;
  }
  // Probe synchronously before opening the door: the first client frame
  // meets a ring that reflects which replicas actually answer.
  probe_pass();
  for (auto& u : upstreams_) {
    u->wakefd.reset(net::make_wakefd());
    u->io = std::thread([this, up = u.get()] { upstream_io_loop(*up); });
  }
  if (!fe_.start(err)) {
    io_stop_.store(true, std::memory_order_release);
    for (auto& u : upstreams_) net::wake_signal(u->wakefd.get());
    for (auto& u : upstreams_)
      if (u->io.joinable()) u->io.join();
    return false;
  }
  prober_ = std::thread([this] { prober_loop(); });
  return true;
}

void NpdpRouter::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopped_.exchange(true)) return;
  // Front-end drain: stop accepting, then wait (bounded) for every
  // admitted request — the upstream io threads are still running, so
  // pending replies keep flowing back while we wait.
  fe_.stop();
  probe_stop_.store(true, std::memory_order_release);
  if (prober_.joinable()) prober_.join();
  io_stop_.store(true, std::memory_order_release);
  for (auto& u : upstreams_) net::wake_signal(u->wakefd.get());
  for (auto& u : upstreams_)
    if (u->io.joinable()) u->io.join();
  // Anything still pending has no client to answer (the reactors closed
  // every connection); drop it.
  std::lock_guard lk(pending_mu_);
  pending_.clear();
}

void NpdpRouter::handle_frame(const EpollFrontEnd::ConnPtr& c,
                              const FrameHeader& h,
                              const std::uint8_t* payload) {
  using net::MsgType;
  switch (h.type) {
    case MsgType::Ping:
      fe_.reply_now(c, net::encode_pong(h.id));
      return;
    case MsgType::Stats:
      fe_.reply_now(c, net::encode_stats_text(h.id, stats_json()));
      return;
    case MsgType::StatsRequest: {
      net::WireStats ws;
      ws.metrics = obs::metrics().snapshot();
      for (const auto& row : resilience::breakers().snapshot()) {
        net::WireBreaker b;
        b.name = row.name;
        b.state = static_cast<std::uint8_t>(row.state);
        b.failure_rate = row.failure_rate;
        b.retry_after_ms = row.retry_after_ms;
        ws.breakers.push_back(std::move(b));
      }
      {
        std::lock_guard lk(pending_mu_);
        ws.queue_depth = static_cast<std::int64_t>(pending_.size());
      }
      fe_.reply_now(c, net::encode_stats_response(h.id, ws));
      return;
    }
    case MsgType::Solve:
    case MsgType::Fold:
    case MsgType::Parse:
    case MsgType::Chain:
    case MsgType::Bst: {
      // Decode only to learn the placement key and trace context; what
      // goes upstream is the original payload byte-for-byte under a
      // re-stamped header, so the trace context survives the hop.
      net::WireRequest w;
      std::string err;
      if (!net::decode_request_payload(h.type, h.version, h.id, payload,
                                       h.len, &w, &err)) {
        fe_.note_bad_frame();
        fe_.reply_now(c, net::encode_proto_error(
                             h.id, net::ProtoErrorCode::BadPayload, err));
        return;
      }
      const std::uint64_t rid =
          next_id_.fetch_add(1, std::memory_order_relaxed);
      Pending p;
      p.conn = c;
      p.client_id = h.id;
      p.key = serve::content_hash(w.payload);
      p.trace_id = w.trace.trace_id;
      p.sampled = w.trace.sampled;
      p.frame.reserve(net::kHeaderSize + h.len);
      net::encode_header(p.frame, h.type, rid, h.len, h.version);
      p.frame.insert(p.frame.end(), payload, payload + h.len);
      if (p.sampled) {
        // Chain markers on the router's own trace: the admission half.
        // With these (plus the reply half below) a merged client+router
        // trace carries complete chains even when the replica that did
        // the work was killed before exporting anything.
        CELLNPDP_TRACE_INSTANT("req", "decode",
                               static_cast<std::int64_t>(p.trace_id));
        CELLNPDP_TRACE_INSTANT("req", "queue",
                               static_cast<std::int64_t>(p.trace_id));
      }
      // Tenant tag passes through untouched inside the forwarded bytes;
      // count it here so a router front-end shows per-tenant demand even
      // though QoS enforcement happens on the replicas.
      if (w.tenant != 0)
        obs::metrics()
            .counter("router.tenant.forwarded{tenant=" +
                     std::to_string(w.tenant) + "}")
            .add();
      fe_.begin_async(c);
      if (!place(rid, p)) {
        ++no_replica_;
        obs::metrics().counter("router.no_replica").add();
        synthesize(p, serve::Status::RetryAfter, "no healthy replica");
      }
      return;
    }
    default:
      fe_.note_bad_frame();
      fe_.reply_now(c, net::encode_proto_error(
                           h.id, net::ProtoErrorCode::UnknownType,
                           "unknown message type " +
                               std::to_string(static_cast<unsigned>(h.type))));
      return;
  }
}

bool NpdpRouter::place(std::uint64_t rid, Pending& p) {
  std::vector<std::string> exclude;
  // Bounded by the replica count: each miss excludes one node.
  while (exclude.size() < upstreams_.size()) {
    std::string node;
    {
      std::lock_guard lk(ring_mu_);
      node = ring_.lookup_excluding(p.key, exclude);
    }
    if (node.empty()) return false;
    Upstream* u = nullptr;
    for (auto& cand : upstreams_)
      if (cand->ep.name == node) {
        u = cand.get();
        break;
      }
    if (u == nullptr) return false;  // ring and config disagree: give up
    {
      std::lock_guard lk(u->mu);
      // accepting flips under this mutex on the down path (which also
      // clears the queue), so a frame appended here is guaranteed to be
      // seen by that cleanup — never silently stranded.
      if (!u->accepting) {
        exclude.push_back(node);
        continue;
      }
      u->queue.push_back(p.frame);
      p.replica = node;
      p.sent = SteadyClock::now();
      ++p.attempts;
      u->forwarded.fetch_add(1, std::memory_order_relaxed);
      {
        // Lock order everywhere: upstream mu, then pending_mu_. Insert
        // before the io thread can possibly send (it needs u->mu, held).
        std::lock_guard plk(pending_mu_);
        pending_[rid] = std::move(p);
      }
    }
    net::wake_signal(u->wakefd.get());
    ++forwarded_;
    obs::metrics().counter("router.forwarded").add();
    return true;
  }
  return false;
}

void NpdpRouter::synthesize(Pending& p, serve::Status st,
                            const std::string& detail) {
  net::WireResponse r;
  r.id = p.client_id;
  r.status = st;
  r.retry_after_ms =
      st == serve::Status::RetryAfter ? opts_.retry_after_hint_ms : 0;
  r.backend = "router";
  r.detail = detail;
  if (p.sampled) {
    CELLNPDP_TRACE_INSTANT("req", "respond",
                           static_cast<std::int64_t>(p.trace_id),
                           static_cast<std::int64_t>(net::wire_status(st)));
    CELLNPDP_TRACE_INSTANT("req", "encode",
                           static_cast<std::int64_t>(p.trace_id));
  }
  ++synthesized_;
  obs::metrics().counter("router.synthesized").add();
  fe_.async_reply(p.conn, net::encode_response(r));
}

void NpdpRouter::upstream_io_loop(Upstream& u) {
  obs::Tracer::instance().name_this_thread("router up " + u.ep.name);
  while (!io_stop_.load(std::memory_order_acquire)) {
    pollfd pfds[2];
    pfds[0] = {u.wakefd.get(), POLLIN, 0};
    nfds_t nf = 1;
    if (u.fd.valid()) {
      pfds[1] = {u.fd.get(), POLLIN, 0};
      nf = 2;
    }
    const int pr = ::poll(pfds, nf, 200);
    if (pr < 0 && errno != EINTR) break;
    net::wake_drain(u.wakefd.get());
    if (io_stop_.load(std::memory_order_acquire)) break;
    // Outgoing first: grab whatever place() queued.
    std::vector<std::vector<std::uint8_t>> out;
    {
      std::lock_guard lk(u.mu);
      out.swap(u.queue);
    }
    if (!out.empty() && !u.fd.valid()) {
      std::string err;
      const int fd = net::tcp_connect_timeout(
          u.ep.host, u.ep.port, opts_.connect_timeout_ms, &err);
      if (fd < 0) {
        // The pending entries for these frames are requeued by the down
        // path (they are registered under this replica's name).
        upstream_down(u, "connect failed");
        continue;
      }
      u.fd.reset(fd);
      u.connected.store(true, std::memory_order_release);
    }
    bool dead = false;
    for (const auto& frame : out) {
      if (!net::send_all(u.fd.get(), frame.data(), frame.size())) {
        dead = true;
        break;
      }
    }
    if (dead) {
      upstream_down(u, "send failed");
      continue;
    }
    // Incoming replies.
    if (nf == 2 && u.fd.valid() &&
        (pfds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      std::uint8_t buf[65536];
      for (;;) {
        const ssize_t n = ::recv(u.fd.get(), buf, sizeof buf, MSG_DONTWAIT);
        if (n > 0) {
          u.rbuf.insert(u.rbuf.end(), buf, buf + n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        dead = true;  // orderly close or hard error: the replica is gone
        break;
      }
      // Parse complete frames even when the tail read hit EOF — replies
      // that made it out of the replica before it died still count.
      std::size_t off = 0;
      for (;;) {
        FrameHeader h;
        const net::HeaderParse hp = net::parse_header(
            u.rbuf.data() + off, u.rbuf.size() - off, &h);
        if (hp != net::HeaderParse::Ok ||
            u.rbuf.size() - off < net::kHeaderSize + h.len) {
          if (hp == net::HeaderParse::BadMagic) dead = true;
          break;
        }
        std::vector<std::uint8_t> frame(
            u.rbuf.begin() + static_cast<std::ptrdiff_t>(off),
            u.rbuf.begin() +
                static_cast<std::ptrdiff_t>(off + net::kHeaderSize + h.len));
        on_upstream_frame(u, h, std::move(frame));
        off += net::kHeaderSize + h.len;
      }
      if (off > 0)
        u.rbuf.erase(u.rbuf.begin(),
                     u.rbuf.begin() + static_cast<std::ptrdiff_t>(off));
      if (dead) upstream_down(u, "connection lost");
    }
  }
  u.fd.reset();
  u.connected.store(false, std::memory_order_release);
}

void NpdpRouter::upstream_down(Upstream& u, const char* why) {
  {
    std::lock_guard lk(u.mu);
    u.accepting = false;
    u.queue.clear();  // pending entries below are the source of truth
  }
  u.fd.reset();
  u.rbuf.clear();
  u.connected.store(false, std::memory_order_release);
  u.disconnects.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lk(ring_mu_);
    ring_.remove(u.ep.name);
  }
  u.in_ring.store(false, std::memory_order_release);
  ++replica_down_;
  obs::metrics().counter("router.replica_down").add();
  CELLNPDP_TRACE_INSTANT("router", why);
  // Re-place everything that was riding on this replica. The ring no
  // longer contains it, so each key falls to its clockwise successor —
  // the same replica that inherits the arc, keeping caches warm.
  std::vector<std::pair<std::uint64_t, Pending>> victims;
  {
    std::lock_guard lk(pending_mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.replica == u.ep.name) {
        victims.emplace_back(it->first, std::move(it->second));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& [rid, p] : victims) {
    if (p.attempts >= opts_.max_attempts) {
      ++exhausted_;
      obs::metrics().counter("router.exhausted").add();
      synthesize(p, serve::Status::Error,
                 "routing attempts exhausted (" +
                     std::to_string(p.attempts) + ")");
      continue;
    }
    if (place(rid, p)) {
      ++requeued_;
      obs::metrics().counter("router.requeued").add();
    } else {
      ++no_replica_;
      obs::metrics().counter("router.no_replica").add();
      synthesize(p, serve::Status::RetryAfter, "no healthy replica");
    }
  }
}

void NpdpRouter::on_upstream_frame(Upstream& u, const FrameHeader& h,
                                   std::vector<std::uint8_t> frame) {
  Pending p;
  {
    std::lock_guard lk(pending_mu_);
    auto it = pending_.find(h.id);
    if (it == pending_.end()) return;  // requeued or shut down: stale
    p = std::move(it->second);
    pending_.erase(it);
  }
  patch_frame_id(frame, p.client_id);
  u.replies.fetch_add(1, std::memory_order_relaxed);
  ++replies_;
  obs::metrics().counter("router.replies").add();
  obs::metrics().histogram("router.upstream_ns")
      .observe(std::chrono::duration_cast<std::chrono::nanoseconds>(
                   SteadyClock::now() - p.sent)
                   .count());
  if (p.sampled) {
    // Reply half of the chain markers (see handle_frame). The status
    // rides in the Result payload's first u16; respond carries it as a1
    // so check-trace can demand a solve/cache event only on success.
    std::int64_t status = static_cast<std::int64_t>(serve::Status::Error);
    if (h.type == net::MsgType::Result && h.len >= 2)
      status = static_cast<std::int64_t>(
          frame[net::kHeaderSize] |
          (static_cast<std::uint16_t>(frame[net::kHeaderSize + 1]) << 8));
    const bool cached =
        status == static_cast<std::int64_t>(serve::Status::OkCached);
    const bool success =
        status == static_cast<std::int64_t>(serve::Status::Ok) ||
        status == static_cast<std::int64_t>(serve::Status::Degraded) ||
        cached;
    if (success)
      CELLNPDP_TRACE_INSTANT("req", cached ? "cache" : "solve",
                             static_cast<std::int64_t>(p.trace_id));
    CELLNPDP_TRACE_INSTANT("req", "respond",
                           static_cast<std::int64_t>(p.trace_id), status);
    CELLNPDP_TRACE_INSTANT("req", "encode",
                           static_cast<std::int64_t>(p.trace_id));
  }
  fe_.async_reply(p.conn, std::move(frame));
}

void NpdpRouter::prober_loop() {
  obs::Tracer::instance().name_this_thread("router prober");
  while (!probe_stop_.load(std::memory_order_acquire)) {
    const auto t0 = SteadyClock::now();
    probe_pass();
    // Sleep in small steps so stop() is never stuck behind the interval.
    while (!probe_stop_.load(std::memory_order_acquire) &&
           SteadyClock::now() - t0 <
               std::chrono::milliseconds(opts_.probe_interval_ms))
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

std::size_t NpdpRouter::probe_pass() {
  for (auto& u : upstreams_) {
    // A fresh client per probe keeps the prober independent of the data
    // connection: it measures "does the replica answer a stats frame",
    // not "is our socket still alive".
    net::NpdpClient cli;
    std::string err;
    bool ok = false;
    bool breaker_open = false;
    if (cli.connect(u->ep.host, u->ep.port, &err, opts_.probe_timeout_ms)) {
      net::WireStats ws;
      if (cli.stats_snapshot(&ws, opts_.probe_timeout_ms, &err) ==
          net::NpdpClient::RecvStatus::Ok) {
        ok = true;
        for (const auto& b : ws.breakers)
          if (b.state == kBreakerOpenWire) breaker_open = true;
      }
    }
    if (!ok) {
      ++probe_failures_;
      obs::metrics().counter("router.probe_failures").add();
      // Unreachable: out of the ring, no new placements. The in-flight
      // requeue happens on the data path, which notices the broken
      // connection itself (and may already have).
      {
        std::lock_guard lk(u->mu);
        u->accepting = false;
      }
      {
        std::lock_guard lk(ring_mu_);
        ring_.remove(u->ep.name);
      }
      u->in_ring.store(false, std::memory_order_release);
      u->draining.store(false, std::memory_order_release);
    } else if (breaker_open) {
      // Alive but degraded: drain. Placements stop, the queue and the
      // connection stay — in-flight requests finish normally.
      {
        std::lock_guard lk(u->mu);
        u->accepting = false;
      }
      {
        std::lock_guard lk(ring_mu_);
        ring_.remove(u->ep.name);
      }
      u->in_ring.store(false, std::memory_order_release);
      u->draining.store(true, std::memory_order_release);
    } else {
      {
        std::lock_guard lk(u->mu);
        u->accepting = true;
      }
      {
        std::lock_guard lk(ring_mu_);
        ring_.add(u->ep.name);
      }
      u->in_ring.store(true, std::memory_order_release);
      u->draining.store(false, std::memory_order_release);
    }
  }
  std::size_t healthy;
  {
    std::lock_guard lk(ring_mu_);
    healthy = ring_.size();
  }
  obs::metrics().gauge("router.healthy_replicas")
      .set(static_cast<double>(healthy));
  return healthy;
}

RouterStats NpdpRouter::stats() const {
  RouterStats s;
  s.forwarded = forwarded_.load(std::memory_order_relaxed);
  s.replies = replies_.load(std::memory_order_relaxed);
  s.requeued = requeued_.load(std::memory_order_relaxed);
  s.synthesized = synthesized_.load(std::memory_order_relaxed);
  s.no_replica = no_replica_.load(std::memory_order_relaxed);
  s.exhausted = exhausted_.load(std::memory_order_relaxed);
  s.replica_down = replica_down_.load(std::memory_order_relaxed);
  s.probe_failures = probe_failures_.load(std::memory_order_relaxed);
  {
    std::lock_guard lk(pending_mu_);
    s.pending = pending_.size();
  }
  {
    std::lock_guard lk(ring_mu_);
    s.healthy = ring_.size();
  }
  return s;
}

std::vector<ReplicaHealth> NpdpRouter::health() const {
  std::vector<ReplicaHealth> out;
  out.reserve(upstreams_.size());
  for (const auto& u : upstreams_) {
    ReplicaHealth h;
    h.name = u->ep.name;
    h.in_ring = u->in_ring.load(std::memory_order_acquire);
    h.draining = u->draining.load(std::memory_order_acquire);
    h.connected = u->connected.load(std::memory_order_acquire);
    h.forwarded = u->forwarded.load(std::memory_order_relaxed);
    h.replies = u->replies.load(std::memory_order_relaxed);
    h.disconnects = u->disconnects.load(std::memory_order_relaxed);
    out.push_back(std::move(h));
  }
  return out;
}

std::string NpdpRouter::stats_json() const {
  const RouterStats rs = stats();
  const net::FrontEndStats fs = fe_.stats();
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("router").begin_object();
  w.kv("forwarded", static_cast<std::int64_t>(rs.forwarded));
  w.kv("replies", static_cast<std::int64_t>(rs.replies));
  w.kv("requeued", static_cast<std::int64_t>(rs.requeued));
  w.kv("synthesized", static_cast<std::int64_t>(rs.synthesized));
  w.kv("no_replica", static_cast<std::int64_t>(rs.no_replica));
  w.kv("exhausted", static_cast<std::int64_t>(rs.exhausted));
  w.kv("replica_down", static_cast<std::int64_t>(rs.replica_down));
  w.kv("probe_failures", static_cast<std::int64_t>(rs.probe_failures));
  w.kv("pending", static_cast<std::int64_t>(rs.pending));
  w.kv("healthy", static_cast<std::int64_t>(rs.healthy));
  w.end_object();
  w.key("net").begin_object();
  w.kv("accepted", static_cast<std::int64_t>(fs.accepted));
  w.kv("active_conns", static_cast<std::int64_t>(fs.active_conns));
  w.kv("disconnects", static_cast<std::int64_t>(fs.disconnects));
  w.kv("frames_in", static_cast<std::int64_t>(fs.frames_in));
  w.kv("responses", static_cast<std::int64_t>(fs.responses));
  w.kv("frames_bad", static_cast<std::int64_t>(fs.frames_bad));
  w.kv("dropped_responses",
       static_cast<std::int64_t>(fs.dropped_responses));
  w.end_object();
  w.key("replicas").begin_array();
  for (const auto& h : health()) {
    w.begin_object();
    w.kv("name", h.name);
    w.kv("in_ring", h.in_ring);
    w.kv("draining", h.draining);
    w.kv("connected", h.connected);
    w.kv("forwarded", static_cast<std::int64_t>(h.forwarded));
    w.kv("replies", static_cast<std::int64_t>(h.replies));
    w.kv("disconnects", static_cast<std::int64_t>(h.disconnects));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return os.str();
}

}  // namespace cellnpdp::router
