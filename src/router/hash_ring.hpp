// Consistent-hash ring with virtual nodes — the placement function of the
// router tier.
//
// Each node contributes `vnodes` points to a ring of 64-bit positions; a
// key is placed on the node owning the first point at or clockwise of the
// key's (mixed) hash. Two properties matter here and are what the tests
// pin down:
//
//  * uniformity — with enough virtual nodes the ring splits the keyspace
//    near-evenly, so replicas see comparable load;
//  * minimal remap — removing a node moves only the keys that node owned
//    (its arc segments fall to the clockwise successors); every other
//    key keeps its placement, which is what preserves the surviving
//    replicas' warm LRU caches through a failover.
//
// The paper's Cell mapping assigns triangle blocks to SPEs by a fixed
// ownership function; this is the serving-tier analogue where membership
// can change at runtime. Deterministic by construction (FNV-1a + a
// splitmix-style finalizer, no RNG), so every router instance configured
// with the same replica names computes the same placement.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace cellnpdp::router {

/// splitmix64 finalizer: spreads FNV's low-entropy high bits over the
/// whole 64-bit ring (FNV alone clusters nearby inputs).
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

class HashRing {
 public:
  explicit HashRing(int vnodes = 64) : vnodes_(vnodes < 1 ? 1 : vnodes) {}

  /// Inserts `name` with vnodes points. No-op if already present.
  void add(const std::string& name) {
    if (contains(name)) return;
    names_.push_back(name);
    for (int v = 0; v < vnodes_; ++v)
      points_.push_back({point_hash(name, v), name});
    std::sort(points_.begin(), points_.end());
  }

  /// Removes `name` and its points. No-op if absent.
  void remove(const std::string& name) {
    names_.erase(std::remove(names_.begin(), names_.end(), name),
                 names_.end());
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [&](const Point& p) {
                                   return p.node == name;
                                 }),
                  points_.end());
  }

  bool contains(const std::string& name) const {
    return std::find(names_.begin(), names_.end(), name) != names_.end();
  }
  std::size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }
  const std::vector<std::string>& nodes() const { return names_; }

  /// The node owning `key`, or empty when the ring is empty.
  std::string lookup(std::uint64_t key) const {
    return lookup_excluding(key, {});
  }

  /// Like lookup(), but skips nodes in `exclude` (walk clockwise past
  /// their points). Used for bounded retry: a request bounced by its
  /// owner goes to the next distinct owner on the ring, which is also
  /// where the keys would land if the owner were removed — so retries
  /// warm exactly the cache that inherits the segment on failover.
  std::string lookup_excluding(
      std::uint64_t key, const std::vector<std::string>& exclude) const {
    if (points_.empty()) return {};
    const std::uint64_t h = mix64(key);
    auto it = std::lower_bound(
        points_.begin(), points_.end(), h,
        [](const Point& p, std::uint64_t v) { return p.hash < v; });
    for (std::size_t walked = 0; walked < points_.size(); ++walked) {
      if (it == points_.end()) it = points_.begin();  // wrap
      if (std::find(exclude.begin(), exclude.end(), it->node) ==
          exclude.end())
        return it->node;
      ++it;
    }
    return {};  // every node excluded
  }

 private:
  struct Point {
    std::uint64_t hash = 0;
    std::string node;
    bool operator<(const Point& o) const {
      return hash != o.hash ? hash < o.hash : node < o.node;
    }
  };

  static std::uint64_t point_hash(const std::string& name, int vnode) {
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const char ch : name) {
      h ^= static_cast<unsigned char>(ch);
      h *= 0x100000001B3ull;
    }
    h ^= static_cast<std::uint64_t>(vnode);
    h *= 0x100000001B3ull;
    return mix64(h);
  }

  int vnodes_;
  std::vector<std::string> names_;
  std::vector<Point> points_;  ///< sorted by hash
};

}  // namespace cellnpdp::router
