// Low-overhead per-thread event tracer.
//
// Design (DESIGN.md-style rationale):
//   * one ring buffer per recording thread, owned by the global Tracer so
//     it survives thread exit; threads find their buffer through a
//     thread_local cache invalidated by a session generation counter;
//   * the disabled fast path is a single relaxed atomic load — solvers and
//     executors leave their instrumentation in place permanently;
//   * events carry only POD fields (static-string name/category, relative
//     nanosecond timestamps, two integer args), so recording is two clock
//     reads plus a handful of stores and never allocates;
//   * `CELLNPDP_NO_TRACING` compiles every macro to nothing for builds
//     that must not even pay the atomic load.
//
// Snapshots are taken after `stop()` (or when no instrumented code is
// running); the exporter in trace_export.hpp turns them into Chrome
// trace-event JSON loadable in Perfetto / chrome://tracing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cellnpdp::obs {

/// One trace event. `dur_ns < 0` distinguishes non-span phases.
struct TraceEvent {
  static constexpr std::int64_t kNoArg = INT64_MIN;

  const char* name = nullptr;  ///< static string
  const char* cat = nullptr;   ///< static string; exporter groups by this
  std::int64_t ts_ns = 0;      ///< start, relative to session start
  std::int64_t dur_ns = 0;     ///< span duration; ignored for 'i'/'C'
  std::int64_t a0 = kNoArg;    ///< user arg (counter value for 'C')
  std::int64_t a1 = kNoArg;    ///< user arg
  char ph = 'X';               ///< 'X' span, 'i' instant, 'C' counter
};

/// Everything one thread recorded during a session, in chronological
/// order. `dropped` counts ring-buffer overwrites (oldest-first).
struct ThreadTrace {
  std::string name;   ///< "worker 3" etc.; empty => exporter synthesises
  std::uint32_t tid = 0;
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;
};

class Tracer {
 public:
  /// The process-wide tracer used by all instrumentation macros.
  static Tracer& instance();

  /// Starts a new session: clears previous buffers, arms recording.
  /// `per_thread_capacity` is the ring size per recording thread.
  void start(std::size_t per_thread_capacity = 1u << 18);

  /// Disarms recording. Buffers stay readable via snapshot().
  void stop();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since session start (steady clock).
  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
               .count() -
           t0_ns_;
  }

  /// Appends `ev` to the calling thread's ring; drops the oldest event on
  /// overflow. No-op when disabled.
  void record(const TraceEvent& ev);

  /// Names the calling thread's timeline lane (e.g. "worker 2"). No-op
  /// when disabled; cheap to call repeatedly (only the first name sticks).
  void name_this_thread(const std::string& name);

  /// Copies out every thread's events in chronological order. Call only
  /// while no instrumented code is recording (normally after stop()).
  std::vector<ThreadTrace> snapshot() const;

  ~Tracer();

  struct Buffer;  // opaque per-thread ring buffer (defined in trace.cpp)

 private:
  Tracer() = default;
  Buffer* local_buffer();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> session_{0};
  std::int64_t t0_ns_ = 0;
  std::size_t capacity_ = 1u << 18;

  mutable std::mutex mu_;  ///< guards buffers_ (registration + snapshot)
  std::vector<Buffer*> buffers_;
};

/// RAII span: records one 'X' event covering its lifetime. When tracing
/// is disabled at construction the object is inert (a bool check).
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name,
            std::int64_t a0 = TraceEvent::kNoArg,
            std::int64_t a1 = TraceEvent::kNoArg) {
    Tracer& tr = Tracer::instance();
    if (!tr.enabled()) return;
    active_ = true;
    cat_ = cat;
    name_ = name;
    a0_ = a0;
    a1_ = a1;
    t0_ = tr.now_ns();
  }
  ~TraceSpan() {
    if (!active_) return;
    Tracer& tr = Tracer::instance();
    TraceEvent ev;
    ev.name = name_;
    ev.cat = cat_;
    ev.ts_ns = t0_;
    ev.dur_ns = tr.now_ns() - t0_;
    ev.a0 = a0_;
    ev.a1 = a1_;
    ev.ph = 'X';
    tr.record(ev);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_ = false;
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  std::int64_t a0_ = 0, a1_ = 0, t0_ = 0;
};

/// Records a zero-duration marker.
inline void trace_instant(const char* cat, const char* name,
                          std::int64_t a0 = TraceEvent::kNoArg,
                          std::int64_t a1 = TraceEvent::kNoArg) {
  Tracer& tr = Tracer::instance();
  if (!tr.enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_ns = tr.now_ns();
  ev.dur_ns = -1;
  ev.a0 = a0;
  ev.a1 = a1;
  ev.ph = 'i';
  tr.record(ev);
}

/// Records a counter sample (rendered as a stacked chart in Perfetto).
inline void trace_counter(const char* cat, const char* name,
                          std::int64_t value) {
  Tracer& tr = Tracer::instance();
  if (!tr.enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_ns = tr.now_ns();
  ev.dur_ns = -1;
  ev.a0 = value;
  ev.ph = 'C';
  tr.record(ev);
}

}  // namespace cellnpdp::obs

#ifndef CELLNPDP_NO_TRACING
#define CELLNPDP_TRACE_CONCAT2(a, b) a##b
#define CELLNPDP_TRACE_CONCAT(a, b) CELLNPDP_TRACE_CONCAT2(a, b)
/// Scoped span covering the rest of the enclosing block.
#define CELLNPDP_TRACE_SPAN(...)                                     \
  ::cellnpdp::obs::TraceSpan CELLNPDP_TRACE_CONCAT(cellnpdp_span_,   \
                                                   __LINE__)(__VA_ARGS__)
#define CELLNPDP_TRACE_INSTANT(...) ::cellnpdp::obs::trace_instant(__VA_ARGS__)
#define CELLNPDP_TRACE_COUNTER(...) ::cellnpdp::obs::trace_counter(__VA_ARGS__)
#else
#define CELLNPDP_TRACE_SPAN(...) do {} while (0)
#define CELLNPDP_TRACE_INSTANT(...) do {} while (0)
#define CELLNPDP_TRACE_COUNTER(...) do {} while (0)
#endif
