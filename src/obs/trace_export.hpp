// Chrome trace-event JSON exporter: turns Tracer snapshots into a file
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/trace.hpp"

namespace cellnpdp::obs {

/// Writes `threads` in the Chrome trace-event "JSON object" format:
/// one metadata event naming each lane, then every recorded event with
/// microsecond timestamps. Span args are exported as {"a0":..,"a1":..}.
void write_chrome_trace(std::ostream& os,
                        const std::vector<ThreadTrace>& threads,
                        const std::string& process_name = "cellnpdp");

/// Convenience: snapshot the global tracer and write it to `path`.
/// Returns the number of events written, or -1 if the file could not be
/// opened.
long export_chrome_trace(const std::string& path,
                         const std::string& process_name = "cellnpdp");

/// Total span duration (ns) per category across all threads, e.g.
/// {"middle": 123, "inner": 456, ...}. Used by the utilization report.
struct PhaseTotal {
  std::string cat;
  std::int64_t total_ns = 0;
  std::int64_t spans = 0;
};
std::vector<PhaseTotal> aggregate_phase_totals(
    const std::vector<ThreadTrace>& threads);

/// Merges already-exported Chrome traces (parsed JSON) into one file,
/// assigning each input a distinct pid so Perfetto shows one process
/// track per source (client, server, ...). Events keep their own tids
/// and timestamps; correlation across processes is by trace_id (args.a0
/// on cat:"req" events), not by clock.
void merge_chrome_traces(std::ostream& os,
                         const std::vector<const JsonValue*>& traces);

/// Per-trace-id request chain reconstructed from cat:"req" events in a
/// (possibly merged) Chrome trace. args.a0 keys the chain; the respond
/// instant's args.a1 carries the final serve status code.
struct ChainInfo {
  std::uint64_t trace_id = 0;
  bool client = false;   // originator span ("client", ph X)
  bool decode = false;   // reactor decoded the frame
  bool queue = false;    // admission queue span
  bool solve = false;    // solver span
  bool cache = false;    // answered from the result cache
  bool encode = false;   // response serialized
  bool respond = false;  // terminal respond instant
  std::int64_t status = -1;  // respond args.a1, -1 when absent
};

struct ChainSummary {
  std::int64_t with_client = 0;  // chains that include a client span
  std::int64_t complete = 0;     // client->decode->queue->work->encode
  std::int64_t orphans = 0;      // server-side chains with no client span
  std::vector<ChainInfo> chains;
};

/// Walks traceEvents and groups cat:"req" events by trace_id. A chain
/// counts as complete when the client span, decode, queue, respond and
/// encode markers are all present, plus a solve or cache span whenever
/// the respond status is in `success_codes` (failures legitimately skip
/// the solver).
ChainSummary analyze_request_chains(
    const JsonValue& root, const std::vector<std::int64_t>& success_codes);

}  // namespace cellnpdp::obs
