// Chrome trace-event JSON exporter: turns Tracer snapshots into a file
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace cellnpdp::obs {

/// Writes `threads` in the Chrome trace-event "JSON object" format:
/// one metadata event naming each lane, then every recorded event with
/// microsecond timestamps. Span args are exported as {"a0":..,"a1":..}.
void write_chrome_trace(std::ostream& os,
                        const std::vector<ThreadTrace>& threads,
                        const std::string& process_name = "cellnpdp");

/// Convenience: snapshot the global tracer and write it to `path`.
/// Returns the number of events written, or -1 if the file could not be
/// opened.
long export_chrome_trace(const std::string& path,
                         const std::string& process_name = "cellnpdp");

/// Total span duration (ns) per category across all threads, e.g.
/// {"middle": 123, "inner": 456, ...}. Used by the utilization report.
struct PhaseTotal {
  std::string cat;
  std::int64_t total_ns = 0;
  std::int64_t spans = 0;
};
std::vector<PhaseTotal> aggregate_phase_totals(
    const std::vector<ThreadTrace>& threads);

}  // namespace cellnpdp::obs
