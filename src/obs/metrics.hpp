// Process-wide metrics registry: named counters, gauges, and log2-bucket
// histograms, all safe to update from any thread, with a JSON snapshot.
//
// Usage pattern: resolve the handle once (registration takes a mutex),
// then update through the handle on the hot path (a relaxed atomic op).
//
//   static obs::Counter& tasks = obs::metrics().counter("sched.tasks");
//   tasks.add();
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace cellnpdp::obs {

class Counter {
 public:
  void add(std::int64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0); }

 private:
  std::atomic<double> v_{0};
};

/// Histogram over non-negative integer samples (typically nanoseconds).
/// Bucket b counts samples in [2^b, 2^(b+1)); bucket 0 also takes 0.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(std::int64_t sample);
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t min() const;
  std::int64_t max() const;
  double mean() const;
  /// Upper bound of the bucket containing quantile q (0 < q <= 1).
  /// Overstates by up to ~2x (log2 buckets); prefer quantile().
  std::int64_t quantile_upper_bound(double q) const;
  /// Quantile estimate with linear interpolation inside the containing
  /// log2 bucket, clamped to the exact observed [min, max].
  double quantile(double q) const;
  std::int64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::int64_t> buckets_[kBuckets]{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<std::int64_t> max_{INT64_MIN};
};

/// Value-type copy of one histogram: all buckets read in one pass, with
/// the same quantile math as the live Histogram. Cheap to ship over the
/// wire or diff between polls.
struct HistogramSnapshot {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::array<std::int64_t, Histogram::kBuckets> buckets{};

  double mean() const { return count == 0 ? 0.0 : double(sum) / double(count); }
  double quantile(double q) const;
  std::int64_t quantile_upper_bound(double q) const;
};

/// Point-in-time copy of every registered metric family, captured in one
/// pass under the registry lock with stable (sorted-by-name) ordering, so
/// counter deltas between two snapshots are monotone.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  const HistogramSnapshot* find_histogram(const std::string& name) const;
  std::int64_t counter_or(const std::string& name, std::int64_t dflt) const;
};

class MetricsRegistry {
 public:
  /// Returns (creating on first use) the named metric. Handles stay valid
  /// for the registry's lifetime; reset() zeroes values, never removes.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Writes a point-in-time JSON snapshot:
  /// {"counters":{..},"gauges":{..},"histograms":{name:{count,sum,..}}}.
  void write_json(std::ostream& os) const;

  /// Captures every family in one pass under the lock, sorted by name.
  MetricsSnapshot snapshot() const;

  /// Zeroes every registered metric (handles stay valid).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry used by library instrumentation.
MetricsRegistry& metrics();

}  // namespace cellnpdp::obs
