// Process-wide metrics registry: named counters, gauges, and log2-bucket
// histograms, all safe to update from any thread, with a JSON snapshot.
//
// Usage pattern: resolve the handle once (registration takes a mutex),
// then update through the handle on the hot path (a relaxed atomic op).
//
//   static obs::Counter& tasks = obs::metrics().counter("sched.tasks");
//   tasks.add();
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

namespace cellnpdp::obs {

class Counter {
 public:
  void add(std::int64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0); }

 private:
  std::atomic<double> v_{0};
};

/// Histogram over non-negative integer samples (typically nanoseconds).
/// Bucket b counts samples in [2^b, 2^(b+1)); bucket 0 also takes 0.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(std::int64_t sample);
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t min() const;
  std::int64_t max() const;
  double mean() const;
  /// Upper bound of the bucket containing quantile q (0 < q <= 1).
  std::int64_t quantile_upper_bound(double q) const;
  std::int64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::int64_t> buckets_[kBuckets]{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<std::int64_t> max_{INT64_MIN};
};

class MetricsRegistry {
 public:
  /// Returns (creating on first use) the named metric. Handles stay valid
  /// for the registry's lifetime; reset() zeroes values, never removes.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Writes a point-in-time JSON snapshot:
  /// {"counters":{..},"gauges":{..},"histograms":{name:{count,sum,..}}}.
  void write_json(std::ostream& os) const;

  /// Zeroes every registered metric (handles stay valid).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry used by library instrumentation.
MetricsRegistry& metrics();

}  // namespace cellnpdp::obs
