#include "obs/metrics.hpp"

#include <bit>

#include "common/json.hpp"

namespace cellnpdp::obs {

namespace {
int bucket_index(std::int64_t sample) {
  if (sample <= 0) return 0;
  return std::bit_width(static_cast<std::uint64_t>(sample)) - 1;
}

void atomic_min(std::atomic<std::int64_t>& a, std::int64_t v) {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
void atomic_max(std::atomic<std::int64_t>& a, std::int64_t v) {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace

void Histogram::observe(std::int64_t sample) {
  buckets_[bucket_index(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  atomic_min(min_, sample);
  atomic_max(max_, sample);
}

std::int64_t Histogram::min() const {
  const std::int64_t v = min_.load(std::memory_order_relaxed);
  return v == INT64_MAX ? 0 : v;
}
std::int64_t Histogram::max() const {
  const std::int64_t v = max_.load(std::memory_order_relaxed);
  return v == INT64_MIN ? 0 : v;
}
double Histogram::mean() const {
  const std::int64_t c = count();
  return c == 0 ? 0.0 : double(sum()) / double(c);
}

std::int64_t Histogram::quantile_upper_bound(double q) const {
  const std::int64_t c = count();
  if (c == 0) return 0;
  const auto target =
      static_cast<std::int64_t>(q * double(c) + 0.5);
  std::int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (seen >= target)
      return b >= 62 ? INT64_MAX : (std::int64_t(1) << (b + 1)) - 1;
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard lk(mu_);
  JsonWriter w(os);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.kv(name, g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.kv("count", h->count());
    w.kv("sum", h->sum());
    w.kv("min", h->min());
    w.kv("max", h->max());
    w.kv("mean", h->mean());
    w.kv("p50", h->quantile_upper_bound(0.50));
    w.kv("p95", h->quantile_upper_bound(0.95));
    w.kv("p99", h->quantile_upper_bound(0.99));
    // Sparse bucket map: log2 lower bound -> count.
    w.key("buckets").begin_object();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::int64_t n = h->bucket(b);
      if (n != 0) w.kv(std::to_string(b), n);
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << "\n";
}

void MetricsRegistry::reset() {
  std::lock_guard lk(mu_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace cellnpdp::obs
