#include "obs/metrics.hpp"

#include <bit>

#include "common/json.hpp"

namespace cellnpdp::obs {

namespace {
int bucket_index(std::int64_t sample) {
  if (sample <= 0) return 0;
  return std::bit_width(static_cast<std::uint64_t>(sample)) - 1;
}

void atomic_min(std::atomic<std::int64_t>& a, std::int64_t v) {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
void atomic_max(std::atomic<std::int64_t>& a, std::int64_t v) {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Inclusive value range covered by log2 bucket b ([lo, hi); bucket 0
// also holds zero and negatives-clamped-to-zero samples).
double bucket_lo(int b) { return b == 0 ? 0.0 : double(std::int64_t(1) << b); }
double bucket_hi(int b) {
  return b >= 62 ? 2.0 * double(std::int64_t(1) << 62)
                 : double(std::int64_t(1) << (b + 1));
}

// Shared quantile math over a one-pass bucket copy: find the bucket that
// contains the q-th ranked sample, interpolate linearly by rank fraction
// inside it, clamp to the exact observed extremes.
double quantile_from_buckets(const std::int64_t* buckets, std::int64_t count,
                             std::int64_t mn, std::int64_t mx, double q) {
  if (count == 0) return 0.0;
  double target = q * double(count);
  if (target < 1.0) target = 1.0;
  if (target > double(count)) target = double(count);
  double seen = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    const double n = double(buckets[b]);
    if (n == 0) continue;
    if (seen + n >= target) {
      const double frac = (target - seen) / n;
      double v = bucket_lo(b) + frac * (bucket_hi(b) - bucket_lo(b));
      if (v < double(mn)) v = double(mn);
      if (v > double(mx)) v = double(mx);
      return v;
    }
    seen += n;
  }
  return double(mx);
}

std::int64_t upper_bound_from_buckets(const std::int64_t* buckets,
                                      std::int64_t count, std::int64_t mx,
                                      double q) {
  if (count == 0) return 0;
  const auto target = static_cast<std::int64_t>(q * double(count) + 0.5);
  std::int64_t seen = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= target)
      return b >= 62 ? INT64_MAX : (std::int64_t(1) << (b + 1)) - 1;
  }
  return mx;
}
}  // namespace

void Histogram::observe(std::int64_t sample) {
  buckets_[bucket_index(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  atomic_min(min_, sample);
  atomic_max(max_, sample);
}

std::int64_t Histogram::min() const {
  const std::int64_t v = min_.load(std::memory_order_relaxed);
  return v == INT64_MAX ? 0 : v;
}
std::int64_t Histogram::max() const {
  const std::int64_t v = max_.load(std::memory_order_relaxed);
  return v == INT64_MIN ? 0 : v;
}
double Histogram::mean() const {
  const std::int64_t c = count();
  return c == 0 ? 0.0 : double(sum()) / double(c);
}

std::int64_t Histogram::quantile_upper_bound(double q) const {
  std::int64_t copy[kBuckets];
  for (int b = 0; b < kBuckets; ++b) copy[b] = bucket(b);
  return upper_bound_from_buckets(copy, count(), max(), q);
}

double Histogram::quantile(double q) const {
  std::int64_t copy[kBuckets];
  for (int b = 0; b < kBuckets; ++b) copy[b] = bucket(b);
  return quantile_from_buckets(copy, count(), min(), max(), q);
}

double HistogramSnapshot::quantile(double q) const {
  return quantile_from_buckets(buckets.data(), count, min, max, q);
}

std::int64_t HistogramSnapshot::quantile_upper_bound(double q) const {
  return upper_bound_from_buckets(buckets.data(), count, max, q);
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    const std::string& name) const {
  for (const auto& [n, h] : histograms)
    if (n == name) return &h;
  return nullptr;
}

std::int64_t MetricsSnapshot::counter_or(const std::string& name,
                                         std::int64_t dflt) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return dflt;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard lk(mu_);
  JsonWriter w(os);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.kv(name, g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.kv("count", h->count());
    w.kv("sum", h->sum());
    w.kv("min", h->min());
    w.kv("max", h->max());
    w.kv("mean", h->mean());
    w.kv("p50", h->quantile(0.50));
    w.kv("p95", h->quantile(0.95));
    w.kv("p99", h->quantile(0.99));
    w.kv("p99_upper", h->quantile_upper_bound(0.99));
    // Sparse bucket map: log2 lower bound -> count.
    w.key("buckets").begin_object();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::int64_t n = h->bucket(b);
      if (n != 0) w.kv(std::to_string(b), n);
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << "\n";
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lk(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    out.counters.emplace_back(name, c->value());
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    out.gauges.emplace_back(name, g->value());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot s;
    // Buckets first, then count: a racing observe() can make count lag
    // the bucket sum but never exceed it, keeping deltas non-negative.
    for (int b = 0; b < Histogram::kBuckets; ++b) s.buckets[b] = h->bucket(b);
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    std::int64_t bucket_total = 0;
    for (const auto v : s.buckets) bucket_total += v;
    if (s.count > bucket_total) s.count = bucket_total;
    out.histograms.emplace_back(name, s);
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lk(mu_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace cellnpdp::obs
