#include "obs/exposition.hpp"

#include <cctype>
#include <cstdlib>
#include <set>

namespace cellnpdp::obs {

namespace {
bool legal_first(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool legal_rest(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

void write_labels(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return;
  os << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << prometheus_name(k) << "=\"" << prometheus_escape_label(v) << '"';
  }
  os << '}';
}

/// Splits registry names carrying embedded labels —
/// "serve.tenant.shed{tenant=hot}" — into the base name and label pairs.
/// A name without a well-formed "{k=v,...}" suffix comes back unchanged
/// with no labels (the braces then sanitize to '_' as before, so nothing
/// silently changes meaning).
bool split_embedded_labels(
    const std::string& raw, std::string* base,
    std::vector<std::pair<std::string, std::string>>* labels) {
  const std::size_t open = raw.find('{');
  if (open == std::string::npos || raw.back() != '}' || open + 2 > raw.size())
    return false;
  std::vector<std::pair<std::string, std::string>> parsed;
  std::size_t pos = open + 1;
  const std::size_t close = raw.size() - 1;
  while (pos < close) {
    const std::size_t end = std::min(raw.find(',', pos), close);
    const std::size_t eq = raw.find('=', pos);
    if (eq == std::string::npos || eq >= end || eq == pos) return false;
    parsed.emplace_back(raw.substr(pos, eq - pos),
                        raw.substr(eq + 1, end - eq - 1));
    pos = end + 1;
  }
  if (parsed.empty()) return false;
  *base = raw.substr(0, open);
  *labels = std::move(parsed);
  return true;
}

/// Emits "# TYPE" once per family — label variants of one base name form
/// a single family and must not repeat the header.
void type_line(std::ostream& os, std::set<std::string>& seen,
               const std::string& name, const char* type) {
  if (!seen.insert(name).second) return;
  os << "# TYPE " << name << ' ' << type << '\n';
}
}  // namespace

std::string prometheus_name(const std::string& raw,
                            const std::string& prefix) {
  std::string out;
  out.reserve(prefix.size() + raw.size() + 1);
  if (!prefix.empty()) {
    out = prefix;
    out.push_back('_');
  }
  for (const char c : raw)
    out.push_back(legal_rest(c) ? c : '_');
  if (out.empty() || !legal_first(out[0])) out.insert(out.begin(), '_');
  return out;
}

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void write_prometheus_text(std::ostream& os, const MetricsSnapshot& snap,
                           const std::vector<PromLabeledSample>& extra,
                           const std::string& prefix) {
  std::set<std::string> typed;
  std::string base;
  std::vector<std::pair<std::string, std::string>> labels;
  const auto resolve = [&](const std::string& raw) {
    labels.clear();
    if (!split_embedded_labels(raw, &base, &labels)) base = raw;
    return prometheus_name(base, prefix);
  };
  for (const auto& [raw, v] : snap.counters) {
    const std::string name = resolve(raw);
    type_line(os, typed, name, "counter");
    os << name;
    write_labels(os, labels);
    os << ' ' << v << '\n';
  }
  for (const auto& [raw, v] : snap.gauges) {
    const std::string name = resolve(raw);
    type_line(os, typed, name, "gauge");
    os << name;
    write_labels(os, labels);
    os << ' ' << v << '\n';
  }
  for (const auto& [raw, h] : snap.histograms) {
    const std::string name = resolve(raw);
    type_line(os, typed, name, "summary");
    for (const char* q : {"0.5", "0.9", "0.99"}) {
      auto quantiled = labels;
      quantiled.emplace_back("quantile", q);
      os << name;
      write_labels(os, quantiled);
      os << ' ' << h.quantile(std::atof(q)) << '\n';
    }
    os << name << "_sum";
    write_labels(os, labels);
    os << ' ' << h.sum << '\n';
    os << name << "_count";
    write_labels(os, labels);
    os << ' ' << h.count << '\n';
  }
  for (const auto& s : extra) {
    const std::string name = resolve(s.name);
    auto merged = labels;
    merged.insert(merged.end(), s.labels.begin(), s.labels.end());
    type_line(os, typed, name, "gauge");
    os << name;
    write_labels(os, merged);
    os << ' ' << s.value << '\n';
  }
}

}  // namespace cellnpdp::obs
