#include "obs/exposition.hpp"

#include <cctype>

namespace cellnpdp::obs {

namespace {
bool legal_first(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool legal_rest(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

void write_labels(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return;
  os << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << prometheus_name(k) << "=\"" << prometheus_escape_label(v) << '"';
  }
  os << '}';
}
}  // namespace

std::string prometheus_name(const std::string& raw,
                            const std::string& prefix) {
  std::string out;
  out.reserve(prefix.size() + raw.size() + 1);
  if (!prefix.empty()) {
    out = prefix;
    out.push_back('_');
  }
  for (const char c : raw)
    out.push_back(legal_rest(c) ? c : '_');
  if (out.empty() || !legal_first(out[0])) out.insert(out.begin(), '_');
  return out;
}

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void write_prometheus_text(std::ostream& os, const MetricsSnapshot& snap,
                           const std::vector<PromLabeledSample>& extra,
                           const std::string& prefix) {
  for (const auto& [raw, v] : snap.counters) {
    const std::string name = prometheus_name(raw, prefix);
    os << "# TYPE " << name << " counter\n" << name << ' ' << v << '\n';
  }
  for (const auto& [raw, v] : snap.gauges) {
    const std::string name = prometheus_name(raw, prefix);
    os << "# TYPE " << name << " gauge\n" << name << ' ' << v << '\n';
  }
  for (const auto& [raw, h] : snap.histograms) {
    const std::string name = prometheus_name(raw, prefix);
    os << "# TYPE " << name << " summary\n";
    for (const double q : {0.5, 0.9, 0.99})
      os << name << "{quantile=\"" << q << "\"} " << h.quantile(q) << '\n';
    os << name << "_sum " << h.sum << '\n';
    os << name << "_count " << h.count << '\n';
  }
  for (const auto& s : extra) {
    const std::string name = prometheus_name(s.name, prefix);
    os << "# TYPE " << name << " gauge\n" << name;
    write_labels(os, s.labels);
    os << ' ' << s.value << '\n';
  }
}

}  // namespace cellnpdp::obs
