// Model-vs-measured utilization report (paper §V).
//
// The §V model predicts U = U_C * min(1, T_C/T_M), independent of problem
// size. The measured counterpart folds per-worker busy/idle time (from the
// task-queue executor or thread pool) into
//
//     U_measured = (sum of worker busy time) / (workers * wall time)
//
// and, when a trace was recorded, attributes busy time to engine phases
// (middle / inner / corner / diag) from the span totals.
#pragma once

#include <ostream>
#include <vector>

#include "model/perf_model.hpp"
#include "obs/trace_export.hpp"

namespace cellnpdp::obs {

struct UtilizationReport {
  double wall_seconds = 0;
  std::vector<double> worker_busy;  ///< seconds, one entry per worker
  std::vector<PhaseTotal> phases;   ///< optional trace-derived breakdown

  double busy_total() const {
    double s = 0;
    for (double b : worker_busy) s += b;
    return s;
  }
  /// Mean worker occupancy in [0,1]; 0 when nothing was measured.
  double measured_utilization() const {
    if (wall_seconds <= 0 || worker_busy.empty()) return 0;
    return busy_total() / (wall_seconds * double(worker_busy.size()));
  }
};

/// Prints per-worker busy/idle, the phase breakdown (if any), and the
/// measured utilization next to the §V model prediction for `params`.
void print_utilization_report(std::ostream& os, const UtilizationReport& r,
                              const ModelParams& params);

}  // namespace cellnpdp::obs
