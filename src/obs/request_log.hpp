// Per-request wide events: one structured record per completed request,
// appended at the single respond() terminal point of the serve pipeline
// and annotated with the wire-encode cost by the network layer. The log
// is a fixed ring guarded by a mutex — one short critical section per
// completed request, nothing on the per-stage hot path — with a
// deterministic keep-1-of-N sampling knob and a JSONL sink.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace cellnpdp::obs {

struct WideEvent {
  std::uint64_t trace_id = 0;   // 0 when the request carried no context
  std::uint64_t request_id = 0;
  std::uint16_t tenant = 0;     // QoS tenant id (0 = default)
  const char* kind = "?";       // static strings: "solve", "fold", ...
  const char* status = "?";     // serve::status_name
  std::string backend;          // effective backend that produced the value
  bool cache_hit = false;
  bool sampled = false;         // trace-sampling flag (spans were recorded)
  std::int64_t queue_ns = 0;    // admission -> dispatcher pickup
  std::int64_t batch_ns = 0;    // dispatcher pickup -> solver start
  std::int64_t solve_ns = 0;    // solver start -> value ready
  std::int64_t encode_ns = 0;   // response serialization (net layer)
  std::int64_t total_ns = 0;    // admission -> respond
  std::int32_t retries = 0;
  bool hedged = false;
};

class RequestLog {
 public:
  /// Arms recording into a fresh ring of `capacity` slots (newest wins).
  void enable(std::size_t capacity = 1 << 16);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Keep one of every `n` requests (keyed on trace_id ^ request_id so
  /// the choice is deterministic across runs); n <= 1 keeps everything.
  void set_sample_every(std::uint64_t n);

  /// Appends one completed request (no-op when disabled or sampled out).
  void append(WideEvent ev);

  /// Patches encode_ns into the most recent record for `request_id`.
  /// Scans backwards over a bounded tail — the record was appended just
  /// before the response frame was built, so it sits at or near the end.
  void annotate_encode(std::uint64_t request_id, std::int64_t encode_ns);

  /// Oldest-to-newest copy of the retained records.
  std::vector<WideEvent> snapshot() const;

  std::uint64_t appended() const {
    return appended_.load(std::memory_order_relaxed);
  }
  std::uint64_t sampled_out() const {
    return sampled_out_.load(std::memory_order_relaxed);
  }

  /// One JSON object per line, oldest first.
  void write_jsonl(std::ostream& os) const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> appended_{0};
  std::atomic<std::uint64_t> sampled_out_{0};
  mutable std::mutex mu_;
  std::uint64_t sample_every_ = 1;
  std::vector<WideEvent> ring_;
  std::size_t head_ = 0;   // next write slot
  std::size_t size_ = 0;   // live records (<= ring_.size())
};

/// The process-wide request log used by the serve/net layers.
RequestLog& request_log();

}  // namespace cellnpdp::obs
