#include "obs/request_log.hpp"

#include <algorithm>

#include "common/json.hpp"
#include "obs/span_context.hpp"

namespace cellnpdp::obs {

void RequestLog::enable(std::size_t capacity) {
  std::lock_guard lk(mu_);
  if (capacity == 0) capacity = 1;
  ring_.assign(capacity, WideEvent{});
  head_ = size_ = 0;
  appended_.store(0, std::memory_order_relaxed);
  sampled_out_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void RequestLog::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void RequestLog::set_sample_every(std::uint64_t n) {
  std::lock_guard lk(mu_);
  sample_every_ = n == 0 ? 1 : n;
}

void RequestLog::append(WideEvent ev) {
  if (!enabled()) return;
  std::lock_guard lk(mu_);
  if (ring_.empty()) return;
  if (sample_every_ > 1) {
    const std::uint64_t key = detail::mix64(ev.trace_id ^ ev.request_id);
    if (key % sample_every_ != 0) {
      sampled_out_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  ring_[head_] = std::move(ev);
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  appended_.fetch_add(1, std::memory_order_relaxed);
}

void RequestLog::annotate_encode(std::uint64_t request_id,
                                 std::int64_t encode_ns) {
  if (!enabled()) return;
  std::lock_guard lk(mu_);
  // The record for this id was appended moments ago; under concurrency a
  // handful of other completions may have landed since, so scan a short
  // tail rather than the whole ring.
  constexpr std::size_t kTailScan = 64;
  const std::size_t n = std::min(size_, kTailScan);
  for (std::size_t back = 1; back <= n; ++back) {
    const std::size_t idx = (head_ + ring_.size() - back) % ring_.size();
    if (ring_[idx].request_id == request_id) {
      ring_[idx].encode_ns = encode_ns;
      return;
    }
  }
}

std::vector<WideEvent> RequestLog::snapshot() const {
  std::lock_guard lk(mu_);
  std::vector<WideEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(ring_[(head_ + ring_.size() - size_ + i) % ring_.size()]);
  return out;
}

void RequestLog::write_jsonl(std::ostream& os) const {
  for (const auto& ev : snapshot()) {
    JsonWriter w(os);
    w.begin_object();
    w.kv("trace_id", std::uint64_t(ev.trace_id));
    w.kv("id", std::uint64_t(ev.request_id));
    w.kv("tenant", std::uint64_t(ev.tenant));
    w.kv("kind", ev.kind);
    w.kv("status", ev.status);
    w.kv("backend", ev.backend);
    w.kv("cache_hit", ev.cache_hit);
    w.kv("sampled", ev.sampled);
    w.kv("queue_ns", ev.queue_ns);
    w.kv("batch_ns", ev.batch_ns);
    w.kv("solve_ns", ev.solve_ns);
    w.kv("encode_ns", ev.encode_ns);
    w.kv("total_ns", ev.total_ns);
    w.kv("retries", std::int64_t(ev.retries));
    w.kv("hedged", ev.hedged);
    w.end_object();
    os << "\n";
  }
}

RequestLog& request_log() {
  static RequestLog log;
  return log;
}

}  // namespace cellnpdp::obs
