#include "obs/report.hpp"

#include <cstdio>
#include <string>

namespace cellnpdp::obs {

namespace {
std::string secs(double s) {
  char buf[64];
  if (s < 1e-3)
    std::snprintf(buf, sizeof buf, "%.1f us", s * 1e6);
  else if (s < 1.0)
    std::snprintf(buf, sizeof buf, "%.2f ms", s * 1e3);
  else
    std::snprintf(buf, sizeof buf, "%.3g s", s);
  return buf;
}
std::string pct(double f) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%5.1f%%", f * 100);
  return buf;
}
}  // namespace

void print_utilization_report(std::ostream& os, const UtilizationReport& r,
                              const ModelParams& params) {
  char line[256];
  os << "=== utilization report ===\n";
  std::snprintf(line, sizeof line, "wall time        %s over %zu worker%s\n",
                secs(r.wall_seconds).c_str(), r.worker_busy.size(),
                r.worker_busy.size() == 1 ? "" : "s");
  os << line;

  for (std::size_t w = 0; w < r.worker_busy.size(); ++w) {
    const double busy = r.worker_busy[w];
    const double idle = r.wall_seconds > busy ? r.wall_seconds - busy : 0;
    const double occ = r.wall_seconds > 0 ? busy / r.wall_seconds : 0;
    std::snprintf(line, sizeof line,
                  "  worker %-3zu busy %-10s idle %-10s occupancy %s\n", w,
                  secs(busy).c_str(), secs(idle).c_str(), pct(occ).c_str());
    os << line;
  }

  if (!r.phases.empty()) {
    os << "phase breakdown (summed span time across workers):\n";
    double total = 0;
    for (const PhaseTotal& p : r.phases) total += double(p.total_ns);
    for (const PhaseTotal& p : r.phases) {
      std::snprintf(line, sizeof line,
                    "  %-12s %-10s (%lld spans, %s of traced time)\n",
                    p.cat.c_str(), secs(double(p.total_ns) / 1e9).c_str(),
                    static_cast<long long>(p.spans),
                    pct(total > 0 ? double(p.total_ns) / total : 0).c_str());
      os << line;
    }
  }

  const double measured = r.measured_utilization();
  const double predicted = model_utilization(params);
  const double tc = model_compute_time(params);
  const double tm = model_memory_time(params);
  std::snprintf(line, sizeof line,
                "measured worker utilization  U = %s\n"
                "model prediction (paper §V)  U = %s  (U_C %s, T_C %s, "
                "T_M %s, %s-bound)\n",
                pct(measured).c_str(), pct(predicted).c_str(),
                pct(model_kernel_utilization(params)).c_str(),
                secs(tc).c_str(), secs(tm).c_str(),
                model_compute_bound(params) ? "compute" : "memory");
  os << line;
  if (measured > 0 && predicted > 0) {
    std::snprintf(line, sizeof line, "measured / predicted = %.2f\n",
                  measured / predicted);
    os << line;
  }
}

}  // namespace cellnpdp::obs
