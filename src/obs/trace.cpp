#include "obs/trace.hpp"

#include <algorithm>

namespace cellnpdp::obs {

/// Per-thread ring buffer. Owned by the Tracer (raw pointer in buffers_,
/// freed on the next start() or at tracer destruction) so that a worker
/// thread may exit before the trace is exported.
struct Tracer::Buffer {
  std::vector<TraceEvent> ring;
  std::uint64_t count = 0;  ///< total events ever written this session
  std::string name;
  std::uint32_t tid = 0;
};

namespace {
struct TlsSlot {
  Tracer::Buffer* buf = nullptr;
  std::uint64_t session = 0;
};
thread_local TlsSlot g_tls;
}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::~Tracer() {
  std::lock_guard lk(mu_);
  for (Buffer* b : buffers_) delete b;
  buffers_.clear();
}

void Tracer::start(std::size_t per_thread_capacity) {
  std::lock_guard lk(mu_);
  for (Buffer* b : buffers_) delete b;
  buffers_.clear();
  capacity_ = std::max<std::size_t>(16, per_thread_capacity);
  t0_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
               .count();
  // Bump the session before arming so stale thread-local caches (pointing
  // at freed buffers) can never be used once enabled_ is observed true.
  session_.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_release); }

Tracer::Buffer* Tracer::local_buffer() {
  const std::uint64_t session = session_.load(std::memory_order_acquire);
  if (g_tls.buf != nullptr && g_tls.session == session) return g_tls.buf;
  std::lock_guard lk(mu_);
  if (session_.load(std::memory_order_relaxed) != session) {
    // start() raced in between; register against the newest session on
    // the next record call instead of filing events under a dead one.
    g_tls.buf = nullptr;
    return nullptr;
  }
  auto* buf = new Buffer;
  buf->ring.reserve(capacity_);
  buf->tid = static_cast<std::uint32_t>(buffers_.size());
  buffers_.push_back(buf);
  g_tls.buf = buf;
  g_tls.session = session;
  return buf;
}

void Tracer::record(const TraceEvent& ev) {
  if (!enabled()) return;
  Buffer* buf = local_buffer();
  if (buf == nullptr) return;
  if (buf->ring.size() < capacity_) {
    buf->ring.push_back(ev);
  } else {
    buf->ring[buf->count % capacity_] = ev;  // overwrite oldest
  }
  ++buf->count;
}

void Tracer::name_this_thread(const std::string& name) {
  if (!enabled()) return;
  Buffer* buf = local_buffer();
  if (buf == nullptr || !buf->name.empty()) return;
  std::lock_guard lk(mu_);  // snapshot() copies names under mu_
  buf->name = name;
}

std::vector<ThreadTrace> Tracer::snapshot() const {
  std::lock_guard lk(mu_);
  std::vector<ThreadTrace> out;
  out.reserve(buffers_.size());
  for (const Buffer* b : buffers_) {
    ThreadTrace t;
    t.name = b->name;
    t.tid = b->tid;
    if (b->count <= b->ring.size()) {
      t.events.assign(b->ring.begin(), b->ring.end());
    } else {
      // Ring wrapped: oldest surviving event sits at count % capacity.
      t.dropped = b->count - b->ring.size();
      const std::size_t head =
          static_cast<std::size_t>(b->count % b->ring.size());
      t.events.reserve(b->ring.size());
      t.events.insert(t.events.end(), b->ring.begin() + head, b->ring.end());
      t.events.insert(t.events.end(), b->ring.begin(),
                      b->ring.begin() + head);
    }
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace cellnpdp::obs
