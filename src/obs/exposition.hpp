// Prometheus-style text exposition for a MetricsSnapshot. Dotted metric
// names ("serve.status.ok") become legal Prometheus names
// ("cellnpdp_serve_status_ok"); histograms are rendered summary-style
// with interpolated quantile labels plus _sum/_count.
//
// Registry names may carry embedded labels in a "{k=v,...}" suffix —
// "serve.tenant.shed{tenant=hot}" — which are parsed out and rendered as
// real Prometheus labels (cellnpdp_serve_tenant_shed{tenant="hot"}),
// with one # TYPE line per family no matter how many label variants
// exist. This is how per-tenant QoS counters reach dashboards without
// the registry growing a label concept. A malformed suffix falls back to
// plain sanitization (braces become '_').
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace cellnpdp::obs {

/// Sanitizes a raw metric name into [a-zA-Z_:][a-zA-Z0-9_:]*; every
/// illegal character (including '.') maps to '_'. An optional prefix is
/// prepended with a '_' separator.
std::string prometheus_name(const std::string& raw,
                            const std::string& prefix = "");

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline are backslash-escaped.
std::string prometheus_escape_label(const std::string& value);

/// One extra labeled sample to append after the snapshot families (used
/// for breaker state, queue depth, and other non-registry values).
struct PromLabeledSample {
  std::string name;  // raw name; sanitized on output
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0;
};

/// Writes the whole snapshot (counters, gauges, histograms as summaries
/// with quantile="0.5|0.9|0.99" labels) plus any extra labeled samples.
void write_prometheus_text(std::ostream& os, const MetricsSnapshot& snap,
                           const std::vector<PromLabeledSample>& extra = {},
                           const std::string& prefix = "cellnpdp");

}  // namespace cellnpdp::obs
