#include "obs/trace_export.hpp"

#include <fstream>
#include <map>

#include "common/json.hpp"

namespace cellnpdp::obs {

void write_chrome_trace(std::ostream& os,
                        const std::vector<ThreadTrace>& threads,
                        const std::string& process_name) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();

  // Process + thread metadata: one named lane per recorded thread.
  w.begin_object()
      .kv("ph", "M")
      .kv("pid", 0)
      .kv("tid", 0)
      .kv("name", "process_name")
      .key("args")
      .begin_object()
      .kv("name", process_name)
      .end_object()
      .end_object();
  for (const ThreadTrace& t : threads) {
    const std::string lane =
        !t.name.empty() ? t.name : "thread " + std::to_string(t.tid);
    w.begin_object()
        .kv("ph", "M")
        .kv("pid", 0)
        .kv("tid", std::int64_t(t.tid))
        .kv("name", "thread_name")
        .key("args")
        .begin_object()
        .kv("name", lane)
        .end_object()
        .end_object();
  }

  for (const ThreadTrace& t : threads) {
    for (const TraceEvent& ev : t.events) {
      w.begin_object();
      w.kv("name", ev.name != nullptr ? ev.name : "?");
      w.kv("cat", ev.cat != nullptr ? ev.cat : "?");
      w.kv("ph", std::string(1, ev.ph));
      w.kv("pid", 0);
      w.kv("tid", std::int64_t(t.tid));
      w.kv("ts", double(ev.ts_ns) / 1e3);  // microseconds
      if (ev.ph == 'X') w.kv("dur", double(ev.dur_ns) / 1e3);
      if (ev.ph == 'i') w.kv("s", "t");  // thread-scoped instant
      if (ev.ph == 'C') {
        w.key("args").begin_object().kv("value", ev.a0).end_object();
      } else if (ev.a0 != TraceEvent::kNoArg ||
                 ev.a1 != TraceEvent::kNoArg) {
        w.key("args").begin_object();
        if (ev.a0 != TraceEvent::kNoArg) w.kv("a0", ev.a0);
        if (ev.a1 != TraceEvent::kNoArg) w.kv("a1", ev.a1);
        w.end_object();
      }
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

long export_chrome_trace(const std::string& path,
                         const std::string& process_name) {
  std::ofstream os(path);
  if (!os) return -1;
  const auto threads = Tracer::instance().snapshot();
  write_chrome_trace(os, threads, process_name);
  long n = 0;
  for (const auto& t : threads) n += long(t.events.size());
  return n;
}

std::vector<PhaseTotal> aggregate_phase_totals(
    const std::vector<ThreadTrace>& threads) {
  std::map<std::string, PhaseTotal> by_cat;
  for (const ThreadTrace& t : threads) {
    for (const TraceEvent& ev : t.events) {
      if (ev.ph != 'X' || ev.cat == nullptr) continue;
      PhaseTotal& pt = by_cat[ev.cat];
      pt.cat = ev.cat;
      pt.total_ns += ev.dur_ns;
      ++pt.spans;
    }
  }
  std::vector<PhaseTotal> out;
  out.reserve(by_cat.size());
  for (auto& [_, pt] : by_cat) out.push_back(std::move(pt));
  return out;
}

}  // namespace cellnpdp::obs
