#include "obs/trace_export.hpp"

#include <fstream>
#include <limits>
#include <map>
#include <string_view>

#include "common/json.hpp"

namespace cellnpdp::obs {

void write_chrome_trace(std::ostream& os,
                        const std::vector<ThreadTrace>& threads,
                        const std::string& process_name) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();

  // Process + thread metadata: one named lane per recorded thread.
  w.begin_object()
      .kv("ph", "M")
      .kv("pid", 0)
      .kv("tid", 0)
      .kv("name", "process_name")
      .key("args")
      .begin_object()
      .kv("name", process_name)
      .end_object()
      .end_object();
  for (const ThreadTrace& t : threads) {
    const std::string lane =
        !t.name.empty() ? t.name : "thread " + std::to_string(t.tid);
    w.begin_object()
        .kv("ph", "M")
        .kv("pid", 0)
        .kv("tid", std::int64_t(t.tid))
        .kv("name", "thread_name")
        .key("args")
        .begin_object()
        .kv("name", lane)
        .end_object()
        .end_object();
  }

  for (const ThreadTrace& t : threads) {
    for (const TraceEvent& ev : t.events) {
      w.begin_object();
      w.kv("name", ev.name != nullptr ? ev.name : "?");
      w.kv("cat", ev.cat != nullptr ? ev.cat : "?");
      w.kv("ph", std::string(1, ev.ph));
      w.kv("pid", 0);
      w.kv("tid", std::int64_t(t.tid));
      w.kv("ts", double(ev.ts_ns) / 1e3);  // microseconds
      if (ev.ph == 'X') w.kv("dur", double(ev.dur_ns) / 1e3);
      if (ev.ph == 'i') w.kv("s", "t");  // thread-scoped instant
      if (ev.ph == 'C') {
        w.key("args").begin_object().kv("value", ev.a0).end_object();
      } else if (ev.a0 != TraceEvent::kNoArg ||
                 ev.a1 != TraceEvent::kNoArg) {
        w.key("args").begin_object();
        if (ev.a0 != TraceEvent::kNoArg) w.kv("a0", ev.a0);
        if (ev.a1 != TraceEvent::kNoArg) w.kv("a1", ev.a1);
        w.end_object();
      }
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

long export_chrome_trace(const std::string& path,
                         const std::string& process_name) {
  std::ofstream os(path);
  if (!os) return -1;
  const auto threads = Tracer::instance().snapshot();
  write_chrome_trace(os, threads, process_name);
  long n = 0;
  for (const auto& t : threads) n += long(t.events.size());
  return n;
}

namespace {
// Re-emits a parsed JsonValue verbatim (used when copying trace events
// into the merged file).
void write_value(JsonWriter& w, const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::Null:
      // JsonWriter renders non-finite numbers as a bare JSON null.
      w.value(std::numeric_limits<double>::quiet_NaN());
      break;
    case JsonValue::Type::Bool: w.value(v.boolean); break;
    case JsonValue::Type::Number: w.value(v.number); break;
    case JsonValue::Type::String: w.value(std::string_view(v.str)); break;
    case JsonValue::Type::Array:
      w.begin_array();
      for (const auto& e : v.arr) write_value(w, e);
      w.end_array();
      break;
    case JsonValue::Type::Object:
      w.begin_object();
      for (const auto& [k, e] : v.obj) {
        w.key(k);
        write_value(w, e);
      }
      w.end_object();
      break;
  }
}
}  // namespace

void merge_chrome_traces(std::ostream& os,
                         const std::vector<const JsonValue*>& traces) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const JsonValue* root = traces[i];
    if (root == nullptr || !root->is_object() || !root->has("traceEvents"))
      continue;
    for (const auto& ev : root->at("traceEvents").arr) {
      if (!ev.is_object()) continue;
      w.begin_object();
      // Every key passes through except pid, which is rewritten so each
      // source file becomes its own process track.
      w.kv("pid", std::int64_t(i));
      for (const auto& [k, v] : ev.obj) {
        if (k == "pid") continue;
        w.key(k);
        write_value(w, v);
      }
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

ChainSummary analyze_request_chains(
    const JsonValue& root, const std::vector<std::int64_t>& success_codes) {
  std::map<std::uint64_t, ChainInfo> by_id;
  if (root.is_object() && root.has("traceEvents")) {
    for (const auto& ev : root.at("traceEvents").arr) {
      if (!ev.is_object() || !ev.has("cat") || ev.at("cat").str != "req")
        continue;
      if (!ev.has("args") || !ev.at("args").has("a0")) continue;
      const auto id =
          static_cast<std::uint64_t>(ev.at("args").at("a0").number);
      ChainInfo& ci = by_id[id];
      ci.trace_id = id;
      const std::string& name = ev.has("name") ? ev.at("name").str : "";
      if (name == "client") ci.client = true;
      else if (name == "decode") ci.decode = true;
      else if (name == "queue") ci.queue = true;
      else if (name == "solve") ci.solve = true;
      else if (name == "cache") ci.cache = true;
      else if (name == "encode") ci.encode = true;
      else if (name == "respond") {
        ci.respond = true;
        if (ev.at("args").has("a1"))
          ci.status = static_cast<std::int64_t>(ev.at("args").at("a1").number);
      }
    }
  }
  ChainSummary out;
  out.chains.reserve(by_id.size());
  for (auto& [_, ci] : by_id) {
    const bool server_side =
        ci.decode || ci.queue || ci.solve || ci.cache || ci.encode ||
        ci.respond;
    if (ci.client) {
      ++out.with_client;
      bool ok_status = false;
      for (const auto c : success_codes) ok_status |= (c == ci.status);
      const bool work = ci.solve || ci.cache || !ok_status;
      if (ci.decode && ci.queue && ci.respond && ci.encode && work)
        ++out.complete;
    } else if (server_side) {
      ++out.orphans;
    }
    out.chains.push_back(ci);
  }
  return out;
}

std::vector<PhaseTotal> aggregate_phase_totals(
    const std::vector<ThreadTrace>& threads) {
  std::map<std::string, PhaseTotal> by_cat;
  for (const ThreadTrace& t : threads) {
    for (const TraceEvent& ev : t.events) {
      if (ev.ph != 'X' || ev.cat == nullptr) continue;
      PhaseTotal& pt = by_cat[ev.cat];
      pt.cat = ev.cat;
      pt.total_ns += ev.dur_ns;
      ++pt.spans;
    }
  }
  std::vector<PhaseTotal> out;
  out.reserve(by_cat.size());
  for (auto& [_, pt] : by_cat) out.push_back(std::move(pt));
  return out;
}

}  // namespace cellnpdp::obs
