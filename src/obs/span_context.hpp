// Trace-context carried by a request across process boundaries: a
// process-agnostic trace id, the parent span id, and the sampling
// decision made at the origin. POD on purpose — it rides inside
// serve::Request and on the wire (protocol v2).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cellnpdp::obs {

struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  bool sampled = false;

  /// A context is valid iff it carries a nonzero trace id.
  bool valid() const { return trace_id != 0; }
};

namespace detail {
// SplitMix64 finalizer — good avalanche, cheap, no state.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace detail

/// Process-unique nonzero trace/span id: a monotone counter mixed with
/// per-process entropy (address layout + boot time), so two processes
/// started in the same nanosecond still diverge.
inline std::uint64_t next_trace_id() {
  static std::atomic<std::uint64_t> counter{0};
  static const std::uint64_t seed = [] {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const auto wall = std::chrono::system_clock::now().time_since_epoch();
    static int anchor = 0;
    return detail::mix64(std::uint64_t(now.count())) ^
           detail::mix64(std::uint64_t(wall.count()) + 0x51ED2700u) ^
           detail::mix64(reinterpret_cast<std::uintptr_t>(&anchor));
  }();
  for (;;) {
    const std::uint64_t id = detail::mix64(
        seed ^ counter.fetch_add(1, std::memory_order_relaxed));
    if (id != 0) return id;  // zero means "no context" on the wire
  }
}

/// Originates a new root context (client side / in-process entry point).
inline SpanContext make_root_context(bool sampled) {
  SpanContext ctx;
  ctx.trace_id = next_trace_id();
  ctx.parent_span_id = ctx.trace_id;  // root: parent == own span
  ctx.sampled = sampled;
  return ctx;
}

}  // namespace cellnpdp::obs
