#!/usr/bin/env bash
# End-to-end verification: configure, build, run the full test suite, then
# record a traced parallel solve and validate the emitted trace file.
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== test =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== traced solve =="
TRACE_DIR=$(mktemp -d)
trap 'rm -rf "$TRACE_DIR"' EXIT
"$BUILD_DIR"/tools/npdp solve --n 2048 --threads 4 \
    --trace "$TRACE_DIR/trace.json" \
    --metrics "$TRACE_DIR/metrics.json" --report

echo "== validate trace =="
# n=2048, block 64 -> m=32 scheduling rows -> 32*33/2 = 528 block tasks.
"$BUILD_DIR"/tools/npdp check-trace --file "$TRACE_DIR/trace.json" \
    --min-workers 2 --expect-tasks 528

echo "== semiring instantiations =="
# One solve per semiring through the CLI (counting kept small so the float
# table stays finite), plus rejection of unknown names and of semirings a
# backend does not advertise.
"$BUILD_DIR"/tools/npdp solve --n 512 --semiring min-plus
"$BUILD_DIR"/tools/npdp solve --n 512 --semiring max-plus
"$BUILD_DIR"/tools/npdp solve --n 24 --block 8 --semiring counting
"$BUILD_DIR"/tools/npdp solve --n 512 --semiring viterbi-log
if "$BUILD_DIR"/tools/npdp solve --n 64 --semiring tropical 2>/dev/null; then
  echo "unknown semiring name was not rejected"; exit 1
fi
if "$BUILD_DIR"/tools/npdp solve --n 64 --semiring counting --backend tan \
    2>/dev/null; then
  echo "min-plus-only backend accepted a counting solve"; exit 1
fi
"$BUILD_DIR"/tools/npdp backends | grep -q 'counting'
echo "semiring smoke: clean"

echo "== fault injection: deterministic replay =="
# Same plan + same (single-threaded) execution must produce byte-identical
# fired-fault logs, and the healed solve must match the clean one (the
# resilient backend prints the same optimal value either way).
cat > "$TRACE_DIR/faults.json" <<'EOF'
{"seed": 42, "faults": [
  {"site": "task-throw", "rate": 0.05},
  {"site": "block-corrupt", "rate": 0.01}
]}
EOF
"$BUILD_DIR"/tools/npdp solve --n 1024 --backend resilient \
    --fault-plan "$TRACE_DIR/faults.json" --fault-log "$TRACE_DIR/log1.json"
"$BUILD_DIR"/tools/npdp solve --n 1024 --backend resilient \
    --fault-plan "$TRACE_DIR/faults.json" --fault-log "$TRACE_DIR/log2.json"
cmp "$TRACE_DIR/log1.json" "$TRACE_DIR/log2.json"
echo "fault replay: logs byte-identical"

echo "== network loopback smoke =="
# Bring the epoll front-end up on an ephemeral port, drive it with the
# load generator, and require a clean run (every request answered, zero
# protocol or transport errors) plus a graceful SIGTERM drain.
NET_DIR=$(mktemp -d)
"$BUILD_DIR"/tools/npdp net-serve --port 0 --reactors 2 \
    --port-file "$NET_DIR/port" &
NET_PID=$!
trap 'kill "$NET_PID" 2>/dev/null; rm -rf "$TRACE_DIR" "$NET_DIR"' EXIT
for _ in $(seq 100); do
  [ -s "$NET_DIR/port" ] && break
  sleep 0.1
done
[ -s "$NET_DIR/port" ] || { echo "net-serve never bound"; exit 1; }
NET_PORT=$(cat "$NET_DIR/port")
"$BUILD_DIR"/tools/npdp net-bench --port "$NET_PORT" --connections 4 \
    --duration 2 --mix mix --size 24 --json-dir "$NET_DIR"
grep -q '"proto_errors":0' "$NET_DIR"/BENCH_net.json
grep -q '"transport_errors":0' "$NET_DIR"/BENCH_net.json
# Mixed-semiring traffic against the same server: every solve rotates
# through the four instantiations; a clean run means the optional wire tag
# decodes everywhere and the pool repads its arenas correctly per request.
mkdir -p "$NET_DIR/semiring"
"$BUILD_DIR"/tools/npdp net-bench --port "$NET_PORT" --connections 4 \
    --duration 2 --mix solve --size 24 --semiring mix \
    --json-dir "$NET_DIR/semiring"
grep -q '"proto_errors":0' "$NET_DIR"/semiring/BENCH_net.json
grep -q '"transport_errors":0' "$NET_DIR"/semiring/BENCH_net.json
kill -TERM "$NET_PID"
wait "$NET_PID"
trap 'rm -rf "$TRACE_DIR" "$NET_DIR"' EXIT
echo "net loopback: clean"

echo "== end-to-end telemetry: trace propagation + wide events + stats =="
# Serve with server-side request tracing and the wide-event log, drive it
# with a trace-originating load (every request sampled), pull a live stats
# snapshot, then merge the client and server traces and require >=99% of
# request chains to be complete with zero orphan server spans.
TEL_DIR=$(mktemp -d)
"$BUILD_DIR"/tools/npdp net-serve --port 0 --reactors 2 \
    --port-file "$TEL_DIR/port" \
    --trace "$TEL_DIR/server_trace.json" \
    --request-log "$TEL_DIR/wide.jsonl" &
TEL_PID=$!
trap 'kill "$TEL_PID" 2>/dev/null; rm -rf "$TRACE_DIR" "$NET_DIR" "$TEL_DIR"' EXIT
for _ in $(seq 100); do
  [ -s "$TEL_DIR/port" ] && break
  sleep 0.1
done
[ -s "$TEL_DIR/port" ] || { echo "telemetry net-serve never bound"; exit 1; }
TEL_PORT=$(cat "$TEL_DIR/port")
"$BUILD_DIR"/tools/npdp net-bench --port "$TEL_PORT" --connections 2 \
    --requests 50 --duration 5 --mix chain --size 24 \
    --trace "$TEL_DIR/client_trace.json" --trace-sample 1 \
    --json-dir "$TEL_DIR"
grep -q '"proto_errors":0' "$TEL_DIR"/BENCH_net.json
grep -q '"transport_errors":0' "$TEL_DIR"/BENCH_net.json
# Live stats plane: the binary StatsRequest frame and both renderings.
"$BUILD_DIR"/tools/npdp top --port "$TEL_PORT" --once | grep -q 'queue depth'
"$BUILD_DIR"/tools/npdp top --port "$TEL_PORT" --once --prom \
    | grep -q '^cellnpdp_serve_status_ok'
kill -TERM "$TEL_PID"
wait "$TEL_PID"
trap 'rm -rf "$TRACE_DIR" "$NET_DIR" "$TEL_DIR"' EXIT
# Every completed request must have produced one wide event.
[ -s "$TEL_DIR/wide.jsonl" ] || { echo "no wide events written"; exit 1; }
grep -q '"trace_id":' "$TEL_DIR/wide.jsonl"
grep -q '"queue_ns":' "$TEL_DIR/wide.jsonl"
"$BUILD_DIR"/tools/npdp merge-traces --out "$TEL_DIR/merged.json" \
    --client "$TEL_DIR/client_trace.json" \
    --server "$TEL_DIR/server_trace.json"
"$BUILD_DIR"/tools/npdp check-trace --file "$TEL_DIR/merged.json" \
    --chains --min-chain-frac 0.99
echo "telemetry: clean"

echo "== router tier: sharded caches + SIGKILL failover =="
# Three small-cache replicas behind the consistent-hash router, driven by
# a traced bench whose working set (40 distinct keys) exceeds one
# replica's cache (16 entries) but shards to fit. One replica is
# SIGKILLed mid-run: the bench must still exit clean (zero client-visible
# errors), >=99% of trace chains must be complete, and the aggregate
# cache hit rate must beat the single-replica baseline.
RT_DIR=$(mktemp -d)
mkdir -p "$RT_DIR/base" "$RT_DIR/router"
hit_rate_of() {
  awk 'ok=="" && match($0,/"ok":[0-9]+/){ok=substr($0,RSTART+5,RLENGTH-5)}
       c=="" && match($0,/"ok_cached":[0-9]+/){c=substr($0,RSTART+12,RLENGTH-12)}
       END{if(ok+c>0) printf "%.4f", c/(ok+c); else print "0"}' "$1"
}
"$BUILD_DIR"/tools/npdp net-serve --port 0 --port-file "$RT_DIR/base.port" \
    --cache 16 &
RT_BASE_PID=$!
trap 'kill "$RT_BASE_PID" 2>/dev/null; rm -rf "$TRACE_DIR" "$NET_DIR" "$TEL_DIR" "$RT_DIR"' EXIT
for _ in $(seq 100); do
  [ -s "$RT_DIR/base.port" ] && break
  sleep 0.1
done
[ -s "$RT_DIR/base.port" ] || { echo "baseline replica never bound"; exit 1; }
"$BUILD_DIR"/tools/npdp net-bench --port "$(cat "$RT_DIR/base.port")" \
    --connections 4 --duration 2 --mix chain --size 24 --distinct 40 \
    --json-dir "$RT_DIR/base"
kill -TERM "$RT_BASE_PID"
wait "$RT_BASE_PID"
R_PIDS=()
for i in 1 2 3; do
  "$BUILD_DIR"/tools/npdp net-serve --port 0 \
      --port-file "$RT_DIR/r$i.port" --cache 16 &
  R_PIDS+=($!)
done
trap 'kill "${R_PIDS[@]}" 2>/dev/null; rm -rf "$TRACE_DIR" "$NET_DIR" "$TEL_DIR" "$RT_DIR"' EXIT
for _ in $(seq 100); do
  [ -s "$RT_DIR/r1.port" ] && [ -s "$RT_DIR/r2.port" ] && \
  [ -s "$RT_DIR/r3.port" ] && break
  sleep 0.1
done
[ -s "$RT_DIR/r3.port" ] || { echo "replicas never bound"; exit 1; }
"$BUILD_DIR"/tools/npdp net-route --port 0 --port-file "$RT_DIR/router.port" \
    --probe-interval-ms 100 --trace "$RT_DIR/router_trace.json" \
    --replicas "r1=127.0.0.1:$(cat "$RT_DIR/r1.port"),r2=127.0.0.1:$(cat "$RT_DIR/r2.port"),r3=127.0.0.1:$(cat "$RT_DIR/r3.port")" &
RT_PID=$!
trap 'kill "$RT_PID" "${R_PIDS[@]}" 2>/dev/null; rm -rf "$TRACE_DIR" "$NET_DIR" "$TEL_DIR" "$RT_DIR"' EXIT
for _ in $(seq 100); do
  [ -s "$RT_DIR/router.port" ] && break
  sleep 0.1
done
[ -s "$RT_DIR/router.port" ] || { echo "router never bound"; exit 1; }
"$BUILD_DIR"/tools/npdp net-bench --port "$(cat "$RT_DIR/router.port")" \
    --connections 4 --duration 4 --mix chain --size 24 --distinct 40 \
    --trace "$RT_DIR/client_trace.json" --trace-sample 1 \
    --json-dir "$RT_DIR/router" &
RT_BENCH_PID=$!
sleep 2
kill -9 "${R_PIDS[1]}"   # SIGKILL replica r2 mid-run
wait "$RT_BENCH_PID"     # nonzero on any client-visible error
kill -TERM "$RT_PID"
wait "$RT_PID"
kill -TERM "${R_PIDS[0]}" "${R_PIDS[2]}" 2>/dev/null
wait "${R_PIDS[0]}" "${R_PIDS[2]}" 2>/dev/null || true
trap 'rm -rf "$TRACE_DIR" "$NET_DIR" "$TEL_DIR" "$RT_DIR"' EXIT
"$BUILD_DIR"/tools/npdp merge-traces --out "$RT_DIR/merged.json" \
    --client "$RT_DIR/client_trace.json" \
    --server "$RT_DIR/router_trace.json"
"$BUILD_DIR"/tools/npdp check-trace --file "$RT_DIR/merged.json" \
    --chains --min-chain-frac 0.99
BASE_HIT=$(hit_rate_of "$RT_DIR/base/BENCH_net.json")
ROUTER_HIT=$(hit_rate_of "$RT_DIR/router/BENCH_net.json")
awk -v b="$BASE_HIT" -v r="$ROUTER_HIT" \
    'BEGIN{exit !(r > b)}' || {
  echo "router hit rate $ROUTER_HIT not above baseline $BASE_HIT"; exit 1; }
echo "router tier: clean (hit rate $ROUTER_HIT vs single-replica $BASE_HIT)"

echo "== multi-tenant qos: two-tenant overload isolation =="
# One tenanted server: a rate-limited hot tenant (1) and an unthrottled
# quiet tenant (2) with a 4x fair-share weight. The quiet tenant's p99 is
# measured alone, then again while the hot tenant floods at far above its
# bucket rate. The hot run must see nonzero RetryAfter/Shed pushback, the
# quiet p99 must stay within 3x its unloaded baseline (plus a 5 ms floor
# for timer noise at small absolute latencies), and both runs must exit
# clean — throttling is a status, never a dropped reply.
QOS_DIR=$(mktemp -d)
mkdir -p "$QOS_DIR/quiet_base" "$QOS_DIR/quiet_load" "$QOS_DIR/hot"
"$BUILD_DIR"/tools/npdp net-serve --port 0 --port-file "$QOS_DIR/port" \
    --workers 2 --queue 64 --policy shed-oldest \
    --tenants '1:name=hot:rate=200:burst=20:weight=1/2:name=quiet:weight=4' &
QOS_PID=$!
trap 'kill "$QOS_PID" 2>/dev/null; rm -rf "$TRACE_DIR" "$NET_DIR" "$TEL_DIR" "$RT_DIR" "$QOS_DIR"' EXIT
for _ in $(seq 100); do
  [ -s "$QOS_DIR/port" ] && break
  sleep 0.1
done
[ -s "$QOS_DIR/port" ] || { echo "qos net-serve never bound"; exit 1; }
QOS_PORT=$(cat "$QOS_DIR/port")
"$BUILD_DIR"/tools/npdp net-bench --port "$QOS_PORT" --connections 2 \
    --rate 50 --duration 2 --mix chain --size 48 --tenant 2 \
    --json-dir "$QOS_DIR/quiet_base"
"$BUILD_DIR"/tools/npdp net-bench --port "$QOS_PORT" --connections 4 \
    --rate 2000 --duration 3 --mix chain --size 48 --tenant 1 \
    --json-dir "$QOS_DIR/hot" &
QOS_HOT_PID=$!
"$BUILD_DIR"/tools/npdp net-bench --port "$QOS_PORT" --connections 2 \
    --rate 50 --duration 3 --mix chain --size 48 --tenant 2 \
    --json-dir "$QOS_DIR/quiet_load"
wait "$QOS_HOT_PID"          # nonzero on any client-visible error
kill -TERM "$QOS_PID"
wait "$QOS_PID"
trap 'rm -rf "$TRACE_DIR" "$NET_DIR" "$TEL_DIR" "$RT_DIR" "$QOS_DIR"' EXIT
field_of() {
  awk -v f="\"$2\":" 'match($0, f "[0-9.]+") {
    print substr($0, RSTART + length(f), RLENGTH - length(f)); exit }' "$1"
}
HOT_PUSHBACK=$(( $(field_of "$QOS_DIR/hot/BENCH_net.json" retry_after) \
               + $(field_of "$QOS_DIR/hot/BENCH_net.json" shed) ))
[ "$HOT_PUSHBACK" -gt 0 ] || {
  echo "hot tenant was never throttled or shed"; exit 1; }
QUIET_BASE_P99=$(field_of "$QOS_DIR/quiet_base/BENCH_net.json" p99_ms)
QUIET_LOAD_P99=$(field_of "$QOS_DIR/quiet_load/BENCH_net.json" p99_ms)
awk -v b="$QUIET_BASE_P99" -v l="$QUIET_LOAD_P99" \
    'BEGIN{exit !(l <= 3 * b + 5)}' || {
  echo "quiet p99 ${QUIET_LOAD_P99}ms exceeds 3x baseline ${QUIET_BASE_P99}ms"
  exit 1; }
echo "qos: clean (quiet p99 ${QUIET_LOAD_P99}ms vs ${QUIET_BASE_P99}ms alone, hot pushback $HOT_PUSHBACK)"

echo "== distributed solve: 3-peer loopback bit-identity per semiring =="
# Three real npdp processes split one instance block-column-cyclically and
# exchange finished blocks over peer frames; every rank's assembled table
# must be byte-identical to the tier-1 serial solve. Repeated for every
# semiring so each kernel instantiation crosses the wire at least once.
DIST_DIR=$(mktemp -d)
trap 'rm -rf "$TRACE_DIR" "$NET_DIR" "$TEL_DIR" "$RT_DIR" "$QOS_DIR" "$DIST_DIR"' EXIT
for SR in min-plus max-plus counting viterbi-log; do
  # counting overflows float fast; keep that instance tiny like the
  # semiring smoke above.
  if [ "$SR" = counting ]; then DN=96; DB=16; else DN=512; DB=64; fi
  "$BUILD_DIR"/tools/npdp solve --n "$DN" --block "$DB" --semiring "$SR" \
      --save "$DIST_DIR/ref.bin" > /dev/null
  DP=$((19470 + RANDOM % 2000))
  PEERS="127.0.0.1:$DP,127.0.0.1:$((DP + 1)),127.0.0.1:$((DP + 2))"
  "$BUILD_DIR"/tools/npdp dist-solve --rank 1 --peers "$PEERS" \
      --n "$DN" --block "$DB" --semiring "$SR" \
      --save "$DIST_DIR/out1.bin" > /dev/null &
  DIST_P1=$!
  "$BUILD_DIR"/tools/npdp dist-solve --rank 2 --peers "$PEERS" \
      --n "$DN" --block "$DB" --semiring "$SR" \
      --save "$DIST_DIR/out2.bin" > /dev/null &
  DIST_P2=$!
  "$BUILD_DIR"/tools/npdp dist-solve --rank 0 --peers "$PEERS" \
      --n "$DN" --block "$DB" --semiring "$SR" \
      --save "$DIST_DIR/out0.bin" > /dev/null || {
    echo "dist-solve rank 0 failed ($SR)"; exit 1; }
  wait "$DIST_P1" || { echo "dist-solve rank 1 failed ($SR)"; exit 1; }
  wait "$DIST_P2" || { echo "dist-solve rank 2 failed ($SR)"; exit 1; }
  for R in 0 1 2; do
    cmp "$DIST_DIR/out$R.bin" "$DIST_DIR/ref.bin" || {
      echo "dist-solve rank $R not bit-identical to serial ($SR)"; exit 1; }
  done
  rm -f "$DIST_DIR"/out*.bin "$DIST_DIR/ref.bin"
done
echo "dist: clean (3 peers x 4 semirings, all ranks bit-identical)"

echo "== sanitizers (semiring + serve + qos + taskgraph + cancel + resilience + net + router + dist) =="
# The concurrency-heavy suites rerun under ASan/UBSan in a separate tree;
# the semiring property sweep rides along so every instantiation's kernel
# and driver paths get sanitized too.
ASAN_DIR=${ASAN_DIR:-build-asan}
cmake -B "$ASAN_DIR" -S . -DCELLNPDP_SANITIZE=address,undefined
cmake --build "$ASAN_DIR" -j "$JOBS" --target test_serve test_qos \
    test_taskgraph test_cancel test_resilience test_net test_router \
    test_semiring test_dist
"$ASAN_DIR"/tests/test_semiring
"$ASAN_DIR"/tests/test_serve
"$ASAN_DIR"/tests/test_qos
"$ASAN_DIR"/tests/test_taskgraph
"$ASAN_DIR"/tests/test_cancel
"$ASAN_DIR"/tests/test_resilience
"$ASAN_DIR"/tests/test_net
"$ASAN_DIR"/tests/test_router
"$ASAN_DIR"/tests/test_dist

echo "== thread sanitizer (serve + qos + cancel + resilience + net + router + dist) =="
# Cancellation crosses threads by design (dispatcher trips tokens that
# workers poll), and the hedge watchdog races primaries against twins on
# purpose; TSan is the check that those handoffs are race-free.
TSAN_DIR=${TSAN_DIR:-build-tsan}
cmake -B "$TSAN_DIR" -S . -DCELLNPDP_SANITIZE=thread
cmake --build "$TSAN_DIR" -j "$JOBS" --target test_serve test_qos \
    test_cancel test_resilience test_net test_router test_dist
"$TSAN_DIR"/tests/test_serve
"$TSAN_DIR"/tests/test_qos
"$TSAN_DIR"/tests/test_cancel
"$TSAN_DIR"/tests/test_resilience
"$TSAN_DIR"/tests/test_net
"$TSAN_DIR"/tests/test_router
"$TSAN_DIR"/tests/test_dist

echo "verify.sh: OK"
