#!/usr/bin/env bash
# End-to-end verification: configure, build, run the full test suite, then
# record a traced parallel solve and validate the emitted trace file.
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== test =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== traced solve =="
TRACE_DIR=$(mktemp -d)
trap 'rm -rf "$TRACE_DIR"' EXIT
"$BUILD_DIR"/tools/npdp solve --n 2048 --threads 4 \
    --trace "$TRACE_DIR/trace.json" \
    --metrics "$TRACE_DIR/metrics.json" --report

echo "== validate trace =="
# n=2048, block 64 -> m=32 scheduling rows -> 32*33/2 = 528 block tasks.
"$BUILD_DIR"/tools/npdp check-trace --file "$TRACE_DIR/trace.json" \
    --min-workers 2 --expect-tasks 528

echo "== fault injection: deterministic replay =="
# Same plan + same (single-threaded) execution must produce byte-identical
# fired-fault logs, and the healed solve must match the clean one (the
# resilient backend prints the same optimal value either way).
cat > "$TRACE_DIR/faults.json" <<'EOF'
{"seed": 42, "faults": [
  {"site": "task-throw", "rate": 0.05},
  {"site": "block-corrupt", "rate": 0.01}
]}
EOF
"$BUILD_DIR"/tools/npdp solve --n 1024 --backend resilient \
    --fault-plan "$TRACE_DIR/faults.json" --fault-log "$TRACE_DIR/log1.json"
"$BUILD_DIR"/tools/npdp solve --n 1024 --backend resilient \
    --fault-plan "$TRACE_DIR/faults.json" --fault-log "$TRACE_DIR/log2.json"
cmp "$TRACE_DIR/log1.json" "$TRACE_DIR/log2.json"
echo "fault replay: logs byte-identical"

echo "== network loopback smoke =="
# Bring the epoll front-end up on an ephemeral port, drive it with the
# load generator, and require a clean run (every request answered, zero
# protocol or transport errors) plus a graceful SIGTERM drain.
NET_DIR=$(mktemp -d)
"$BUILD_DIR"/tools/npdp net-serve --port 0 --reactors 2 \
    --port-file "$NET_DIR/port" &
NET_PID=$!
trap 'kill "$NET_PID" 2>/dev/null; rm -rf "$TRACE_DIR" "$NET_DIR"' EXIT
for _ in $(seq 100); do
  [ -s "$NET_DIR/port" ] && break
  sleep 0.1
done
[ -s "$NET_DIR/port" ] || { echo "net-serve never bound"; exit 1; }
NET_PORT=$(cat "$NET_DIR/port")
"$BUILD_DIR"/tools/npdp net-bench --port "$NET_PORT" --connections 4 \
    --duration 2 --mix mix --size 24 --json-dir "$NET_DIR"
grep -q '"proto_errors":0' "$NET_DIR"/BENCH_net.json
grep -q '"transport_errors":0' "$NET_DIR"/BENCH_net.json
kill -TERM "$NET_PID"
wait "$NET_PID"
trap 'rm -rf "$TRACE_DIR" "$NET_DIR"' EXIT
echo "net loopback: clean"

echo "== end-to-end telemetry: trace propagation + wide events + stats =="
# Serve with server-side request tracing and the wide-event log, drive it
# with a trace-originating load (every request sampled), pull a live stats
# snapshot, then merge the client and server traces and require >=99% of
# request chains to be complete with zero orphan server spans.
TEL_DIR=$(mktemp -d)
"$BUILD_DIR"/tools/npdp net-serve --port 0 --reactors 2 \
    --port-file "$TEL_DIR/port" \
    --trace "$TEL_DIR/server_trace.json" \
    --request-log "$TEL_DIR/wide.jsonl" &
TEL_PID=$!
trap 'kill "$TEL_PID" 2>/dev/null; rm -rf "$TRACE_DIR" "$NET_DIR" "$TEL_DIR"' EXIT
for _ in $(seq 100); do
  [ -s "$TEL_DIR/port" ] && break
  sleep 0.1
done
[ -s "$TEL_DIR/port" ] || { echo "telemetry net-serve never bound"; exit 1; }
TEL_PORT=$(cat "$TEL_DIR/port")
"$BUILD_DIR"/tools/npdp net-bench --port "$TEL_PORT" --connections 2 \
    --requests 50 --duration 5 --mix chain --size 24 \
    --trace "$TEL_DIR/client_trace.json" --trace-sample 1 \
    --json-dir "$TEL_DIR"
grep -q '"proto_errors":0' "$TEL_DIR"/BENCH_net.json
grep -q '"transport_errors":0' "$TEL_DIR"/BENCH_net.json
# Live stats plane: the binary StatsRequest frame and both renderings.
"$BUILD_DIR"/tools/npdp top --port "$TEL_PORT" --once | grep -q 'queue depth'
"$BUILD_DIR"/tools/npdp top --port "$TEL_PORT" --once --prom \
    | grep -q '^cellnpdp_serve_status_ok'
kill -TERM "$TEL_PID"
wait "$TEL_PID"
trap 'rm -rf "$TRACE_DIR" "$NET_DIR" "$TEL_DIR"' EXIT
# Every completed request must have produced one wide event.
[ -s "$TEL_DIR/wide.jsonl" ] || { echo "no wide events written"; exit 1; }
grep -q '"trace_id":' "$TEL_DIR/wide.jsonl"
grep -q '"queue_ns":' "$TEL_DIR/wide.jsonl"
"$BUILD_DIR"/tools/npdp merge-traces --out "$TEL_DIR/merged.json" \
    --client "$TEL_DIR/client_trace.json" \
    --server "$TEL_DIR/server_trace.json"
"$BUILD_DIR"/tools/npdp check-trace --file "$TEL_DIR/merged.json" \
    --chains --min-chain-frac 0.99
echo "telemetry: clean"

echo "== sanitizers (serve + taskgraph + cancel + resilience + net) =="
# The concurrency-heavy suites rerun under ASan/UBSan in a separate tree.
ASAN_DIR=${ASAN_DIR:-build-asan}
cmake -B "$ASAN_DIR" -S . -DCELLNPDP_SANITIZE=address,undefined
cmake --build "$ASAN_DIR" -j "$JOBS" --target test_serve test_taskgraph \
    test_cancel test_resilience test_net
"$ASAN_DIR"/tests/test_serve
"$ASAN_DIR"/tests/test_taskgraph
"$ASAN_DIR"/tests/test_cancel
"$ASAN_DIR"/tests/test_resilience
"$ASAN_DIR"/tests/test_net

echo "== thread sanitizer (serve + cancel + resilience + net) =="
# Cancellation crosses threads by design (dispatcher trips tokens that
# workers poll), and the hedge watchdog races primaries against twins on
# purpose; TSan is the check that those handoffs are race-free.
TSAN_DIR=${TSAN_DIR:-build-tsan}
cmake -B "$TSAN_DIR" -S . -DCELLNPDP_SANITIZE=thread
cmake --build "$TSAN_DIR" -j "$JOBS" --target test_serve test_cancel \
    test_resilience test_net
"$TSAN_DIR"/tests/test_serve
"$TSAN_DIR"/tests/test_cancel
"$TSAN_DIR"/tests/test_resilience
"$TSAN_DIR"/tests/test_net

echo "verify.sh: OK"
